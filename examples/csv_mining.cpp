// Mine association rules from a CSV file of (trans_id, item) rows — the
// integration path for real data. If no file is given, a Quest-style
// synthetic data set is generated, written to CSV, and mined, so the
// example is runnable out of the box.
//
// Usage:   ./build/examples/csv_mining [sales.csv] [minsup_percent]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/rules.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"
#include "datagen/transaction_io.h"

int main(int argc, char** argv) {
  using namespace setm;
  std::string path = argc > 1 ? argv[1] : "";
  const double minsup_pct = argc > 2 ? std::atof(argv[2]) : 1.0;

  if (path.empty()) {
    path = "quest_sample.csv";
    std::printf("no input given; generating %s (T8.I4, 5,000 baskets)\n",
                path.c_str());
    QuestOptions gen;
    gen.num_transactions = 5000;
    gen.avg_transaction_size = 8;
    gen.avg_pattern_size = 4;
    gen.num_items = 300;
    gen.seed = 7;
    Status s = SaveTransactionsCsv(path, QuestGenerator(gen).Generate());
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write sample: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  auto loaded = LoadTransactionsCsv(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu transactions from %s\n", loaded.value().size(),
              path.c_str());

  Database db;
  SetmMiner miner(&db);
  MiningOptions options;
  options.min_support = minsup_pct / 100.0;
  options.min_confidence = 0.5;
  auto result = miner.Mine(loaded.value(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const FrequentItemsets& itemsets = result.value().itemsets;
  std::printf("minsup %.2f%% -> %zu frequent patterns (largest size %zu)\n",
              minsup_pct, itemsets.TotalPatterns(), itemsets.MaxSize());
  auto rules = GenerateRules(itemsets, options).value();
  std::printf("%zu rules at >= 50%% confidence; first 10:\n", rules.size());
  for (size_t i = 0; i < rules.size() && i < 10; ++i) {
    std::printf("  %s\n", FormatRule(rules[i]).c_str());
  }
  return 0;
}

// Quickstart: mine the paper's worked example (Sections 4.2 and 5).
//
// Ten customer transactions, 30% minimum support, 70% minimum confidence.
// The output reproduces the paper's count relations C1..C3 and its eleven
// association rules, in the paper's own "X ==> I, [conf%, sup%]" format.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "core/paper_example.h"
#include "core/rules.h"
#include "core/setm.h"

int main() {
  using namespace setm;

  // 1. The data: SALES(trans_id, item) as a list of baskets.
  TransactionDb transactions = PaperExampleTransactions();
  std::printf("transactions:\n");
  for (const Transaction& t : transactions) {
    std::printf("  %2d:", t.id);
    for (ItemId item : t.items) std::printf(" %s", PaperItemName(item).c_str());
    std::printf("\n");
  }

  // 2. Mine frequent patterns with Algorithm SETM.
  Database db;  // in-memory storage stack with default sizes
  SetmMiner miner(&db);
  MiningOptions options = PaperExampleOptions();  // 30% support, 70% conf.
  auto result = miner.Mine(transactions, options);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const FrequentItemsets& itemsets = result.value().itemsets;

  // 3. Print the count relations C_k.
  for (size_t k = 1; k <= itemsets.MaxSize(); ++k) {
    std::printf("\nC%zu (patterns with support >= %.0f%%):\n", k,
                options.min_support * 100.0);
    for (const PatternCount& pattern : itemsets.OfSize(k)) {
      std::printf("  ");
      for (ItemId item : pattern.items) {
        std::printf("%s ", PaperItemName(item).c_str());
      }
      std::printf(" (count %lld)\n", static_cast<long long>(pattern.count));
    }
  }

  // 4. Generate and print the association rules (Section 5).
  auto rules = GenerateRules(itemsets, options).value();
  std::printf("\nrules (confidence >= %.0f%%):\n",
              options.min_confidence * 100.0);
  for (const AssociationRule& rule : rules) {
    std::printf("  %s\n", FormatRule(rule, PaperItemName).c_str());
  }
  std::printf("\n%zu rules; SETM ran %zu iterations in %.3f ms\n", rules.size(),
              result.value().iterations.size(),
              result.value().total_seconds * 1000.0);
  return 0;
}

// The paper's announced extension: "relating association rules to customer
// classes." Two synthetic customer segments share a store; the classed
// miner produces per-class count relations in one set-oriented pass, and
// the rules differ sharply between segments.
//
// Usage:   ./build/examples/customer_classes

#include <cstdio>
#include <set>

#include "common/random.h"
#include "core/classed_mining.h"
#include "core/rules.h"

int main() {
  using namespace setm;

  // Segment 0 ("families"): cereal(0) + milk(1) baskets, often with
  // baseball cards(2). Segment 1 ("students"): noodles(10) + soda(11),
  // sometimes coffee(12). A shared staple: bread(20).
  Rng rng(2024);
  TransactionDb txns;
  CustomerClasses classes;
  TransactionId next_tid = 1;
  for (int i = 0; i < 600; ++i) {
    Transaction t;
    t.id = next_tid++;
    const ClassId cls = i % 2;
    std::set<ItemId> items;
    if (cls == 0) {
      items.insert(0);
      items.insert(1);
      if (rng.Bernoulli(0.8)) items.insert(2);
    } else {
      items.insert(10);
      items.insert(11);
      if (rng.Bernoulli(0.4)) items.insert(12);
    }
    if (rng.Bernoulli(0.5)) items.insert(20);
    t.items.assign(items.begin(), items.end());
    txns.push_back(std::move(t));
    classes.assignments.emplace_back(t.id, cls);
  }

  Database db;
  ClassedSetmMiner miner(&db);
  MiningOptions options;
  options.min_support = 0.30;
  options.min_confidence = 0.70;
  auto result = miner.Mine(txns, classes, options);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  auto item_name = [](ItemId id) -> std::string {
    switch (id) {
      case 0: return "cereal";
      case 1: return "milk";
      case 2: return "cards";
      case 10: return "noodles";
      case 11: return "soda";
      case 12: return "coffee";
      case 20: return "bread";
      default: return std::to_string(id);
    }
  };

  for (const auto& [cls, itemsets] : result.value().per_class) {
    std::printf("\n=== customer class %d (%llu transactions) ===\n", cls,
                static_cast<unsigned long long>(itemsets.num_transactions));
    auto rules = GenerateRules(itemsets, options).value();
    for (const AssociationRule& rule : rules) {
      std::printf("  %s\n", FormatRule(rule, item_name).c_str());
    }
    if (rules.empty()) std::printf("  (no rules at these thresholds)\n");
  }
  std::printf("\none pass over %zu transactions, %.3f ms\n", txns.size(),
              result.value().total_seconds * 1000.0);
  return 0;
}

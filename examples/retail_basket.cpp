// Retail basket analysis on the calibrated 46,873-transaction data set —
// the Section 6 experiment as a downstream user would run it: generate (or
// load) data, mine at a support threshold, inspect iteration statistics
// and the strongest rules.
//
// Usage:   ./build/examples/retail_basket [minsup_percent] [minconf_percent]
// Default: 0.5% support, 60% confidence.

#include <cstdio>
#include <cstdlib>

#include "core/itemset_utils.h"
#include "core/rules.h"
#include "core/setm.h"
#include "datagen/retail_generator.h"

int main(int argc, char** argv) {
  using namespace setm;
  const double minsup_pct = argc > 1 ? std::atof(argv[1]) : 0.5;
  const double minconf_pct = argc > 2 ? std::atof(argv[2]) : 60.0;

  std::printf("generating the calibrated retail data set...\n");
  TransactionDb transactions = RetailGenerator(RetailOptions{}).Generate();
  std::printf("  %zu transactions, %llu SALES tuples\n", transactions.size(),
              static_cast<unsigned long long>(CountSalesTuples(transactions)));

  Database db;
  SetmMiner miner(&db);
  MiningOptions options;
  options.min_support = minsup_pct / 100.0;
  options.min_confidence = minconf_pct / 100.0;
  auto result = miner.Mine(transactions, options);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nSETM iterations (minsup %.2f%%):\n", minsup_pct);
  std::printf("  %-4s %12s %12s %10s %10s %10s\n", "k", "|R'_k|", "|R_k|",
              "R_k KB", "|C_k|", "time ms");
  for (const IterationStats& it : result.value().iterations) {
    std::printf("  %-4zu %12llu %12llu %10.1f %10llu %10.2f\n", it.k,
                static_cast<unsigned long long>(it.r_prime_rows),
                static_cast<unsigned long long>(it.r_rows),
                static_cast<double>(it.r_bytes) / 1024.0,
                static_cast<unsigned long long>(it.c_size),
                it.seconds * 1000.0);
  }

  auto rules = GenerateRules(result.value().itemsets, options).value();
  std::printf("\n%zu frequent patterns, %zu rules; showing the 15 most "
              "confident:\n",
              result.value().itemsets.TotalPatterns(), rules.size());
  std::stable_sort(rules.begin(), rules.end(),
                   [](const AssociationRule& a, const AssociationRule& b) {
                     return a.confidence > b.confidence;
                   });
  for (size_t i = 0; i < rules.size() && i < 15; ++i) {
    std::printf("  %s\n", FormatRule(rules[i]).c_str());
  }
  // Compressed summaries of the frequent-set family.
  auto maximal = MaximalItemsets(result.value().itemsets);
  auto closed = ClosedItemsets(result.value().itemsets);
  std::printf("\nsummaries: %zu frequent sets -> %zu closed -> %zu maximal\n",
              result.value().itemsets.TotalPatterns(), closed.size(),
              maximal.size());
  std::printf("largest maximal itemsets:\n");
  for (auto it = maximal.rbegin(); it != maximal.rend(); ++it) {
    if (it - maximal.rbegin() >= 5) break;
    std::printf("  {");
    for (size_t i = 0; i < it->items.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", it->items[i]);
    }
    std::printf("} x%lld\n", static_cast<long long>(it->count));
  }

  std::printf("\ntotal mining time: %.3f s\n", result.value().total_seconds);
  return 0;
}

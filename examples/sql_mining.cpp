// Mining in SQL — the paper's thesis demonstrated end to end.
//
// This example never touches the mining library's C++ algorithms: it
// creates the SALES table through the SQL layer, runs the Section 4.1
// statement sequence via SetmSqlMiner, prints every SQL statement that was
// executed, and finally queries the count relations back — all through the
// engine's SQL interface.
//
// Usage:   ./build/examples/sql_mining

#include <cstdio>

#include "core/paper_example.h"
#include "core/setm.h"
#include "core/setm_sql.h"
#include "sql/engine.h"

int main() {
  using namespace setm;
  Database db;
  sql::SqlEngine engine(&db);

  // 1. Create and populate SALES(trans_id, item) with plain SQL.
  auto created = engine.Execute("CREATE TABLE sales (trans_id INT, item INT)");
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  for (const Transaction& t : PaperExampleTransactions()) {
    for (ItemId item : t.items) {
      std::string stmt = "INSERT INTO sales VALUES (" + std::to_string(t.id) +
                         ", " + std::to_string(item) + ")";
      auto r = engine.Execute(stmt);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
    }
  }

  // 2. Run Algorithm SETM as the SQL loop of Section 4.1.
  auto sales = db.catalog()->GetTable("sales");
  if (!sales.ok()) {
    std::fprintf(stderr, "%s\n", sales.status().ToString().c_str());
    return 1;
  }
  SetmSqlMiner miner(&db);
  MiningOptions options = PaperExampleOptions();
  auto result = miner.MineTable(*sales.value(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "SQL mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("SQL statements executed by Algorithm SETM:\n");
  for (const std::string& stmt : miner.executed_statements()) {
    std::printf("  %s;\n", stmt.c_str());
  }

  // 3. Read a count relation back — again in SQL.
  std::printf("\nSELECT item1, item2, cnt FROM setm_c2:\n");
  auto c2 = engine.Execute("SELECT item1, item2, cnt FROM setm_c2 "
                           "ORDER BY item1, item2");
  if (!c2.ok()) {
    std::fprintf(stderr, "%s\n", c2.status().ToString().c_str());
    return 1;
  }
  for (const Tuple& row : c2.value().rows) {
    std::printf("  %s %s -> %s\n",
                PaperItemName(row.value(0).AsInt32()).c_str(),
                PaperItemName(row.value(1).AsInt32()).c_str(),
                row.value(2).ToString().c_str());
  }
  std::printf("\nfound %zu frequent patterns over %llu transactions\n",
              result.value().itemsets.TotalPatterns(),
              static_cast<unsigned long long>(
                  result.value().itemsets.num_transactions));
  return 0;
}

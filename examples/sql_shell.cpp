// Interactive SQL shell over the engine — type the paper's queries by hand.
//
// Usage:   ./build/examples/sql_shell
//   setm> CREATE TABLE sales (trans_id INT, item INT);
//   setm> INSERT INTO sales VALUES (10, 1), (10, 2), (20, 1);
//   setm> SELECT item, COUNT(*) FROM sales GROUP BY item;
//   setm> \tables      -- list catalog tables
//   setm> \quit
//
// Also accepts SQL piped on stdin (one statement per line or ';'-separated).

#ifdef _WIN32
#include <io.h>
#define isatty _isatty
#define fileno _fileno
#else
#include <unistd.h>
#endif

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "sql/engine.h"

namespace {

void PrintResult(const setm::sql::QueryResult& result) {
  const size_t n = result.schema.NumColumns();
  if (n == 0) {
    if (result.rows_affected > 0) {
      std::printf("ok, %llu rows affected\n",
                  static_cast<unsigned long long>(result.rows_affected));
    } else {
      std::printf("ok\n");
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    std::printf("%s%s", i ? " | " : "", result.schema.column(i).name.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < n; ++i) std::printf("%s----", i ? "-+-" : "");
  std::printf("\n");
  for (const setm::Tuple& row : result.rows) {
    for (size_t i = 0; i < n; ++i) {
      std::string cell = row.value(i).ToString();
      std::printf("%s%s", i ? " | " : "", cell.c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)\n", result.rows.size());
}

}  // namespace

int main() {
  setm::Database db;
  setm::sql::SqlEngine engine(&db);
  const bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("setm SQL shell — \\tables lists tables, \\quit exits\n");
  }

  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) std::printf(buffer.empty() ? "setm> " : "  ... ");
    if (!std::getline(std::cin, line)) break;
    // Meta commands.
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\quit" || line == "\\q") break;
      if (line == "\\tables") {
        for (const std::string& name : db.catalog()->TableNames()) {
          auto t = db.catalog()->GetTable(name);
          if (t.ok()) {
            std::printf("%s %s  -- %llu rows\n", name.c_str(),
                        t.value()->schema().ToString().c_str(),
                        static_cast<unsigned long long>(t.value()->num_rows()));
          }
        }
        continue;
      }
      std::printf("unknown command %s\n", line.c_str());
      continue;
    }
    buffer += line;
    buffer += ' ';
    // Execute every complete (';'-terminated) statement in the buffer.
    size_t pos;
    while ((pos = buffer.find(';')) != std::string::npos) {
      const std::string stmt = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (stmt.find_first_not_of(" \t\r\n") == std::string::npos) continue;
      auto result = engine.Execute(stmt);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        PrintResult(result.value());
      }
    }
    // A buffer left holding only whitespace (e.g. after "stmt; ") would
    // otherwise keep the shell in continuation mode and block meta commands.
    if (buffer.find_first_not_of(" \t\r\n") == std::string::npos) {
      buffer.clear();
    }
    // In pipe mode, a line without ';' is also treated as one statement.
    // (The buffer is non-whitespace whenever non-empty after the clear above.)
    if (!interactive && !buffer.empty() &&
        line.find(';') == std::string::npos && !line.empty()) {
      auto result = engine.Execute(buffer);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        PrintResult(result.value());
      }
      buffer.clear();
    }
  }
  return 0;
}

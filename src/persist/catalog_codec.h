#ifndef SETM_PERSIST_CATALOG_CODEC_H_
#define SETM_PERSIST_CATALOG_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/catalog.h"
#include "relational/schema.h"
#include "storage/page.h"

namespace setm {

/// Little-endian append-only byte writer — the record format every persisted
/// metadata structure (superblock, catalog manifest) is built from. Fixed
/// widths are written byte-by-byte so the on-disk format does not depend on
/// host endianness or struct padding.
class RecordWriter {
 public:
  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// u16 length prefix + raw bytes; fails a CHECK above 64 KiB (identifiers
  /// and column names are tiny — a longer string is a caller bug).
  void PutString(std::string_view s);

  const std::string& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over bytes produced by RecordWriter. Every getter
/// fails with a Corruption status instead of reading past the end, so a
/// truncated or garbage metadata page surfaces as a descriptive error, never
/// as undefined behaviour.
class RecordReader {
 public:
  explicit RecordReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<std::string> GetString();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

/// FNV-1a over `data`. Not cryptographic — it catches torn writes and
/// foreign bytes, which is all the persisted-metadata checksums (superblock
/// slots, WAL records) need.
uint64_t Fnv1a64(std::string_view data);

/// Everything the catalog must remember about one table to reopen it:
/// identity (name, backing, schema) plus, for heap tables, the page chain
/// root and the counters that cannot be cheaply recomputed. Memory tables
/// are recorded for their name and schema only — their rows live in RAM and
/// do not survive a restart (row_count/size_bytes are kept as a historical
/// note of what the table held at checkpoint time).
struct PersistedTableMeta {
  std::string name;
  TableBacking backing = TableBacking::kMemory;
  Schema schema;
  PageId first_page = kInvalidPageId;  ///< heap tables only
  PageId last_page = kInvalidPageId;   ///< heap tables only
  uint64_t num_pages = 0;              ///< heap chain length
  uint64_t row_count = 0;
  uint64_t size_bytes = 0;
  /// Unlogged tables bypass the WAL and reopen empty; their recorded chain
  /// is reclaim fodder, not data. Snapshot v2 predates the flag (false).
  bool unlogged = false;
};

/// The catalog state serialized into the manifest: one entry per table, in
/// creation order (reopen preserves TableNames() ordering), plus the free
/// page list. Keeping the free list inside the copy-on-write manifest —
/// rather than as on-page link chains — means freeing a page never writes
/// into it, so the previous checkpoint's image stays byte-intact until the
/// superblock flips.
struct CatalogSnapshot {
  std::vector<PersistedTableMeta> tables;
  /// Pages no checkpointed structure references, available for reuse by
  /// later allocations (retired manifest-chain surplus, dropped-table heap
  /// chains). Sorted ascending for a deterministic encoding.
  std::vector<PageId> free_pages;
};

/// Serializes a snapshot into the manifest payload format.
std::string EncodeCatalogSnapshot(const CatalogSnapshot& snapshot);

/// Parses a manifest payload; Corruption with a description of the first
/// malformed field on any truncation, bad enum value or trailing garbage.
Result<CatalogSnapshot> DecodeCatalogSnapshot(std::string_view payload);

}  // namespace setm

#endif  // SETM_PERSIST_CATALOG_CODEC_H_

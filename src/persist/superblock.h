#ifndef SETM_PERSIST_SUPERBLOCK_H_
#define SETM_PERSIST_SUPERBLOCK_H_

#include <cstdint>

#include "common/status.h"
#include "storage/page.h"

namespace setm {

/// The first two pages of every file-backed database are *superblock
/// slots* — two alternating copies of the fixed, versioned entry point that
/// makes the file self-describing:
///
///   page 0        superblock slot A (checkpoints with even seq)
///   page 1        superblock slot B (checkpoints with odd seq)
///   page 2..      manifest chain + heap pages, interleaved
///
/// Checkpoint N writes slot N % 2, so the previous checkpoint's superblock
/// is never overwritten while it is the latest durable one: a write torn by
/// power loss mid-superblock destroys only the slot being replaced, and the
/// reopening process falls back to the intact sibling. A reader decodes
/// both slots and trusts whichever valid one carries the higher
/// checkpoint_seq; wrong magic, an unknown format version or a checksum
/// mismatch each fail with a distinct, descriptive Status and the file is
/// left untouched.
constexpr PageId kSuperblockPageId = 0;

/// The sibling slot; see kSuperblockPageId.
constexpr PageId kSuperblockSlotBPageId = 1;

/// First bytes of a SETM database file.
constexpr char kSuperblockMagic[8] = {'S', 'E', 'T', 'M', 'D', 'B', 'F', '0'};

/// On-disk format version this engine reads and writes. Bump on any
/// incompatible change to the superblock or manifest layout. v2 added the
/// second superblock slot (page 1), the free-page list in the catalog
/// snapshot and the sidecar write-ahead log; v1 files must be re-exported
/// (mine with a v1 build, reload the CSV) — there is no in-place upgrade.
constexpr uint32_t kFormatVersion = 2;

/// Decoded superblock contents.
struct Superblock {
  uint32_t format_version = kFormatVersion;
  /// Pages the file held when the superblock was last written. A file whose
  /// real page count is smaller was truncated after the fact.
  uint64_t page_count = 0;
  /// Root of the catalog manifest chain; kInvalidPageId before the first
  /// checkpoint (empty catalog).
  PageId manifest_root = kInvalidPageId;
  /// Root of the *retired* manifest chain (checkpoints alternate between
  /// two chains, copy-on-write). Recorded so a reopening process can reuse
  /// the retired pages instead of orphaning one chain per process
  /// generation; purely an allocation hint — readers never need it.
  PageId spare_manifest_root = kInvalidPageId;
  /// Monotonic checkpoint counter. Not just diagnostics anymore: it picks
  /// the live slot (highest valid seq wins), selects which slot the next
  /// checkpoint writes (seq % 2), and stamps WAL records so replay applies
  /// exactly the epoch that follows this superblock.
  uint64_t checkpoint_seq = 0;
  /// Entries in the catalog snapshot's free-page list at checkpoint time
  /// (informational; the authoritative list lives in the manifest payload).
  uint64_t free_page_count = 0;
};

/// Renders `sb` into `*page` (magic, fields, trailing checksum; the rest of
/// the page is zeroed).
void EncodeSuperblock(const Superblock& sb, Page* page);

/// Validates and parses a superblock page. Failure modes:
///  * Corruption   — magic mismatch ("not a SETM database file") or
///                   checksum mismatch (torn/garbage superblock);
///  * NotSupported — good magic but a format version this engine does not
///                   understand (v1 gets a migration hint).
Status DecodeSuperblock(const Page& page, Superblock* out);

}  // namespace setm

#endif  // SETM_PERSIST_SUPERBLOCK_H_

#ifndef SETM_PERSIST_SUPERBLOCK_H_
#define SETM_PERSIST_SUPERBLOCK_H_

#include <cstdint>

#include "common/status.h"
#include "storage/page.h"

namespace setm {

/// Page 0 of every file-backed database is the superblock — the fixed,
/// versioned entry point that makes the file self-describing:
///
///   page 0        superblock (magic, version, catalog manifest root)
///   page 1..      manifest chain + heap pages, interleaved
///
/// A reader validates the superblock before trusting anything else in the
/// file; wrong magic, an unknown format version or a checksum mismatch each
/// fail with a distinct, descriptive Status and the file is left untouched.
constexpr PageId kSuperblockPageId = 0;

/// First bytes of a SETM database file.
constexpr char kSuperblockMagic[8] = {'S', 'E', 'T', 'M', 'D', 'B', 'F', '0'};

/// On-disk format version this engine reads and writes. Bump on any
/// incompatible change to the superblock or manifest layout.
constexpr uint32_t kFormatVersion = 1;

/// Decoded superblock contents.
struct Superblock {
  uint32_t format_version = kFormatVersion;
  /// Pages the file held when the superblock was last written. A file whose
  /// real page count is smaller was truncated after the fact.
  uint64_t page_count = 0;
  /// Root of the catalog manifest chain; kInvalidPageId before the first
  /// checkpoint (empty catalog).
  PageId manifest_root = kInvalidPageId;
  /// Root of the *retired* manifest chain (checkpoints alternate between
  /// two chains, copy-on-write). Recorded so a reopening process can reuse
  /// the retired pages instead of orphaning one chain per process
  /// generation; purely an allocation hint — readers never need it.
  PageId spare_manifest_root = kInvalidPageId;
  /// Monotonic checkpoint counter, for diagnostics and tests.
  uint64_t checkpoint_seq = 0;
};

/// Renders `sb` into `*page` (magic, fields, trailing checksum; the rest of
/// the page is zeroed).
void EncodeSuperblock(const Superblock& sb, Page* page);

/// Validates and parses a superblock page. Failure modes:
///  * Corruption   — magic mismatch ("not a SETM database file") or
///                   checksum mismatch (torn/garbage superblock);
///  * NotSupported — good magic but a format version this engine does not
///                   understand.
Status DecodeSuperblock(const Page& page, Superblock* out);

}  // namespace setm

#endif  // SETM_PERSIST_SUPERBLOCK_H_

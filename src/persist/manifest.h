#ifndef SETM_PERSIST_MANIFEST_H_
#define SETM_PERSIST_MANIFEST_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace setm {

/// The catalog manifest is a payload of serialized bytes (see
/// catalog_codec.h) split across a singly-linked chain of metadata pages:
///
///   [magic u32 | next PageId | payload_len u32 | payload bytes ...]
///
/// The superblock points at the chain's root. The Database alternates
/// checkpoints between two chains, copy-on-write: each rewrite reuses the
/// pages of the *retired* chain (so steady-state checkpoints do not grow
/// the file) and the superblock only flips to a chain once it is fully
/// flushed — the live chain is never modified in place, keeping the
/// previous catalog image intact through a crash at any point. When a
/// rewrite needs fewer pages than the retired chain held, the surplus is
/// reported through `released` so the caller can move those pages to the
/// free list instead of leaking them.

/// Payload bytes one manifest page can carry.
constexpr size_t kManifestPageCapacity = kPageSize - 12;

/// Writes `payload` into a manifest chain through `pool`.
///
/// `chain` is in/out: on entry the pages of the previous manifest (may be
/// empty on the first write), on successful return the pages now holding
/// the manifest, in chain order. Returns the root page id. The chain pages
/// are written and marked dirty but not flushed — the caller's checkpoint
/// sequence flushes after the superblock is updated. When `released` is
/// non-null, input-chain pages the shrunken manifest no longer needs are
/// appended to it (only on success; untouched on failure).
Result<PageId> WriteManifest(BufferPool* pool, std::string_view payload,
                             std::vector<PageId>* chain,
                             std::vector<PageId>* released = nullptr);

/// Reads a manifest chain rooted at `root` back into one payload string.
///
/// `max_pages` bounds the walk (pass the backend's page count): a chain
/// that runs longer is cyclic or corrupt and fails with Corruption, as do
/// pages without the manifest magic or with an impossible payload length.
/// When `chain` is non-null the visited page ids are recorded for a later
/// WriteManifest to reuse.
Result<std::string> ReadManifest(BufferPool* pool, PageId root,
                                 uint64_t max_pages,
                                 std::vector<PageId>* chain);

}  // namespace setm

#endif  // SETM_PERSIST_MANIFEST_H_

#include "persist/superblock.h"

#include <cstring>
#include <string>

#include "persist/catalog_codec.h"

namespace setm {

namespace {

/// Serialized header: magic + fields, checksum appended over these bytes.
/// Field order keeps the version and page-count bytes at the same offsets
/// as format v1 (magic @0, version @8, page_count @12), so a v1 engine
/// reading a v2 file still reports a clean version mismatch.
std::string EncodeHeader(const Superblock& sb) {
  RecordWriter w;
  for (char c : kSuperblockMagic) w.PutU8(static_cast<uint8_t>(c));
  w.PutU32(sb.format_version);
  w.PutU64(sb.page_count);
  w.PutU32(sb.manifest_root);
  w.PutU32(sb.spare_manifest_root);
  w.PutU64(sb.checkpoint_seq);
  w.PutU64(sb.free_page_count);
  return w.bytes();
}

}  // namespace

void EncodeSuperblock(const Superblock& sb, Page* page) {
  const std::string header = EncodeHeader(sb);
  RecordWriter tail;
  tail.PutU64(Fnv1a64(header));
  page->Clear();
  std::memcpy(page->data, header.data(), header.size());
  std::memcpy(page->data + header.size(), tail.bytes().data(),
              tail.bytes().size());
}

Status DecodeSuperblock(const Page& page, Superblock* out) {
  if (std::memcmp(page.data, kSuperblockMagic, sizeof(kSuperblockMagic)) !=
      0) {
    return Status::Corruption(
        "not a SETM database file: superblock magic mismatch");
  }
  RecordReader r(std::string_view(page.data, kPageSize));
  for (size_t i = 0; i < sizeof(kSuperblockMagic); ++i) {
    auto skip = r.GetU8();
    if (!skip.ok()) return skip.status();
  }
  Superblock sb;
  auto version = r.GetU32();
  if (!version.ok()) return version.status();
  sb.format_version = version.value();
  if (sb.format_version != kFormatVersion) {
    std::string msg = "database format version " +
                      std::to_string(sb.format_version) +
                      " is not supported by this build (expected " +
                      std::to_string(kFormatVersion) + ")";
    if (sb.format_version == 1) {
      msg +=
          "; v1 files predate the dual-superblock/WAL layout — re-export "
          "the data (dump with a v1 build, reload the CSV)";
    }
    return Status::NotSupported(msg);
  }
  auto pages = r.GetU64();
  if (!pages.ok()) return pages.status();
  sb.page_count = pages.value();
  auto root = r.GetU32();
  if (!root.ok()) return root.status();
  sb.manifest_root = root.value();
  auto spare = r.GetU32();
  if (!spare.ok()) return spare.status();
  sb.spare_manifest_root = spare.value();
  auto seq = r.GetU64();
  if (!seq.ok()) return seq.status();
  sb.checkpoint_seq = seq.value();
  auto free_count = r.GetU64();
  if (!free_count.ok()) return free_count.status();
  sb.free_page_count = free_count.value();

  const std::string header = EncodeHeader(sb);
  auto checksum = r.GetU64();
  if (!checksum.ok()) return checksum.status();
  if (checksum.value() != Fnv1a64(header)) {
    return Status::Corruption(
        "superblock checksum mismatch (torn write or corrupted file)");
  }
  *out = sb;
  return Status::OK();
}

}  // namespace setm

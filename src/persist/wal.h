#ifndef SETM_PERSIST_WAL_H_
#define SETM_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/storage_backend.h"

namespace setm {

/// Write-ahead log for file-backed databases: the crash-consistency piece
/// that closes the gap between "pwrite returned" and "the bytes survive
/// power loss".
///
/// The main database file is *immutable between checkpoints*. Every page
/// write the buffer pool issues is redirected (via WalBackend) into a
/// sidecar log file `<db>.wal` as a physical after-image:
///
///   page record    [type=1 u8 | seq u64 | page_id u32 | crc u64 | 4096 B]
///   commit record  [type=2 u8 | seq u64 | crc u64]
///
/// `seq` is the epoch tag: records written while the durable superblock
/// carries checkpoint_seq S are stamped S+1 — the seq the *next* checkpoint
/// will publish. Reopening after a crash replays exactly the records whose
/// seq is one past the live superblock's, up to the last intact commit
/// record; everything else in the log (a stale epoch left by a crash
/// between superblock flip and log truncation, or a torn tail) is ignored
/// and discarded. Replay is pure redo of full page images, so running it
/// twice — or over pages a crashed checkpoint already wrote — is harmless.
///
/// Durability boundary: a batch of work becomes crash-durable when its
/// commit record is fsync'd (Database::Commit). Group commit batches that
/// fsync: with a commit window, several commit records ride one sync, and a
/// crash forgets at most the un-synced window — never tears a batch in
/// half, because replay stops at the last *durable* commit record.

/// Byte sizes of the two record types (header fields + payload).
constexpr size_t kWalPageRecordSize = 1 + 8 + 4 + 8 + kPageSize;
constexpr size_t kWalCommitRecordSize = 1 + 8 + 8;
/// Offset of the page payload within a page record.
constexpr size_t kWalPagePayloadOffset = 1 + 8 + 4 + 8;

/// Append-only byte file under the WAL. Abstract so crash tests can model
/// power loss (volatile vs durable bytes) without touching the Wal logic.
class WalFile {
 public:
  virtual ~WalFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Reads up to `n` bytes starting at `offset` into `*out` (replaces its
  /// contents; short reads near EOF return fewer bytes, not an error).
  virtual Status Read(uint64_t offset, size_t n, std::string* out) = 0;

  /// Current file size in bytes.
  virtual Result<uint64_t> Size() = 0;

  /// Forces appended bytes to stable storage.
  virtual Status Sync() = 0;

  /// Shrinks the file to `size` bytes (Reset truncates to zero).
  virtual Status Truncate(uint64_t size) = 0;
};

/// POSIX implementation over a real file.
class PosixWalFile : public WalFile {
 public:
  static Result<std::unique_ptr<PosixWalFile>> Open(const std::string& path);
  ~PosixWalFile() override;

  Status Append(std::string_view data) override;
  Status Read(uint64_t offset, size_t n, std::string* out) override;
  Result<uint64_t> Size() override;
  Status Sync() override;
  Status Truncate(uint64_t size) override;

 private:
  PosixWalFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  uint64_t size_;  // append offset; kept in memory, seeded from lseek
};

/// Cumulative WAL activity since open — the instance-level ledger behind
/// the `wal:` line of `setm_mine --stats`. The same events feed the
/// process-wide setm_wal_* registry series.
struct WalStats {
  uint64_t page_records = 0;    ///< page after-images appended
  uint64_t commit_records = 0;  ///< commit markers appended
  uint64_t bytes_appended = 0;  ///< total record bytes appended
  uint64_t fsyncs = 0;          ///< log syncs that actually hit the file
};

/// The runtime WAL: appends records, tracks the in-epoch page overlay
/// (latest after-image per page, so reads see epoch writes even after the
/// buffer pool evicts them), and materializes the overlay into the main
/// file at checkpoint time. Thread-safe — the buffer pool calls in from
/// whichever thread triggers an eviction.
class Wal {
 public:
  explicit Wal(std::unique_ptr<WalFile> file) : file_(std::move(file)) {}

  /// Sets the epoch tag stamped on subsequent records: the checkpoint_seq
  /// the *next* checkpoint will publish (live superblock seq + 1).
  void SetEpoch(uint64_t seq);

  /// Logs the after-image of `id` and updates the overlay.
  Status AppendPage(PageId id, const Page& page);

  /// Logs a commit record: everything appended so far (this epoch) becomes
  /// replayable once the log is synced.
  Status AppendCommit();

  /// fsyncs the log. After OK, every record appended before the call is
  /// crash-durable.
  Status Sync();

  /// Serves `id` from the overlay if this epoch wrote it: returns true and
  /// fills `*out`, or false (untouched) when the main file is current.
  Result<bool> TryReadImage(PageId id, Page* out);

  /// Writes every overlay page into `target` (the main file's backend).
  /// Part of the checkpoint: by this point the log is synced, so a crash
  /// mid-materialize is repaired by replay.
  Status Materialize(StorageBackend* target);

  /// Truncates the log to zero and syncs — the epoch's records are now
  /// reflected in the main file and must not replay again. Clears the
  /// overlay; the caller advances the epoch via SetEpoch.
  Status Reset();

  /// Open-time crash recovery over this WAL's file: see ReplayWal below.
  /// Leaves the log empty and the in-memory state pristine.
  Status Recover(uint64_t expect_seq, StorageBackend* inner,
                 uint64_t* replayed_pages = nullptr);

  /// True when this epoch logged at least one page.
  bool HasRecords() const;

  /// True when pages were logged after the last commit record — i.e. a
  /// commit record is required before those pages may replay.
  bool NeedsCommitMarker() const;

  /// True when records were appended after the last Sync.
  bool HasUnsyncedData() const;

  /// Cumulative activity counters (see WalStats).
  WalStats Stats() const;

 private:
  std::unique_ptr<WalFile> file_;
  mutable std::mutex mutex_;
  uint64_t epoch_ = 0;
  uint64_t append_offset_ = 0;
  /// page id -> byte offset of its latest after-image payload in the file.
  std::unordered_map<PageId, uint64_t> overlay_;
  bool needs_commit_ = false;
  bool unsynced_ = false;
  WalStats stats_;
  /// Commit records appended since the last real sync — the group-commit
  /// batch size observed into setm_wal_group_commit_batch at each fsync.
  uint64_t commits_since_sync_ = 0;
};

/// StorageBackend decorator that makes the decorated (inner) file
/// append-only-immutable between checkpoints: writes divert to the WAL,
/// reads prefer the WAL overlay, allocations extend the inner file directly
/// (extending with zeroes is crash-safe — an unreferenced tail page is
/// invisible to the previous catalog image). Owns the IoStats accounting;
/// build the inner backend with stats == nullptr or pages count twice.
class WalBackend : public StorageBackend {
 public:
  WalBackend(StorageBackend* inner, Wal* wal, IoStats* stats)
      : StorageBackend(stats), inner_(inner), wal_(wal) {}

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t NumPages() const override { return inner_->NumPages(); }
  /// Durability of *logged* state is the WAL's job; the inner file is only
  /// synced by the checkpoint itself.
  Status Sync() override { return wal_->Sync(); }

  StorageBackend* inner() const { return inner_; }

  /// Unlogged pages (an unlogged table's chain) skip the WAL: writes go
  /// straight to the inner file, reads never consult the overlay. Crash
  /// safety holds because nothing a durable checkpoint references depends
  /// on their content — after a restart unlogged tables reopen empty.
  /// Marks must be cleared when a page is freed for reuse: a recycled page
  /// may belong to a logged table next, and its writes must log again.
  void MarkUnlogged(PageId id);
  void ClearUnlogged(PageId id);
  bool IsUnlogged(PageId id) const;
  /// Number of currently marked pages (diagnostics and tests).
  size_t UnloggedPageCount() const;

 private:
  StorageBackend* inner_;
  Wal* wal_;
  mutable std::mutex unlogged_mutex_;
  std::unordered_set<PageId> unlogged_;
};

/// Crash recovery: scans `file`, finds the last intact commit record of
/// epoch `expect_seq` (CRC-guarded — a torn tail ends the scan cleanly),
/// applies the committed page images to `inner` last-wins (extending the
/// file for images past its end), syncs `inner`, then truncates the log.
/// Idempotent; a log with no committed records of the expected epoch just
/// gets truncated. `replayed_pages` (optional) reports distinct pages
/// applied.
Status ReplayWal(WalFile* file, uint64_t expect_seq, StorageBackend* inner,
                 uint64_t* replayed_pages = nullptr);

}  // namespace setm

#endif  // SETM_PERSIST_WAL_H_

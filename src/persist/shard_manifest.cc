#include "persist/shard_manifest.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_set>

namespace setm {

namespace {

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

Status ParseUint(const std::string& token, uint64_t max, uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || token.empty() || v > max) {
    return Status::InvalidArgument("not an integer in range: " + token);
  }
  *out = v;
  return Status::OK();
}

Status ParseInt32(const std::string& token, int32_t* out) {
  char* end = nullptr;
  long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || token.empty() || v < INT32_MIN ||
      v > INT32_MAX) {
    return Status::InvalidArgument("not a 32-bit integer: " + token);
  }
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

/// "host:port" -> members' remote endpoint.
Status ParseEndpoint(const std::string& token, ShardMember* member) {
  const size_t colon = token.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= token.size()) {
    return Status::InvalidArgument("remote endpoint must be host:port: " +
                                   token);
  }
  uint64_t port = 0;
  SETM_RETURN_IF_ERROR(ParseUint(token.substr(colon + 1), 65535, &port));
  if (port == 0) {
    return Status::InvalidArgument("remote endpoint port must be non-zero: " +
                                   token);
  }
  member->host = token.substr(0, colon);
  member->port = static_cast<uint16_t>(port);
  return Status::OK();
}

Status ParseMemberLine(const std::vector<std::string>& tokens,
                       const std::string& line, ShardMember* member) {
  // shard <id> file <path> [table <name>] [tids <min> <max>]
  // shard <id> remote <host>:<port> [table <name>] [tids <min> <max>]
  if (tokens.size() < 4) {
    return Status::InvalidArgument("short shard line: " + line);
  }
  uint64_t id = 0;
  SETM_RETURN_IF_ERROR(ParseUint(tokens[1], UINT32_MAX, &id));
  member->id = static_cast<uint32_t>(id);
  if (tokens[2] == "file") {
    member->kind = ShardMember::Kind::kFile;
    member->path = tokens[3];
  } else if (tokens[2] == "remote") {
    member->kind = ShardMember::Kind::kRemote;
    SETM_RETURN_IF_ERROR(ParseEndpoint(tokens[3], member));
  } else {
    return Status::InvalidArgument("shard kind must be file or remote: " +
                                   line);
  }
  size_t i = 4;
  while (i < tokens.size()) {
    if (tokens[i] == "table" && i + 1 < tokens.size()) {
      member->table = tokens[i + 1];
      i += 2;
    } else if (tokens[i] == "tids" && i + 2 < tokens.size()) {
      SETM_RETURN_IF_ERROR(ParseInt32(tokens[i + 1], &member->tid_min));
      SETM_RETURN_IF_ERROR(ParseInt32(tokens[i + 2], &member->tid_max));
      member->has_range = true;
      i += 3;
    } else {
      return Status::InvalidArgument("unknown shard attribute '" + tokens[i] +
                                     "': " + line);
    }
  }
  return Status::OK();
}

}  // namespace

std::string ShardManifest::Serialize() const {
  std::string out = "setm-shards v1\n";
  out += "epoch " + std::to_string(epoch) + "\n";
  out += "shards " + std::to_string(members.size()) + "\n";
  for (const ShardMember& m : members) {
    out += "shard " + std::to_string(m.id) + " ";
    if (m.kind == ShardMember::Kind::kFile) {
      out += "file " + m.path;
    } else {
      out += "remote " + m.host + ":" + std::to_string(m.port);
    }
    out += " table " + m.table;
    if (m.has_range) {
      out += " tids " + std::to_string(m.tid_min) + " " +
             std::to_string(m.tid_max);
    }
    out += "\n";
  }
  return out;
}

Result<ShardManifest> ShardManifest::Parse(const std::string& text) {
  ShardManifest manifest;
  manifest.epoch = 0;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  size_t declared_shards = 0;
  bool saw_count = false;
  std::unordered_set<uint32_t> seen_ids;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> tokens = SplitTokens(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (!saw_header) {
      if (tokens.size() != 2 || tokens[0] != "setm-shards" ||
          tokens[1] != "v1") {
        return Status::InvalidArgument(
            "not a shard manifest (expected 'setm-shards v1'): " + line);
      }
      saw_header = true;
      continue;
    }
    if (tokens[0] == "epoch") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("malformed epoch line: " + line);
      }
      SETM_RETURN_IF_ERROR(ParseUint(tokens[1], UINT64_MAX, &manifest.epoch));
    } else if (tokens[0] == "shards") {
      uint64_t n = 0;
      if (tokens.size() != 2) {
        return Status::InvalidArgument("malformed shards line: " + line);
      }
      SETM_RETURN_IF_ERROR(ParseUint(tokens[1], 4096, &n));
      declared_shards = static_cast<size_t>(n);
      saw_count = true;
    } else if (tokens[0] == "shard") {
      ShardMember member;
      SETM_RETURN_IF_ERROR(ParseMemberLine(tokens, line, &member));
      if (!seen_ids.insert(member.id).second) {
        return Status::InvalidArgument("duplicate shard id " +
                                       std::to_string(member.id));
      }
      manifest.members.push_back(std::move(member));
    } else {
      return Status::InvalidArgument("unknown manifest line: " + line);
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("empty shard manifest");
  }
  if (manifest.epoch == 0) {
    return Status::InvalidArgument("shard manifest must declare an epoch");
  }
  if (saw_count && declared_shards != manifest.members.size()) {
    return Status::Corruption(
        "shard manifest declares " + std::to_string(declared_shards) +
        " shards but lists " + std::to_string(manifest.members.size()));
  }
  if (manifest.members.empty()) {
    return Status::InvalidArgument("shard manifest lists no shards");
  }
  return manifest;
}

Result<ShardManifest> ShardManifest::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open shard manifest " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("cannot read shard manifest " + path);
  }
  return Parse(text);
}

Status ShardManifest::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create shard manifest " + path);
  }
  const std::string text = Serialize();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flush_error = std::fclose(f) != 0;
  if (written != text.size() || flush_error) {
    return Status::IOError("cannot write shard manifest " + path);
  }
  return Status::OK();
}

}  // namespace setm

#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "persist/catalog_codec.h"

namespace setm {

namespace {

constexpr uint8_t kWalRecordPage = 1;
constexpr uint8_t kWalRecordCommit = 2;

// Process-wide WAL series, shared by every Wal instance.
struct GlobalWalMetrics {
  obs::Counter* page_records;
  obs::Counter* commit_records;
  obs::Counter* bytes;
  obs::Counter* fsyncs;
  obs::Histogram* group_commit_batch;
};

const GlobalWalMetrics& WalMetrics() {
  static const GlobalWalMetrics metrics = [] {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
    GlobalWalMetrics m;
    m.page_records = registry->GetCounter(
        "setm_wal_page_records_total", "Page after-images appended to WALs");
    m.commit_records = registry->GetCounter(
        "setm_wal_commit_records_total", "Commit markers appended to WALs");
    m.bytes = registry->GetCounter("setm_wal_bytes_total",
                                   "Record bytes appended to WALs");
    m.fsyncs = registry->GetCounter("setm_wal_fsyncs_total",
                                    "WAL syncs that reached the file");
    m.group_commit_batch = registry->GetHistogram(
        "setm_wal_group_commit_batch",
        "Commit records made durable per WAL fsync");
    return m;
  }();
  return metrics;
}

static_assert(kWalPageRecordSize == 21 + kPageSize,
              "page record layout drifted from the documented format");
static_assert(kWalCommitRecordSize == 17,
              "commit record layout drifted from the documented format");

/// Serialized page record. The CRC covers type+seq+id+payload, so a record
/// whose tail never hit the disk (torn append) fails validation and ends
/// replay exactly there.
std::string EncodePageRecord(uint64_t seq, PageId id, const Page& page) {
  RecordWriter crc_input;
  crc_input.PutU8(kWalRecordPage);
  crc_input.PutU64(seq);
  crc_input.PutU32(id);
  std::string bytes = crc_input.bytes();
  bytes.append(page.data, kPageSize);
  const uint64_t crc = Fnv1a64(bytes);

  RecordWriter w;
  w.PutU8(kWalRecordPage);
  w.PutU64(seq);
  w.PutU32(id);
  w.PutU64(crc);
  std::string record = w.bytes();
  record.append(page.data, kPageSize);
  SETM_DCHECK(record.size() == kWalPageRecordSize);
  return record;
}

std::string EncodeCommitRecord(uint64_t seq) {
  RecordWriter crc_input;
  crc_input.PutU8(kWalRecordCommit);
  crc_input.PutU64(seq);
  const uint64_t crc = Fnv1a64(crc_input.bytes());

  RecordWriter w;
  w.PutU8(kWalRecordCommit);
  w.PutU64(seq);
  w.PutU64(crc);
  SETM_DCHECK(w.size() == kWalCommitRecordSize);
  return w.bytes();
}

}  // namespace

// ---------------------------------------------------------------------------
// PosixWalFile
// ---------------------------------------------------------------------------

Result<std::unique_ptr<PosixWalFile>> PosixWalFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError("lseek(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<PosixWalFile>(
      new PosixWalFile(path, fd, static_cast<uint64_t>(size)));
}

PosixWalFile::~PosixWalFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PosixWalFile::Append(std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::pwrite(fd_, data.data() + written, data.size() - written,
                         static_cast<off_t>(size_ + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite(" + path_ + "): " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  size_ += data.size();
  return Status::OK();
}

Status PosixWalFile::Read(uint64_t offset, size_t n, std::string* out) {
  out->clear();
  out->resize(n);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::pread(fd_, out->data() + got, n - got,
                        static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread(" + path_ + "): " + std::strerror(errno));
    }
    if (r == 0) break;  // EOF: short read is the caller's signal
    got += static_cast<size_t>(r);
  }
  out->resize(got);
  return Status::OK();
}

Result<uint64_t> PosixWalFile::Size() { return size_; }

Status PosixWalFile::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync(" + path_ + "): " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status PosixWalFile::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError("ftruncate(" + path_ + "): " +
                           std::strerror(errno));
  }
  size_ = size;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Wal
// ---------------------------------------------------------------------------

void Wal::SetEpoch(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  epoch_ = seq;
}

Status Wal::AppendPage(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string record = EncodePageRecord(epoch_, id, page);
  SETM_RETURN_IF_ERROR(file_->Append(record));
  overlay_[id] = append_offset_ + kWalPagePayloadOffset;
  append_offset_ += record.size();
  needs_commit_ = true;
  unsynced_ = true;
  ++stats_.page_records;
  stats_.bytes_appended += record.size();
  WalMetrics().page_records->Increment();
  WalMetrics().bytes->Increment(record.size());
  return Status::OK();
}

Status Wal::AppendCommit() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string record = EncodeCommitRecord(epoch_);
  SETM_RETURN_IF_ERROR(file_->Append(record));
  append_offset_ += record.size();
  needs_commit_ = false;
  unsynced_ = true;
  ++stats_.commit_records;
  stats_.bytes_appended += record.size();
  ++commits_since_sync_;
  WalMetrics().commit_records->Increment();
  WalMetrics().bytes->Increment(record.size());
  return Status::OK();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!unsynced_) return Status::OK();
  SETM_RETURN_IF_ERROR(file_->Sync());
  unsynced_ = false;
  ++stats_.fsyncs;
  WalMetrics().fsyncs->Increment();
  // How many commit markers this fsync made durable — the group-commit
  // payoff the commit window buys.
  WalMetrics().group_commit_batch->Observe(commits_since_sync_);
  commits_since_sync_ = 0;
  return Status::OK();
}

Result<bool> Wal::TryReadImage(PageId id, Page* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = overlay_.find(id);
  if (it == overlay_.end()) return false;
  std::string bytes;
  SETM_RETURN_IF_ERROR(file_->Read(it->second, kPageSize, &bytes));
  if (bytes.size() != kPageSize) {
    return Status::Corruption("WAL overlay read of page " +
                              std::to_string(id) + " came back short (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  std::memcpy(out->data, bytes.data(), kPageSize);
  return true;
}

Status Wal::Materialize(StorageBackend* target) {
  std::lock_guard<std::mutex> lock(mutex_);
  Page page;
  std::string bytes;
  for (const auto& [id, offset] : overlay_) {
    SETM_RETURN_IF_ERROR(file_->Read(offset, kPageSize, &bytes));
    if (bytes.size() != kPageSize) {
      return Status::Corruption("WAL overlay read of page " +
                                std::to_string(id) + " came back short (" +
                                std::to_string(bytes.size()) + " bytes)");
    }
    std::memcpy(page.data, bytes.data(), kPageSize);
    SETM_RETURN_IF_ERROR(target->WritePage(id, page));
  }
  return Status::OK();
}

Status Wal::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  SETM_RETURN_IF_ERROR(file_->Truncate(0));
  SETM_RETURN_IF_ERROR(file_->Sync());
  overlay_.clear();
  append_offset_ = 0;
  needs_commit_ = false;
  unsynced_ = false;
  return Status::OK();
}

Status Wal::Recover(uint64_t expect_seq, StorageBackend* inner,
                    uint64_t* replayed_pages) {
  std::lock_guard<std::mutex> lock(mutex_);
  SETM_RETURN_IF_ERROR(
      ReplayWal(file_.get(), expect_seq, inner, replayed_pages));
  overlay_.clear();
  append_offset_ = 0;
  needs_commit_ = false;
  unsynced_ = false;
  return Status::OK();
}

bool Wal::HasRecords() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !overlay_.empty();
}

bool Wal::NeedsCommitMarker() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return needs_commit_;
}

bool Wal::HasUnsyncedData() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unsynced_;
}

WalStats Wal::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// ---------------------------------------------------------------------------
// WalBackend
// ---------------------------------------------------------------------------

Result<PageId> WalBackend::AllocatePage() {
  auto id_or = inner_->AllocatePage();
  if (id_or.ok()) AccountAllocation();
  return id_or;
}

Status WalBackend::ReadPage(PageId id, Page* out) {
  if (IsUnlogged(id)) {
    // Unlogged pages are written straight to the inner file, so the file is
    // always current for them — the overlay cannot hold a newer image (a
    // page only becomes allocatable for an unlogged chain after the
    // checkpoint that cleared the overlay).
    SETM_RETURN_IF_ERROR(inner_->ReadPage(id, out));
    AccountRead(id);
    return Status::OK();
  }
  auto from_wal = wal_->TryReadImage(id, out);
  if (!from_wal.ok()) return from_wal.status();
  if (!from_wal.value()) {
    SETM_RETURN_IF_ERROR(inner_->ReadPage(id, out));
  }
  AccountRead(id);
  return Status::OK();
}

Status WalBackend::WritePage(PageId id, const Page& page) {
  if (id >= inner_->NumPages()) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(id));
  }
  if (IsUnlogged(id)) {
    SETM_RETURN_IF_ERROR(inner_->WritePage(id, page));
    AccountWrite(id);
    return Status::OK();
  }
  SETM_RETURN_IF_ERROR(wal_->AppendPage(id, page));
  AccountWrite(id);
  return Status::OK();
}

void WalBackend::MarkUnlogged(PageId id) {
  std::lock_guard<std::mutex> lock(unlogged_mutex_);
  unlogged_.insert(id);
}

void WalBackend::ClearUnlogged(PageId id) {
  std::lock_guard<std::mutex> lock(unlogged_mutex_);
  unlogged_.erase(id);
}

bool WalBackend::IsUnlogged(PageId id) const {
  std::lock_guard<std::mutex> lock(unlogged_mutex_);
  return unlogged_.count(id) != 0;
}

size_t WalBackend::UnloggedPageCount() const {
  std::lock_guard<std::mutex> lock(unlogged_mutex_);
  return unlogged_.size();
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

Status ReplayWal(WalFile* file, uint64_t expect_seq, StorageBackend* inner,
                 uint64_t* replayed_pages) {
  auto size_or = file->Size();
  if (!size_or.ok()) return size_or.status();
  const uint64_t size = size_or.value();
  if (replayed_pages != nullptr) *replayed_pages = 0;

  std::string buf;
  if (size > 0) {
    SETM_RETURN_IF_ERROR(file->Read(0, size, &buf));
  }

  // Pass 1: scan forward, validating every record, and remember where the last
  // intact commit record of the expected epoch ends. Any malformed byte —
  // unknown type, short record, CRC mismatch — is a torn tail: the scan
  // stops and everything from there on is discarded.
  struct PendingImage {
    PageId id;
    size_t payload_offset;
  };
  std::vector<std::pair<size_t, PendingImage>> images;  // (record offset, _)
  size_t offset = 0;
  size_t committed_end = 0;
  while (offset < buf.size()) {
    const uint8_t type = static_cast<uint8_t>(buf[offset]);
    if (type == kWalRecordPage) {
      if (buf.size() - offset < kWalPageRecordSize) break;
      RecordReader r(std::string_view(buf).substr(offset, 21));
      (void)r.GetU8();
      const uint64_t seq = r.GetU64().value();
      const PageId id = r.GetU32().value();
      const uint64_t crc = r.GetU64().value();
      RecordWriter crc_input;
      crc_input.PutU8(kWalRecordPage);
      crc_input.PutU64(seq);
      crc_input.PutU32(id);
      std::string check = crc_input.bytes();
      check.append(buf, offset + kWalPagePayloadOffset, kPageSize);
      if (Fnv1a64(check) != crc) break;
      if (seq == expect_seq) {
        images.push_back({offset, {id, offset + kWalPagePayloadOffset}});
      }
      offset += kWalPageRecordSize;
    } else if (type == kWalRecordCommit) {
      if (buf.size() - offset < kWalCommitRecordSize) break;
      RecordReader r(std::string_view(buf).substr(offset, 9));
      (void)r.GetU8();
      const uint64_t seq = r.GetU64().value();
      RecordReader rc(
          std::string_view(buf).substr(offset + 9, 8));
      const uint64_t crc = rc.GetU64().value();
      RecordWriter crc_input;
      crc_input.PutU8(kWalRecordCommit);
      crc_input.PutU64(seq);
      if (Fnv1a64(crc_input.bytes()) != crc) break;
      if (seq == expect_seq) committed_end = offset + kWalCommitRecordSize;
      offset += kWalCommitRecordSize;
    } else {
      break;
    }
  }

  // Pass 2: apply committed images, last write per page wins.
  std::map<PageId, size_t> latest;  // ordered: extension happens low-to-high
  for (const auto& [record_offset, img] : images) {
    if (record_offset >= committed_end) continue;
    latest[img.id] = img.payload_offset;
  }
  Page page;
  for (const auto& [id, payload_offset] : latest) {
    if (id <= 1) {
      // Superblock slots are written directly by the checkpoint, never
      // through the WAL; a log claiming otherwise is hand-crafted garbage.
      SETM_LOG(kWarn) << "WAL replay skipping image of superblock page "
                         << id;
      continue;
    }
    while (id >= inner->NumPages()) {
      auto alloc = inner->AllocatePage();
      if (!alloc.ok()) return alloc.status();
    }
    std::memcpy(page.data, buf.data() + payload_offset, kPageSize);
    SETM_RETURN_IF_ERROR(inner->WritePage(id, page));
    if (replayed_pages != nullptr) ++*replayed_pages;
  }
  if (!latest.empty()) {
    SETM_RETURN_IF_ERROR(inner->Sync());
  }

  // The log's job is done (or it held nothing applicable); truncating keeps
  // a stale epoch from being rescanned forever.
  if (size > 0) {
    SETM_RETURN_IF_ERROR(file->Truncate(0));
    SETM_RETURN_IF_ERROR(file->Sync());
  }
  return Status::OK();
}

}  // namespace setm

#include "persist/catalog_codec.h"

#include "common/logging.h"

namespace setm {

namespace {

/// Bumped when the snapshot layout changes; decode rejects unknown versions
/// so an old engine never misparses a newer manifest. v2 appended the free
/// page list (v1 snapshots only exist inside format-v1 files, which the
/// superblock already rejects); v3 appended the per-table unlogged flag.
/// Decode still accepts v2 manifests (every table logged) so databases
/// written by the previous engine keep opening.
constexpr uint32_t kSnapshotVersion = 3;
constexpr uint32_t kOldestReadableSnapshotVersion = 2;

}  // namespace

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// RecordWriter
// ---------------------------------------------------------------------------

void RecordWriter::PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

void RecordWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void RecordWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void RecordWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void RecordWriter::PutString(std::string_view s) {
  SETM_CHECK(s.size() <= 0xFFFF);
  PutU16(static_cast<uint16_t>(s.size()));
  buf_.append(s.data(), s.size());
}

// ---------------------------------------------------------------------------
// RecordReader
// ---------------------------------------------------------------------------

Status RecordReader::Need(size_t n) {
  if (data_.size() - pos_ < n) {
    return Status::Corruption(
        "metadata record truncated: need " + std::to_string(n) +
        " more bytes at offset " + std::to_string(pos_) + " of " +
        std::to_string(data_.size()));
  }
  return Status::OK();
}

Result<uint8_t> RecordReader::GetU8() {
  SETM_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> RecordReader::GetU16() {
  SETM_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_])) |
               static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + 1]))
                   << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> RecordReader::GetU32() {
  auto lo = GetU16();
  if (!lo.ok()) return lo.status();
  auto hi = GetU16();
  if (!hi.ok()) return hi.status();
  return static_cast<uint32_t>(lo.value()) |
         (static_cast<uint32_t>(hi.value()) << 16);
}

Result<uint64_t> RecordReader::GetU64() {
  auto lo = GetU32();
  if (!lo.ok()) return lo.status();
  auto hi = GetU32();
  if (!hi.ok()) return hi.status();
  return static_cast<uint64_t>(lo.value()) |
         (static_cast<uint64_t>(hi.value()) << 32);
}

Result<std::string> RecordReader::GetString() {
  auto len = GetU16();
  if (!len.ok()) return len.status();
  SETM_RETURN_IF_ERROR(Need(len.value()));
  std::string out(data_.substr(pos_, len.value()));
  pos_ += len.value();
  return out;
}

// ---------------------------------------------------------------------------
// Catalog snapshot
// ---------------------------------------------------------------------------

std::string EncodeCatalogSnapshot(const CatalogSnapshot& snapshot) {
  RecordWriter w;
  w.PutU32(kSnapshotVersion);
  w.PutU32(static_cast<uint32_t>(snapshot.tables.size()));
  for (const PersistedTableMeta& t : snapshot.tables) {
    w.PutString(t.name);
    w.PutU8(static_cast<uint8_t>(t.backing));
    w.PutU16(static_cast<uint16_t>(t.schema.NumColumns()));
    for (const Column& c : t.schema.columns()) {
      w.PutString(c.name);
      w.PutU8(static_cast<uint8_t>(c.type));
    }
    w.PutU32(t.first_page);
    w.PutU32(t.last_page);
    w.PutU64(t.num_pages);
    w.PutU64(t.row_count);
    w.PutU64(t.size_bytes);
    w.PutU8(t.unlogged ? 1 : 0);
  }
  w.PutU32(static_cast<uint32_t>(snapshot.free_pages.size()));
  for (PageId id : snapshot.free_pages) w.PutU32(id);
  return w.bytes();
}

Result<CatalogSnapshot> DecodeCatalogSnapshot(std::string_view payload) {
  RecordReader r(payload);
  auto version = r.GetU32();
  if (!version.ok()) return version.status();
  if (version.value() < kOldestReadableSnapshotVersion ||
      version.value() > kSnapshotVersion) {
    return Status::Corruption("catalog snapshot version " +
                              std::to_string(version.value()) +
                              " not understood (expected " +
                              std::to_string(kOldestReadableSnapshotVersion) +
                              ".." + std::to_string(kSnapshotVersion) + ")");
  }
  auto count = r.GetU32();
  if (!count.ok()) return count.status();

  CatalogSnapshot out;
  // No reserve(count): the count is untrusted file input, and a crafted
  // value would turn into a huge allocation (abort) before the per-table
  // reads below could fail cleanly. Each loop iteration consumes bytes, so
  // a lying count hits the Corruption path after at most |payload| rounds.
  for (uint32_t i = 0; i < count.value(); ++i) {
    PersistedTableMeta t;
    auto name = r.GetString();
    if (!name.ok()) return name.status();
    t.name = std::move(name).value();

    auto backing = r.GetU8();
    if (!backing.ok()) return backing.status();
    if (backing.value() > static_cast<uint8_t>(TableBacking::kHeap)) {
      return Status::Corruption("table '" + t.name +
                                "': unknown backing tag " +
                                std::to_string(backing.value()));
    }
    t.backing = static_cast<TableBacking>(backing.value());

    auto ncols = r.GetU16();
    if (!ncols.ok()) return ncols.status();
    for (uint16_t c = 0; c < ncols.value(); ++c) {
      auto col_name = r.GetString();
      if (!col_name.ok()) return col_name.status();
      auto type = r.GetU8();
      if (!type.ok()) return type.status();
      if (type.value() > static_cast<uint8_t>(ValueType::kString)) {
        return Status::Corruption("table '" + t.name + "' column '" +
                                  col_name.value() +
                                  "': unknown type tag " +
                                  std::to_string(type.value()));
      }
      t.schema.AddColumn(Column{std::move(col_name).value(),
                                static_cast<ValueType>(type.value())});
    }

    auto first = r.GetU32();
    if (!first.ok()) return first.status();
    t.first_page = first.value();
    auto last = r.GetU32();
    if (!last.ok()) return last.status();
    t.last_page = last.value();
    auto pages = r.GetU64();
    if (!pages.ok()) return pages.status();
    t.num_pages = pages.value();
    auto rows = r.GetU64();
    if (!rows.ok()) return rows.status();
    t.row_count = rows.value();
    auto bytes = r.GetU64();
    if (!bytes.ok()) return bytes.status();
    t.size_bytes = bytes.value();
    if (version.value() >= 3) {
      auto unlogged = r.GetU8();
      if (!unlogged.ok()) return unlogged.status();
      if (unlogged.value() > 1) {
        return Status::Corruption("table '" + t.name +
                                  "': unknown unlogged tag " +
                                  std::to_string(unlogged.value()));
      }
      t.unlogged = unlogged.value() != 0;
    }
    out.tables.push_back(std::move(t));
  }
  auto free_count = r.GetU32();
  if (!free_count.ok()) return free_count.status();
  // No reserve: untrusted count, same reasoning as the table loop above.
  for (uint32_t i = 0; i < free_count.value(); ++i) {
    auto id = r.GetU32();
    if (!id.ok()) return id.status();
    out.free_pages.push_back(id.value());
  }
  if (!r.AtEnd()) {
    return Status::Corruption("catalog snapshot carries " +
                              std::to_string(r.remaining()) +
                              " bytes of trailing garbage");
  }
  return out;
}

}  // namespace setm

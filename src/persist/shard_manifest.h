#ifndef SETM_PERSIST_SHARD_MANIFEST_H_
#define SETM_PERSIST_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace setm {

/// One member of a sharded database: either a local database file (a normal
/// format-v3 file with its own WAL) or a remote setm_served instance reached
/// over the line protocol's LCOUNT/MERGE verbs.
struct ShardMember {
  enum class Kind { kFile, kRemote };

  uint32_t id = 0;
  Kind kind = Kind::kFile;
  /// kFile: path of the shard's database file.
  std::string path;
  /// kRemote: endpoint of the shard's setm_served instance.
  std::string host;
  uint16_t port = 0;
  /// Name of the SALES relation inside the shard.
  std::string table = "sales";
  /// Optional trans_id range this shard owns ([tid_min, tid_max], both
  /// inclusive). Informational — the coordinator never routes by range, it
  /// always counts every shard — but setm_shardctl records the split it
  /// performed so operators can audit shard ownership.
  bool has_range = false;
  int32_t tid_min = 0;
  int32_t tid_max = 0;
};

/// The shard-membership manifest of one sharded database: an ordered member
/// list plus an epoch that bumps on every membership change, so stale
/// manifests are detectable. Serialized as a line-oriented text file:
///
///   setm-shards v1
///   epoch 3
///   shards 3
///   shard 0 file /data/s0.db table sales tids 0 333
///   shard 1 file /data/s1.db table sales tids 334 666
///   shard 2 remote 127.0.0.1:7001 table sales
///
/// `table` and `tids` are optional per member (`table` defaults to "sales").
/// Tokens are whitespace-separated, so file paths must not contain spaces.
struct ShardManifest {
  uint64_t epoch = 1;
  std::vector<ShardMember> members;

  /// Renders the manifest in the format above (always parseable back).
  std::string Serialize() const;

  /// Parses a serialized manifest. InvalidArgument with the offending line
  /// on any malformed input; duplicate shard ids are rejected.
  static Result<ShardManifest> Parse(const std::string& text);

  /// Reads and parses a manifest file. IOError when unreadable.
  static Result<ShardManifest> Load(const std::string& path);

  /// Writes the manifest to `path` (truncating). IOError on failure.
  Status Save(const std::string& path) const;
};

}  // namespace setm

#endif  // SETM_PERSIST_SHARD_MANIFEST_H_

#include "persist/manifest.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "persist/catalog_codec.h"

namespace setm {

namespace {

constexpr uint32_t kManifestPageMagic = 0x4D544553;  // "SETM"

/// Fixed on-page header, serialized through the shared record codec
/// (catalog_codec.h) like every other persisted metadata structure.
struct ManifestHeader {
  uint32_t magic = kManifestPageMagic;
  PageId next = kInvalidPageId;
  uint32_t payload_len = 0;
};

constexpr size_t kHeaderSize = 12;
static_assert(kManifestPageCapacity == kPageSize - kHeaderSize,
              "capacity must match the header size");

void WriteHeader(Page* page, const ManifestHeader& h) {
  RecordWriter w;
  w.PutU32(h.magic);
  w.PutU32(h.next);
  w.PutU32(h.payload_len);
  SETM_DCHECK(w.size() == kHeaderSize);
  std::memcpy(page->data, w.bytes().data(), w.size());
}

Status ReadHeader(const Page& page, PageId id, ManifestHeader* out) {
  RecordReader r(std::string_view(page.data, kHeaderSize));
  auto magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  out->magic = magic.value();
  if (out->magic != kManifestPageMagic) {
    return Status::Corruption("page " + std::to_string(id) +
                              " is not a manifest page (bad magic)");
  }
  auto next = r.GetU32();
  if (!next.ok()) return next.status();
  out->next = next.value();
  auto len = r.GetU32();
  if (!len.ok()) return len.status();
  out->payload_len = len.value();
  if (out->payload_len > kManifestPageCapacity) {
    return Status::Corruption("manifest page " + std::to_string(id) +
                              " claims impossible payload of " +
                              std::to_string(out->payload_len) + " bytes");
  }
  return Status::OK();
}

}  // namespace

Result<PageId> WriteManifest(BufferPool* pool, std::string_view payload,
                             std::vector<PageId>* chain,
                             std::vector<PageId>* released) {
  // A manifest always occupies at least one page: the superblock's root
  // pointer distinguishes "empty catalog" (zero-length payload) from "never
  // checkpointed" (kInvalidPageId).
  const size_t num_pages = payload.empty()
                               ? 1
                               : (payload.size() + kManifestPageCapacity - 1) /
                                     kManifestPageCapacity;

  // Pin every chain page up front: reused pages first, fresh allocations
  // for the overflow. Holding all pins at once keeps the id of page i+1
  // available while page i's header is written. Catalog manifests are a
  // handful of pages, far below any sane pool capacity.
  std::vector<PageGuard> guards;
  guards.reserve(num_pages);
  for (size_t i = 0; i < num_pages; ++i) {
    if (i < chain->size()) {
      // Reused pages are fully overwritten below — skip the backend read.
      auto guard_or = pool->FetchPageForOverwrite((*chain)[i]);
      if (!guard_or.ok()) return guard_or.status();
      guards.push_back(std::move(guard_or).value());
    } else {
      auto guard_or = pool->NewPage();
      if (!guard_or.ok()) return guard_or.status();
      guards.push_back(std::move(guard_or).value());
    }
  }

  for (size_t i = 0; i < num_pages; ++i) {
    const size_t off = i * kManifestPageCapacity;
    const size_t len = payload.empty()
                           ? 0
                           : std::min(kManifestPageCapacity,
                                      payload.size() - off);
    ManifestHeader h;
    h.next = i + 1 < num_pages ? guards[i + 1].id() : kInvalidPageId;
    h.payload_len = static_cast<uint32_t>(len);
    Page* page = guards[i].page();
    page->Clear();
    WriteHeader(page, h);
    if (len > 0) std::memcpy(page->data + kHeaderSize, payload.data() + off, len);
    guards[i].MarkDirty();
  }

  // Surplus of a shrinking chain: input pages beyond what this manifest
  // needed were neither reused nor referenced — report them for the free
  // list rather than silently orphaning one page per shrink.
  if (released != nullptr) {
    for (size_t i = num_pages; i < chain->size(); ++i) {
      released->push_back((*chain)[i]);
    }
  }
  chain->clear();
  chain->reserve(num_pages);
  for (const PageGuard& g : guards) chain->push_back(g.id());
  return chain->front();
}

Result<std::string> ReadManifest(BufferPool* pool, PageId root,
                                 uint64_t max_pages,
                                 std::vector<PageId>* chain) {
  std::string payload;
  if (chain != nullptr) chain->clear();
  PageId cur = root;
  uint64_t visited = 0;
  while (cur != kInvalidPageId) {
    if (++visited > max_pages) {
      return Status::Corruption(
          "manifest chain exceeds the file's page count (cycle or corrupt "
          "next pointer)");
    }
    auto guard_or = pool->FetchPage(cur);
    if (!guard_or.ok()) return guard_or.status();
    const Page* page = guard_or.value().page();
    ManifestHeader h;
    SETM_RETURN_IF_ERROR(ReadHeader(*page, cur, &h));
    payload.append(page->data + kHeaderSize, h.payload_len);
    if (chain != nullptr) chain->push_back(cur);
    cur = h.next;
  }
  return payload;
}

}  // namespace setm

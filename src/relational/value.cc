#include "relational/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace setm {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt32:
      return "INT32";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  const bool a_num = IsNumeric();
  const bool b_num = other.IsNumeric();
  if (a_num != b_num) return a_num ? -1 : 1;  // numerics before strings
  if (!a_num) {
    int c = string_.compare(other.string_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Both numeric. Avoid double rounding when both sides are integers.
  if (type_ != ValueType::kDouble && other.type_ != ValueType::kDouble) {
    if (int_ < other.int_) return -1;
    if (int_ > other.int_) return 1;
    return 0;
  }
  const double a = type_ == ValueType::kDouble ? double_
                                               : static_cast<double>(int_);
  const double b = other.type_ == ValueType::kDouble
                       ? other.double_
                       : static_cast<double>(other.int_);
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

size_t Value::Hash() const {
  switch (type_) {
    case ValueType::kInt32:
    case ValueType::kInt64:
      return std::hash<int64_t>{}(int_);
    case ValueType::kDouble: {
      // Integral doubles hash like the equal integer, consistent with
      // Compare() treating 2.0 == 2.
      double d = double_;
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(string_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kInt32:
    case ValueType::kInt64:
      return std::to_string(int_);
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    }
    case ValueType::kString:
      return "'" + string_ + "'";
  }
  return "?";
}

}  // namespace setm

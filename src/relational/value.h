#ifndef SETM_RELATIONAL_VALUE_H_
#define SETM_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/logging.h"

namespace setm {

/// Column types supported by the engine.
///
/// kInt32 exists (rather than only a 64-bit integer) because the paper's
/// page-count analysis assumes 4-byte items and transaction ids; storing
/// SALES(trans_id INT32, item INT32) reproduces the paper's 8-byte tuples
/// and hence its ||R|| page arithmetic.
enum class ValueType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

/// Returns "INT32", "INT64", "DOUBLE" or "STRING".
std::string_view ValueTypeName(ValueType t);

/// A single typed cell. Values are immutable after construction; the engine
/// has no NULLs (association mining never produces them, and the paper's
/// queries never mention them — documented limitation).
class Value {
 public:
  /// Defaults to INT32 zero (so vectors of Value are cheap to resize).
  Value() : type_(ValueType::kInt32), int_(0) {}

  static Value Int32(int32_t v) { return Value(ValueType::kInt32, v); }
  static Value Int64(int64_t v) { return Value(ValueType::kInt64, v); }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.double_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = std::move(v);
    return out;
  }

  ValueType type() const { return type_; }

  /// Typed accessors; the type must match (checked in debug builds).
  int32_t AsInt32() const {
    SETM_DCHECK(type_ == ValueType::kInt32);
    return static_cast<int32_t>(int_);
  }
  int64_t AsInt64() const {
    SETM_DCHECK(type_ == ValueType::kInt64);
    return int_;
  }
  double AsDouble() const {
    SETM_DCHECK(type_ == ValueType::kDouble);
    return double_;
  }
  const std::string& AsString() const {
    SETM_DCHECK(type_ == ValueType::kString);
    return string_;
  }

  /// Numeric value of an INT32/INT64 cell (promoting), for mixed comparisons.
  int64_t NumericInt() const {
    SETM_DCHECK(type_ == ValueType::kInt32 || type_ == ValueType::kInt64);
    return int_;
  }

  /// True for INT32/INT64/DOUBLE.
  bool IsNumeric() const { return type_ != ValueType::kString; }

  /// Three-way comparison. Numeric types compare by value across widths
  /// (INT32 vs INT64 vs DOUBLE); strings compare lexicographically; a
  /// numeric never equals a string (numerics order before strings).
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// Stable hash combining type class and value (equal values hash equal
  /// across integer widths, consistent with Compare()).
  size_t Hash() const;

  /// Rendering for query results and debugging: 42, 3.5, 'abc'.
  std::string ToString() const;

 private:
  Value(ValueType t, int64_t v) : type_(t), int_(v) {}

  ValueType type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

}  // namespace setm

#endif  // SETM_RELATIONAL_VALUE_H_

#include "relational/catalog.h"

#include <algorithm>

#include "common/logging.h"

namespace setm {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema,
                                    TableBacking backing, bool unlogged) {
  const std::string key = IdentFold(name);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  std::unique_ptr<Table> table;
  if (backing == TableBacking::kMemory) {
    table = std::make_unique<MemTable>(key, std::move(schema));
  } else {
    if (pool_ == nullptr) {
      return Status::InvalidArgument(
          "catalog has no buffer pool; cannot create heap table '" + name +
          "'");
    }
    auto t = HeapTable::Create(key, std::move(schema), pool_,
                               unlogged ? unlogged_page_hook_ : nullptr);
    if (!t.ok()) return t.status();
    table = std::move(t).value();
  }
  table->set_unlogged(unlogged);
  Table* raw = table.get();
  tables_[key] = std::move(table);
  creation_order_.push_back(key);
  SETM_RETURN_IF_ERROR(CheckpointAfterDdl());
  return raw;
}

Status Catalog::CheckpointAfterDdl() {
  if (!checkpoint_hook_) return Status::OK();
  if (checkpoint_defer_depth_ > 0) {
    checkpoint_pending_ = true;
    return Status::OK();
  }
  return checkpoint_hook_();
}

Status Catalog::EndCheckpointDeferral() {
  SETM_CHECK(checkpoint_defer_depth_ > 0);
  if (--checkpoint_defer_depth_ > 0 || !checkpoint_pending_) {
    return Status::OK();
  }
  checkpoint_pending_ = false;
  return checkpoint_hook_ ? checkpoint_hook_() : Status::OK();
}

ScopedCheckpointDeferral::~ScopedCheckpointDeferral() {
  if (done_) return;
  Status s = catalog_->EndCheckpointDeferral();
  if (!s.ok()) {
    SETM_LOG(kError) << "deferred checkpoint failed: " << s.ToString();
  }
}

Status ScopedCheckpointDeferral::Commit() {
  SETM_CHECK(!done_);
  done_ = true;
  return catalog_->EndCheckpointDeferral();
}

Status Catalog::AttachTable(std::unique_ptr<Table> table) {
  const std::string& key = table->name();
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table '" + key + "' already exists");
  }
  tables_[key] = std::move(table);
  creation_order_.push_back(key);
  return Status::OK();
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(IdentFold(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second.get();
}

Result<Table*> Catalog::ResolveTable(const std::string& name) const {
  auto it = tables_.find(IdentFold(name));
  if (it == tables_.end()) {
    std::string available;
    for (const std::string& existing : creation_order_) {
      if (!available.empty()) available += ", ";
      available += existing;
    }
    if (available.empty()) available = "(none)";
    return Status::NotFound("no table '" + name +
                            "'; available: " + available);
  }
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(IdentFold(name)) != 0;
}

Status Catalog::DropTable(const std::string& name) {
  const std::string key = IdentFold(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  // Reclaim a heap table's page chain before erasing it. Collection failure
  // (a corrupt chain link) downgrades to a leak, not a failed drop — the
  // pages merely stay unreferenced, which was the status quo.
  if (free_pages_hook_) {
    if (auto* heap = dynamic_cast<HeapTable*>(it->second.get())) {
      std::vector<PageId> pages;
      Status walk = heap->AppendChainPages(&pages);
      if (walk.ok()) {
        free_pages_hook_(std::move(pages));
      } else {
        SETM_LOG(kWarn) << "dropping '" << key
                           << "' without reclaiming its pages: "
                           << walk.ToString();
      }
    }
  }
  tables_.erase(it);
  creation_order_.erase(
      std::remove(creation_order_.begin(), creation_order_.end(), key),
      creation_order_.end());
  return CheckpointAfterDdl();
}

std::vector<std::string> Catalog::TableNames() const {
  return creation_order_;
}

}  // namespace setm

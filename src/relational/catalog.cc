#include "relational/catalog.h"

#include <algorithm>

namespace setm {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema,
                                    TableBacking backing) {
  const std::string key = IdentFold(name);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  std::unique_ptr<Table> table;
  if (backing == TableBacking::kMemory) {
    table = std::make_unique<MemTable>(key, std::move(schema));
  } else {
    if (pool_ == nullptr) {
      return Status::InvalidArgument(
          "catalog has no buffer pool; cannot create heap table '" + name +
          "'");
    }
    auto t = HeapTable::Create(key, std::move(schema), pool_);
    if (!t.ok()) return t.status();
    table = std::move(t).value();
  }
  Table* raw = table.get();
  tables_[key] = std::move(table);
  creation_order_.push_back(key);
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(IdentFold(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(IdentFold(name)) != 0;
}

Status Catalog::DropTable(const std::string& name) {
  const std::string key = IdentFold(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  tables_.erase(it);
  creation_order_.erase(
      std::remove(creation_order_.begin(), creation_order_.end(), key),
      creation_order_.end());
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  return creation_order_;
}

}  // namespace setm

#ifndef SETM_RELATIONAL_TABLE_H_
#define SETM_RELATIONAL_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "storage/table_heap.h"

namespace setm {

/// A named relation. Two physical representations exist:
///  * MemTable  — a row vector; zero I/O, used for small relations like the
///                count relations C_k ("small enough to be kept in memory",
///                Section 4.3) and for tests;
///  * HeapTable — a slotted-page TableHeap behind a buffer pool, so scans
///                and inserts show up in the IoStats ledger; used for SALES
///                and the intermediate relations R_k.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  virtual ~Table() = default;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Unlogged tables trade durability for write speed: their pages bypass
  /// the write-ahead log, and after a restart the table reopens empty (name
  /// and schema only). The natural fit for SETM's intermediate relations
  /// R_k / C_k, which are dropped at the end of every run anyway.
  bool unlogged() const { return unlogged_; }
  void set_unlogged(bool unlogged) { unlogged_ = unlogged; }

  /// Appends a row (validated against the schema arity).
  virtual Status Insert(const Tuple& tuple) = 0;

  /// Full-scan iterator in storage order.
  virtual std::unique_ptr<TupleIterator> Scan() const = 0;

  /// Number of live rows.
  virtual uint64_t num_rows() const = 0;

  /// Total serialized size of the rows in bytes (the "size in Kbytes"
  /// of Figure 5 is size_bytes() / 1024).
  virtual uint64_t size_bytes() const = 0;

  /// Pages the relation occupies, ceil(size_bytes / kPageSize) for memory
  /// tables, the real chain length for heap tables — the paper's ||R||.
  virtual uint64_t num_pages() const = 0;

  /// Removes all rows.
  virtual Status Truncate() = 0;

 protected:
  Status CheckArity(const Tuple& tuple) const {
    if (tuple.NumValues() != schema_.NumColumns()) {
      return Status::InvalidArgument(
          "tuple arity " + std::to_string(tuple.NumValues()) +
          " does not match schema " + schema_.ToString());
    }
    return Status::OK();
  }

 private:
  std::string name_;
  Schema schema_;
  bool unlogged_ = false;
};

/// In-memory row-vector table.
class MemTable : public Table {
 public:
  MemTable(std::string name, Schema schema)
      : Table(std::move(name), std::move(schema)) {}

  Status Insert(const Tuple& tuple) override;
  std::unique_ptr<TupleIterator> Scan() const override;
  uint64_t num_rows() const override { return rows_.size(); }
  uint64_t size_bytes() const override { return size_bytes_; }
  uint64_t num_pages() const override {
    return (size_bytes_ + kPageSize - 1) / kPageSize;
  }
  Status Truncate() override {
    rows_.clear();
    size_bytes_ = 0;
    return Status::OK();
  }

  /// Direct row access for in-memory algorithms (sorting C_k, lookups).
  const std::vector<Tuple>& rows() const { return rows_; }
  std::vector<Tuple>* mutable_rows() { return &rows_; }

 private:
  std::vector<Tuple> rows_;
  uint64_t size_bytes_ = 0;
};

/// Buffer-pool-backed table over a slotted-page heap.
class HeapTable : public Table {
 public:
  /// Creates an empty heap table in `pool`'s backend. `page_hook`, if set,
  /// observes every page the table's chain ever acquires (including across
  /// Truncate) — the database passes its unlogged-page tagger here.
  static Result<std::unique_ptr<HeapTable>> Create(
      std::string name, Schema schema, BufferPool* pool,
      TableHeap::PageHook page_hook = nullptr);

  /// Re-attaches to an existing page chain (reopening a persisted table).
  /// `expected_rows` (from the catalog manifest) is cross-checked against
  /// the chain walk's live-record count. Fewer rows than the manifest
  /// promises is Corruption — heap chains only grow between checkpoints, so
  /// shrinkage means the file lost data. *More* rows is the signature of an
  /// unclean exit after appends whose dirty pages were evicted to disk:
  /// those rows are intact, so the walk's counts win and the table opens
  /// (logged, not fatal — a crash must not make the file unopenable).
  static Result<std::unique_ptr<HeapTable>> Open(std::string name,
                                                 Schema schema,
                                                 BufferPool* pool,
                                                 PageId first_page,
                                                 uint64_t expected_rows);

  Status Insert(const Tuple& tuple) override;
  std::unique_ptr<TupleIterator> Scan() const override;
  uint64_t num_rows() const override { return heap_.live_records(); }
  /// Delegated to the heap's live-byte counter, which Open() rederives
  /// from the chain itself — never stale relative to the stored rows.
  uint64_t size_bytes() const override { return heap_.live_bytes(); }
  uint64_t num_pages() const override { return heap_.num_pages(); }
  Status Truncate() override;

  /// Page-chain endpoints, serialized into the catalog manifest so the
  /// table can be reopened by a later process.
  PageId first_page() const { return heap_.first_page(); }
  PageId last_page() const { return heap_.last_page(); }

  /// Appends the full page chain to `*out` — lets DropTable hand the pages
  /// to the database free list instead of leaking them in the file.
  Status AppendChainPages(std::vector<PageId>* out) const {
    return heap_.AppendChainPages(out);
  }

 private:
  HeapTable(std::string name, Schema schema, BufferPool* pool, TableHeap heap,
            TableHeap::PageHook page_hook = nullptr)
      : Table(std::move(name), std::move(schema)),
        pool_(pool),
        heap_(std::move(heap)),
        page_hook_(std::move(page_hook)) {}

  BufferPool* pool_;
  TableHeap heap_;
  /// Kept so Truncate's fresh chain is tagged like the original.
  TableHeap::PageHook page_hook_;
  mutable std::string scratch_;
};

}  // namespace setm

#endif  // SETM_RELATIONAL_TABLE_H_

#include "relational/database.h"

#include "common/logging.h"
#include "exec/worker_pool.h"

namespace setm {

Database::~Database() = default;

Database::Database(DatabaseOptions options) : options_(options) {
  if (!options_.file_path.empty()) {
    auto backend_or = FileBackend::Open(options_.file_path, &stats_);
    SETM_CHECK(backend_or.ok());
    backend_ = std::move(backend_or).value();
  } else {
    backend_ = std::make_unique<MemoryBackend>(&stats_);
  }
  temp_backend_ = std::make_unique<MemoryBackend>(&stats_);
  pool_ = std::make_unique<BufferPool>(backend_.get(), options_.pool_frames);
  temp_pool_ =
      std::make_unique<BufferPool>(temp_backend_.get(), options_.temp_pool_frames);
  catalog_ = std::make_unique<Catalog>(pool_.get());
  if (options_.worker_threads > 0) {
    workers_ = std::make_unique<WorkerPool>(options_.worker_threads);
  }
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  if (!options.file_path.empty()) {
    // Validate the path before the unchecked constructor runs.
    IoStats probe;
    auto backend_or = FileBackend::Open(options.file_path, &probe);
    if (!backend_or.ok()) return backend_or.status();
  }
  return std::make_unique<Database>(options);
}

}  // namespace setm

#include "relational/database.h"

#include <sys/stat.h>

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "exec/worker_pool.h"
#include "persist/catalog_codec.h"
#include "persist/manifest.h"

namespace setm {

namespace {

/// Clears an atomic flag on scope exit (Checkpoint's many error returns).
class ScopedFlag {
 public:
  explicit ScopedFlag(std::atomic<bool>* flag) : flag_(flag) {
    flag_->store(true, std::memory_order_release);
  }
  ~ScopedFlag() { flag_->store(false, std::memory_order_release); }

 private:
  std::atomic<bool>* flag_;
};

}  // namespace

Database::~Database() {
  if (persistent_ && !closed_ && catalog_ != nullptr) {
    Status s = Checkpoint();
    if (!s.ok()) {
      SETM_LOG(kError) << "checkpoint on close failed (data since the last "
                          "successful checkpoint may be lost): "
                       << s.ToString();
    }
  }
}

Database::Database(UncheckedTag) {}

Database::Database(DatabaseOptions options) {
  Status s = Init(std::move(options));
  if (!s.ok()) {
    SETM_LOG(kError) << "database setup failed: " << s.ToString()
                     << " (use Database::Open for a checked Status)";
  }
  SETM_CHECK(s.ok());
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(UncheckedTag{}));
  SETM_RETURN_IF_ERROR(db->Init(std::move(options)));
  return db;
}

Status Database::Init(DatabaseOptions options) {
  options_ = std::move(options);
  const bool file_backed = !options_.file_path.empty();
  bool fresh = false;
  if (file_backed) {
    if (!options_.backend_factory) {
      // Refuse to touch existing files that cannot possibly be SETM
      // databases before open() gets a chance to modify them. A partial
      // superblock (size below one page) or a size that is not a whole
      // number of pages means truncation or a foreign file.
      struct stat st;
      if (::stat(options_.file_path.c_str(), &st) == 0 && st.st_size > 0) {
        const uint64_t size = static_cast<uint64_t>(st.st_size);
        if (size < kPageSize) {
          return Status::Corruption(
              "file '" + options_.file_path + "' holds " +
              std::to_string(size) +
              " bytes — too small for a superblock; refusing to "
              "reinitialize");
        }
        if (size % kPageSize != 0) {
          return Status::Corruption(
              "file '" + options_.file_path + "' holds " +
              std::to_string(size) + " bytes, not a whole number of " +
              std::to_string(kPageSize) + "-byte pages (truncated?)");
        }
      }
    }
    // The inner backend carries no IoStats — all accounting happens in the
    // WAL decorator, or pages written both to the log and (at checkpoint)
    // to the file would count twice.
    if (options_.backend_factory) {
      auto inner_or = options_.backend_factory(options_.file_path);
      if (!inner_or.ok()) return inner_or.status();
      inner_backend_ = std::move(inner_or).value();
    } else {
      auto inner_or = FileBackend::Open(options_.file_path,
                                        /*stats=*/nullptr,
                                        /*truncate=*/false);
      if (!inner_or.ok()) return inner_or.status();
      inner_backend_ = std::move(inner_or).value();
    }
    if (options_.wal_factory) {
      auto wal_or = options_.wal_factory(options_.file_path);
      if (!wal_or.ok()) return wal_or.status();
      wal_ = std::make_unique<Wal>(std::move(wal_or).value());
    } else {
      auto wal_or = PosixWalFile::Open(options_.file_path + ".wal");
      if (!wal_or.ok()) return wal_or.status();
      wal_ = std::make_unique<Wal>(std::move(wal_or).value());
    }

    fresh = inner_backend_->NumPages() == 0;
    if (!fresh) {
      SETM_RETURN_IF_ERROR(ReadLiveSuperblock());
      // Replay the epoch the crash interrupted: records stamped one past
      // the live superblock's seq, up to their last durable commit record.
      wal_->SetEpoch(superblock_.checkpoint_seq + 1);
      uint64_t replayed = 0;
      SETM_RETURN_IF_ERROR(wal_->Recover(superblock_.checkpoint_seq + 1,
                                         inner_backend_.get(), &replayed));
      if (replayed > 0) {
        SETM_LOG(kInfo) << "WAL replay restored " << replayed
                        << " committed page(s) into '" << options_.file_path
                        << "'";
      }
      // Replay can only have grown the file, so this still catches
      // externally truncated files.
      if (superblock_.page_count > inner_backend_->NumPages()) {
        return Status::Corruption(
            "file '" + options_.file_path +
            "' was truncated: superblock records " +
            std::to_string(superblock_.page_count) + " pages but only " +
            std::to_string(inner_backend_->NumPages()) + " remain");
      }
    }
    backend_ =
        std::make_unique<WalBackend>(inner_backend_.get(), wal_.get(),
                                     &stats_);
  } else {
    backend_ = std::make_unique<MemoryBackend>(&stats_);
  }
  temp_backend_ = std::make_unique<MemoryBackend>(&stats_);
  pool_ = std::make_unique<BufferPool>(backend_.get(), options_.pool_frames);
  temp_pool_ = std::make_unique<BufferPool>(temp_backend_.get(),
                                            options_.temp_pool_frames);
  catalog_ = std::make_unique<Catalog>(pool_.get());
  if (options_.worker_threads > 0) {
    workers_ = std::make_unique<WorkerPool>(options_.worker_threads);
  }

  if (file_backed) {
    last_wal_sync_ = std::chrono::steady_clock::now();
    if (fresh) {
      persistent_ = true;  // Checkpoint() below needs it; the file is ours
      SETM_RETURN_IF_ERROR(InitializeFreshFile());
    } else {
      // persistent_ stays false until the file validates: a failed Open
      // must never checkpoint over (and thereby reinitialize) a rejected
      // file from the destructor.
      SETM_RETURN_IF_ERROR(LoadPersistentState());
      persistent_ = true;
    }
    catalog_->SetCheckpointHook([this] { return Checkpoint(); });
    catalog_->SetUnloggedPageHook(UnloggedPageTagger());
    catalog_->SetFreePagesHook([this](std::vector<PageId> pages) {
      // A freed page loses its unlogged mark before it can be reallocated:
      // its next owner may be a logged table whose writes must hit the WAL.
      auto* wal_backend = static_cast<WalBackend*>(backend_.get());
      for (PageId id : pages) wal_backend->ClearUnlogged(id);
      std::lock_guard<std::mutex> lock(free_mutex_);
      pending_free_.insert(pending_free_.end(), pages.begin(), pages.end());
    });
    pool_->SetAllocationHook([this]() -> PageId {
      // Stand down during checkpoints: the free list was already serialized
      // into the manifest payload being written, so popping from it now
      // would hand out a page the durable-in-a-moment image calls free.
      if (in_checkpoint_.load(std::memory_order_acquire)) {
        return kInvalidPageId;
      }
      std::lock_guard<std::mutex> lock(free_mutex_);
      if (free_pages_.empty()) return kInvalidPageId;
      PageId id = free_pages_.back();
      free_pages_.pop_back();
      return id;
    });
  }
  return Status::OK();
}

Status Database::ReadLiveSuperblock() {
  Superblock slots[2];
  Status status[2] = {Status::OK(), Status::OK()};
  Page page;
  for (PageId id : {kSuperblockPageId, kSuperblockSlotBPageId}) {
    if (id >= inner_backend_->NumPages()) {
      status[id] = Status::Corruption("superblock slot " + std::to_string(id) +
                                      " lies beyond the file");
      continue;
    }
    status[id] = inner_backend_->ReadPage(id, &page);
    if (status[id].ok()) {
      status[id] = DecodeSuperblock(page, &slots[id]);
    }
  }
  // A cleanly decoded slot of a foreign format version is not crash damage
  // — never "fall back" past it to the sibling.
  for (const Status& s : status) {
    if (s.code() == StatusCode::kNotSupported) return s;
  }
  int live = -1;
  for (int i = 0; i < 2; ++i) {
    if (!status[i].ok()) continue;
    if (live < 0 || slots[i].checkpoint_seq > slots[live].checkpoint_seq) {
      live = i;
    }
  }
  if (live < 0) {
    // Both slots bad: slot A's diagnosis is the canonical one (it is what a
    // foreign or garbage file trips first).
    return status[0];
  }
  superblock_ = slots[live];
  return Status::OK();
}

Status Database::InitializeFreshFile() {
  // A stale sidecar log (the database file was deleted, its .wal not) must
  // not replay into this unrelated fresh file.
  SETM_RETURN_IF_ERROR(wal_->Reset());
  // Reserve both slots before writing either, so every later checkpoint
  // can write its slot without extending the file. A crash in between
  // leaves a file with no valid slot, which correctly refuses to open.
  for (PageId expect : {kSuperblockPageId, kSuperblockSlotBPageId}) {
    auto id_or = inner_backend_->AllocatePage();
    if (!id_or.ok()) return id_or.status();
    if (id_or.value() != expect) {
      return Status::Internal("superblock slot allocation landed on page " +
                              std::to_string(id_or.value()) +
                              " of a supposedly empty file");
    }
  }
  superblock_.page_count = inner_backend_->NumPages();
  Page page;
  EncodeSuperblock(superblock_, &page);  // seq 0 -> slot A
  SETM_RETURN_IF_ERROR(inner_backend_->WritePage(kSuperblockPageId, page));
  SETM_RETURN_IF_ERROR(inner_backend_->Sync());
  wal_->SetEpoch(superblock_.checkpoint_seq + 1);
  // First checkpoint: writes the (empty) manifest, publishes slot B with
  // seq 1, so even an immediately-killed process leaves a reopenable file.
  return Checkpoint();
}

Status Database::LoadPersistentState() {
  if (superblock_.manifest_root == kInvalidPageId) {
    return Status::OK();  // checkpointed before any DDL: empty catalog
  }
  if (superblock_.manifest_root >= backend_->NumPages()) {
    return Status::Corruption(
        "superblock points the catalog manifest at page " +
        std::to_string(superblock_.manifest_root) + ", beyond the file's " +
        std::to_string(backend_->NumPages()) + " pages");
  }
  auto payload_or =
      ReadManifest(pool_.get(), superblock_.manifest_root,
                   backend_->NumPages(), &manifest_pages_);
  if (!payload_or.ok()) return payload_or.status();
  auto snapshot_or = DecodeCatalogSnapshot(payload_or.value());
  if (!snapshot_or.ok()) return snapshot_or.status();

  // Collect the retired chain's pages for checkpoint reuse — without this
  // every process generation would orphan one chain and the file would
  // grow per reopen. Best-effort: the spare chain may be half-rewritten
  // remains of a crashed checkpoint, so a failed walk just means starting
  // from fresh pages; and any id overlapping the live chain (conceivable
  // only in a corrupted file) must not be reused in place.
  if (superblock_.spare_manifest_root != kInvalidPageId &&
      superblock_.spare_manifest_root < backend_->NumPages()) {
    std::vector<PageId> spare;
    auto spare_or = ReadManifest(pool_.get(), superblock_.spare_manifest_root,
                                 backend_->NumPages(), &spare);
    if (spare_or.ok()) {
      for (PageId id : spare) {
        const bool live = id <= kSuperblockSlotBPageId ||
                          std::find(manifest_pages_.begin(),
                                    manifest_pages_.end(),
                                    id) != manifest_pages_.end();
        if (!live) spare_manifest_pages_.push_back(id);
      }
    }
  }

  // Old chains of unlogged heap tables: walked best-effort after every
  // table is attached, then reclaimed page-by-page where provably safe.
  std::vector<PageId> unlogged_reclaim_candidates;
  for (const PersistedTableMeta& meta : snapshot_or.value().tables) {
    std::unique_ptr<Table> table;
    if (meta.backing == TableBacking::kMemory) {
      // Rows of memory tables never reached the file; the table reopens
      // with its schema, empty.
      table = std::make_unique<MemTable>(meta.name, meta.schema);
    } else if (meta.unlogged) {
      // Unlogged chains were written without WAL protection, so after an
      // unclean exit their pages may be torn. The table's contract is
      // "reopens empty": attach a fresh chain and try to reclaim the old
      // one. A walk failure (torn link) downgrades to a leak, never to a
      // failed open — and pages a torn link claims are filtered against
      // everything reachable before they may be reused.
      if (meta.first_page != kInvalidPageId &&
          meta.first_page < backend_->NumPages()) {
        std::vector<PageId> chain;
        Status walk = TableHeap::CollectChainPages(pool_.get(),
                                                   meta.first_page, &chain);
        if (walk.ok()) {
          unlogged_reclaim_candidates.insert(
              unlogged_reclaim_candidates.end(), chain.begin(), chain.end());
        } else {
          SETM_LOG(kWarn) << "unlogged table '" << meta.name
                          << "': old chain not reclaimed (" << walk.ToString()
                          << "); its pages leak";
        }
      }
      auto table_or = HeapTable::Create(meta.name, meta.schema, pool_.get(),
                                        UnloggedPageTagger());
      if (!table_or.ok()) return table_or.status();
      table = std::move(table_or).value();
    } else {
      if (meta.first_page == kInvalidPageId ||
          meta.first_page >= backend_->NumPages()) {
        return Status::Corruption(
            "table '" + meta.name + "': manifest roots its heap at page " +
            std::to_string(meta.first_page) + ", beyond the file's " +
            std::to_string(backend_->NumPages()) + " pages");
      }
      auto table_or = HeapTable::Open(meta.name, meta.schema, pool_.get(),
                                      meta.first_page, meta.row_count);
      if (!table_or.ok()) return table_or.status();
      table = std::move(table_or).value();
    }
    table->set_unlogged(meta.unlogged);
    SETM_RETURN_IF_ERROR(catalog_->AttachTable(std::move(table)));
  }

  // Load the free-page list, but only after filtering it against every
  // page something still reaches — superblock slots, both manifest chains
  // and every attached heap chain. A free list entry that is actually live
  // (conceivable only after corruption, or a bug) would otherwise get
  // reused while referenced; dropping it merely leaks a page.
  std::unordered_set<PageId> reachable = {kSuperblockPageId,
                                          kSuperblockSlotBPageId};
  reachable.insert(manifest_pages_.begin(), manifest_pages_.end());
  reachable.insert(spare_manifest_pages_.begin(), spare_manifest_pages_.end());
  for (const std::string& name : catalog_->TableNames()) {
    auto table_or = catalog_->GetTable(name);
    if (!table_or.ok()) return table_or.status();
    if (const auto* heap = dynamic_cast<const HeapTable*>(table_or.value())) {
      std::vector<PageId> chain;
      SETM_RETURN_IF_ERROR(heap->AppendChainPages(&chain));
      reachable.insert(chain.begin(), chain.end());
    }
  }
  // Reclaim the old chains of unlogged tables: only pages nothing reachable
  // claims may re-enter circulation (a torn unlogged page could hold a
  // garbage next pointer into a live chain — those ids get dropped here).
  // They join pending_free_, becoming allocatable after the next checkpoint.
  if (!unlogged_reclaim_candidates.empty()) {
    std::vector<PageId> reclaim;
    for (PageId id : unlogged_reclaim_candidates) {
      if (id > kSuperblockSlotBPageId && id < backend_->NumPages() &&
          reachable.count(id) == 0) {
        reachable.insert(id);  // dedup within the candidates themselves
        reclaim.push_back(id);
      }
    }
    SETM_LOG(kInfo) << "reclaimed " << reclaim.size()
                    << " page(s) from unlogged table chains";
    std::lock_guard<std::mutex> lock(free_mutex_);
    pending_free_.insert(pending_free_.end(), reclaim.begin(), reclaim.end());
  }

  uint64_t filtered = 0;
  {
    std::lock_guard<std::mutex> lock(free_mutex_);
    for (PageId id : snapshot_or.value().free_pages) {
      if (id <= kSuperblockSlotBPageId || id >= backend_->NumPages() ||
          reachable.count(id) != 0) {
        ++filtered;
        continue;
      }
      free_pages_.push_back(id);
    }
  }
  if (filtered > 0) {
    SETM_LOG(kWarn) << "dropped " << filtered
                       << " free-list entr(ies) that are reachable or out of "
                          "range (leaked, not reused)";
  }
  last_manifest_payload_ = std::move(payload_or).value();
  return Status::OK();
}

std::function<void(PageId)> Database::UnloggedPageTagger() {
  if (options_.file_path.empty() || backend_ == nullptr) return nullptr;
  auto* wal_backend = static_cast<WalBackend*>(backend_.get());
  return [wal_backend](PageId id) { wal_backend->MarkUnlogged(id); };
}

Status Database::Commit() {
  if (!persistent_) return Status::OK();
  // Push this batch's dirty pages into the log, then mark the batch
  // boundary. Replay applies whole marked batches only, so a crash between
  // the records and the marker loses the batch as a unit, never half.
  SETM_RETURN_IF_ERROR(pool_->FlushAll());
  if (wal_->NeedsCommitMarker()) {
    SETM_RETURN_IF_ERROR(wal_->AppendCommit());
  }
  if (wal_->HasUnsyncedData()) {
    const auto now = std::chrono::steady_clock::now();
    const bool window_elapsed =
        options_.wal_commit_window_ms == 0 ||
        now - last_wal_sync_ >=
            std::chrono::milliseconds(options_.wal_commit_window_ms);
    if (window_elapsed) {
      SETM_RETURN_IF_ERROR(wal_->Sync());
      last_wal_sync_ = now;
    }
  }
  return Status::OK();
}

Status Database::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (!persistent_) return Status::OK();
  return Checkpoint();
}

Status Database::Checkpoint() {
  if (!persistent_) return Status::OK();
  ScopedFlag checkpoint_scope(&in_checkpoint_);

  CatalogSnapshot snapshot;
  for (const std::string& name : catalog_->TableNames()) {
    auto table_or = catalog_->GetTable(name);
    if (!table_or.ok()) return table_or.status();
    const Table* table = table_or.value();
    PersistedTableMeta meta;
    meta.name = name;
    meta.schema = table->schema();
    meta.row_count = table->num_rows();
    meta.size_bytes = table->size_bytes();
    meta.num_pages = table->num_pages();
    meta.unlogged = table->unlogged();
    if (const auto* heap = dynamic_cast<const HeapTable*>(table)) {
      meta.backing = TableBacking::kHeap;
      meta.first_page = heap->first_page();
      meta.last_page = heap->last_page();
    } else {
      meta.backing = TableBacking::kMemory;
    }
    snapshot.tables.push_back(std::move(meta));
  }
  // The durable free list: pages already free plus this epoch's pending
  // ones — the checkpoint that is about to commit is exactly what makes
  // the pending pages safe to reuse.
  std::vector<PageId> pending_copy;
  {
    std::lock_guard<std::mutex> lock(free_mutex_);
    pending_copy = pending_free_;
    snapshot.free_pages = free_pages_;
  }
  snapshot.free_pages.insert(snapshot.free_pages.end(), pending_copy.begin(),
                             pending_copy.end());
  std::sort(snapshot.free_pages.begin(), snapshot.free_pages.end());
  std::string payload = EncodeCatalogSnapshot(snapshot);

  // Nothing changed since the last checkpoint? Then there is nothing to
  // make durable: no manifest rewrite, no superblock flip, no file growth.
  // (checkpoint_seq > 0 keeps the very first checkpoint unconditional.)
  if (superblock_.checkpoint_seq > 0 && payload == last_manifest_payload_ &&
      pool_->DirtyPageCount() == 0 && !wal_->HasRecords()) {
    return Status::OK();
  }

  // Copy-on-write: when the catalog changed, the new manifest goes into
  // the *retired* chain (fresh pages on the first rounds), never over the
  // live one the on-disk superblock still references. On any failure below
  // the written-to pages stay the spare for the retry and the live chain
  // is untouched. When the payload is byte-identical to the live manifest
  // (a data-only checkpoint), the rewrite is skipped entirely and the
  // chains keep their roles.
  const bool rewrite_manifest =
      payload != last_manifest_payload_ || manifest_pages_.empty();
  std::vector<PageId> chain;
  std::vector<PageId> released;
  PageId new_root = superblock_.manifest_root;
  PageId new_spare_root = superblock_.spare_manifest_root;
  if (rewrite_manifest) {
    chain = std::move(spare_manifest_pages_);
    spare_manifest_pages_.clear();
    auto root_or = WriteManifest(pool_.get(), payload, &chain, &released);
    if (!root_or.ok()) {
      spare_manifest_pages_ = std::move(chain);
      return root_or.status();
    }
    new_root = root_or.value();
    new_spare_root =
        manifest_pages_.empty() ? kInvalidPageId : manifest_pages_.front();
  }
  auto restore_spare = [&] {
    if (rewrite_manifest) spare_manifest_pages_ = std::move(chain);
  };

  // From here the ordering is the whole point; each step is durable before
  // the next starts:
  //   1. every dirty page -> WAL, commit record, fsync the log;
  //   2. logged images -> main file, fsync it;
  //   3. new superblock -> the *other* slot, fsync again;
  //   4. truncate the log.
  // A crash after 1 replays into the old image (old superblock still
  // live); after 2 likewise (replay rewrites the same bytes); after 3 the
  // new superblock wins and the stale log is ignored by its epoch tag;
  // after 4 the checkpoint simply happened.
  Status step = pool_->FlushAll();
  if (step.ok() && wal_->NeedsCommitMarker()) step = wal_->AppendCommit();
  if (step.ok()) step = wal_->Sync();
  if (step.ok()) step = wal_->Materialize(inner_backend_.get());
  if (step.ok()) step = inner_backend_->Sync();
  if (!step.ok()) {
    restore_spare();
    return step;
  }

  Superblock next = superblock_;
  next.manifest_root = new_root;
  next.spare_manifest_root = new_spare_root;
  next.page_count = inner_backend_->NumPages();
  next.checkpoint_seq = superblock_.checkpoint_seq + 1;
  next.free_page_count = snapshot.free_pages.size();
  Page slot_page;
  EncodeSuperblock(next, &slot_page);
  // Alternating slots: the previous checkpoint's superblock is never the
  // write target, so a torn write here can only damage a slot that was
  // already dead. A failed retry recomputes the same seq and hits the same
  // slot — the live one stays untouched no matter how often this fails.
  const PageId slot = static_cast<PageId>(next.checkpoint_seq % 2);
  step = inner_backend_->WritePage(slot, slot_page);
  if (step.ok()) step = inner_backend_->Sync();
  if (!step.ok()) {
    restore_spare();
    return step;
  }
  superblock_ = next;

  // The epoch is sealed: drop the log and stamp the next epoch's records
  // with the seq a future replay (against the just-published superblock)
  // will look for. A failure here is reported but not fatal to the image —
  // the stale log cannot replay (wrong epoch) and the next checkpoint
  // retries the truncation.
  Status reset = wal_->Reset();
  wal_->SetEpoch(superblock_.checkpoint_seq + 1);
  if (!reset.ok()) {
    SETM_LOG(kWarn) << "WAL truncation after checkpoint failed "
                          "(harmless for consistency, retried next "
                          "checkpoint): "
                       << reset.ToString();
  }

  if (rewrite_manifest) {
    spare_manifest_pages_ = std::move(manifest_pages_);
    manifest_pages_ = std::move(chain);
  }
  last_manifest_payload_ = std::move(payload);
  {
    std::lock_guard<std::mutex> lock(free_mutex_);
    // The pending pages this checkpoint recorded are now allocatable; the
    // manifest shrink's surplus joins the *next* checkpoint's pending set.
    pending_free_.erase(pending_free_.begin(),
                        pending_free_.begin() +
                            static_cast<ptrdiff_t>(pending_copy.size()));
    free_pages_.insert(free_pages_.end(), pending_copy.begin(),
                       pending_copy.end());
    pending_free_.insert(pending_free_.end(), released.begin(),
                         released.end());
  }
  return Status::OK();
}

}  // namespace setm

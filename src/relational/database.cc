#include "relational/database.h"

#include <sys/stat.h>

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "exec/worker_pool.h"
#include "persist/catalog_codec.h"
#include "persist/manifest.h"

namespace setm {

Database::~Database() {
  if (persistent_ && catalog_ != nullptr) {
    Status s = Checkpoint();
    if (!s.ok()) {
      SETM_LOG(kError) << "checkpoint on close failed (data since the last "
                          "successful checkpoint may be lost): "
                       << s.ToString();
    }
  }
}

Database::Database(UncheckedTag) {}

Database::Database(DatabaseOptions options) {
  Status s = Init(std::move(options));
  if (!s.ok()) {
    SETM_LOG(kError) << "database setup failed: " << s.ToString()
                     << " (use Database::Open for a checked Status)";
  }
  SETM_CHECK(s.ok());
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(UncheckedTag{}));
  SETM_RETURN_IF_ERROR(db->Init(std::move(options)));
  return db;
}

Status Database::Init(DatabaseOptions options) {
  options_ = std::move(options);
  const bool file_backed = !options_.file_path.empty();
  if (file_backed) {
    // Refuse to touch existing files that cannot possibly be SETM
    // databases before open() gets a chance to modify them. A partial
    // superblock (size below one page) or a size that is not a whole
    // number of pages means truncation or a foreign file.
    struct stat st;
    if (::stat(options_.file_path.c_str(), &st) == 0 && st.st_size > 0) {
      const uint64_t size = static_cast<uint64_t>(st.st_size);
      if (size < kPageSize) {
        return Status::Corruption(
            "file '" + options_.file_path + "' holds " +
            std::to_string(size) +
            " bytes — too small for a superblock; refusing to reinitialize");
      }
      if (size % kPageSize != 0) {
        return Status::Corruption(
            "file '" + options_.file_path + "' holds " +
            std::to_string(size) +
            " bytes, not a whole number of " + std::to_string(kPageSize) +
            "-byte pages (truncated?)");
      }
    }
    auto backend_or =
        FileBackend::Open(options_.file_path, &stats_, /*truncate=*/false);
    if (!backend_or.ok()) return backend_or.status();
    backend_ = std::move(backend_or).value();
  } else {
    backend_ = std::make_unique<MemoryBackend>(&stats_);
  }
  temp_backend_ = std::make_unique<MemoryBackend>(&stats_);
  pool_ = std::make_unique<BufferPool>(backend_.get(), options_.pool_frames);
  temp_pool_ = std::make_unique<BufferPool>(temp_backend_.get(),
                                            options_.temp_pool_frames);
  catalog_ = std::make_unique<Catalog>(pool_.get());
  if (options_.worker_threads > 0) {
    workers_ = std::make_unique<WorkerPool>(options_.worker_threads);
  }

  if (file_backed) {
    if (backend_->NumPages() == 0) {
      persistent_ = true;  // Checkpoint() below needs it; the file is ours
      SETM_RETURN_IF_ERROR(InitializeFreshFile());
    } else {
      // persistent_ stays false until the file validates: a failed Open
      // must never checkpoint over (and thereby reinitialize) a rejected
      // file from the destructor.
      SETM_RETURN_IF_ERROR(LoadPersistentState());
      persistent_ = true;
    }
    catalog_->SetCheckpointHook([this] { return Checkpoint(); });
  }
  return Status::OK();
}

Status Database::InitializeFreshFile() {
  auto guard_or = pool_->NewPage();
  if (!guard_or.ok()) return guard_or.status();
  if (guard_or.value().id() != kSuperblockPageId) {
    return Status::Internal(
        "superblock allocation landed on page " +
        std::to_string(guard_or.value().id()) +
        " of a supposedly empty file");
  }
  EncodeSuperblock(superblock_, guard_or.value().page());
  guard_or.value().MarkDirty();
  guard_or.value().Release();
  // First checkpoint: writes the (empty) manifest, points the superblock at
  // it and flushes, so even an immediately-closed database reopens cleanly.
  return Checkpoint();
}

Status Database::LoadPersistentState() {
  {
    auto guard_or = pool_->FetchPage(kSuperblockPageId);
    if (!guard_or.ok()) return guard_or.status();
    SETM_RETURN_IF_ERROR(
        DecodeSuperblock(*guard_or.value().page(), &superblock_));
  }
  if (superblock_.page_count > backend_->NumPages()) {
    return Status::Corruption(
        "file '" + options_.file_path + "' was truncated: superblock records " +
        std::to_string(superblock_.page_count) + " pages but only " +
        std::to_string(backend_->NumPages()) + " remain");
  }
  if (superblock_.manifest_root == kInvalidPageId) {
    return Status::OK();  // checkpointed before any DDL: empty catalog
  }
  if (superblock_.manifest_root >= backend_->NumPages()) {
    return Status::Corruption(
        "superblock points the catalog manifest at page " +
        std::to_string(superblock_.manifest_root) +
        ", beyond the file's " + std::to_string(backend_->NumPages()) +
        " pages");
  }
  auto payload_or =
      ReadManifest(pool_.get(), superblock_.manifest_root,
                   backend_->NumPages(), &manifest_pages_);
  if (!payload_or.ok()) return payload_or.status();
  auto snapshot_or = DecodeCatalogSnapshot(payload_or.value());
  if (!snapshot_or.ok()) return snapshot_or.status();

  // Collect the retired chain's pages for checkpoint reuse — without this
  // every process generation would orphan one chain and the file would
  // grow per reopen. Best-effort: the spare chain may be half-rewritten
  // remains of a crashed checkpoint, so a failed walk just means starting
  // from fresh pages; and any id overlapping the live chain (conceivable
  // only in a corrupted file) must not be reused in place.
  if (superblock_.spare_manifest_root != kInvalidPageId &&
      superblock_.spare_manifest_root < backend_->NumPages()) {
    std::vector<PageId> spare;
    auto spare_or = ReadManifest(pool_.get(), superblock_.spare_manifest_root,
                                 backend_->NumPages(), &spare);
    if (spare_or.ok()) {
      for (PageId id : spare) {
        const bool live = id == kSuperblockPageId ||
                          std::find(manifest_pages_.begin(),
                                    manifest_pages_.end(),
                                    id) != manifest_pages_.end();
        if (!live) spare_manifest_pages_.push_back(id);
      }
    }
  }

  for (const PersistedTableMeta& meta : snapshot_or.value().tables) {
    std::unique_ptr<Table> table;
    if (meta.backing == TableBacking::kMemory) {
      // Rows of memory tables never reached the file; the table reopens
      // with its schema, empty.
      table = std::make_unique<MemTable>(meta.name, meta.schema);
    } else {
      if (meta.first_page == kInvalidPageId ||
          meta.first_page >= backend_->NumPages()) {
        return Status::Corruption(
            "table '" + meta.name + "': manifest roots its heap at page " +
            std::to_string(meta.first_page) + ", beyond the file's " +
            std::to_string(backend_->NumPages()) + " pages");
      }
      auto table_or = HeapTable::Open(meta.name, meta.schema, pool_.get(),
                                      meta.first_page, meta.row_count);
      if (!table_or.ok()) return table_or.status();
      table = std::move(table_or).value();
    }
    SETM_RETURN_IF_ERROR(catalog_->AttachTable(std::move(table)));
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  if (!persistent_) return Status::OK();

  CatalogSnapshot snapshot;
  for (const std::string& name : catalog_->TableNames()) {
    auto table_or = catalog_->GetTable(name);
    if (!table_or.ok()) return table_or.status();
    const Table* table = table_or.value();
    PersistedTableMeta meta;
    meta.name = name;
    meta.schema = table->schema();
    meta.row_count = table->num_rows();
    meta.size_bytes = table->size_bytes();
    meta.num_pages = table->num_pages();
    if (const auto* heap = dynamic_cast<const HeapTable*>(table)) {
      meta.backing = TableBacking::kHeap;
      meta.first_page = heap->first_page();
      meta.last_page = heap->last_page();
    } else {
      meta.backing = TableBacking::kMemory;
    }
    snapshot.tables.push_back(std::move(meta));
  }

  // Copy-on-write: the new manifest goes into the *retired* chain (fresh
  // pages on the first rounds), never over the live one the on-disk
  // superblock still references. On any failure below the written-to
  // pages stay the spare for the retry and the live chain is untouched.
  std::vector<PageId> chain = std::move(spare_manifest_pages_);
  spare_manifest_pages_.clear();
  auto root_or = WriteManifest(pool_.get(), EncodeCatalogSnapshot(snapshot),
                               &chain);
  if (!root_or.ok()) {
    spare_manifest_pages_ = std::move(chain);
    return root_or.status();
  }

  // Write ordering: flush the new chain and every data page *before* the
  // superblock that references them. Combined with the chain alternation,
  // a crash anywhere in this sequence leaves the old superblock pointing
  // at the old, untouched chain — the previously checkpointed catalog
  // survives intact. (The superblock page itself is still updated in
  // place; a torn 4 KiB superblock write is the residual window, noted
  // with the WAL follow-on in ROADMAP.)
  Status flush = pool_->FlushAll();
  if (!flush.ok()) {
    spare_manifest_pages_ = std::move(chain);
    return flush;
  }

  superblock_.manifest_root = root_or.value();
  // The current live chain becomes the spare after the flip; record its
  // root so a later process can reuse its pages too.
  superblock_.spare_manifest_root =
      manifest_pages_.empty() ? kInvalidPageId : manifest_pages_.front();
  // Manifest writes may have allocated pages; record the count afterwards
  // so the truncation check covers every page the manifest references.
  superblock_.page_count = backend_->NumPages();
  ++superblock_.checkpoint_seq;
  {
    auto guard_or = pool_->FetchPage(kSuperblockPageId);
    if (!guard_or.ok()) {
      spare_manifest_pages_ = std::move(chain);
      return guard_or.status();
    }
    EncodeSuperblock(superblock_, guard_or.value().page());
    guard_or.value().MarkDirty();
  }
  Status flip = pool_->FlushPage(kSuperblockPageId);
  if (!flip.ok()) {
    spare_manifest_pages_ = std::move(chain);
    return flip;
  }
  spare_manifest_pages_ = std::move(manifest_pages_);
  manifest_pages_ = std::move(chain);
  return Status::OK();
}

}  // namespace setm

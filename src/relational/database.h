#ifndef SETM_RELATIONAL_DATABASE_H_
#define SETM_RELATIONAL_DATABASE_H_

#include <memory>
#include <string>

#include "relational/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/storage_backend.h"

namespace setm {

class WorkerPool;

/// Configuration of a Database instance.
struct DatabaseOptions {
  /// Buffer pool frames for base tables (default 256 frames = 1 MiB).
  size_t pool_frames = 256;
  /// Buffer pool frames for temporary data (sort runs).
  size_t temp_pool_frames = 64;
  /// Memory budget for in-memory sort runs, in bytes. The external sort
  /// spills once a run exceeds this budget.
  size_t sort_memory_bytes = 1 << 20;
  /// Worker threads shared by parallel operators (0 = no pool; operators
  /// run serially unless a miner brings its own pool).
  size_t worker_threads = 0;
  /// If non-empty, base tables live in this file instead of RAM.
  std::string file_path;
};

/// Owns the full storage stack of one database instance: the I/O ledger,
/// the main and temporary page stores, their buffer pools and the catalog.
///
/// Typical setup:
///
///     Database db;                       // in-memory, default sizes
///     Table* sales = db.catalog()->CreateTable(
///         "sales", SalesSchema(), TableBacking::kHeap).value();
class Database {
 public:
  /// Creates the database; aborts the process on unrecoverable setup errors
  /// only when file creation fails (see OpenResult for a checked variant).
  explicit Database(DatabaseOptions options = {});

  /// Checked construction for file-backed databases.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return catalog_.get(); }
  BufferPool* pool() { return pool_.get(); }
  BufferPool* temp_pool() { return temp_pool_.get(); }
  /// Shared worker pool, or null when options.worker_threads == 0.
  WorkerPool* worker_pool() { return workers_.get(); }
  const DatabaseOptions& options() const { return options_; }

  /// The cumulative I/O ledger for all page traffic (base + temp).
  IoStats* io_stats() { return &stats_; }
  const IoStats& io_stats() const { return stats_; }

 private:
  DatabaseOptions options_;
  IoStats stats_;
  std::unique_ptr<StorageBackend> backend_;
  std::unique_ptr<StorageBackend> temp_backend_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BufferPool> temp_pool_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<WorkerPool> workers_;
};

}  // namespace setm

#endif  // SETM_RELATIONAL_DATABASE_H_

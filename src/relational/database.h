#ifndef SETM_RELATIONAL_DATABASE_H_
#define SETM_RELATIONAL_DATABASE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "persist/superblock.h"
#include "persist/wal.h"
#include "relational/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/storage_backend.h"

namespace setm {

class WorkerPool;

/// Configuration of a Database instance.
struct DatabaseOptions {
  /// Buffer pool frames for base tables (default 256 frames = 1 MiB).
  size_t pool_frames = 256;
  /// Buffer pool frames for temporary data (sort runs).
  size_t temp_pool_frames = 64;
  /// Memory budget for in-memory sort runs, in bytes. The external sort
  /// spills once a run exceeds this budget.
  size_t sort_memory_bytes = 1 << 20;
  /// Worker threads shared by parallel operators (0 = no pool; operators
  /// run serially unless a miner brings its own pool).
  size_t worker_threads = 0;
  /// If non-empty, base tables live in this file instead of RAM, and the
  /// database is durable: pages 0/1 are alternating versioned superblock
  /// slots, every page write goes through a sidecar write-ahead log
  /// (`<file_path>.wal`) before reaching the main file, the catalog is
  /// checkpointed into a manifest chain on every DDL and on close, and
  /// reopening the same path replays the log and rebuilds the catalog with
  /// every heap table re-attached to its page chain. Memory-backed tables
  /// reopen with their name and schema but empty (their rows never left
  /// RAM). Opening a file that is not a SETM database — wrong magic,
  /// unsupported format version, truncated — fails with a descriptive
  /// Status and leaves the file untouched.
  std::string file_path;
  /// Group-commit window for Commit(), in milliseconds. 0 (default) fsyncs
  /// the WAL on every Commit — maximum durability, one fsync per batch.
  /// With a window W, Commit still appends its commit record immediately
  /// but only fsyncs when W has elapsed since the last sync, so many small
  /// batches share one fsync; a crash forgets at most the batches of the
  /// un-synced window, never a torn half-batch. Checkpoints always sync.
  uint64_t wal_commit_window_ms = 0;
  /// Test seam: builds the main-file page store instead of FileBackend
  /// (crash-simulation backends). Must ignore its IoStats argument slot —
  /// the database accounts I/O in the WAL decorator. When set, the
  /// pre-open file sanity checks (stat size) are skipped.
  std::function<Result<std::unique_ptr<StorageBackend>>(
      const std::string& path)>
      backend_factory;
  /// Test seam: builds the WAL file instead of PosixWalFile on
  /// `file_path + ".wal"`.
  std::function<Result<std::unique_ptr<WalFile>>(const std::string& path)>
      wal_factory;
};

/// Owns the full storage stack of one database instance: the I/O ledger,
/// the main and temporary page stores, their buffer pools and the catalog.
///
/// Typical setup:
///
///     Database db;                       // in-memory, default sizes
///     Table* sales = db.catalog()->CreateTable(
///         "sales", SalesSchema(), TableBacking::kHeap).value();
///
/// File-backed databases survive restarts — and, with the WAL, survive
/// being killed at any instant:
///
///     auto db = Database::Open({.file_path = "sales.db"}).value();
///     // ... create tables, insert, mine ...
///     db->Commit();                      // batch is now crash-durable
///     db->Close();                       // checkpoint, surfaced as Status
class Database {
 public:
  /// Unchecked construction: aborts the process if setup fails (only
  /// possible for file-backed databases — creation failure, or an existing
  /// file that is corrupt or of a foreign format). Production call sites
  /// with a file_path should use Open() and handle the Status.
  explicit Database(DatabaseOptions options = {});

  /// Checked construction. For file-backed options this creates a fresh
  /// database file (with superblock) or validates and reopens an existing
  /// one — replaying any committed write-ahead-log records a crash left
  /// behind; all other failures — unreachable path, bad magic, unsupported
  /// format version, truncated file, corrupt manifest — come back as a
  /// Status and never reinitialize or modify the file.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return catalog_.get(); }
  BufferPool* pool() { return pool_.get(); }
  BufferPool* temp_pool() { return temp_pool_.get(); }
  /// Shared worker pool, or null when options.worker_threads == 0.
  WorkerPool* worker_pool() { return workers_.get(); }
  const DatabaseOptions& options() const { return options_; }

  /// True when this database persists to a file (and checkpoints apply).
  bool persistent() const { return persistent_; }

  /// Page tagger for WAL-bypassing scratch storage: every tagged page is
  /// written straight to the main file instead of the write-ahead log.
  /// Null (a no-op to pass around freely) for in-memory databases. Miners
  /// hand this to HeapTable::Create for their intermediate relations
  /// R_k / C_k — relations SETM drops at the end of the run, whose pages
  /// would otherwise bloat the log with data nobody ever replays.
  std::function<void(PageId)> UnloggedPageTagger();

  /// Serializes the live catalog into the manifest chain, materializes this
  /// epoch's logged pages into the main file, publishes a new superblock
  /// slot and truncates the WAL — after a successful return the main file
  /// alone is a complete, reopenable image of the database. Every step is
  /// ordered behind an fsync, so a crash at *any* point leaves either the
  /// previous or the new image intact, never a mix. Invoked automatically
  /// after each DDL and from Close()/the destructor; callers may invoke it
  /// explicitly. When nothing changed since the last checkpoint this is a
  /// no-op (no superblock flip, no file growth). No-op for in-memory
  /// databases.
  Status Checkpoint();

  /// Makes every row appended so far crash-durable: flushes dirty pages
  /// into the WAL, appends a commit record and (subject to
  /// wal_commit_window_ms) fsyncs the log. Far cheaper than a checkpoint —
  /// no manifest rewrite, no superblock flip — and the natural call after
  /// each ingest batch. Replay after a crash restores exactly the
  /// committed batches. No-op for in-memory databases.
  Status Commit();

  /// Final checkpoint, with the Status surfaced (the destructor can only
  /// log). Idempotent; after Close() the destructor does nothing more.
  Status Close();

  /// Checkpoints written so far (diagnostics; 0 for in-memory databases).
  uint64_t checkpoint_count() const { return superblock_.checkpoint_seq; }

  /// The cumulative I/O ledger for all page traffic (base + temp).
  IoStats* io_stats() { return &stats_; }
  const IoStats& io_stats() const { return stats_; }

  /// WAL activity counters since open (all zeros for in-memory databases,
  /// which have no log).
  WalStats wal_stats() const {
    return wal_ != nullptr ? wal_->Stats() : WalStats{};
  }

 private:
  struct UncheckedTag {};
  explicit Database(UncheckedTag);  // defined out of line: members need
                                    // complete types for their destructors

  /// Builds the whole stack; called exactly once, from either constructor
  /// path. Failure leaves the object unusable (Open() discards it).
  Status Init(DatabaseOptions options);
  /// Reads both superblock slots from the inner backend and adopts the
  /// valid one with the highest checkpoint_seq. A NotSupported from either
  /// slot (foreign format version) propagates rather than falling back —
  /// version mismatch is not crash damage.
  Status ReadLiveSuperblock();
  /// First-open path: reserves both superblock slots, seeds slot A and
  /// runs the first checkpoint.
  Status InitializeFreshFile();
  /// Reopen path (after superblock selection and WAL replay): reads the
  /// manifest, rebuilds the catalog with every table re-attached and loads
  /// the free-page list (filtered against everything reachable).
  Status LoadPersistentState();

  DatabaseOptions options_;
  IoStats stats_;
  /// File-backed stack, declaration order = reverse destruction order:
  /// the pool flushes into backend_ (the WAL decorator) on destruction,
  /// which appends to wal_, which reads/writes the real file — so the
  /// decorated pieces must outlive backend_, which must outlive the pools.
  std::unique_ptr<StorageBackend> inner_backend_;  ///< the real main file
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<StorageBackend> backend_;  ///< WalBackend (file) / memory
  std::unique_ptr<StorageBackend> temp_backend_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BufferPool> temp_pool_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<WorkerPool> workers_;
  bool persistent_ = false;
  bool closed_ = false;
  Superblock superblock_;
  /// The two manifest chains, alternated copy-on-write: `manifest_pages_`
  /// is the live chain the on-disk superblock references and is never
  /// rewritten in place; each rewriting checkpoint writes into the retired
  /// `spare_manifest_pages_` (allocating on the first round), flips the
  /// superblock to it, then swaps the roles. A crash anywhere inside a
  /// checkpoint therefore leaves the previous catalog image intact.
  std::vector<PageId> manifest_pages_;
  std::vector<PageId> spare_manifest_pages_;
  /// Byte-exact copy of the manifest payload the live chain holds — lets a
  /// checkpoint skip the manifest rewrite (and the chain swap) when the
  /// catalog did not change, which is every data-only checkpoint.
  std::string last_manifest_payload_;
  /// Free-page state. `free_pages_` are durably recorded free (allocatable
  /// now); `pending_free_` were freed this epoch and become allocatable
  /// only after the checkpoint that records them commits — reusing them
  /// earlier would let WAL replay over pages the *previous* durable image
  /// still references. Guarded by free_mutex_; the pool's allocation hook
  /// runs under the pool mutex, so the order pool mutex -> free_mutex_ is
  /// fixed and Checkpoint never calls the pool while holding free_mutex_.
  std::mutex free_mutex_;
  std::vector<PageId> free_pages_;
  std::vector<PageId> pending_free_;
  /// Set for the duration of Checkpoint: the allocation hook stands down so
  /// a manifest rewrite cannot pop pages out of the free list *after* that
  /// list was serialized into the very payload being written.
  std::atomic<bool> in_checkpoint_{false};
  /// Group-commit clock: last WAL fsync issued by Commit().
  std::chrono::steady_clock::time_point last_wal_sync_;
};

}  // namespace setm

#endif  // SETM_RELATIONAL_DATABASE_H_

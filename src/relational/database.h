#ifndef SETM_RELATIONAL_DATABASE_H_
#define SETM_RELATIONAL_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "persist/superblock.h"
#include "relational/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/storage_backend.h"

namespace setm {

class WorkerPool;

/// Configuration of a Database instance.
struct DatabaseOptions {
  /// Buffer pool frames for base tables (default 256 frames = 1 MiB).
  size_t pool_frames = 256;
  /// Buffer pool frames for temporary data (sort runs).
  size_t temp_pool_frames = 64;
  /// Memory budget for in-memory sort runs, in bytes. The external sort
  /// spills once a run exceeds this budget.
  size_t sort_memory_bytes = 1 << 20;
  /// Worker threads shared by parallel operators (0 = no pool; operators
  /// run serially unless a miner brings its own pool).
  size_t worker_threads = 0;
  /// If non-empty, base tables live in this file instead of RAM, and the
  /// database is durable: page 0 is a versioned superblock, the catalog is
  /// checkpointed into a manifest chain on every DDL and on close, and
  /// reopening the same path rebuilds the catalog with every heap table
  /// re-attached to its page chain. Memory-backed tables reopen with their
  /// name and schema but empty (their rows never left RAM). Opening a file
  /// that is not a SETM database — wrong magic, unsupported format version,
  /// truncated — fails with a descriptive Status and leaves the file
  /// untouched.
  std::string file_path;
};

/// Owns the full storage stack of one database instance: the I/O ledger,
/// the main and temporary page stores, their buffer pools and the catalog.
///
/// Typical setup:
///
///     Database db;                       // in-memory, default sizes
///     Table* sales = db.catalog()->CreateTable(
///         "sales", SalesSchema(), TableBacking::kHeap).value();
///
/// File-backed databases survive restarts:
///
///     auto db = Database::Open({.file_path = "sales.db"}).value();
///     // ... create tables, insert, mine ...
///     // destructor checkpoints; a later Open() sees the same catalog
class Database {
 public:
  /// Unchecked construction: aborts the process if setup fails (only
  /// possible for file-backed databases — creation failure, or an existing
  /// file that is corrupt or of a foreign format). Production call sites
  /// with a file_path should use Open() and handle the Status.
  explicit Database(DatabaseOptions options = {});

  /// Checked construction. For file-backed options this creates a fresh
  /// database file (with superblock) or validates and reopens an existing
  /// one; all failures — unreachable path, bad magic, unsupported format
  /// version, truncated file, corrupt manifest — come back as a Status and
  /// never reinitialize or modify the file.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return catalog_.get(); }
  BufferPool* pool() { return pool_.get(); }
  BufferPool* temp_pool() { return temp_pool_.get(); }
  /// Shared worker pool, or null when options.worker_threads == 0.
  WorkerPool* worker_pool() { return workers_.get(); }
  const DatabaseOptions& options() const { return options_; }

  /// True when this database persists to a file (and checkpoints apply).
  bool persistent() const { return persistent_; }

  /// Serializes the live catalog into the manifest chain, updates the
  /// superblock and flushes every dirty page — after a successful return
  /// the file on disk is a complete, reopenable image of the database.
  /// Invoked automatically after each DDL and from the destructor; callers
  /// may invoke it explicitly to bound data loss between DDLs (inserts do
  /// not checkpoint on their own). No-op for in-memory databases.
  Status Checkpoint();

  /// Checkpoints written so far (diagnostics; 0 for in-memory databases).
  uint64_t checkpoint_count() const { return superblock_.checkpoint_seq; }

  /// The cumulative I/O ledger for all page traffic (base + temp).
  IoStats* io_stats() { return &stats_; }
  const IoStats& io_stats() const { return stats_; }

 private:
  struct UncheckedTag {};
  explicit Database(UncheckedTag);  // defined out of line: members need
                                    // complete types for their destructors

  /// Builds the whole stack; called exactly once, from either constructor
  /// path. Failure leaves the object unusable (Open() discards it).
  Status Init(DatabaseOptions options);
  /// First-open path: reserves page 0, writes the superblock and an empty
  /// manifest.
  Status InitializeFreshFile();
  /// Reopen path: validates the superblock, reads the manifest and rebuilds
  /// the catalog with every table re-attached.
  Status LoadPersistentState();

  DatabaseOptions options_;
  IoStats stats_;
  std::unique_ptr<StorageBackend> backend_;
  std::unique_ptr<StorageBackend> temp_backend_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BufferPool> temp_pool_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<WorkerPool> workers_;
  bool persistent_ = false;
  Superblock superblock_;
  /// The two manifest chains, alternated copy-on-write: `manifest_pages_`
  /// is the live chain the on-disk superblock references and is never
  /// rewritten in place; each checkpoint writes into the retired
  /// `spare_manifest_pages_` (allocating on the first round), flips the
  /// superblock to it, then swaps the roles. A crash anywhere inside a
  /// checkpoint therefore leaves the previous catalog image intact.
  std::vector<PageId> manifest_pages_;
  std::vector<PageId> spare_manifest_pages_;
};

}  // namespace setm

#endif  // SETM_RELATIONAL_DATABASE_H_

#ifndef SETM_RELATIONAL_TUPLE_H_
#define SETM_RELATIONAL_TUPLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace setm {

/// A row: an ordered vector of Values conforming to some Schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t NumValues() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  Value& value(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Serialized byte size under the given schema (strings add a 2-byte
  /// length prefix).
  size_t SerializedSize(const Schema& schema) const;

  /// Appends the row's serialized form to `*out` in the engine's record
  /// format: INT32 little-endian 4 bytes, INT64/DOUBLE 8 bytes, STRING
  /// u16 length + bytes. The schema supplies the per-column types.
  void SerializeTo(const Schema& schema, std::string* out) const;

  /// Parses a record serialized by SerializeTo. Fails with Corruption on
  /// truncated input.
  static Result<Tuple> Deserialize(const Schema& schema,
                                   std::string_view record);

  /// "(v1, v2, ...)" rendering.
  std::string ToString() const;

  bool operator==(const Tuple& o) const;

 private:
  std::vector<Value> values_;
};

/// Orders tuples by the given column positions (lexicographic over keys,
/// each ascending). Used by sorts, merge joins and group-by boundaries.
class TupleComparator {
 public:
  explicit TupleComparator(std::vector<size_t> key_columns)
      : keys_(std::move(key_columns)) {}

  /// Three-way comparison on the key columns.
  int Compare(const Tuple& a, const Tuple& b) const {
    for (size_t k : keys_) {
      int c = a.value(k).Compare(b.value(k));
      if (c != 0) return c;
    }
    return 0;
  }

  /// Strict-weak-ordering functor for std::sort.
  bool operator()(const Tuple& a, const Tuple& b) const {
    return Compare(a, b) < 0;
  }

  const std::vector<size_t>& keys() const { return keys_; }

 private:
  std::vector<size_t> keys_;
};

/// Pull-based (Volcano-style) row stream shared by tables and operators.
class TupleIterator {
 public:
  virtual ~TupleIterator() = default;

  /// Produces the next row into `*out`. Returns true while rows remain,
  /// false at end of stream, or an error Status.
  virtual Result<bool> Next(Tuple* out) = 0;

  /// Schema of the produced rows.
  virtual const Schema& schema() const = 0;
};

}  // namespace setm

#endif  // SETM_RELATIONAL_TUPLE_H_

#include "relational/table.h"

#include "common/logging.h"

namespace setm {

namespace {

/// Iterator over a row vector (copies rows out; the table may not mutate
/// during iteration).
class MemTableIterator : public TupleIterator {
 public:
  MemTableIterator(const std::vector<Tuple>* rows, const Schema* schema)
      : rows_(rows), schema_(schema) {}

  Result<bool> Next(Tuple* out) override {
    if (pos_ >= rows_->size()) return false;
    *out = (*rows_)[pos_++];
    return true;
  }

  const Schema& schema() const override { return *schema_; }

 private:
  const std::vector<Tuple>* rows_;
  const Schema* schema_;
  size_t pos_ = 0;
};

/// Iterator decoding heap records back into tuples.
class HeapTableIterator : public TupleIterator {
 public:
  HeapTableIterator(TableHeap::Iterator it, const Schema* schema)
      : it_(std::move(it)), schema_(schema) {}

  Result<bool> Next(Tuple* out) override {
    if (!it_.Valid()) return false;
    auto tuple_or = Tuple::Deserialize(*schema_, it_.record());
    if (!tuple_or.ok()) return tuple_or.status();
    *out = std::move(tuple_or).value();
    SETM_RETURN_IF_ERROR(it_.Next());
    return true;
  }

  const Schema& schema() const override { return *schema_; }

 private:
  TableHeap::Iterator it_;
  const Schema* schema_;
};

}  // namespace

// ---------------------------------------------------------------------------
// MemTable
// ---------------------------------------------------------------------------

Status MemTable::Insert(const Tuple& tuple) {
  SETM_RETURN_IF_ERROR(CheckArity(tuple));
  size_bytes_ += tuple.SerializedSize(schema());
  rows_.push_back(tuple);
  return Status::OK();
}

std::unique_ptr<TupleIterator> MemTable::Scan() const {
  return std::make_unique<MemTableIterator>(&rows_, &schema());
}

// ---------------------------------------------------------------------------
// HeapTable
// ---------------------------------------------------------------------------

Result<std::unique_ptr<HeapTable>> HeapTable::Create(
    std::string name, Schema schema, BufferPool* pool,
    TableHeap::PageHook page_hook) {
  auto heap_or = TableHeap::Create(pool, page_hook);
  if (!heap_or.ok()) return heap_or.status();
  return std::unique_ptr<HeapTable>(
      new HeapTable(std::move(name), std::move(schema), pool,
                    std::move(heap_or).value(), std::move(page_hook)));
}

Result<std::unique_ptr<HeapTable>> HeapTable::Open(std::string name,
                                                   Schema schema,
                                                   BufferPool* pool,
                                                   PageId first_page,
                                                   uint64_t expected_rows) {
  auto heap_or = TableHeap::Open(pool, first_page);
  if (!heap_or.ok()) return heap_or.status();
  const uint64_t walked = heap_or.value().live_records();
  if (walked < expected_rows) {
    return Status::Corruption(
        "table '" + name + "': catalog manifest records " +
        std::to_string(expected_rows) + " rows but the heap chain holds " +
        std::to_string(walked));
  }
  if (walked > expected_rows) {
    // Rows appended after the last checkpoint whose dirty pages reached
    // the file before an unclean exit. They are complete records; keep
    // them rather than refusing to open what a crash left behind.
    SETM_LOG(kInfo) << "table '" << name << "': heap chain holds " << walked
                    << " rows, " << walked - expected_rows
                    << " more than the last checkpoint recorded "
                       "(un-checkpointed appends before an unclean exit)";
  }
  return std::unique_ptr<HeapTable>(new HeapTable(
      std::move(name), std::move(schema), pool, std::move(heap_or).value()));
}

Status HeapTable::Insert(const Tuple& tuple) {
  SETM_RETURN_IF_ERROR(CheckArity(tuple));
  scratch_.clear();
  tuple.SerializeTo(schema(), &scratch_);
  auto rid_or = heap_.Insert(scratch_);
  if (!rid_or.ok()) return rid_or.status();
  return Status::OK();
}

std::unique_ptr<TupleIterator> HeapTable::Scan() const {
  return std::make_unique<HeapTableIterator>(heap_.Begin(), &schema());
}

Status HeapTable::Truncate() {
  // Start a fresh chain; old pages are abandoned (no free-list in this
  // engine — acceptable for mining workloads that drop whole relations).
  auto heap_or = TableHeap::Create(pool_, page_hook_);
  if (!heap_or.ok()) return heap_or.status();
  heap_ = std::move(heap_or).value();
  return Status::OK();
}

}  // namespace setm

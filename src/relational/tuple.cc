#include "relational/tuple.h"

#include <cstring>

namespace setm {

namespace {
template <typename T>
void AppendRaw(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view* in, T* out) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(out, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}
}  // namespace

size_t Tuple::SerializedSize(const Schema& schema) const {
  size_t total = 0;
  for (size_t i = 0; i < values_.size(); ++i) {
    switch (schema.column(i).type) {
      case ValueType::kInt32:
        total += 4;
        break;
      case ValueType::kInt64:
      case ValueType::kDouble:
        total += 8;
        break;
      case ValueType::kString:
        total += 2 + values_[i].AsString().size();
        break;
    }
  }
  return total;
}

void Tuple::SerializeTo(const Schema& schema, std::string* out) const {
  SETM_DCHECK(values_.size() == schema.NumColumns());
  for (size_t i = 0; i < values_.size(); ++i) {
    const Value& v = values_[i];
    switch (schema.column(i).type) {
      case ValueType::kInt32:
        AppendRaw<int32_t>(out, v.AsInt32());
        break;
      case ValueType::kInt64:
        AppendRaw<int64_t>(out, v.AsInt64());
        break;
      case ValueType::kDouble:
        AppendRaw<double>(out, v.AsDouble());
        break;
      case ValueType::kString: {
        const std::string& s = v.AsString();
        SETM_DCHECK(s.size() <= 0xFFFF);
        AppendRaw<uint16_t>(out, static_cast<uint16_t>(s.size()));
        out->append(s);
        break;
      }
    }
  }
}

Result<Tuple> Tuple::Deserialize(const Schema& schema,
                                 std::string_view record) {
  std::vector<Value> values;
  values.reserve(schema.NumColumns());
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    switch (schema.column(i).type) {
      case ValueType::kInt32: {
        int32_t v;
        if (!ReadRaw(&record, &v)) {
          return Status::Corruption("truncated INT32 column");
        }
        values.push_back(Value::Int32(v));
        break;
      }
      case ValueType::kInt64: {
        int64_t v;
        if (!ReadRaw(&record, &v)) {
          return Status::Corruption("truncated INT64 column");
        }
        values.push_back(Value::Int64(v));
        break;
      }
      case ValueType::kDouble: {
        double v;
        if (!ReadRaw(&record, &v)) {
          return Status::Corruption("truncated DOUBLE column");
        }
        values.push_back(Value::Double(v));
        break;
      }
      case ValueType::kString: {
        uint16_t len;
        if (!ReadRaw(&record, &len) || record.size() < len) {
          return Status::Corruption("truncated STRING column");
        }
        values.push_back(Value::String(std::string(record.substr(0, len))));
        record.remove_prefix(len);
        break;
      }
    }
  }
  if (!record.empty()) {
    return Status::Corruption("trailing bytes after last column");
  }
  return Tuple(std::move(values));
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ')';
  return out;
}

bool Tuple::operator==(const Tuple& o) const {
  if (values_.size() != o.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != o.values_[i]) return false;
  }
  return true;
}

}  // namespace setm

#include "relational/schema.h"

#include <cctype>

namespace setm {

bool IdentEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string IdentFold(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (IdentEquals(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::optional<size_t> Schema::FixedTupleSize() const {
  size_t total = 0;
  for (const Column& c : columns_) {
    switch (c.type) {
      case ValueType::kInt32:
        total += 4;
        break;
      case ValueType::kInt64:
      case ValueType::kDouble:
        total += 8;
        break;
      case ValueType::kString:
        return std::nullopt;
    }
  }
  return total;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += ValueTypeName(columns_[i].type);
  }
  out += ')';
  return out;
}

}  // namespace setm

#ifndef SETM_RELATIONAL_CATALOG_H_
#define SETM_RELATIONAL_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace setm {

/// Where a newly created table stores its rows.
enum class TableBacking {
  kMemory,  ///< MemTable
  kHeap,    ///< HeapTable behind the database buffer pool
};

/// Name -> table map. Names are case-insensitive (folded to lower case).
class Catalog {
 public:
  /// `pool` backs heap tables; may be null if only memory tables are used.
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  /// Creates a table; AlreadyExists if the name is taken.
  Result<Table*> CreateTable(const std::string& name, Schema schema,
                             TableBacking backing);

  /// Looks a table up; NotFound if absent.
  Result<Table*> GetTable(const std::string& name) const;

  /// True iff a table with this name exists.
  bool HasTable(const std::string& name) const;

  /// Drops a table; NotFound if absent.
  Status DropTable(const std::string& name);

  /// All table names in creation order.
  std::vector<std::string> TableNames() const;

 private:
  BufferPool* pool_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> creation_order_;
};

}  // namespace setm

#endif  // SETM_RELATIONAL_CATALOG_H_

#ifndef SETM_RELATIONAL_CATALOG_H_
#define SETM_RELATIONAL_CATALOG_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace setm {

/// Where a newly created table stores its rows.
enum class TableBacking {
  kMemory,  ///< MemTable
  kHeap,    ///< HeapTable behind the database buffer pool
};

/// Name -> table map. Names are case-insensitive (folded to lower case).
///
/// In file-backed databases the owning Database installs a checkpoint hook
/// (SetCheckpointHook) that rewrites the on-disk catalog manifest after
/// every successful DDL operation, so CreateTable/DropTable are durable as
/// soon as they return. In-memory databases run hook-free.
class Catalog {
 public:
  /// `pool` backs heap tables; may be null if only memory tables are used.
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  /// Creates a table; AlreadyExists if the name is taken. When a checkpoint
  /// hook is installed, a hook failure is returned as the call's status —
  /// the in-memory table still exists (the next successful checkpoint will
  /// pick it up), but callers learn persistence lagged.
  ///
  /// `unlogged` tables skip the write-ahead log (their heap pages are
  /// tagged through the unlogged-page hook) and reopen empty after a
  /// restart — the right trade for SETM's dropped intermediate relations.
  Result<Table*> CreateTable(const std::string& name, Schema schema,
                             TableBacking backing, bool unlogged = false);

  /// Looks a table up; NotFound if absent.
  Result<Table*> GetTable(const std::string& name) const;

  /// GetTable with an operator-friendly error: the NotFound message names
  /// the tables that DO exist ("no table 'sale'; available: sales, runs").
  /// The shared lookup path of every user-supplied table name — the server's
  /// MINE/APPEND/LCOUNT handlers, the CLI tools and the shard backends —
  /// so a typo gets the same actionable answer everywhere.
  Result<Table*> ResolveTable(const std::string& name) const;

  /// True iff a table with this name exists.
  bool HasTable(const std::string& name) const;

  /// Drops a table; NotFound if absent. Hook failures surface as with
  /// CreateTable.
  Status DropTable(const std::string& name);

  /// All table names in creation order.
  std::vector<std::string> TableNames() const;

  /// Registers an already-constructed table without invoking the checkpoint
  /// hook — the path Database::Open uses while rebuilding the catalog from
  /// a manifest (checkpointing mid-rebuild would write a half-loaded
  /// catalog over a complete one). The table's name() must already be
  /// identifier-folded.
  Status AttachTable(std::unique_ptr<Table> table);

  /// Installs (or clears, with nullptr) the post-DDL checkpoint hook.
  void SetCheckpointHook(std::function<Status()> hook) {
    checkpoint_hook_ = std::move(hook);
  }

  /// Installs (or clears) the tagger invoked for every page an *unlogged*
  /// heap table's chain acquires — the database points it at the WAL
  /// backend's bypass set. Without a hook (in-memory databases) the
  /// unlogged attribute is recorded but has no physical effect.
  void SetUnloggedPageHook(std::function<void(PageId)> hook) {
    unlogged_page_hook_ = std::move(hook);
  }

  /// Installs (or clears) the sink for pages a dropped heap table used to
  /// own. DropTable hands the whole chain over *before* the post-DDL
  /// checkpoint, so the checkpoint that makes the drop durable also records
  /// the reclaimed pages in its free list.
  void SetFreePagesHook(std::function<void(std::vector<PageId>)> hook) {
    free_pages_hook_ = std::move(hook);
  }

  /// Defers hook invocations: while the depth is non-zero, DDL records that
  /// a checkpoint is owed instead of running one. End runs the single owed
  /// checkpoint once the depth returns to zero. Used (via
  /// ScopedCheckpointDeferral) by multi-statement operations like
  /// ItemsetStore::Save, so K+1 table creations cost one checkpoint — and,
  /// more importantly, so no intermediate catalog state (a meta table
  /// without its row yet) ever becomes the durable image.
  void BeginCheckpointDeferral() { ++checkpoint_defer_depth_; }
  Status EndCheckpointDeferral();

 private:
  /// Runs the hook after a successful DDL mutation, or records it as owed
  /// while a deferral is active.
  Status CheckpointAfterDdl();

  BufferPool* pool_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> creation_order_;
  std::function<Status()> checkpoint_hook_;
  std::function<void(PageId)> unlogged_page_hook_;
  std::function<void(std::vector<PageId>)> free_pages_hook_;
  size_t checkpoint_defer_depth_ = 0;
  bool checkpoint_pending_ = false;
};

/// RAII wrapper for the catalog's checkpoint deferral. Call Commit() on the
/// success path to run (and check) the owed checkpoint; if the scope exits
/// early the destructor releases the deferral and runs the owed checkpoint
/// best-effort (its Status can only be logged there — the catalog stays
/// consistent in memory and the next checkpoint retries).
class ScopedCheckpointDeferral {
 public:
  explicit ScopedCheckpointDeferral(Catalog* catalog) : catalog_(catalog) {
    catalog_->BeginCheckpointDeferral();
  }
  ~ScopedCheckpointDeferral();

  ScopedCheckpointDeferral(const ScopedCheckpointDeferral&) = delete;
  ScopedCheckpointDeferral& operator=(const ScopedCheckpointDeferral&) =
      delete;

  /// Ends the deferral, running any owed checkpoint.
  Status Commit();

 private:
  Catalog* catalog_;
  bool done_ = false;
};

}  // namespace setm

#endif  // SETM_RELATIONAL_CATALOG_H_

#ifndef SETM_RELATIONAL_SCHEMA_H_
#define SETM_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace setm {

/// One column of a schema.
struct Column {
  std::string name;
  ValueType type;

  bool operator==(const Column& o) const {
    return name == o.name && type == o.type;
  }
};

/// An ordered list of named, typed columns.
///
/// Column names are matched case-insensitively (SQL identifiers are folded
/// to lower case by the parser); lookups by bare name or "alias.name".
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  /// Number of columns.
  size_t NumColumns() const { return columns_.size(); }

  /// Column metadata by position.
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column whose name equals `name` (case-insensitive),
  /// or nullopt. If several match (self-join output), returns the first.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Appends a column (used when deriving join/aggregate output schemas).
  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Fixed serialized size of a tuple if all columns are fixed-width
  /// (no strings), else nullopt. Drives the page-size arithmetic used in
  /// relation-size reporting: INT32 -> 4 bytes, INT64/DOUBLE -> 8 bytes,
  /// matching the paper's "(i + 1) x 4 bytes" tuple sizes for R_i.
  std::optional<size_t> FixedTupleSize() const;

  /// "(name TYPE, ...)" rendering for error messages.
  std::string ToString() const;

  bool operator==(const Schema& o) const { return columns_ == o.columns_; }

 private:
  std::vector<Column> columns_;
};

/// Case-insensitive ASCII string equality, the comparison used for all
/// SQL identifiers in the engine.
bool IdentEquals(const std::string& a, const std::string& b);

/// Lower-cases ASCII letters in place; identifiers are stored folded.
std::string IdentFold(std::string s);

}  // namespace setm

#endif  // SETM_RELATIONAL_SCHEMA_H_

#include "datagen/retail_generator.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace setm {

RetailGenerator::RetailGenerator(RetailOptions options) : options_(options) {
  SETM_CHECK(options_.num_core_items >= 1);
}

TransactionDb RetailGenerator::Generate() {
  const RetailOptions& o = options_;
  Rng rng(o.seed);
  ZipfSampler core_zipf(o.num_core_items, o.core_zipf_s);

  // Planted groups. Triples take mid-popularity core ranks so their joint
  // support (~6.5%) dominates their members' independent co-occurrence;
  // pairs take the next ranks. Groups never share items.
  std::vector<std::vector<ItemId>> triples;
  std::vector<std::vector<ItemId>> pairs;
  {
    ItemId next = static_cast<ItemId>(std::min<uint32_t>(20, o.num_core_items / 3));
    for (uint32_t g = 0; g < o.num_triples; ++g) {
      triples.push_back({next, static_cast<ItemId>(next + 1),
                         static_cast<ItemId>(next + 2)});
      next = static_cast<ItemId>(next + 3);
    }
    for (uint32_t g = 0; g < o.num_pairs; ++g) {
      pairs.push_back({next, static_cast<ItemId>(next + 1)});
      next = static_cast<ItemId>(next + 2);
    }
  }

  // Branch probabilities and the base basket size, solved so the expected
  // tuple count matches avg_basket (see header).
  const double p_triple = o.num_triples * o.triple_prob;
  const double p_pair = o.num_pairs * o.pair_prob;
  const double p_base = std::max(0.05, 1.0 - p_triple - p_pair);
  const double lambda_pair = 0.6;
  const double tail_in_triple = 0.3;
  double lambda_base =
      (o.avg_basket - p_triple * (3.0 + tail_in_triple) -
       p_pair * (2.0 + lambda_pair)) /
          p_base -
      1.0;
  lambda_base = std::max(0.2, lambda_base);

  auto draw_core = [&]() -> ItemId {
    return static_cast<ItemId>(core_zipf.Sample(&rng));
  };
  auto draw_tail = [&]() -> ItemId {
    return static_cast<ItemId>(o.num_core_items + rng.Uniform(std::max<uint32_t>(
                                                      o.num_tail_items, 1)));
  };
  auto draw_any = [&]() -> ItemId {
    return (o.num_tail_items > 0 && rng.Bernoulli(o.tail_fraction))
               ? draw_tail()
               : draw_core();
  };

  TransactionDb db;
  db.reserve(o.num_transactions);
  for (uint32_t t = 0; t < o.num_transactions; ++t) {
    std::set<ItemId> items;
    const double branch = rng.NextDouble();
    if (branch < p_triple && !triples.empty()) {
      // A planted triple; any extra item comes from the rare tail only, so
      // no 4-itemset ever reaches the 0.1% support floor (C4 stays empty).
      const auto& g = triples[rng.Uniform(triples.size())];
      items.insert(g.begin(), g.end());
      if (o.num_tail_items > 0 && rng.Bernoulli(tail_in_triple)) {
        items.insert(draw_tail());
      }
    } else if (branch < p_triple + p_pair && !pairs.empty()) {
      const auto& g = pairs[rng.Uniform(pairs.size())];
      items.insert(g.begin(), g.end());
      const uint32_t extras = rng.Poisson(lambda_pair);
      for (uint32_t i = 0; i < extras; ++i) items.insert(draw_any());
    } else {
      uint32_t size = 1 + rng.Poisson(lambda_base);
      size = std::min<uint32_t>(size, 8);
      size_t guard = 0;
      while (items.size() < size && guard++ < 64) items.insert(draw_any());
    }
    if (items.empty()) items.insert(draw_core());
    Transaction txn;
    txn.id = static_cast<TransactionId>(t + 1);
    txn.items.assign(items.begin(), items.end());
    db.push_back(std::move(txn));
  }
  return db;
}

uint64_t CountSalesTuples(const TransactionDb& db) {
  uint64_t total = 0;
  for (const Transaction& t : db) total += t.items.size();
  return total;
}

}  // namespace setm

#ifndef SETM_DATAGEN_TRANSACTION_IO_H_
#define SETM_DATAGEN_TRANSACTION_IO_H_

#include <string>

#include "common/result.h"
#include "core/types.h"

namespace setm {

/// Writes the database as CSV with a "trans_id,item" header — the layout of
/// the SALES relation, one tuple per line.
Status SaveTransactionsCsv(const std::string& path, const TransactionDb& db);

/// Reads a CSV produced by SaveTransactionsCsv (or any two-column integer
/// CSV, header optional). Rows may arrive in any order; items are grouped
/// by trans_id, sorted and deduplicated.
Result<TransactionDb> LoadTransactionsCsv(const std::string& path);

/// Compact binary form: u32 transaction count, then per transaction
/// (i32 id, u32 n, i32 items[n]). Little-endian, for fast bench reloads.
Status SaveTransactionsBinary(const std::string& path,
                              const TransactionDb& db);
Result<TransactionDb> LoadTransactionsBinary(const std::string& path);

}  // namespace setm

#endif  // SETM_DATAGEN_TRANSACTION_IO_H_

#ifndef SETM_DATAGEN_QUEST_GENERATOR_H_
#define SETM_DATAGEN_QUEST_GENERATOR_H_

#include "common/random.h"
#include "core/types.h"

namespace setm {

/// Parameters of the synthetic basket generator, after the IBM Quest
/// generator of Agrawal & Srikant (the de-facto standard for association-
/// rule benchmarks, e.g. T10.I4.D100K).
struct QuestOptions {
  uint32_t num_transactions = 10000;  ///< |D|
  double avg_transaction_size = 10;   ///< |T| (Poisson mean)
  uint32_t num_items = 1000;          ///< N
  uint32_t num_patterns = 200;        ///< |L|: potentially frequent itemsets
  double avg_pattern_size = 4;        ///< |I| (Poisson mean, min 1)
  double correlation = 0.5;   ///< fraction of a pattern reused from its
                              ///< predecessor
  double corruption = 0.5;    ///< mean per-pattern corruption level: each
                              ///< planted instance drops items with this
                              ///< probability
  uint64_t seed = 42;
};

/// Generates a transaction database in the Quest style: a pool of weighted
/// "potentially frequent" patterns is planted into transactions whose sizes
/// are Poisson-distributed; pattern instances are corrupted (items dropped)
/// to soften their support. Deterministic for a fixed options struct.
class QuestGenerator {
 public:
  explicit QuestGenerator(QuestOptions options = {});

  /// Generates the full database. Transaction ids are 1..N; items within a
  /// transaction are sorted and unique.
  TransactionDb Generate();

  const QuestOptions& options() const { return options_; }

 private:
  QuestOptions options_;
};

/// Convenience: the classic "T<avg>.I<pat>.D<count>" dataset name.
std::string QuestDatasetName(const QuestOptions& options);

}  // namespace setm

#endif  // SETM_DATAGEN_QUEST_GENERATOR_H_

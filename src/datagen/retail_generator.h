#ifndef SETM_DATAGEN_RETAIL_GENERATOR_H_
#define SETM_DATAGEN_RETAIL_GENERATOR_H_

#include "common/random.h"
#include "core/types.h"

namespace setm {

/// Generator calibrated to the published statistics of the paper's retail
/// data set (Section 6), which itself is proprietary (it came from [4]):
///
///   * 46,873 customer transactions,
///   * |R1| = 115,568 SALES tuples (average basket ~2.47 items),
///   * |C1| = 59 frequent items at 0.1% minimum support,
///   * maximum frequent pattern length 3 (C4 empty, R4 empty),
///   * |C_i| bumps above |C1| at small minimum support before falling.
///
/// Construction: 59 "core" items with truncated-Zipf popularity, a tail of
/// rare items (never frequent), and a few planted correlated groups —
/// triples with joint support above 5% so C3 stays non-empty across the
/// paper's whole minsup sweep (0.1%..5%), plus planted pairs that enrich
/// C2 at small thresholds. One paper statement cannot be satisfied
/// simultaneously with |R1|: all 59 items frequent at 5% would need an
/// average basket >= 2.95 > 2.47; the calibration note in EXPERIMENTS.md
/// quantifies the deviation.
struct RetailOptions {
  uint32_t num_transactions = 46873;
  uint32_t num_core_items = 59;
  uint32_t num_tail_items = 941;   ///< never-frequent long tail
  double avg_basket = 2.4657;      ///< targets |R1| = 115,568
  double core_zipf_s = 0.85;       ///< popularity skew of the core items
  double tail_fraction = 0.04;     ///< share of independent draws from tail
  uint32_t num_triples = 2;        ///< planted 3-item groups
  double triple_prob = 0.065;      ///< per-transaction plant probability
  uint32_t num_pairs = 5;          ///< planted 2-item groups
  double pair_prob = 0.045;
  uint64_t seed = 1995;            ///< vintage
};

class RetailGenerator {
 public:
  explicit RetailGenerator(RetailOptions options = {});

  /// Generates the calibrated database (ids 1..N, sorted unique items).
  TransactionDb Generate();

  const RetailOptions& options() const { return options_; }

 private:
  RetailOptions options_;
};

/// Total number of (trans_id, item) tuples, i.e. |R1| for this database.
uint64_t CountSalesTuples(const TransactionDb& db);

}  // namespace setm

#endif  // SETM_DATAGEN_RETAIL_GENERATOR_H_

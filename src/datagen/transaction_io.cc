#include "datagen/transaction_io.h"

#include <algorithm>
#include <cstdio>
#include <cctype>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

namespace setm {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

Status SaveTransactionsCsv(const std::string& path, const TransactionDb& db) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  if (std::fputs("trans_id,item\n", f.get()) < 0) {
    return Status::IOError("write failed on " + path);
  }
  for (const Transaction& t : db) {
    for (ItemId item : t.items) {
      if (std::fprintf(f.get(), "%d,%d\n", t.id, item) < 0) {
        return Status::IOError("write failed on " + path);
      }
    }
  }
  return Status::OK();
}

Result<TransactionDb> LoadTransactionsCsv(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IOError("cannot open " + path + " for reading");
  std::map<TransactionId, std::vector<ItemId>> grouped;
  char line[256];
  size_t lineno = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++lineno;
    // Skip a header line and blank lines.
    if (lineno == 1 && std::strchr(line, ',') != nullptr &&
        !std::isdigit(static_cast<unsigned char>(line[0]))) {
      continue;
    }
    if (line[0] == '\n' || line[0] == '\0') continue;
    long tid, item;
    if (std::sscanf(line, "%ld,%ld", &tid, &item) != 2) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'trans_id,item'");
    }
    grouped[static_cast<TransactionId>(tid)].push_back(
        static_cast<ItemId>(item));
  }
  TransactionDb db;
  db.reserve(grouped.size());
  for (auto& [tid, items] : grouped) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    db.push_back(Transaction{tid, std::move(items)});
  }
  return db;
}

Status SaveTransactionsBinary(const std::string& path,
                              const TransactionDb& db) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const uint32_t n = static_cast<uint32_t>(db.size());
  if (std::fwrite(&n, sizeof(n), 1, f.get()) != 1) {
    return Status::IOError("write failed on " + path);
  }
  for (const Transaction& t : db) {
    const int32_t id = t.id;
    const uint32_t len = static_cast<uint32_t>(t.items.size());
    if (std::fwrite(&id, sizeof(id), 1, f.get()) != 1 ||
        std::fwrite(&len, sizeof(len), 1, f.get()) != 1) {
      return Status::IOError("write failed on " + path);
    }
    if (len > 0 &&
        std::fwrite(t.items.data(), sizeof(ItemId), len, f.get()) != len) {
      return Status::IOError("write failed on " + path);
    }
  }
  return Status::OK();
}

Result<TransactionDb> LoadTransactionsBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path + " for reading");
  uint32_t n;
  if (std::fread(&n, sizeof(n), 1, f.get()) != 1) {
    return Status::Corruption(path + ": truncated header");
  }
  TransactionDb db;
  db.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int32_t id;
    uint32_t len;
    if (std::fread(&id, sizeof(id), 1, f.get()) != 1 ||
        std::fread(&len, sizeof(len), 1, f.get()) != 1) {
      return Status::Corruption(path + ": truncated transaction header");
    }
    Transaction t;
    t.id = id;
    t.items.resize(len);
    if (len > 0 &&
        std::fread(t.items.data(), sizeof(ItemId), len, f.get()) != len) {
      return Status::Corruption(path + ": truncated item list");
    }
    db.push_back(std::move(t));
  }
  return db;
}

}  // namespace setm

#include "datagen/quest_generator.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace setm {

QuestGenerator::QuestGenerator(QuestOptions options) : options_(options) {}

TransactionDb QuestGenerator::Generate() {
  Rng rng(options_.seed);
  const uint32_t n_items = std::max<uint32_t>(options_.num_items, 1);

  // --- Build the pool of potentially frequent patterns. -------------------
  std::vector<std::vector<ItemId>> patterns;
  std::vector<double> corruption_level;
  std::vector<double> cumulative_weight;
  patterns.reserve(options_.num_patterns);
  double weight_sum = 0.0;
  std::vector<ItemId> prev;
  for (uint32_t p = 0; p < options_.num_patterns; ++p) {
    uint32_t len = std::max<uint32_t>(1, rng.Poisson(options_.avg_pattern_size));
    len = std::min(len, n_items);
    std::set<ItemId> items;
    // Reuse a prefix of the previous pattern (correlation), as in Quest.
    if (!prev.empty() && options_.correlation > 0.0) {
      const auto reuse = static_cast<size_t>(options_.correlation *
                                             static_cast<double>(len));
      for (size_t i = 0; i < reuse && i < prev.size(); ++i) {
        if (rng.Bernoulli(0.5)) items.insert(prev[i]);
      }
    }
    while (items.size() < len) {
      items.insert(static_cast<ItemId>(rng.Uniform(n_items)));
    }
    prev.assign(items.begin(), items.end());
    patterns.push_back(prev);
    // Corruption level per pattern: clipped normal around the mean, as in
    // the Quest description; approximated with an exponential clip.
    double level = options_.corruption <= 0.0
                       ? 0.0
                       : std::min(0.95, rng.Exponential(options_.corruption));
    corruption_level.push_back(level);
    const double w = rng.Exponential(1.0);
    weight_sum += w;
    cumulative_weight.push_back(weight_sum);
  }

  auto pick_pattern = [&]() -> size_t {
    if (patterns.empty()) return 0;
    const double x = rng.NextDouble() * weight_sum;
    return static_cast<size_t>(
        std::lower_bound(cumulative_weight.begin(), cumulative_weight.end(),
                         x) -
        cumulative_weight.begin());
  };

  // --- Emit transactions. --------------------------------------------------
  TransactionDb db;
  db.reserve(options_.num_transactions);
  for (uint32_t t = 0; t < options_.num_transactions; ++t) {
    const uint32_t size =
        std::max<uint32_t>(1, rng.Poisson(options_.avg_transaction_size));
    std::set<ItemId> items;
    size_t guard = 0;
    while (items.size() < size && guard++ < 64) {
      if (patterns.empty()) {
        items.insert(static_cast<ItemId>(rng.Uniform(n_items)));
        continue;
      }
      const size_t p = pick_pattern();
      // Corrupt the instance: drop each item with the pattern's level.
      bool added = false;
      for (ItemId item : patterns[p]) {
        if (!rng.Bernoulli(corruption_level[p])) {
          items.insert(item);
          added = true;
          if (items.size() >= size &&
              rng.Bernoulli(0.5)) {  // half the time, stop at the brim
            break;
          }
        }
      }
      if (!added) items.insert(patterns[p].front());
    }
    Transaction txn;
    txn.id = static_cast<TransactionId>(t + 1);
    txn.items.assign(items.begin(), items.end());
    db.push_back(std::move(txn));
  }
  return db;
}

std::string QuestDatasetName(const QuestOptions& options) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "T%.0f.I%.0f.D%uK",
                options.avg_transaction_size, options.avg_pattern_size,
                options.num_transactions / 1000);
  return buf;
}

}  // namespace setm

#ifndef SETM_EXEC_WORKER_POOL_H_
#define SETM_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace setm {

/// A fixed set of worker threads draining a FIFO task queue — the shared
/// execution resource behind the parallel partitioned miner and parallel
/// sort-run generation. Tasks are plain closures; completion tracking and
/// error collection live in TaskGroup so independent clients can share one
/// pool without observing each other's tasks.
///
///     WorkerPool pool(4);
///     TaskGroup group(&pool);
///     for (auto& part : partitions)
///       group.Submit([&part] { return Process(&part); });
///     SETM_RETURN_IF_ERROR(group.Wait());
class WorkerPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit WorkerPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues one task. Never blocks; tasks run in FIFO order across the
  /// workers. Do not Submit from inside a task and then block the task on
  /// its completion — with every worker blocked the queue cannot drain.
  void Submit(std::function<void()> task);

  /// Number of worker threads.
  size_t num_threads() const { return threads_.size(); }

 private:
  /// A queued task remembers when it was submitted so the worker that
  /// dequeues it can report the queue wait.
  struct QueuedTask {
    std::function<void()> fn;
    WallTimer enqueued;
  };

  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;

  // Process-wide series shared by all pools (resolved at construction):
  // live queue depth plus queue-wait and run-time distributions.
  obs::Gauge* metric_queue_depth_;
  obs::Histogram* metric_queue_wait_micros_;
  obs::Histogram* metric_task_micros_;
};

/// Tracks completion of one batch of Status-returning tasks on a WorkerPool.
/// Wait() blocks until every task submitted through this group finished and
/// returns the first non-OK status (submission order is not guaranteed to
/// pick "the first" failure deterministically, any failure is reported).
/// With a null pool the group degrades to inline execution — callers write
/// one code path and the serial case stays thread-free.
class TaskGroup {
 public:
  /// `pool` may be null (tasks then run inline inside Submit).
  explicit TaskGroup(WorkerPool* pool) : pool_(pool) {}

  /// Groups must be drained before destruction.
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `task`; its Status is collected for Wait().
  void Submit(std::function<Status()> task);

  /// Blocks until all submitted tasks completed; returns the recorded error
  /// (OK when every task succeeded). May be called repeatedly.
  Status Wait();

 private:
  void Record(Status s);

  WorkerPool* pool_;
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t pending_ = 0;
  Status first_error_;
};

}  // namespace setm

#endif  // SETM_EXEC_WORKER_POOL_H_

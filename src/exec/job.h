#ifndef SETM_EXEC_JOB_H_
#define SETM_EXEC_JOB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace setm {

/// Off-loop completion delivery: the bridge between WorkerPool threads and
/// a poll-based event loop.
///
/// A loop thread dispatches work onto the pool and goes back to poll(2);
/// when a worker finishes, it calls Notify(token) — the token lands in an
/// internal queue and one byte goes down a self-pipe, whose read end the
/// loop has registered for readability. The loop then Drain()s the tokens
/// and routes each completion back to its session.
///
///     // loop thread                      // worker thread
///     pipe->read_fd() -> poll set          ... run the job ...
///     on readable: for (t : pipe->Drain()) pipe->Notify(job_id);
///       FinishJob(t);
///
/// Tokens ride a mutex-guarded vector rather than the pipe itself, so a
/// burst of completions can never be lost to a full pipe buffer (the pipe
/// carries at most one pending byte per Notify and is drained dry on read).
/// Notify/Drain establish a happens-before edge: everything a worker wrote
/// to the job object before Notify is visible to the loop after Drain.
class CompletionPipe {
 public:
  static Result<std::unique_ptr<CompletionPipe>> Create();
  ~CompletionPipe();

  CompletionPipe(const CompletionPipe&) = delete;
  CompletionPipe& operator=(const CompletionPipe&) = delete;

  /// The fd a poller watches for readability. Non-blocking.
  int read_fd() const { return fds_[0]; }

  /// Queues one completion token and wakes the poller. Thread-safe; called
  /// from worker threads.
  void Notify(uint64_t token);

  /// Returns-and-clears every queued token, reading the pipe dry. Called
  /// from the loop thread when read_fd() polls readable.
  std::vector<uint64_t> Drain();

 private:
  CompletionPipe() = default;

  int fds_[2] = {-1, -1};
  std::mutex mutex_;
  std::vector<uint64_t> tokens_;
};

/// A cooperative cancellation flag shared between an event loop and a
/// running job. The loop Cancel()s on client disconnect, request timeout or
/// shutdown; the job's MiningObserver polls cancelled() once per iteration
/// and vetoes continuing — which is exactly the "stops within one
/// iteration" contract every miner already honors.
class CancelFlag {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace setm

#endif  // SETM_EXEC_JOB_H_

#include "exec/worker_pool.h"

#include <utility>

namespace setm {

WorkerPool::WorkerPool(size_t num_threads) {
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
  metric_queue_depth_ = registry->GetGauge(
      "setm_workers_queue_depth", "Tasks queued and not yet started");
  metric_queue_wait_micros_ = registry->GetHistogram(
      "setm_worker_queue_wait_micros",
      "Microseconds tasks spent queued before a worker picked them up");
  metric_task_micros_ = registry->GetHistogram(
      "setm_worker_task_micros", "Microseconds tasks spent executing");
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(QueuedTask{std::move(task), WallTimer()});
  }
  metric_queue_depth_->Add(1);
  cv_.notify_one();
}

void WorkerPool::WorkerLoop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    metric_queue_depth_->Add(-1);
    metric_queue_wait_micros_->Observe(
        static_cast<uint64_t>(task.enqueued.ElapsedMicros()));
    WallTimer run_timer;
    task.fn();
    metric_task_micros_->Observe(
        static_cast<uint64_t>(run_timer.ElapsedMicros()));
  }
}

void TaskGroup::Submit(std::function<Status()> task) {
  if (pool_ == nullptr) {
    Record(task());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  // std::function requires copyable closures, so the task travels in a
  // shared_ptr.
  auto shared = std::make_shared<std::function<Status()>>(std::move(task));
  pool_->Submit([this, shared] { Record((*shared)()); });
}

Status TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  return first_error_;
}

void TaskGroup::Record(Status s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!s.ok() && first_error_.ok()) first_error_ = std::move(s);
  if (pool_ != nullptr && pending_-- == 1) cv_.notify_all();
}

}  // namespace setm

#include "exec/external_sort.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <queue>

#include "common/logging.h"
#include "obs/metrics.h"

namespace setm {

namespace {

/// Folds one finished sort's counters into the process-wide registry.
void FlushSortMetrics(const SortStats& stats) {
  static obs::Counter* rows = obs::MetricsRegistry::Global()->GetCounter(
      "setm_sort_rows_total", "Rows pushed through external sorts");
  static obs::Counter* runs = obs::MetricsRegistry::Global()->GetCounter(
      "setm_sort_runs_total", "Sorted runs created by external sorts");
  static obs::Counter* spilled = obs::MetricsRegistry::Global()->GetCounter(
      "setm_sort_spilled_runs_total",
      "Runs that overflowed the sort budget and spilled to temp storage");
  static obs::Counter* passes = obs::MetricsRegistry::Global()->GetCounter(
      "setm_sort_merge_passes_total",
      "Cascaded merge passes run by external sorts");
  rows->Increment(stats.rows);
  runs->Increment(stats.runs);
  spilled->Increment(stats.spilled_runs);
  passes->Increment(stats.merge_passes);
}

/// Upper bound on runs merged at once. The effective fan-in is further
/// capped by the temp buffer pool capacity (each run needs its head page
/// resident, like any real external sort); extra runs trigger cascaded
/// merge passes.
constexpr size_t kMaxFanIn = 64;

size_t EffectiveFanIn(const ExecContext& ctx) {
  const size_t frames =
      ctx.temp_pool != nullptr ? ctx.temp_pool->capacity() : kMaxFanIn;
  const size_t budget = frames > 4 ? frames - 4 : 2;  // leave output room
  return std::max<size_t>(2, std::min(kMaxFanIn, budget));
}

/// Streams one spilled run back as tuples.
class RunReader {
 public:
  RunReader(const TableHeap* heap, const Schema* schema)
      : it_(heap->Begin()), schema_(schema) {}

  Result<bool> Next(Tuple* out) {
    if (!it_.Valid()) return false;
    auto t = Tuple::Deserialize(*schema_, it_.record());
    if (!t.ok()) return t.status();
    *out = std::move(t).value();
    SETM_RETURN_IF_ERROR(it_.Next());
    return true;
  }

 private:
  TableHeap::Iterator it_;
  const Schema* schema_;
};

/// K-way merge over runs. Stability: ties broken by run index, and runs are
/// created in arrival order, so equal keys keep their original order.
class MergeIterator : public TupleIterator {
 public:
  MergeIterator(std::vector<RunReader> readers, const Schema* schema,
                const TupleComparator* cmp)
      : readers_(std::move(readers)), schema_(schema), cmp_(cmp) {
    heads_.resize(readers_.size());
    live_.resize(readers_.size(), false);
  }

  Status Prime() {
    for (size_t i = 0; i < readers_.size(); ++i) {
      SETM_RETURN_IF_ERROR(Advance(i));
    }
    return Status::OK();
  }

  Result<bool> Next(Tuple* out) override {
    // Linear scan over run heads. Fan-in is <= 64 and comparisons are
    // cheap relative to deserialization, so a loser tree is not needed.
    int best = -1;
    for (size_t i = 0; i < readers_.size(); ++i) {
      if (!live_[i]) continue;
      if (best < 0 || cmp_->Compare(heads_[i], heads_[best]) < 0) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return false;
    *out = std::move(heads_[best]);
    SETM_RETURN_IF_ERROR(Advance(static_cast<size_t>(best)));
    return true;
  }

  const Schema& schema() const override { return *schema_; }

 private:
  Status Advance(size_t i) {
    auto more = readers_[i].Next(&heads_[i]);
    if (!more.ok()) return more.status();
    live_[i] = more.value();
    return Status::OK();
  }

  std::vector<RunReader> readers_;
  const Schema* schema_;
  const TupleComparator* cmp_;
  std::vector<Tuple> heads_;
  std::vector<bool> live_;
};

/// Iterator over an owned, already-sorted vector (in-memory fast path).
class VectorIterator : public TupleIterator {
 public:
  VectorIterator(std::vector<Tuple> rows, Schema schema)
      : rows_(std::move(rows)), schema_(std::move(schema)) {}

  Result<bool> Next(Tuple* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = std::move(rows_[pos_++]);
    return true;
  }
  const Schema& schema() const override { return schema_; }

 private:
  std::vector<Tuple> rows_;
  Schema schema_;
  size_t pos_ = 0;
};

/// Owns the merge state (runs + comparator) for the streaming final merge.
class OwningMergeIterator : public TupleIterator {
 public:
  OwningMergeIterator(std::vector<TableHeap> runs, Schema schema,
                      TupleComparator cmp)
      : runs_(std::move(runs)),
        schema_(std::move(schema)),
        cmp_(std::move(cmp)) {
    std::vector<RunReader> readers;
    readers.reserve(runs_.size());
    for (const TableHeap& run : runs_) {
      readers.emplace_back(&run, &schema_);
    }
    merge_ = std::make_unique<MergeIterator>(std::move(readers), &schema_,
                                             &cmp_);
  }

  Status Prime() { return merge_->Prime(); }

  Result<bool> Next(Tuple* out) override { return merge_->Next(out); }
  const Schema& schema() const override { return schema_; }

 private:
  std::vector<TableHeap> runs_;
  Schema schema_;
  TupleComparator cmp_;
  std::unique_ptr<MergeIterator> merge_;
};

/// Merges one group of runs into a single fresh run in temp storage — the
/// body of one cascaded-merge step. Self-contained (pool, schema and
/// comparator are read-only here) so independent groups of a pass can run
/// concurrently on the worker pool.
Result<TableHeap> MergeRunGroup(BufferPool* temp_pool, const Schema& schema,
                                const TupleComparator& cmp,
                                std::vector<TableHeap> group) {
  OwningMergeIterator merge(std::move(group), schema, cmp);
  SETM_RETURN_IF_ERROR(merge.Prime());
  auto out_or = TableHeap::Create(temp_pool);
  if (!out_or.ok()) return out_or.status();
  TableHeap out = std::move(out_or).value();
  Tuple row;
  std::string record;
  while (true) {
    auto more = merge.Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    record.clear();
    row.SerializeTo(schema, &record);
    auto rid = out.Insert(record);
    if (!rid.ok()) return rid.status();
  }
  return out;
}

}  // namespace

ExternalSort::ExternalSort(ExecContext ctx, Schema schema, TupleComparator cmp)
    : ctx_(ctx),
      schema_(std::move(schema)),
      cmp_(std::move(cmp)),
      spill_group_(ctx.workers) {}

Status ExternalSort::Add(Tuple row) {
  if (finished_) {
    return Status::Internal("ExternalSort::Add() called after Finish()");
  }
  ++stats_.rows;
  buffer_bytes_ += row.SerializedSize(schema_);
  buffer_.push_back(std::move(row));
  if (buffer_bytes_ >= ctx_.sort_memory_bytes) {
    SETM_RETURN_IF_ERROR(SpillRun());
  }
  return Status::OK();
}

Status ExternalSort::SpillRun() {
  if (buffer_.empty()) return Status::OK();
  ++stats_.runs;
  ++stats_.spilled_runs;

  if (ctx_.workers != nullptr) {
    // Hand the full buffer to the pool; the slot keeps submission order so
    // the merge's stability tie-break (run index) is unaffected.
    pending_.push_back(std::make_unique<PendingRun>());
    PendingRun* slot = pending_.back().get();
    auto rows = std::make_shared<std::vector<Tuple>>(std::move(buffer_));
    spill_group_.Submit([this, slot, rows] {
      std::stable_sort(rows->begin(), rows->end(), cmp_);
      auto heap_or = TableHeap::Create(ctx_.temp_pool);
      if (!heap_or.ok()) return heap_or.status();
      auto heap = std::make_unique<TableHeap>(std::move(heap_or).value());
      std::string record;
      for (const Tuple& t : *rows) {
        record.clear();
        t.SerializeTo(schema_, &record);
        auto rid = heap->Insert(record);
        if (!rid.ok()) return rid.status();
      }
      slot->heap = std::move(heap);
      return Status::OK();
    });
    buffer_ = {};
    buffer_bytes_ = 0;
    return Status::OK();
  }

  std::stable_sort(buffer_.begin(), buffer_.end(), cmp_);
  auto heap_or = TableHeap::Create(ctx_.temp_pool);
  if (!heap_or.ok()) return heap_or.status();
  TableHeap heap = std::move(heap_or).value();
  std::string record;
  for (const Tuple& t : buffer_) {
    record.clear();
    t.SerializeTo(schema_, &record);
    auto rid = heap.Insert(record);
    if (!rid.ok()) return rid.status();
  }
  runs_.push_back(std::move(heap));
  buffer_.clear();
  buffer_bytes_ = 0;
  return Status::OK();
}

Status ExternalSort::CollectPendingRuns() {
  if (pending_.empty()) return Status::OK();
  SETM_RETURN_IF_ERROR(spill_group_.Wait());
  for (std::unique_ptr<PendingRun>& slot : pending_) {
    if (slot->heap == nullptr) {
      return Status::Internal("spill task finished without producing a run");
    }
    runs_.push_back(std::move(*slot->heap));
  }
  pending_.clear();
  return Status::OK();
}

Result<std::unique_ptr<TupleIterator>> ExternalSort::Finish() {
  if (finished_) {
    return Status::Internal("ExternalSort::Finish() called twice");
  }
  finished_ = true;

  if (runs_.empty() && pending_.empty()) {
    // Fully in-memory (possibly zero rows — an empty stream, not an error).
    std::stable_sort(buffer_.begin(), buffer_.end(), cmp_);
    if (!buffer_.empty()) stats_.runs = 1;
    FlushSortMetrics(stats_);
    return std::unique_ptr<TupleIterator>(
        std::make_unique<VectorIterator>(std::move(buffer_), schema_));
  }

  SETM_RETURN_IF_ERROR(SpillRun());
  SETM_RETURN_IF_ERROR(CollectPendingRuns());

  // Cascade merge passes while the run count exceeds the fan-in. The
  // groups of one pass read disjoint runs and write independent outputs,
  // so with a worker pool they merge concurrently; slots keep group order,
  // preserving the run-index stability tie-break across passes. Each
  // in-flight group transiently pins up to two temp-pool frames (a reader
  // page, or the two sides of an output page split), so concurrency is
  // capped in waves to keep worst-case pins inside the pool's capacity —
  // otherwise many workers over a tiny pool could hit ResourceExhausted
  // where the serial cascade succeeded.
  const size_t fan_in = EffectiveFanIn(ctx_);
  const size_t pool_frames =
      ctx_.temp_pool != nullptr ? ctx_.temp_pool->capacity() : fan_in;
  const size_t max_concurrent_groups =
      ctx_.workers == nullptr ? 1
                              : std::max<size_t>(1, pool_frames / 2 - 1);
  while (runs_.size() > fan_in) {
    ++stats_.merge_passes;
    const size_t num_groups = (runs_.size() + fan_in - 1) / fan_in;
    std::vector<std::optional<TableHeap>> next(num_groups);
    TaskGroup merge_tasks(ctx_.workers);
    size_t in_flight = 0;
    size_t i = 0;
    for (size_t slot = 0; slot < num_groups; ++slot) {
      const size_t take = std::min(fan_in, runs_.size() - i);
      if (take == 1) {
        next[slot] = std::move(runs_[i]);
        ++i;
        continue;
      }
      auto group = std::make_shared<std::vector<TableHeap>>();
      group->reserve(take);
      for (size_t j = 0; j < take; ++j) {
        group->push_back(std::move(runs_[i + j]));
      }
      i += take;
      std::optional<TableHeap>* out = &next[slot];
      if (in_flight == max_concurrent_groups) {
        SETM_RETURN_IF_ERROR(merge_tasks.Wait());
        in_flight = 0;
      }
      ++in_flight;
      merge_tasks.Submit([this, group, out] {
        auto merged =
            MergeRunGroup(ctx_.temp_pool, schema_, cmp_, std::move(*group));
        if (!merged.ok()) return merged.status();
        *out = std::move(merged).value();
        return Status::OK();
      });
    }
    SETM_RETURN_IF_ERROR(merge_tasks.Wait());
    std::vector<TableHeap> collected;
    collected.reserve(num_groups);
    for (std::optional<TableHeap>& run : next) {
      if (!run.has_value()) {
        return Status::Internal("merge task finished without producing a run");
      }
      collected.push_back(std::move(*run));
    }
    runs_ = std::move(collected);
  }

  auto merge = std::make_unique<OwningMergeIterator>(std::move(runs_), schema_,
                                                     cmp_);
  SETM_RETURN_IF_ERROR(merge->Prime());
  FlushSortMetrics(stats_);
  return std::unique_ptr<TupleIterator>(std::move(merge));
}

Result<bool> SortIterator::Next(Tuple* out) {
  if (!sorted_) {
    ExternalSort sort(ctx_, schema_, cmp_);
    Tuple row;
    while (true) {
      auto more = child_->Next(&row);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      SETM_RETURN_IF_ERROR(sort.Add(std::move(row)));
    }
    auto sorted_or = sort.Finish();
    if (!sorted_or.ok()) return sorted_or.status();
    sorted_ = std::move(sorted_or).value();
    stats_ = sort.stats();
  }
  return sorted_->Next(out);
}

}  // namespace setm

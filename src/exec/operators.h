#ifndef SETM_EXEC_OPERATORS_H_
#define SETM_EXEC_OPERATORS_H_

#include <memory>
#include <vector>

#include "exec/expression.h"
#include "relational/table.h"
#include "relational/tuple.h"

namespace setm {

/// Emits child rows for which the predicate is truthy.
class FilterIterator : public TupleIterator {
 public:
  FilterIterator(std::unique_ptr<TupleIterator> child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Result<bool> Next(Tuple* out) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  std::unique_ptr<TupleIterator> child_;
  ExprPtr predicate_;
};

/// Evaluates one expression per output column.
class ProjectIterator : public TupleIterator {
 public:
  ProjectIterator(std::unique_ptr<TupleIterator> child,
                  std::vector<ExprPtr> exprs, Schema output_schema)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        schema_(std::move(output_schema)) {}

  Result<bool> Next(Tuple* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  std::unique_ptr<TupleIterator> child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

/// Merge-scan join of two streams *already sorted* on their key columns —
/// the second primitive of Algorithm SETM. Handles duplicate keys by
/// buffering the right-side group; an optional residual predicate (e.g. the
/// `q.item > p.item_{k-1}` condition of the R'_k query) filters the
/// concatenated row.
class MergeJoinIterator : public TupleIterator {
 public:
  MergeJoinIterator(std::unique_ptr<TupleIterator> left,
                    std::unique_ptr<TupleIterator> right,
                    std::vector<size_t> left_keys,
                    std::vector<size_t> right_keys, ExprPtr residual);

  Result<bool> Next(Tuple* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  /// Compares the current left row's keys to the right group's keys.
  int CompareKeys(const Tuple& l, const Tuple& r) const;
  Status AdvanceLeft();
  Status AdvanceRight();
  /// Positions both sides on the next matching key group.
  Result<bool> FindMatch();
  /// Concatenates current left row with group_[group_pos_].
  void Assemble(Tuple* out) const;

  std::unique_ptr<TupleIterator> left_;
  std::unique_ptr<TupleIterator> right_;
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  ExprPtr residual_;
  Schema schema_;

  bool primed_ = false;
  Tuple left_row_;
  bool left_valid_ = false;
  Tuple right_row_;  // lookahead past the buffered group
  bool right_valid_ = false;
  std::vector<Tuple> group_;  // buffered right rows with equal keys
  Tuple group_key_row_;       // representative row holding the group's keys
  bool group_active_ = false;
  size_t group_pos_ = 0;
};

/// Naive nested-loop join used by the SQL engine for joins without usable
/// equality keys: materializes the right side, then loops. An optional
/// residual predicate filters the concatenated row.
class NestedLoopJoinIterator : public TupleIterator {
 public:
  NestedLoopJoinIterator(std::unique_ptr<TupleIterator> left,
                         std::unique_ptr<TupleIterator> right,
                         ExprPtr residual);

  Result<bool> Next(Tuple* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  std::unique_ptr<TupleIterator> left_;
  std::unique_ptr<TupleIterator> right_;
  ExprPtr residual_;
  Schema schema_;

  bool primed_ = false;
  std::vector<Tuple> right_rows_;
  Tuple left_row_;
  bool left_valid_ = false;
  size_t right_pos_ = 0;
};

/// Streaming GROUP BY over input *sorted on the group columns*, computing
/// COUNT(*) per group — how SETM "generates the support counts efficiently"
/// after the second sort. Output schema: the group columns followed by one
/// INT64 "count" column. Groups with count < `min_count` are dropped
/// (HAVING COUNT(*) >= :minsupport); pass 0 to keep all groups.
class SortedGroupCountIterator : public TupleIterator {
 public:
  SortedGroupCountIterator(std::unique_ptr<TupleIterator> child,
                           std::vector<size_t> group_columns,
                           int64_t min_count);

  Result<bool> Next(Tuple* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  std::unique_ptr<TupleIterator> child_;
  std::vector<size_t> group_columns_;
  int64_t min_count_;
  Schema schema_;

  bool primed_ = false;
  Tuple pending_;  // first row of the next group
  bool pending_valid_ = false;
};

/// Drains `it` into `table` (schemas must have equal arity).
Status MaterializeInto(TupleIterator* it, Table* table);

/// Drains `it` into a fresh vector.
Result<std::vector<Tuple>> Collect(TupleIterator* it);

}  // namespace setm

#endif  // SETM_EXEC_OPERATORS_H_

#ifndef SETM_EXEC_EXTERNAL_SORT_H_
#define SETM_EXEC_EXTERNAL_SORT_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "exec/exec_context.h"
#include "exec/worker_pool.h"
#include "relational/table.h"
#include "relational/tuple.h"
#include "storage/table_heap.h"

namespace setm {

/// Observability counters for one sort.
struct SortStats {
  uint64_t rows = 0;           ///< rows sorted
  uint64_t runs = 0;           ///< sorted runs created (1 if fully in-memory)
  uint64_t spilled_runs = 0;   ///< runs written to temp storage
  uint64_t merge_passes = 0;   ///< intermediate merge passes (0 or more)
};

/// Bounded-memory external merge sort — one of the two primitives Algorithm
/// SETM is made of ("basic steps are sorting and merge scan join").
///
/// Rows are buffered until the configured memory budget is reached, then
/// stable-sorted and spilled as a run (a TableHeap in temp storage, so run
/// I/O lands in the shared IoStats ledger). Finish() merges the runs with a
/// bounded fan-in, cascading extra merge passes when the run count exceeds
/// it. The overall sort is stable: equal keys keep arrival order.
///
/// When `ctx.workers` is set, run generation overlaps with row intake:
/// each full buffer is handed to the pool, sorted and spilled off-thread
/// while Add() keeps filling the next buffer. Run order — and therefore
/// stability — is preserved by assigning each run its slot at submission.
/// Cascaded merge passes parallelize the same way: the independent merge
/// groups of one pass (disjoint input runs, independent output runs) are
/// dispatched to the pool and joined at the pass boundary, with outputs
/// slotted in group order so the stability tie-break is unaffected.
///
/// API misuse is reported through Status in every build mode: Add() after
/// Finish() and a second Finish() fail with an Internal error instead of
/// corrupting the sort. Finish() on a sort that never saw a row succeeds
/// and yields an empty stream.
///
///     ExternalSort sort(ctx, schema, TupleComparator({0, 1}));
///     for (...) sort.Add(row);
///     auto it = sort.Finish().value();   // sorted stream
class ExternalSort {
 public:
  ExternalSort(ExecContext ctx, Schema schema, TupleComparator cmp);

  /// Buffers one row, spilling if the budget fills. Fails with an Internal
  /// status when called after Finish().
  Status Add(Tuple row);

  /// Completes the sort and returns the sorted stream. A second call fails
  /// with an Internal status.
  Result<std::unique_ptr<TupleIterator>> Finish();

  const SortStats& stats() const { return stats_; }

 private:
  /// A spill slot filled by a worker task; slots keep submission order so
  /// the merge's run-index tie-break stays stable.
  struct PendingRun {
    std::unique_ptr<TableHeap> heap;
  };

  Status SpillRun();
  /// Waits for outstanding spill tasks and moves their heaps into runs_.
  Status CollectPendingRuns();

  ExecContext ctx_;
  Schema schema_;
  TupleComparator cmp_;
  std::vector<Tuple> buffer_;
  size_t buffer_bytes_ = 0;
  std::vector<TableHeap> runs_;
  std::vector<std::unique_ptr<PendingRun>> pending_;
  SortStats stats_;
  bool finished_ = false;
  /// Declared last: its destructor waits for in-flight spill tasks, which
  /// read the members above.
  TaskGroup spill_group_;
};

/// Volcano operator wrapping ExternalSort: drains `child` on first Next().
class SortIterator : public TupleIterator {
 public:
  SortIterator(ExecContext ctx, std::unique_ptr<TupleIterator> child,
               TupleComparator cmp)
      : ctx_(ctx),
        child_(std::move(child)),
        schema_(child_->schema()),
        cmp_(std::move(cmp)) {}

  Result<bool> Next(Tuple* out) override;
  const Schema& schema() const override { return schema_; }

  /// Valid after the first Next() call.
  const SortStats& stats() const { return stats_; }

 private:
  ExecContext ctx_;
  std::unique_ptr<TupleIterator> child_;
  Schema schema_;
  TupleComparator cmp_;
  std::unique_ptr<TupleIterator> sorted_;
  SortStats stats_;
};

}  // namespace setm

#endif  // SETM_EXEC_EXTERNAL_SORT_H_

#include "exec/hash_operators.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace setm {

namespace {

/// Serializes a value into a hash key, normalizing integer widths so that
/// INT32 7 and INT64 7 land in the same bucket (consistent with
/// Value::Compare and Value::Hash).
void AppendKey(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kInt32:
    case ValueType::kInt64: {
      out->push_back('i');
      const int64_t x = v.NumericInt();
      out->append(reinterpret_cast<const char*>(&x), sizeof(x));
      break;
    }
    case ValueType::kDouble: {
      out->push_back('d');
      const double x = v.AsDouble();
      out->append(reinterpret_cast<const char*>(&x), sizeof(x));
      break;
    }
    case ValueType::kString: {
      out->push_back('s');
      const std::string& s = v.AsString();
      const uint32_t n = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&n), sizeof(n));
      out->append(s);
      break;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// HashGroupCountIterator
// ---------------------------------------------------------------------------

HashGroupCountIterator::HashGroupCountIterator(
    std::unique_ptr<TupleIterator> child, std::vector<size_t> group_columns,
    int64_t min_count)
    : child_(std::move(child)),
      group_columns_(std::move(group_columns)),
      min_count_(min_count) {
  for (size_t c : group_columns_) {
    schema_.AddColumn(child_->schema().column(c));
  }
  schema_.AddColumn(Column{"count", ValueType::kInt64});
}

Status HashGroupCountIterator::Build() {
  built_ = true;
  struct Group {
    Tuple representative;
    int64_t count = 0;
  };
  std::unordered_map<std::string, Group> table;
  Tuple row;
  std::string key;
  while (true) {
    auto more = child_->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    key.clear();
    std::vector<Value> group_values;
    group_values.reserve(group_columns_.size());
    for (size_t c : group_columns_) {
      if (c >= row.NumValues()) {
        return Status::Internal("group column out of range");
      }
      AppendKey(row.value(c), &key);
      group_values.push_back(row.value(c));
    }
    Group& g = table[key];
    if (g.count == 0) g.representative = Tuple(std::move(group_values));
    ++g.count;
  }
  groups_.reserve(table.size());
  for (auto& [k, g] : table) {
    if (g.count >= min_count_) {
      groups_.emplace_back(std::move(g.representative), g.count);
    }
  }
  // Deterministic, sort-pipeline-identical output order.
  std::vector<size_t> all_cols(group_columns_.size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  TupleComparator cmp(all_cols);
  std::sort(groups_.begin(), groups_.end(),
            [&](const auto& a, const auto& b) {
              return cmp.Compare(a.first, b.first) < 0;
            });
  return Status::OK();
}

Result<bool> HashGroupCountIterator::Next(Tuple* out) {
  if (!built_) SETM_RETURN_IF_ERROR(Build());
  if (pos_ >= groups_.size()) return false;
  Tuple row = groups_[pos_].first;
  row.Append(Value::Int64(groups_[pos_].second));
  *out = std::move(row);
  ++pos_;
  return true;
}

// ---------------------------------------------------------------------------
// HashJoinIterator
// ---------------------------------------------------------------------------

HashJoinIterator::HashJoinIterator(std::unique_ptr<TupleIterator> left,
                                   std::unique_ptr<TupleIterator> right,
                                   std::vector<size_t> left_keys,
                                   std::vector<size_t> right_keys,
                                   ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {
  SETM_CHECK(left_keys_.size() == right_keys_.size());
  for (const Column& c : left_->schema().columns()) schema_.AddColumn(c);
  for (const Column& c : right_->schema().columns()) schema_.AddColumn(c);
}

std::string HashJoinIterator::KeyOf(const Tuple& row,
                                    const std::vector<size_t>& cols) const {
  std::string key;
  for (size_t c : cols) AppendKey(row.value(c), &key);
  return key;
}

Status HashJoinIterator::Build() {
  built_ = true;
  Tuple row;
  while (true) {
    auto more = right_->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    table_[KeyOf(row, right_keys_)].push_back(row);
  }
  auto first = left_->Next(&left_row_);
  if (!first.ok()) return first.status();
  left_valid_ = first.value();
  if (left_valid_) {
    auto it = table_.find(KeyOf(left_row_, left_keys_));
    matches_ = it == table_.end() ? nullptr : &it->second;
    match_pos_ = 0;
  }
  return Status::OK();
}

Result<bool> HashJoinIterator::Next(Tuple* out) {
  if (!built_) SETM_RETURN_IF_ERROR(Build());
  while (left_valid_) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      const Tuple& r = (*matches_)[match_pos_++];
      std::vector<Value> values;
      values.reserve(left_row_.NumValues() + r.NumValues());
      for (const Value& v : left_row_.values()) values.push_back(v);
      for (const Value& v : r.values()) values.push_back(v);
      *out = Tuple(std::move(values));
      if (residual_ != nullptr) {
        auto v = residual_->Eval(*out);
        if (!v.ok()) return v.status();
        if (!ValueIsTrue(v.value())) continue;
      }
      return true;
    }
    auto more = left_->Next(&left_row_);
    if (!more.ok()) return more.status();
    left_valid_ = more.value();
    if (left_valid_) {
      auto it = table_.find(KeyOf(left_row_, left_keys_));
      matches_ = it == table_.end() ? nullptr : &it->second;
      match_pos_ = 0;
    }
  }
  return false;
}

}  // namespace setm

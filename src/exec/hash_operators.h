#ifndef SETM_EXEC_HASH_OPERATORS_H_
#define SETM_EXEC_HASH_OPERATORS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/expression.h"
#include "relational/tuple.h"

namespace setm {

/// Hash-based GROUP BY/COUNT(*): the modern alternative to the paper's
/// sort-then-count pipeline. Consumes the child on first Next(), counts
/// groups in a hash table, and emits groups *sorted by group value* so the
/// operator is a drop-in, result-identical replacement for
/// SortIterator + SortedGroupCountIterator (the ablation
/// `ablation_count_method` compares the two physically).
///
/// Output schema: the group columns followed by an INT64 "count"; groups
/// with count < min_count are dropped.
class HashGroupCountIterator : public TupleIterator {
 public:
  HashGroupCountIterator(std::unique_ptr<TupleIterator> child,
                         std::vector<size_t> group_columns, int64_t min_count);

  Result<bool> Next(Tuple* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  Status Build();

  std::unique_ptr<TupleIterator> child_;
  std::vector<size_t> group_columns_;
  int64_t min_count_;
  Schema schema_;

  bool built_ = false;
  std::vector<std::pair<Tuple, int64_t>> groups_;  // sorted by group values
  size_t pos_ = 0;
};

/// In-memory hash equi-join. The right side is built into a hash table on
/// first Next(); left rows stream and probe. Output is the concatenation
/// (left columns, right columns); an optional residual predicate filters
/// the combined row. Unlike MergeJoinIterator, inputs need no sort — the
/// trade the relational world made in the decades after the paper.
class HashJoinIterator : public TupleIterator {
 public:
  HashJoinIterator(std::unique_ptr<TupleIterator> left,
                   std::unique_ptr<TupleIterator> right,
                   std::vector<size_t> left_keys,
                   std::vector<size_t> right_keys, ExprPtr residual);

  Result<bool> Next(Tuple* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  Status Build();
  std::string KeyOf(const Tuple& row, const std::vector<size_t>& cols) const;

  std::unique_ptr<TupleIterator> left_;
  std::unique_ptr<TupleIterator> right_;
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  ExprPtr residual_;
  Schema schema_;

  bool built_ = false;
  std::unordered_map<std::string, std::vector<Tuple>> table_;
  Tuple left_row_;
  bool left_valid_ = false;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

}  // namespace setm

#endif  // SETM_EXEC_HASH_OPERATORS_H_

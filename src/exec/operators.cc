#include "exec/operators.h"

#include "common/logging.h"

namespace setm {

// ---------------------------------------------------------------------------
// FilterIterator
// ---------------------------------------------------------------------------

Result<bool> FilterIterator::Next(Tuple* out) {
  while (true) {
    auto more = child_->Next(out);
    if (!more.ok()) return more.status();
    if (!more.value()) return false;
    auto v = predicate_->Eval(*out);
    if (!v.ok()) return v.status();
    if (ValueIsTrue(v.value())) return true;
  }
}

// ---------------------------------------------------------------------------
// ProjectIterator
// ---------------------------------------------------------------------------

Result<bool> ProjectIterator::Next(Tuple* out) {
  Tuple in;
  auto more = child_->Next(&in);
  if (!more.ok()) return more.status();
  if (!more.value()) return false;
  std::vector<Value> values;
  values.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    auto v = e->Eval(in);
    if (!v.ok()) return v.status();
    values.push_back(std::move(v).value());
  }
  *out = Tuple(std::move(values));
  return true;
}

// ---------------------------------------------------------------------------
// MergeJoinIterator
// ---------------------------------------------------------------------------

MergeJoinIterator::MergeJoinIterator(std::unique_ptr<TupleIterator> left,
                                     std::unique_ptr<TupleIterator> right,
                                     std::vector<size_t> left_keys,
                                     std::vector<size_t> right_keys,
                                     ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {
  SETM_CHECK(left_keys_.size() == right_keys_.size());
  for (const Column& c : left_->schema().columns()) schema_.AddColumn(c);
  for (const Column& c : right_->schema().columns()) schema_.AddColumn(c);
}

int MergeJoinIterator::CompareKeys(const Tuple& l, const Tuple& r) const {
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    int c = l.value(left_keys_[i]).Compare(r.value(right_keys_[i]));
    if (c != 0) return c;
  }
  return 0;
}

Status MergeJoinIterator::AdvanceLeft() {
  auto more = left_->Next(&left_row_);
  if (!more.ok()) return more.status();
  left_valid_ = more.value();
  return Status::OK();
}

Status MergeJoinIterator::AdvanceRight() {
  auto more = right_->Next(&right_row_);
  if (!more.ok()) return more.status();
  right_valid_ = more.value();
  return Status::OK();
}

Result<bool> MergeJoinIterator::FindMatch() {
  while (left_valid_ && right_valid_) {
    const int c = CompareKeys(left_row_, right_row_);
    if (c < 0) {
      SETM_RETURN_IF_ERROR(AdvanceLeft());
    } else if (c > 0) {
      SETM_RETURN_IF_ERROR(AdvanceRight());
    } else {
      // Buffer the full right-side group with this key.
      group_.clear();
      group_key_row_ = right_row_;
      do {
        group_.push_back(right_row_);
        SETM_RETURN_IF_ERROR(AdvanceRight());
      } while (right_valid_ &&
               CompareKeys(left_row_, right_row_) == 0);
      group_active_ = true;
      group_pos_ = 0;
      return true;
    }
  }
  return false;
}

void MergeJoinIterator::Assemble(Tuple* out) const {
  std::vector<Value> values;
  values.reserve(left_row_.NumValues() + group_[group_pos_].NumValues());
  for (const Value& v : left_row_.values()) values.push_back(v);
  for (const Value& v : group_[group_pos_].values()) values.push_back(v);
  *out = Tuple(std::move(values));
}

Result<bool> MergeJoinIterator::Next(Tuple* out) {
  if (!primed_) {
    primed_ = true;
    SETM_RETURN_IF_ERROR(AdvanceLeft());
    SETM_RETURN_IF_ERROR(AdvanceRight());
  }
  while (true) {
    if (!group_active_) {
      auto matched = FindMatch();
      if (!matched.ok()) return matched.status();
      if (!matched.value()) return false;
    }
    // Emit combinations of the current left row with the buffered group.
    while (group_pos_ < group_.size()) {
      Assemble(out);
      ++group_pos_;
      if (residual_ != nullptr) {
        auto v = residual_->Eval(*out);
        if (!v.ok()) return v.status();
        if (!ValueIsTrue(v.value())) continue;
      }
      return true;
    }
    // Group exhausted for this left row; move to the next left row and
    // re-test against the same group (many left rows share the key).
    SETM_RETURN_IF_ERROR(AdvanceLeft());
    if (left_valid_ && CompareKeys(left_row_, group_key_row_) == 0) {
      group_pos_ = 0;
      continue;
    }
    group_active_ = false;
  }
}

// ---------------------------------------------------------------------------
// NestedLoopJoinIterator
// ---------------------------------------------------------------------------

NestedLoopJoinIterator::NestedLoopJoinIterator(
    std::unique_ptr<TupleIterator> left, std::unique_ptr<TupleIterator> right,
    ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      residual_(std::move(residual)) {
  for (const Column& c : left_->schema().columns()) schema_.AddColumn(c);
  for (const Column& c : right_->schema().columns()) schema_.AddColumn(c);
}

Result<bool> NestedLoopJoinIterator::Next(Tuple* out) {
  if (!primed_) {
    primed_ = true;
    auto rows = Collect(right_.get());
    if (!rows.ok()) return rows.status();
    right_rows_ = std::move(rows).value();
    auto more = left_->Next(&left_row_);
    if (!more.ok()) return more.status();
    left_valid_ = more.value();
    right_pos_ = 0;
  }
  while (left_valid_) {
    while (right_pos_ < right_rows_.size()) {
      const Tuple& r = right_rows_[right_pos_++];
      std::vector<Value> values;
      values.reserve(left_row_.NumValues() + r.NumValues());
      for (const Value& v : left_row_.values()) values.push_back(v);
      for (const Value& v : r.values()) values.push_back(v);
      *out = Tuple(std::move(values));
      if (residual_ != nullptr) {
        auto v = residual_->Eval(*out);
        if (!v.ok()) return v.status();
        if (!ValueIsTrue(v.value())) continue;
      }
      return true;
    }
    auto more = left_->Next(&left_row_);
    if (!more.ok()) return more.status();
    left_valid_ = more.value();
    right_pos_ = 0;
  }
  return false;
}

// ---------------------------------------------------------------------------
// SortedGroupCountIterator
// ---------------------------------------------------------------------------

SortedGroupCountIterator::SortedGroupCountIterator(
    std::unique_ptr<TupleIterator> child, std::vector<size_t> group_columns,
    int64_t min_count)
    : child_(std::move(child)),
      group_columns_(std::move(group_columns)),
      min_count_(min_count) {
  for (size_t c : group_columns_) {
    schema_.AddColumn(child_->schema().column(c));
  }
  schema_.AddColumn(Column{"count", ValueType::kInt64});
}

Result<bool> SortedGroupCountIterator::Next(Tuple* out) {
  if (!primed_) {
    primed_ = true;
    auto more = child_->Next(&pending_);
    if (!more.ok()) return more.status();
    pending_valid_ = more.value();
  }
  while (pending_valid_) {
    // Start a group at pending_.
    Tuple head = pending_;
    int64_t count = 0;
    while (pending_valid_) {
      bool same = true;
      for (size_t c : group_columns_) {
        if (head.value(c).Compare(pending_.value(c)) != 0) {
          same = false;
          break;
        }
      }
      if (!same) break;
      ++count;
      auto more = child_->Next(&pending_);
      if (!more.ok()) return more.status();
      pending_valid_ = more.value();
    }
    if (count >= min_count_) {
      std::vector<Value> values;
      values.reserve(group_columns_.size() + 1);
      for (size_t c : group_columns_) values.push_back(head.value(c));
      values.push_back(Value::Int64(count));
      *out = Tuple(std::move(values));
      return true;
    }
    // Group failed the HAVING clause; continue with the next group.
  }
  return false;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

Status MaterializeInto(TupleIterator* it, Table* table) {
  Tuple row;
  while (true) {
    auto more = it->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) return Status::OK();
    SETM_RETURN_IF_ERROR(table->Insert(row));
  }
}

Result<std::vector<Tuple>> Collect(TupleIterator* it) {
  std::vector<Tuple> rows;
  Tuple row;
  while (true) {
    auto more = it->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) return rows;
    rows.push_back(row);
  }
}

}  // namespace setm

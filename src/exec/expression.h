#ifndef SETM_EXEC_EXPRESSION_H_
#define SETM_EXEC_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/tuple.h"

namespace setm {

/// Binary operators supported in scalar expressions. Comparisons and the
/// logical connectives evaluate to INT32 0/1 (the engine has no separate
/// boolean type).
enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

/// Returns the SQL spelling of an operator ("=", "<>", "AND", ...).
std::string_view BinaryOpName(BinaryOp op);

/// A scalar expression evaluated against one input row. Expressions are
/// immutable trees produced by the SQL binder (or built directly by tests).
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates against `row`.
  virtual Result<Value> Eval(const Tuple& row) const = 0;

  /// Debug rendering.
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Reference to an input column by position.
class ColumnExpr : public Expr {
 public:
  /// `name` is carried for diagnostics only.
  ColumnExpr(size_t index, std::string name = "")
      : index_(index), name_(std::move(name)) {}

  Result<Value> Eval(const Tuple& row) const override {
    if (index_ >= row.NumValues()) {
      return Status::Internal("column index " + std::to_string(index_) +
                              " out of range for tuple of " +
                              std::to_string(row.NumValues()));
    }
    return row.value(index_);
  }

  std::string ToString() const override {
    return name_.empty() ? "#" + std::to_string(index_) : name_;
  }

  size_t index() const { return index_; }

 private:
  size_t index_;
  std::string name_;
};

/// Literal constant.
class ConstExpr : public Expr {
 public:
  explicit ConstExpr(Value v) : value_(std::move(v)) {}

  Result<Value> Eval(const Tuple&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Binary comparison or logical connective.
class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<Value> Eval(const Tuple& row) const override;
  std::string ToString() const override;

  BinaryOp op() const { return op_; }
  const Expr* lhs() const { return lhs_.get(); }
  const Expr* rhs() const { return rhs_.get(); }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// True iff `v` is truthy (non-zero numeric, non-empty string).
bool ValueIsTrue(const Value& v);

/// Convenience builders used heavily in tests and the planner.
inline ExprPtr Col(size_t index, std::string name = "") {
  return std::make_unique<ColumnExpr>(index, std::move(name));
}
inline ExprPtr Const(Value v) {
  return std::make_unique<ConstExpr>(std::move(v));
}
inline ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}
/// AND of all conjuncts; nullptr for an empty list (meaning "true").
ExprPtr ConjoinAll(std::vector<ExprPtr> conjuncts);

}  // namespace setm

#endif  // SETM_EXEC_EXPRESSION_H_

#include "exec/job.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace setm {

Result<std::unique_ptr<CompletionPipe>> CompletionPipe::Create() {
  std::unique_ptr<CompletionPipe> pipe(new CompletionPipe());
  if (::pipe(pipe->fds_) != 0) {
    return Status::IOError("pipe: " + std::string(strerror(errno)));
  }
  for (int fd : pipe->fds_) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      return Status::IOError("fcntl(O_NONBLOCK): " +
                             std::string(strerror(errno)));
    }
    int fdflags = ::fcntl(fd, F_GETFD, 0);
    if (fdflags < 0 || ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) < 0) {
      return Status::IOError("fcntl(FD_CLOEXEC): " +
                             std::string(strerror(errno)));
    }
  }
  return pipe;
}

CompletionPipe::~CompletionPipe() {
  if (fds_[0] >= 0) ::close(fds_[0]);
  if (fds_[1] >= 0) ::close(fds_[1]);
}

void CompletionPipe::Notify(uint64_t token) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tokens_.push_back(token);
  }
  // One byte per Notify; a full pipe is fine — the loop drains the token
  // vector, not the pipe, and a full pipe is already readable.
  char byte = 'c';
  [[maybe_unused]] ssize_t n = ::write(fds_[1], &byte, 1);
}

std::vector<uint64_t> CompletionPipe::Drain() {
  char buf[256];
  while (::read(fds_[0], buf, sizeof(buf)) > 0) {
  }
  std::vector<uint64_t> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.swap(tokens_);
  }
  return out;
}

}  // namespace setm

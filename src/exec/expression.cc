#include "exec/expression.h"

namespace setm {

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

bool ValueIsTrue(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt32:
    case ValueType::kInt64:
      return v.NumericInt() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

Result<Value> BinaryExpr::Eval(const Tuple& row) const {
  auto l = lhs_->Eval(row);
  if (!l.ok()) return l.status();

  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    const bool lv = ValueIsTrue(l.value());
    // Short-circuit.
    if (op_ == BinaryOp::kAnd && !lv) return Value::Int32(0);
    if (op_ == BinaryOp::kOr && lv) return Value::Int32(1);
    auto r = rhs_->Eval(row);
    if (!r.ok()) return r.status();
    return Value::Int32(ValueIsTrue(r.value()) ? 1 : 0);
  }

  auto r = rhs_->Eval(row);
  if (!r.ok()) return r.status();
  const int c = l.value().Compare(r.value());
  bool out = false;
  switch (op_) {
    case BinaryOp::kEq:
      out = c == 0;
      break;
    case BinaryOp::kNe:
      out = c != 0;
      break;
    case BinaryOp::kLt:
      out = c < 0;
      break;
    case BinaryOp::kLe:
      out = c <= 0;
      break;
    case BinaryOp::kGt:
      out = c > 0;
      break;
    case BinaryOp::kGe:
      out = c >= 0;
      break;
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      break;  // handled above
  }
  return Value::Int32(out ? 1 : 0);
}

std::string BinaryExpr::ToString() const {
  return "(" + lhs_->ToString() + " " + std::string(BinaryOpName(op_)) + " " +
         rhs_->ToString() + ")";
}

ExprPtr ConjoinAll(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (auto& c : conjuncts) {
    if (!out) {
      out = std::move(c);
    } else {
      out = Binary(BinaryOp::kAnd, std::move(out), std::move(c));
    }
  }
  return out;
}

}  // namespace setm

#ifndef SETM_EXEC_EXEC_CONTEXT_H_
#define SETM_EXEC_EXEC_CONTEXT_H_

#include <cstddef>

#include "relational/database.h"
#include "storage/buffer_pool.h"

namespace setm {

/// Resources physical operators draw on: the temp-space buffer pool for
/// sort runs and the memory budget at which the external sort spills.
struct ExecContext {
  BufferPool* temp_pool = nullptr;
  size_t sort_memory_bytes = 1 << 20;

  /// Context bound to a database's temp pool and configured sort budget.
  static ExecContext From(Database* db) {
    ExecContext ctx;
    ctx.temp_pool = db->temp_pool();
    ctx.sort_memory_bytes = db->options().sort_memory_bytes;
    return ctx;
  }
};

}  // namespace setm

#endif  // SETM_EXEC_EXEC_CONTEXT_H_

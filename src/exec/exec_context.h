#ifndef SETM_EXEC_EXEC_CONTEXT_H_
#define SETM_EXEC_EXEC_CONTEXT_H_

#include <cstddef>

#include "relational/database.h"
#include "storage/buffer_pool.h"

namespace setm {

class WorkerPool;

/// Resources physical operators draw on: the temp-space buffer pool for
/// sort runs, the memory budget at which the external sort spills, and an
/// optional worker pool for parallel run generation.
struct ExecContext {
  BufferPool* temp_pool = nullptr;
  size_t sort_memory_bytes = 1 << 20;
  /// When non-null, operators may offload CPU-heavy work (sorting and
  /// writing spill runs) to these workers. Leave null inside tasks that
  /// already run *on* the pool — a task blocking on sub-tasks of the same
  /// pool can starve the queue.
  WorkerPool* workers = nullptr;

  /// Context bound to a database's temp pool and configured sort budget.
  static ExecContext From(Database* db) {
    ExecContext ctx;
    ctx.temp_pool = db->temp_pool();
    ctx.sort_memory_bytes = db->options().sort_memory_bytes;
    ctx.workers = db->worker_pool();
    return ctx;
  }
};

}  // namespace setm

#endif  // SETM_EXEC_EXEC_CONTEXT_H_

#include "costmodel/analysis.h"

#include <cmath>
#include <cstdio>

namespace setm {

namespace {
/// Binomial coefficient as a double (avg transaction sizes are small).
double Choose(double n, uint32_t k) {
  double out = 1.0;
  for (uint32_t i = 0; i < k; ++i) {
    out *= (n - static_cast<double>(i)) / static_cast<double>(i + 1);
  }
  return out > 0.0 ? out : 0.0;
}

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }
}  // namespace

BTreeEstimate EstimateBTree(uint64_t num_entries, uint64_t entries_per_leaf,
                            uint64_t entries_per_nonleaf) {
  BTreeEstimate e;
  e.num_entries = num_entries;
  e.entries_per_leaf = entries_per_leaf;
  e.entries_per_nonleaf = entries_per_nonleaf;
  e.leaf_pages = CeilDiv(num_entries, entries_per_leaf);
  e.levels = 1;
  uint64_t level_pages = e.leaf_pages;
  while (level_pages > 1) {
    level_pages = CeilDiv(level_pages, entries_per_nonleaf);
    e.nonleaf_pages += level_pages;
    ++e.levels;
  }
  return e;
}

NestedLoopAnalysis AnalyzeNestedLoop(const HypotheticalDb& db) {
  NestedLoopAnalysis a;
  // Index fanouts from the paper: 8-byte leaf entries (no pointer needed
  // since the data is the key) -> ~500 per 4K leaf; 12-byte non-leaf
  // entries -> ~333 per page.
  const uint64_t per_leaf = db.page_size / db.tuple_bytes;       // 512 -> 500
  const uint64_t per_nonleaf = db.page_size / (db.tuple_bytes + 4);  // ~341
  a.item_tid_index = EstimateBTree(db.SalesTuples(), per_leaf, per_nonleaf);
  // The (trans_id) index holds one entry per distinct transaction pointing
  // at its rows; the paper sizes it at half the leaves of the first index.
  a.tid_index =
      EstimateBTree(db.num_transactions, per_leaf * 2, per_nonleaf);

  // Uniformity: every item appears in ItemProbability() of transactions,
  // which exceeds the support threshold, so |C1| = num_items.
  a.c1_size = db.num_items;
  a.leaf_fetches_per_item =
      db.ItemProbability() * static_cast<double>(a.item_tid_index.leaf_pages);
  a.matching_tids_per_item =
      db.ItemProbability() * static_cast<double>(db.num_transactions);
  // One random fetch per matching transaction on the (trans_id) index.
  const double per_c1_row = a.leaf_fetches_per_item + a.matching_tids_per_item;
  a.total_page_fetches = static_cast<uint64_t>(
      static_cast<double>(a.c1_size) * per_c1_row);
  // All fetches random.
  a.estimated_seconds =
      static_cast<double>(a.total_page_fetches) * db.random_ms / 1000.0;
  return a;
}

SortMergeAnalysis AnalyzeSortMerge(const HypotheticalDb& db,
                                   uint32_t max_pattern_length) {
  SortMergeAnalysis a;
  a.r1_pages = CeilDiv(db.SalesTuples() * db.tuple_bytes, db.page_size);
  for (uint32_t i = 2; i <= max_pattern_length; ++i) {
    // |R'_i| = C(|T|, i) x |D| tuples of (i + 1) x 4 bytes.
    const double tuples = Choose(db.avg_transaction_size, i) *
                          static_cast<double>(db.num_transactions);
    const uint64_t bytes =
        static_cast<uint64_t>(tuples) * (static_cast<uint64_t>(i) + 1) * 4;
    a.r_prime_pages.push_back(CeilDiv(bytes, db.page_size));
  }
  // The paper's worked example: (n + 1) x ||R1|| + 4 x sum ||R'_i||
  // (3 x 4,000 + 4 x 27,000 for n = 2).
  uint64_t total = (static_cast<uint64_t>(max_pattern_length) + 1) * a.r1_pages;
  for (uint64_t p : a.r_prime_pages) total += 4 * p;
  a.total_page_accesses = total;
  // All accesses sequential.
  a.estimated_seconds =
      static_cast<double>(total) * db.sequential_ms / 1000.0;
  return a;
}

std::string RenderAnalysisTable(const NestedLoopAnalysis& nl,
                                const SortMergeAnalysis& sm) {
  std::string out;
  char buf[256];
  out += "strategy        page accesses   access kind   est. time\n";
  out += "--------------  --------------  -----------   -----------------\n";
  std::snprintf(buf, sizeof(buf), "%-14s  %14llu  %-11s   %8.0f s (%.1f h)\n",
                "nested-loop",
                static_cast<unsigned long long>(nl.total_page_fetches),
                "random", nl.estimated_seconds, nl.estimated_seconds / 3600.0);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-14s  %14llu  %-11s   %8.0f s (%.1f min)\n",
                "sort-merge",
                static_cast<unsigned long long>(sm.total_page_accesses),
                "sequential", sm.estimated_seconds,
                sm.estimated_seconds / 60.0);
  out += buf;
  const double ratio = nl.estimated_seconds > 0 && sm.estimated_seconds > 0
                           ? nl.estimated_seconds / sm.estimated_seconds
                           : 0.0;
  std::snprintf(buf, sizeof(buf), "speedup (time): %.0fx\n", ratio);
  out += buf;
  return out;
}

}  // namespace setm

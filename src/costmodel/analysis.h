#ifndef SETM_COSTMODEL_ANALYSIS_H_
#define SETM_COSTMODEL_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace setm {

/// The hypothetical retailing database of Section 3.2, used by both
/// analyses. Defaults are the paper's numbers.
struct HypotheticalDb {
  uint64_t num_items = 1000;
  uint64_t num_transactions = 200000;
  double avg_transaction_size = 10.0;
  uint64_t page_size = 4096;
  uint64_t tuple_bytes = 8;       ///< 4-byte item + 4-byte trans_id
  double min_support = 0.005;     ///< 0.5% = 1000 transactions
  double random_ms = 20.0;        ///< cost of one random page fetch
  double sequential_ms = 10.0;    ///< cost of one sequential page access

  /// Total SALES tuples: |D| x |T|.
  uint64_t SalesTuples() const {
    return static_cast<uint64_t>(num_transactions * avg_transaction_size);
  }
  /// Probability an item appears in a transaction (uniform assumption).
  double ItemProbability() const {
    return avg_transaction_size / static_cast<double>(num_items);
  }
};

/// B+-tree size estimate in the style of Section 3.2.
struct BTreeEstimate {
  uint64_t num_entries = 0;
  uint64_t entries_per_leaf = 0;
  uint64_t entries_per_nonleaf = 0;
  uint64_t leaf_pages = 0;
  uint64_t nonleaf_pages = 0;  ///< all levels above the leaves
  uint32_t levels = 0;         ///< including the leaf level
};

/// Computes leaf/non-leaf page counts and height for a B+-tree with the
/// given fanouts (paper defaults: 500 entries per leaf for the 8-byte
/// (item, trans_id) entries, 333 per non-leaf page).
BTreeEstimate EstimateBTree(uint64_t num_entries, uint64_t entries_per_leaf,
                            uint64_t entries_per_nonleaf);

/// Section 3.2: expected cost of generating C_2 with the nested-loop
/// strategy. The paper's walk-through:
///   |C1| = num_items (uniformity makes every item frequent);
///   per C1 row: 1% of the (item, trans_id) leaf pages (~40 fetches), then
///   one (trans_id)-index fetch per matching transaction (~2000);
///   total ~ 1000 x (40 + 2000) ~ 2,000,000 random fetches ~ 11 hours.
struct NestedLoopAnalysis {
  uint64_t c1_size = 0;
  double leaf_fetches_per_item = 0.0;
  double matching_tids_per_item = 0.0;
  uint64_t total_page_fetches = 0;
  double estimated_seconds = 0.0;
  BTreeEstimate item_tid_index;
  BTreeEstimate tid_index;
};
NestedLoopAnalysis AnalyzeNestedLoop(const HypotheticalDb& db);

/// Section 4.3: I/O bound of the sort-merge strategy. Cardinality model:
/// |R'_i| = C(|T|, i) x |D| (worst case: nothing filtered), tuple size
/// (i+1) x 4 bytes. The paper's worked example stops after R'_2 (R_3
/// empty): 3 x ||R1|| + 4 x ||R'_2|| = 120,000 accesses ~ 10 minutes,
/// all sequential.
struct SortMergeAnalysis {
  uint64_t r1_pages = 0;
  std::vector<uint64_t> r_prime_pages;  ///< ||R'_2||, ||R'_3||, ...
  uint64_t total_page_accesses = 0;
  double estimated_seconds = 0.0;
};
/// `max_pattern_length` n means R_{n+1} is empty (paper example: 2).
SortMergeAnalysis AnalyzeSortMerge(const HypotheticalDb& db,
                                   uint32_t max_pattern_length);

/// Renders the two analyses side by side as the comparison table the paper
/// builds across Sections 3.2/4.3 ("more than 11 hours" vs "10 minutes").
std::string RenderAnalysisTable(const NestedLoopAnalysis& nl,
                                const SortMergeAnalysis& sm);

}  // namespace setm

#endif  // SETM_COSTMODEL_ANALYSIS_H_

#include "net/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace setm::net {

Status MakeNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK): " +
                           std::string(strerror(errno)));
  }
  int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags < 0 || ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) < 0) {
    return Status::IOError("fcntl(FD_CLOEXEC): " +
                           std::string(strerror(errno)));
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Result<std::unique_ptr<Listener>> Listener::Bind(const std::string& host,
                                                 uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("bind " + host + ":" + std::to_string(port) +
                               ": " + strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = Status::IOError("listen: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  Status nb = MakeNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  // Recover the port the kernel picked when 0 was requested.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s = Status::IOError("getsockname: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  return std::unique_ptr<Listener>(new Listener(fd, ntohs(bound.sin_port)));
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

Result<int> Listener::Accept() {
  int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return -1;
    }
    if (errno == EMFILE || errno == ENFILE) {
      return Status::ResourceExhausted("accept: " +
                                       std::string(strerror(errno)));
    }
    return Status::IOError("accept: " + std::string(strerror(errno)));
  }
  Status nb = MakeNonBlocking(client);
  if (!nb.ok()) {
    ::close(client);
    return nb;
  }
  SetNoDelay(client);
  return client;
}

}  // namespace setm::net

#include "net/line_buffer.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

namespace setm::net {

void LineBuffer::Feed(const char* data, size_t n) {
  size_t i = 0;
  while (i < n) {
    if (discarding_) {
      // Eat the rest of the oversized line; resync after its newline.
      while (i < n && data[i] != '\n') ++i;
      if (i < n) {
        discarding_ = false;
        ++i;
      }
      continue;
    }
    // The next segment: up to the chunk's next newline (or its end).
    size_t start = i;
    while (i < n && data[i] != '\n') ++i;
    const bool terminated = i < n;
    // Length the in-progress line would reach with this segment appended;
    // everything before the last buffered newline is already-accepted
    // complete lines.
    const size_t last_nl = pending_.rfind('\n');
    const size_t open = last_nl == std::string::npos
                            ? pending_.size()
                            : pending_.size() - last_nl - 1;
    if (open + (i - start) > max_line_) {
      // Oversized: drop the partial line, count the event once, and eat
      // bytes up to and including the line's newline.
      pending_.resize(last_nl == std::string::npos ? 0 : last_nl + 1);
      ++oversized_;
      if (terminated) {
        ++i;  // its newline is in this chunk: already resynchronized
      } else {
        discarding_ = true;
      }
      continue;
    }
    pending_.append(data + start, i - start);
    if (terminated) {
      pending_.push_back('\n');
      ++i;
    }
  }
}

bool LineBuffer::NextLine(std::string* line) {
  size_t nl = pending_.find('\n');
  if (nl == std::string::npos) return false;
  size_t len = nl;
  if (len > 0 && pending_[len - 1] == '\r') --len;  // CRLF
  line->assign(pending_, 0, len);
  pending_.erase(0, nl + 1);
  return true;
}

size_t LineBuffer::TakeOversized() {
  size_t n = oversized_;
  oversized_ = 0;
  return n;
}

Status WriteBuffer::Append(const std::string& data) {
  if (pending_bytes() + data.size() > max_) {
    return Status::ResourceExhausted(
        "write backlog would exceed " + std::to_string(max_) +
        " bytes (client not reading responses)");
  }
  // Compact before growing: the already-written prefix is dead weight.
  if (offset_ > 0 && (offset_ >= buf_.size() || offset_ > (max_ >> 2))) {
    buf_.erase(0, offset_);
    offset_ = 0;
  }
  buf_.append(data);
  return Status::OK();
}

Result<size_t> WriteBuffer::DrainTo(int fd) {
  size_t total = 0;
  while (offset_ < buf_.size()) {
    ssize_t n = ::write(fd, buf_.data() + offset_, buf_.size() - offset_);
    if (n > 0) {
      offset_ += static_cast<size_t>(n);
      total += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("write: " + std::string(strerror(errno)));
  }
  if (offset_ >= buf_.size()) {
    buf_.clear();
    offset_ = 0;
  }
  return total;
}

}  // namespace setm::net

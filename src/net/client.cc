#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "net/protocol.h"

namespace setm::net {

namespace {

/// One full connection attempt: fresh socket, timeouts, TCP_NODELAY,
/// connect. Returns the connected fd, or a Status; `*transient` reports
/// whether the failure is worth retrying (a refused connection during
/// server startup / restart, or an interrupted call).
Result<int> TryConnect(const std::string& host, uint16_t port, int timeout_ms,
                       bool* transient) {
  *transient = false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(strerror(errno)));
  }
  if (timeout_ms > 0) {
    struct timeval tv;
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    *transient = errno == ECONNREFUSED || errno == EINTR;
    Status s = Status::IOError("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  return fd;
}

}  // namespace

Result<std::unique_ptr<BlockingClient>> BlockingClient::Connect(
    const std::string& host, uint16_t port, int timeout_ms) {
  // Bounded retry with exponential backoff on transient failures only —
  // ECONNREFUSED (the server is restarting or not yet listening) and EINTR.
  // 5 attempts, 10/20/40/80 ms between them: ~150 ms worst case, so a down
  // shard still fails fast, but a racing startup no longer does.
  constexpr int kAttempts = 5;
  int backoff_ms = 10;
  Status last;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    bool transient = false;
    auto fd_or = TryConnect(host, port, timeout_ms, &transient);
    if (fd_or.ok()) {
      return std::unique_ptr<BlockingClient>(
          new BlockingClient(fd_or.value()));
    }
    last = fd_or.status();
    if (!transient || attempt + 1 == kAttempts) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms *= 2;
  }
  return last;
}

BlockingClient::~BlockingClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status BlockingClient::SendLine(const std::string& line) {
  std::string data = line;
  data += '\n';
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send: " + std::string(strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> BlockingClient::ReadLine() {
  while (true) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("response timed out");
    }
    return Status::IOError("recv: " + std::string(strerror(errno)));
  }
}

Result<ClientResponse> BlockingClient::ReadResponse() {
  auto first_or = ReadLine();
  if (!first_or.ok()) return first_or.status();
  const std::string& first = first_or.value();

  ClientResponse response;
  if (first.rfind("OK", 0) == 0 &&
      (first.size() == 2 || first[2] == ' ')) {
    response.ok = true;
    if (first.size() > 3) response.info = first.substr(3);
    while (true) {
      auto line_or = ReadLine();
      if (!line_or.ok()) return line_or.status();
      const std::string& line = line_or.value();
      if (line == ".") break;
      response.payload += UnstuffPayloadLine(line);
      response.payload += '\n';
    }
    return response;
  }
  if (first.rfind("ERR ", 0) == 0) {
    response.ok = false;
    const std::string rest = first.substr(4);
    const size_t space = rest.find(' ');
    if (space == std::string::npos) {
      response.code = rest;
    } else {
      response.code = rest.substr(0, space);
      response.info = rest.substr(space + 1);
    }
    return response;
  }
  return Status::Corruption("malformed response line: " + first);
}

Result<ClientResponse> BlockingClient::Exec(const std::string& command) {
  SETM_RETURN_IF_ERROR(SendLine(command));
  return ReadResponse();
}

}  // namespace setm::net

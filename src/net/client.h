#ifndef SETM_NET_CLIENT_H_
#define SETM_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace setm::net {

/// One parsed server response.
struct ClientResponse {
  bool ok = false;      ///< "OK ..." vs "ERR ..."
  std::string code;     ///< ERR only: the StatusCode name ("NotFound", ...)
  std::string info;     ///< the rest of the OK line / the ERR message
  std::string payload;  ///< OK only: dot-unstuffed lines up to the "." frame
};

/// A synchronous client for the setm_served line protocol — the building
/// block of setm_loadgen, the server bench and the tests. One request at a
/// time: Exec() writes the command line and blocks until the terminating
/// frame (the "." line of an OK payload, or the single ERR line) arrives.
class BlockingClient {
 public:
  /// Connects with a socket receive timeout (0 = none): a server that stops
  /// responding turns into an IOError instead of a hung client. Transient
  /// connect failures (ECONNREFUSED while a server is still starting,
  /// EINTR) are retried up to 5 times with 10..80 ms exponential backoff —
  /// each attempt on a fresh socket — before the last error is returned; a
  /// genuinely down endpoint still fails in well under a second.
  static Result<std::unique_ptr<BlockingClient>> Connect(
      const std::string& host, uint16_t port, int timeout_ms = 30000);
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Sends one raw line (LF appended). Used for APPEND data rows.
  Status SendLine(const std::string& line);

  /// Sends `command` and reads the full response.
  Result<ClientResponse> Exec(const std::string& command);

  /// Reads one response without sending anything (the APPEND flow: rows are
  /// streamed with SendLine, then the final "." triggers the response).
  Result<ClientResponse> ReadResponse();

  int fd() const { return fd_; }

 private:
  explicit BlockingClient(int fd) : fd_(fd) {}

  Result<std::string> ReadLine();

  int fd_;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace setm::net

#endif  // SETM_NET_CLIENT_H_

#ifndef SETM_NET_EVENT_LOOP_H_
#define SETM_NET_EVENT_LOOP_H_

#include <poll.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace setm::net {

/// Readiness bits delivered to handlers. Error and hangup conditions are
/// folded into kReadEvent so the handler's next read() observes them (EOF
/// or errno) instead of the loop inventing a third code path.
constexpr uint32_t kReadEvent = 1u << 0;
constexpr uint32_t kWriteEvent = 1u << 1;

/// A single-threaded readiness loop over poll(2) — the dispatcher under the
/// mining server. One thread owns the loop; handlers run inline inside
/// PollOnce. The only cross-thread (and async-signal-safe) entry point is
/// Wakeup(): worker threads and signal handlers write one byte to an
/// internal self-pipe to make a sleeping PollOnce return immediately, which
/// is how job completions and SIGTERM reach the loop thread.
///
/// Handlers may Add/SetInterest/Remove any fd — including their own — from
/// inside a callback: registrations are generation-counted, so readiness
/// gathered for an fd that was closed (and possibly reused by accept) in
/// the same round is discarded rather than misdelivered.
class EventLoop {
 public:
  using Handler = std::function<void(uint32_t events)>;

  /// Builds the loop and its wakeup self-pipe.
  static Result<std::unique_ptr<EventLoop>> Create();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with an interest mask. AlreadyExists if registered.
  Status Add(int fd, uint32_t interest, Handler handler);

  /// Replaces the interest mask of a registered fd.
  Status SetInterest(int fd, uint32_t interest);

  /// Drops the registration (the caller closes the fd). Safe to call from
  /// the fd's own handler; no-op for unregistered fds.
  void Remove(int fd);

  /// Waits up to `timeout_ms` (-1 = indefinitely) for readiness, then
  /// dispatches every ready handler once. Returns the number of handler
  /// dispatches; a Wakeup() counts zero but still ends the wait.
  Result<int> PollOnce(int timeout_ms);

  /// Interrupts a sleeping PollOnce. Callable from any thread and from
  /// signal handlers (one write(2), nothing else).
  void Wakeup();

  size_t registered_fds() const { return fds_.size(); }

 private:
  EventLoop() = default;

  struct Registration {
    uint32_t interest = 0;
    Handler handler;
    uint64_t gen = 0;
  };

  std::unordered_map<int, Registration> fds_;
  uint64_t next_gen_ = 1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] polled, [1] written
  std::vector<struct pollfd> pollfds_;  ///< scratch, rebuilt per round
};

}  // namespace setm::net

#endif  // SETM_NET_EVENT_LOOP_H_

#ifndef SETM_NET_SERVER_H_
#define SETM_NET_SERVER_H_

#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/types.h"
#include "exec/job.h"
#include "net/event_loop.h"
#include "net/listener.h"
#include "relational/database.h"

namespace setm {
class WorkerPool;
}

namespace setm::net {

/// Knobs of the resident mining server. Admission control is the theme:
/// every limit here turns "overload" into a protocol error or a closed
/// connection instead of unbounded memory or a wedged loop.
struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; MiningServer::port() reports it
  int backlog = 64;

  // -- admission control ----------------------------------------------------
  /// Connections beyond this are answered "ERR ResourceExhausted" + close.
  size_t max_connections = 64;
  /// Request lines longer than this are rejected (the line is discarded,
  /// the connection survives).
  size_t max_line_bytes = 8192;
  /// Outgoing backlog cap per connection; exceeded = close (the client is
  /// requesting payloads and not reading them).
  size_t max_write_buffer_bytes = 8u << 20;
  /// Per-APPEND batch row cap.
  size_t max_append_rows = 1u << 20;
  /// Close connections with no traffic and no running job after this long.
  /// 0 disables.
  uint64_t idle_timeout_ms = 300000;
  /// Cancel jobs (through the observer seam) running longer than this.
  /// 0 disables.
  uint64_t request_timeout_ms = 0;
  /// Per-connection in-flight job limit is fixed at 1: a second MINE /
  /// APPEND / RULES / EXPLAIN while one runs is rejected with ERR (PING,
  /// STATS and QUIT are always served from the loop).

  // -- execution ------------------------------------------------------------
  /// Workers executing mining jobs. This pool is distinct from the
  /// database's worker pool (which parallel miners use for partitions), so
  /// a job can fan out without deadlocking its own slot.
  size_t job_threads = 4;
  /// THREADS default for MINE requests that do not specify one.
  size_t default_mine_threads = 1;
  /// ItemsetStore prefix backing the shared result cache ("" disables it).
  std::string store_prefix = "fi";
  /// Staleness budget handed to the planner (see PlannerOptions).
  double full_remine_fraction = 0.25;

  // -- observability / lifecycle -------------------------------------------
  /// Render every finished request's TraceSpan tree to stderr.
  bool trace = false;
  /// Polled every loop tick: when it becomes non-zero the server starts a
  /// graceful shutdown (signal handlers set it and Wakeup() the loop).
  const volatile std::sig_atomic_t* shutdown_flag = nullptr;
  /// How long a graceful shutdown waits for in-flight jobs to notice their
  /// cancellation before Run() returns anyway.
  uint64_t shutdown_grace_ms = 5000;

  /// Test seams. `on_iteration` runs on the job thread once per mining /
  /// rule-generation iteration, before the cancellation check — tests park
  /// a job here to make busy-rejection and disconnect-cancellation
  /// deterministic.
  struct TestHooks {
    std::function<void(const IterationStats&)> on_iteration;
  };
  TestHooks hooks;
};

/// Monotonic counters for tests and the daemon's exit report; the same
/// series are exported process-wide as `setm_srv_*` metrics.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t requests = 0;
  uint64_t disconnects = 0;
  uint64_t cancelled_jobs = 0;
  uint64_t rejected_connections = 0;
  uint64_t rejected_busy = 0;
  uint64_t parse_errors = 0;
  uint64_t oversized_lines = 0;
  uint64_t request_timeouts = 0;
  uint64_t idle_closes = 0;
};

/// The resident mining daemon's engine: one event loop serving the line
/// protocol (net/protocol.h) over a non-blocking listener, dispatching
/// MINE / APPEND / RULES / EXPLAIN — and LCOUNT / MERGE, the shard half of
/// the distributed two-phase count — onto a WorkerPool as cancellable jobs,
/// and answering PING / STATS / QUIT inline. One instance serves one open Database; the database stays open
/// (buffer pool warm, stored runs fresh) across every client.
///
/// Threading: the loop thread owns all sessions and the listener; jobs run
/// on the job pool with the database serialized under an internal mutex
/// (intra-job parallelism comes from the planner's partitioned executors);
/// completions return to the loop through a CompletionPipe. A client
/// disconnect, request timeout or shutdown cancels its job cooperatively —
/// the per-job observer vetoes the next iteration, which is the same
/// "stops within one iteration" contract the CLI's Ctrl-C uses.
class MiningServer {
 public:
  static Result<std::unique_ptr<MiningServer>> Create(Database* db,
                                                      ServerOptions options);
  ~MiningServer();

  MiningServer(const MiningServer&) = delete;
  MiningServer& operator=(const MiningServer&) = delete;

  /// The port actually bound (resolves port 0).
  uint16_t port() const;

  /// Serves until a shutdown is requested (RequestShutdown, the options'
  /// shutdown_flag, or Stop). The calling thread becomes the loop thread.
  Status Run();

  /// Starts Run() on an internal thread (tests; the daemon calls Run).
  Status Start();
  /// Requests shutdown and joins the Start() thread; returns Run's Status.
  Status Stop();

  /// Thread-safe graceful-shutdown request: stop accepting, cancel
  /// in-flight jobs, flush what can be flushed, return from Run().
  void RequestShutdown();

  ServerStats Stats() const;

 private:
  struct Session;
  struct Job;

  MiningServer(Database* db, ServerOptions options);

  void AcceptPending();
  void OnSessionEvent(uint64_t session_id, uint32_t events);
  void ProcessLines(uint64_t session_id);
  void HandleCommand(Session* session, const std::string& line);
  void HandleAppendData(Session* session, const std::string& line);
  void HandleMergeData(Session* session, const std::string& line);
  void DispatchJob(Session* session, std::shared_ptr<Job> job);
  void RunJobBody(const std::shared_ptr<Job>& job);  // job-pool thread
  Status ExecuteMineJob(Job* job);                   // under db_mutex_
  Status ExecuteExplainJob(Job* job);                // under db_mutex_
  Status ExecuteLcountJob(Job* job);                 // under db_mutex_
  Status ExecuteMergeJob(Job* job);                  // under db_mutex_
  Status ExecuteRulesJob(Job* job);
  void DrainCompletions();
  void FinishJob(uint64_t job_id);
  void Send(Session* session, const std::string& framed);
  void FlushSession(Session* session);
  void CloseSession(uint64_t session_id, const char* reason);
  void Tick();
  void BeginShutdown();

  Database* db_;
  ServerOptions options_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<Listener> listener_;
  std::unique_ptr<CompletionPipe> completions_;
  uint16_t bound_port_ = 0;  ///< cached: listener_ dies at shutdown

  uint64_t next_session_id_ = 1;
  uint64_t next_job_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_;
  std::unordered_map<uint64_t, std::shared_ptr<Job>> jobs_;

  /// Serializes job access to the database (catalog DDL from store
  /// write-backs, batch appends and scratch relations are not concurrency-
  /// safe); held only on job-pool threads, never on the loop thread.
  std::mutex db_mutex_;

  std::atomic<bool> shutdown_requested_{false};
  bool shutting_down_ = false;  ///< loop-thread state
  bool stop_loop_ = false;
  WallTimer shutdown_timer_;

  struct AtomicStats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_active{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> disconnects{0};
    std::atomic<uint64_t> cancelled_jobs{0};
    std::atomic<uint64_t> rejected_connections{0};
    std::atomic<uint64_t> rejected_busy{0};
    std::atomic<uint64_t> parse_errors{0};
    std::atomic<uint64_t> oversized_lines{0};
    std::atomic<uint64_t> request_timeouts{0};
    std::atomic<uint64_t> idle_closes{0};
  };
  AtomicStats stats_;

  std::thread run_thread_;  ///< Start()/Stop() only
  Status run_status_;
  std::mutex run_status_mutex_;

  /// Declared last: destroyed first, so the destructor joins every
  /// in-flight job before sessions, pipes or the loop go away.
  std::unique_ptr<WorkerPool> job_pool_;
};

}  // namespace setm::net

#endif  // SETM_NET_SERVER_H_

#include "net/protocol.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace setm::net {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

bool ValidTableName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

/// "<pct>%" -> fraction in min_support; bare integer -> min_support_count.
Status ParseSupportSpec(const std::string& spec, Command* out) {
  if (spec.empty()) return Status::InvalidArgument("empty SUPPORT spec");
  if (spec.back() == '%') {
    char* end = nullptr;
    double pct = std::strtod(spec.c_str(), &end);
    if (end != spec.c_str() + spec.size() - 1 || pct <= 0.0 || pct > 100.0) {
      return Status::InvalidArgument("SUPPORT percentage must be in (0,100]: " +
                                     spec);
    }
    out->min_support = pct / 100.0;
    out->min_support_count = 0;
    return Status::OK();
  }
  char* end = nullptr;
  long long count = std::strtoll(spec.c_str(), &end, 10);
  if (end != spec.c_str() + spec.size() || count < 1) {
    return Status::InvalidArgument(
        "SUPPORT must be \"<pct>%\" or a positive integer count: " + spec);
  }
  out->min_support_count = count;
  return Status::OK();
}

Status ParsePositive(const std::string& token, const char* what, size_t max,
                     size_t* out) {
  char* end = nullptr;
  long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || v < 1 ||
      static_cast<size_t>(v) > max) {
    return Status::InvalidArgument(std::string(what) + " must be in [1," +
                                   std::to_string(max) + "]: " + token);
  }
  *out = static_cast<size_t>(v);
  return Status::OK();
}

/// Shared by MINE, EXPLAIN and APPEND: <table> SUPPORT <spec> [ALGO ..]
/// [THREADS ..] [MAXK ..].
Status ParseMineArgs(const std::vector<std::string>& tokens, Command* out) {
  if (tokens.size() < 4) {
    return Status::InvalidArgument(
        "usage: " + Upper(tokens[0]) +
        " <table> SUPPORT <spec> [ALGO <name>] [THREADS <n>] [MAXK <k>]");
  }
  out->table = tokens[1];
  if (!ValidTableName(out->table)) {
    return Status::InvalidArgument("invalid table name: " + tokens[1]);
  }
  if (Upper(tokens[2]) != "SUPPORT") {
    return Status::InvalidArgument("expected SUPPORT, got: " + tokens[2]);
  }
  SETM_RETURN_IF_ERROR(ParseSupportSpec(tokens[3], out));
  size_t i = 4;
  while (i < tokens.size()) {
    std::string key = Upper(tokens[i]);
    if (i + 1 >= tokens.size()) {
      return Status::InvalidArgument(key + " requires a value");
    }
    const std::string& value = tokens[i + 1];
    if (key == "ALGO") {
      out->algo = value;
    } else if (key == "THREADS") {
      SETM_RETURN_IF_ERROR(ParsePositive(value, "THREADS", 64, &out->threads));
    } else if (key == "MAXK") {
      SETM_RETURN_IF_ERROR(ParsePositive(value, "MAXK", 64, &out->max_k));
    } else {
      return Status::InvalidArgument("unknown option: " + tokens[i]);
    }
    i += 2;
  }
  return Status::OK();
}

}  // namespace

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kMine:
      return "mine";
    case Verb::kAppend:
      return "append";
    case Verb::kRules:
      return "rules";
    case Verb::kExplain:
      return "explain";
    case Verb::kLcount:
      return "lcount";
    case Verb::kMerge:
      return "merge";
    case Verb::kStats:
      return "stats";
    case Verb::kPing:
      return "ping";
    case Verb::kQuit:
      return "quit";
  }
  return "unknown";
}

Result<Command> ParseCommand(const std::string& line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Status::InvalidArgument("empty command");
  std::string verb = Upper(tokens[0]);
  Command cmd;

  if (verb == "PING") {
    if (tokens.size() != 1) return Status::InvalidArgument("PING takes no arguments");
    cmd.verb = Verb::kPing;
    return cmd;
  }
  if (verb == "QUIT") {
    if (tokens.size() != 1) return Status::InvalidArgument("QUIT takes no arguments");
    cmd.verb = Verb::kQuit;
    return cmd;
  }
  if (verb == "STATS") {
    if (tokens.size() > 2) {
      return Status::InvalidArgument("usage: STATS [text|json|prom]");
    }
    cmd.verb = Verb::kStats;
    if (tokens.size() == 2) {
      std::string format = tokens[1];
      std::transform(format.begin(), format.end(), format.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (format != "text" && format != "json" && format != "prom") {
        return Status::InvalidArgument("STATS format must be text, json or prom");
      }
      cmd.stats_format = format;
    }
    return cmd;
  }
  if (verb == "MINE" || verb == "EXPLAIN" || verb == "APPEND") {
    cmd.verb = verb == "MINE"      ? Verb::kMine
               : verb == "EXPLAIN" ? Verb::kExplain
                                   : Verb::kAppend;
    SETM_RETURN_IF_ERROR(ParseMineArgs(tokens, &cmd));
    return cmd;
  }
  if (verb == "LCOUNT") {
    cmd.verb = Verb::kLcount;
    // Continuation form: LCOUNT K <k> drives the connection's shard run.
    if (tokens.size() == 3 && Upper(tokens[1]) == "K") {
      SETM_RETURN_IF_ERROR(ParsePositive(tokens[2], "K", 64, &cmd.shard_k));
      if (cmd.shard_k < 2) {
        return Status::InvalidArgument(
            "a shard run starts with LCOUNT <table> K 1 "
            "[METHOD sortmerge|hash] [FILTER]");
      }
      return cmd;
    }
    // Begin form: LCOUNT <table> K 1 [METHOD sortmerge|hash] [FILTER].
    if (tokens.size() < 4) {
      return Status::InvalidArgument(
          "usage: LCOUNT <table> K 1 [METHOD sortmerge|hash] [FILTER] "
          "or LCOUNT K <k>");
    }
    cmd.table = tokens[1];
    if (!ValidTableName(cmd.table)) {
      return Status::InvalidArgument("invalid table name: " + tokens[1]);
    }
    if (Upper(tokens[2]) != "K" || tokens[3] != "1") {
      return Status::InvalidArgument(
          "a new shard run must begin at K 1: " + line);
    }
    cmd.shard_k = 1;
    size_t i = 4;
    while (i < tokens.size()) {
      std::string key = Upper(tokens[i]);
      if (key == "FILTER") {
        cmd.shard_filter = true;
        i += 1;
      } else if (key == "METHOD") {
        if (i + 1 >= tokens.size()) {
          return Status::InvalidArgument("METHOD requires a value");
        }
        std::string method = tokens[i + 1];
        std::transform(method.begin(), method.end(), method.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (method != "sortmerge" && method != "hash") {
          return Status::InvalidArgument(
              "METHOD must be sortmerge or hash: " + tokens[i + 1]);
        }
        cmd.shard_method = method;
        i += 2;
      } else {
        return Status::InvalidArgument("unknown option: " + tokens[i]);
      }
    }
    return cmd;
  }
  if (verb == "MERGE") {
    if (tokens.size() != 3 || Upper(tokens[1]) != "K") {
      return Status::InvalidArgument(
          "usage: MERGE K <k> (then one itemset per line, terminated by .)");
    }
    cmd.verb = Verb::kMerge;
    SETM_RETURN_IF_ERROR(ParsePositive(tokens[2], "K", 64, &cmd.shard_k));
    return cmd;
  }
  if (verb == "RULES") {
    if (tokens.size() < 2 || tokens.size() > 4) {
      return Status::InvalidArgument(
          "usage: RULES <conf>[%] [MODE single|subsets]");
    }
    cmd.verb = Verb::kRules;
    std::string conf = tokens[1];
    if (!conf.empty() && conf.back() == '%') conf.pop_back();
    char* end = nullptr;
    double pct = std::strtod(conf.c_str(), &end);
    if (conf.empty() || end != conf.c_str() + conf.size() || pct <= 0.0 ||
        pct > 100.0) {
      return Status::InvalidArgument(
          "RULES confidence must be a percentage in (0,100]: " + tokens[1]);
    }
    cmd.min_confidence = pct / 100.0;
    if (tokens.size() >= 3) {
      if (Upper(tokens[2]) != "MODE" || tokens.size() != 4) {
        return Status::InvalidArgument(
            "usage: RULES <conf>[%] [MODE single|subsets]");
      }
      std::string mode = Upper(tokens[3]);
      if (mode == "SINGLE") {
        cmd.rule_mode = RuleMode::kSingleConsequent;
      } else if (mode == "SUBSETS") {
        cmd.rule_mode = RuleMode::kAnySubset;
      } else {
        return Status::InvalidArgument("MODE must be single or subsets: " +
                                       tokens[3]);
      }
    }
    return cmd;
  }
  return Status::InvalidArgument("unknown command: " + tokens[0]);
}

Result<Transaction> ParseAppendRow(const std::string& line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.size() < 2) {
    return Status::InvalidArgument(
        "append row must be \"<trans_id> <item> [<item> ...]\": " + line);
  }
  Transaction t;
  for (size_t i = 0; i < tokens.size(); ++i) {
    char* end = nullptr;
    long long v = std::strtoll(tokens[i].c_str(), &end, 10);
    if (end != tokens[i].c_str() + tokens[i].size() || v < 0 || v > INT32_MAX) {
      return Status::InvalidArgument("append row token not a non-negative "
                                     "32-bit integer: " + tokens[i]);
    }
    if (i == 0) {
      t.id = static_cast<TransactionId>(v);
    } else {
      t.items.push_back(static_cast<ItemId>(v));
    }
  }
  std::sort(t.items.begin(), t.items.end());
  t.items.erase(std::unique(t.items.begin(), t.items.end()), t.items.end());
  return t;
}

Result<std::vector<ItemId>> ParseItemsetLine(const std::string& line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty itemset line");
  }
  std::vector<ItemId> items;
  items.reserve(tokens.size());
  for (const std::string& token : tokens) {
    char* end = nullptr;
    long long v = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size() || v < 0 || v > INT32_MAX) {
      return Status::InvalidArgument(
          "itemset token not a non-negative 32-bit integer: " + token);
    }
    items.push_back(static_cast<ItemId>(v));
  }
  for (size_t i = 1; i < items.size(); ++i) {
    if (items[i] <= items[i - 1]) {
      return Status::InvalidArgument(
          "itemset items must be strictly ascending: " + line);
    }
  }
  return items;
}

std::string FrameOk(const std::string& info, const std::string& payload) {
  std::string out = "OK ";
  out += info;
  out += '\n';
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find('\n', start);
    size_t len = (end == std::string::npos ? payload.size() : end) - start;
    if (len > 0 && payload[start] == '.') out += '.';  // dot-stuffing
    out.append(payload, start, len);
    out += '\n';
    if (end == std::string::npos) break;
    start = end + 1;
  }
  out += ".\n";
  return out;
}

std::string FrameError(const Status& status) {
  std::string out = "ERR ";
  out += StatusCodeName(status.code());
  out += ' ';
  // Protocol errors are one line by contract; flatten any embedded breaks.
  std::string message = status.message();
  std::replace(message.begin(), message.end(), '\n', ' ');
  out += message;
  out += '\n';
  return out;
}

std::string RenderItemsets(const FrequentItemsets& itemsets) {
  std::string out;
  for (size_t k = 1; k <= itemsets.MaxSize(); ++k) {
    for (const PatternCount& p : itemsets.OfSize(k)) {
      for (ItemId item : p.items) {
        out += std::to_string(item);
        out += ' ';
      }
      out += std::to_string(p.count);
      out += '\n';
    }
  }
  return out;
}

std::string UnstuffPayloadLine(const std::string& line) {
  if (line.size() >= 2 && line[0] == '.' && line[1] == '.') {
    return line.substr(1);
  }
  return line;
}

}  // namespace setm::net

#include "net/event_loop.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace setm::net {

namespace {

Status SetNonBlockingCloexec(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK): " +
                           std::string(strerror(errno)));
  }
  int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags < 0 || ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) < 0) {
    return Status::IOError("fcntl(FD_CLOEXEC): " +
                           std::string(strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  std::unique_ptr<EventLoop> loop(new EventLoop());
  if (::pipe(loop->wake_fds_) != 0) {
    return Status::IOError("pipe: " + std::string(strerror(errno)));
  }
  SETM_RETURN_IF_ERROR(SetNonBlockingCloexec(loop->wake_fds_[0]));
  SETM_RETURN_IF_ERROR(SetNonBlockingCloexec(loop->wake_fds_[1]));
  return loop;
}

EventLoop::~EventLoop() {
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

Status EventLoop::Add(int fd, uint32_t interest, Handler handler) {
  auto [it, inserted] = fds_.emplace(fd, Registration{});
  if (!inserted) {
    return Status::AlreadyExists("fd " + std::to_string(fd) +
                                 " already registered");
  }
  it->second.interest = interest;
  it->second.handler = std::move(handler);
  it->second.gen = next_gen_++;
  return Status::OK();
}

Status EventLoop::SetInterest(int fd, uint32_t interest) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return Status::NotFound("fd " + std::to_string(fd) + " not registered");
  }
  it->second.interest = interest;
  return Status::OK();
}

void EventLoop::Remove(int fd) { fds_.erase(fd); }

Result<int> EventLoop::PollOnce(int timeout_ms) {
  pollfds_.clear();
  // Slot 0 is always the wakeup pipe; handler slots follow with their
  // registration generation remembered so a handler that closes an fd
  // mid-round (whose number accept may immediately reuse) cannot have the
  // stale readiness delivered to the new owner.
  pollfds_.push_back({wake_fds_[0], POLLIN, 0});
  std::vector<std::pair<int, uint64_t>> order;
  order.reserve(fds_.size());
  for (const auto& [fd, reg] : fds_) {
    short events = 0;
    if (reg.interest & kReadEvent) events |= POLLIN;
    if (reg.interest & kWriteEvent) events |= POLLOUT;
    pollfds_.push_back({fd, events, 0});
    order.emplace_back(fd, reg.gen);
  }

  int ready = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return 0;
    return Status::IOError("poll: " + std::string(strerror(errno)));
  }

  // Drain wakeup bytes; their only job was ending the wait.
  if (pollfds_[0].revents != 0) {
    char buf[256];
    while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
    }
  }

  int dispatched = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    short revents = pollfds_[i + 1].revents;
    if (revents == 0) continue;
    auto it = fds_.find(order[i].first);
    if (it == fds_.end() || it->second.gen != order[i].second) continue;
    uint32_t events = 0;
    if (revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) {
      events |= kReadEvent;
    }
    if (revents & POLLOUT) events |= kWriteEvent;
    if (events == 0) continue;
    // The handler may mutate fds_; copy enough to survive that.
    Handler handler = it->second.handler;
    handler(events);
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::Wakeup() {
  // Async-signal-safe by construction: one write, errors ignored (a full
  // pipe already guarantees the loop will wake).
  char byte = 'w';
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

}  // namespace setm::net

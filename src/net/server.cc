#include "net/server.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include <algorithm>

#include "common/logging.h"
#include "core/mining_planner.h"
#include "core/miner_registry.h"
#include "core/rules.h"
#include "exec/worker_pool.h"
#include "net/line_buffer.h"
#include "net/protocol.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/local_backend.h"

namespace setm::net {

namespace {

/// Process-wide `setm_srv_*` series, resolved once (the same registry the
/// STATS verb exports, so the server reports on itself).
struct SrvMetrics {
  obs::Counter* connections_total;
  obs::Gauge* connections_active;
  obs::Counter* requests_total;
  obs::Counter* rejected_connections_total;
  obs::Counter* rejected_busy_total;
  obs::Counter* oversized_lines_total;
  obs::Counter* parse_errors_total;
  obs::Counter* disconnects_total;
  obs::Counter* cancelled_jobs_total;
  obs::Counter* request_timeouts_total;
  obs::Counter* idle_closes_total;
  obs::Counter* bytes_read_total;
  obs::Counter* bytes_written_total;
  obs::Histogram* request_micros;
};

SrvMetrics& Srv() {
  static SrvMetrics m = [] {
    auto* reg = obs::MetricsRegistry::Global();
    SrvMetrics s;
    s.connections_total = reg->GetCounter(
        "setm_srv_connections_total", "connections accepted by the server");
    s.connections_active =
        reg->GetGauge("setm_srv_connections_active", "open connections");
    s.requests_total = reg->GetCounter("setm_srv_requests_total",
                                       "request lines parsed successfully");
    s.rejected_connections_total =
        reg->GetCounter("setm_srv_rejected_connections_total",
                        "connections refused by the max-connections cap");
    s.rejected_busy_total =
        reg->GetCounter("setm_srv_rejected_busy_total",
                        "requests refused because one was already in flight");
    s.oversized_lines_total = reg->GetCounter(
        "setm_srv_oversized_lines_total", "request lines over the byte cap");
    s.parse_errors_total =
        reg->GetCounter("setm_srv_parse_errors_total",
                        "request lines answered with a parse error");
    s.disconnects_total = reg->GetCounter("setm_srv_disconnects_total",
                                          "client-initiated disconnects");
    s.cancelled_jobs_total =
        reg->GetCounter("setm_srv_cancelled_jobs_total",
                        "jobs cancelled (disconnect, timeout, shutdown)");
    s.request_timeouts_total =
        reg->GetCounter("setm_srv_request_timeouts_total",
                        "jobs cancelled by the request timeout");
    s.idle_closes_total = reg->GetCounter(
        "setm_srv_idle_closes_total", "connections closed by the idle timeout");
    s.bytes_read_total =
        reg->GetCounter("setm_srv_bytes_read_total", "bytes read from clients");
    s.bytes_written_total = reg->GetCounter("setm_srv_bytes_written_total",
                                            "bytes written to clients");
    s.request_micros = reg->GetHistogram(
        "setm_srv_request_micros",
        "dispatch-to-completion latency of mining jobs, microseconds");
    return s;
  }();
  return m;
}

obs::Counter* VerbCounter(Verb verb) {
  return obs::MetricsRegistry::Global()->GetCounter(
      std::string("setm_srv_requests_") + VerbName(verb) + "_total",
      "requests by verb");
}

}  // namespace

/// One connected client, owned by the loop thread.
struct MiningServer::Session {
  enum class State {
    kCommand,      ///< expecting a request line
    kAppend,       ///< collecting APPEND rows until "."
    kAppendDrain,  ///< row error: swallow rows until ".", then answer ERR
    kMerge,        ///< collecting MERGE itemsets until "."
    kMergeDrain,   ///< itemset error: swallow until ".", then answer ERR
    kClosing,      ///< QUIT/shutdown: flush, then close; input ignored
  };

  Session(uint64_t id_in, int fd_in, const ServerOptions& options)
      : id(id_in),
        fd(fd_in),
        in(options.max_line_bytes),
        out(options.max_write_buffer_bytes) {}

  uint64_t id;
  int fd;
  LineBuffer in;
  WriteBuffer out;
  State state = State::kCommand;
  /// The in-flight job (at most one per connection).
  std::shared_ptr<Job> job;
  /// The last successful MINE/APPEND answer, the input RULES works on.
  std::shared_ptr<const FrequentItemsets> last_itemsets;
  /// APPEND collection state.
  Command append_cmd;
  TransactionDb append_batch;
  Status append_error;
  /// The connection's shard run (installed by a successful "LCOUNT ... K 1",
  /// driven by later LCOUNT/MERGE requests, replaced by the next K 1).
  std::shared_ptr<shard::LocalShardBackend> shard_run;
  /// MERGE collection state.
  Command merge_cmd;
  std::vector<std::vector<ItemId>> merge_keys;
  Status merge_error;
  WallTimer activity;
};

/// One dispatched request. The loop thread fills the inputs before Submit,
/// the worker fills the results before Notify; the pool and pipe mutexes
/// order the two phases, so neither side needs further locking (the cancel
/// flag and timeout bit, written concurrently, are atomics).
struct MiningServer::Job {
  uint64_t id = 0;
  uint64_t session_id = 0;
  Verb verb = Verb::kMine;
  Command cmd;
  CancelFlag cancel;
  std::atomic<bool> timed_out{false};
  WallTimer dispatched;
  TransactionDb append_batch;                             ///< APPEND input
  std::shared_ptr<const FrequentItemsets> rules_input;    ///< RULES input
  /// LCOUNT/MERGE: the shard backend this job drives. A fresh backend for
  /// "LCOUNT ... K 1" (installed into the session on success), the session's
  /// current run otherwise.
  std::shared_ptr<shard::LocalShardBackend> shard_backend;
  std::vector<std::vector<ItemId>> merge_keys;            ///< MERGE input

  // Worker-filled results.
  std::string response;  ///< fully framed (OK payload or ERR line)
  std::shared_ptr<const FrequentItemsets> result_itemsets;
  /// LCOUNT K 1 success: FinishJob installs shard_backend as the session's
  /// run. Any shard-job failure instead tears the session's run down.
  bool shard_install = false;
  bool shard_teardown = false;
  bool cancelled_result = false;
  std::unique_ptr<obs::TraceSpan> trace_root;
};

namespace {

/// The per-job cancellation seam: vetoes the next iteration once the loop
/// thread cancelled the job (disconnect, QUIT, shutdown) or the request
/// timeout elapsed. Runs on the job thread inside the mining loop.
class JobObserver : public MiningObserver {
 public:
  JobObserver(CancelFlag* cancel, std::atomic<bool>* timed_out,
              const WallTimer* dispatched, const ServerOptions* options)
      : cancel_(cancel),
        timed_out_(timed_out),
        dispatched_(dispatched),
        options_(options) {}

  bool OnIteration(const IterationStats& stats) override {
    if (options_->hooks.on_iteration) options_->hooks.on_iteration(stats);
    if (options_->request_timeout_ms > 0 &&
        dispatched_->ElapsedSeconds() * 1000.0 >
            static_cast<double>(options_->request_timeout_ms)) {
      timed_out_->store(true, std::memory_order_relaxed);
      return false;
    }
    return !cancel_->cancelled();
  }

 private:
  CancelFlag* cancel_;
  std::atomic<bool>* timed_out_;
  const WallTimer* dispatched_;
  const ServerOptions* options_;
};

}  // namespace

MiningServer::MiningServer(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

MiningServer::~MiningServer() {
  RequestShutdown();
  if (run_thread_.joinable()) run_thread_.join();
  for (auto& [id, job] : jobs_) job->cancel.Cancel();
  // job_pool_ (declared last, destroyed first) joins in-flight jobs here.
  job_pool_.reset();
  for (auto& [id, session] : sessions_) ::close(session->fd);
  sessions_.clear();
}

Result<std::unique_ptr<MiningServer>> MiningServer::Create(
    Database* db, ServerOptions options) {
  if (db == nullptr) {
    return Status::InvalidArgument("server requires an open database");
  }
  if (options.job_threads == 0) options.job_threads = 1;
  if (options.default_mine_threads == 0) options.default_mine_threads = 1;
  if (options.max_connections == 0) options.max_connections = 1;
  std::unique_ptr<MiningServer> server(
      new MiningServer(db, std::move(options)));

  auto loop_or = EventLoop::Create();
  if (!loop_or.ok()) return loop_or.status();
  server->loop_ = std::move(loop_or).value();

  auto pipe_or = CompletionPipe::Create();
  if (!pipe_or.ok()) return pipe_or.status();
  server->completions_ = std::move(pipe_or).value();

  auto listener_or = Listener::Bind(server->options_.host,
                                    server->options_.port,
                                    server->options_.backlog);
  if (!listener_or.ok()) return listener_or.status();
  server->listener_ = std::move(listener_or).value();
  server->bound_port_ = server->listener_->port();

  server->job_pool_ =
      std::make_unique<WorkerPool>(server->options_.job_threads);

  MiningServer* s = server.get();
  SETM_RETURN_IF_ERROR(server->loop_->Add(
      server->listener_->fd(), kReadEvent,
      [s](uint32_t) { s->AcceptPending(); }));
  SETM_RETURN_IF_ERROR(server->loop_->Add(
      server->completions_->read_fd(), kReadEvent,
      [s](uint32_t) { s->DrainCompletions(); }));
  return server;
}

uint16_t MiningServer::port() const { return bound_port_; }

void MiningServer::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_relaxed);
  if (loop_ != nullptr) loop_->Wakeup();
}

Status MiningServer::Start() {
  if (run_thread_.joinable()) {
    return Status::AlreadyExists("server already started");
  }
  run_thread_ = std::thread([this] {
    Status s = Run();
    std::lock_guard<std::mutex> lock(run_status_mutex_);
    run_status_ = s;
  });
  return Status::OK();
}

Status MiningServer::Stop() {
  RequestShutdown();
  if (run_thread_.joinable()) run_thread_.join();
  std::lock_guard<std::mutex> lock(run_status_mutex_);
  return run_status_;
}

ServerStats MiningServer::Stats() const {
  ServerStats out;
  out.connections_accepted = stats_.connections_accepted.load();
  out.connections_active = stats_.connections_active.load();
  out.requests = stats_.requests.load();
  out.disconnects = stats_.disconnects.load();
  out.cancelled_jobs = stats_.cancelled_jobs.load();
  out.rejected_connections = stats_.rejected_connections.load();
  out.rejected_busy = stats_.rejected_busy.load();
  out.parse_errors = stats_.parse_errors.load();
  out.oversized_lines = stats_.oversized_lines.load();
  out.request_timeouts = stats_.request_timeouts.load();
  out.idle_closes = stats_.idle_closes.load();
  return out;
}

Status MiningServer::Run() {
  SETM_LOG(kInfo) << "serving on " << options_.host << ":" << bound_port_
                  << " (" << options_.job_threads << " job threads)";
  while (!stop_loop_) {
    const int timeout_ms = shutting_down_ ? 20 : 100;
    auto n_or = loop_->PollOnce(timeout_ms);
    if (!n_or.ok()) return n_or.status();
    Tick();
  }
  std::vector<uint64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  for (uint64_t id : ids) CloseSession(id, "server stopped");
  SETM_LOG(kInfo) << "server stopped";
  return Status::OK();
}

void MiningServer::Tick() {
  if (!shutting_down_ &&
      (shutdown_requested_.load(std::memory_order_relaxed) ||
       (options_.shutdown_flag != nullptr && *options_.shutdown_flag != 0))) {
    BeginShutdown();
  }

  if (options_.request_timeout_ms > 0) {
    for (auto& [id, session] : sessions_) {
      Job* job = session->job.get();
      if (job != nullptr && !job->cancel.cancelled() &&
          job->dispatched.ElapsedSeconds() * 1000.0 >
              static_cast<double>(options_.request_timeout_ms)) {
        job->timed_out.store(true, std::memory_order_relaxed);
        job->cancel.Cancel();
      }
    }
  }

  if (options_.idle_timeout_ms > 0 && !shutting_down_) {
    std::vector<uint64_t> idle;
    for (auto& [id, session] : sessions_) {
      if (session->job == nullptr && session->out.empty() &&
          session->state == Session::State::kCommand &&
          session->activity.ElapsedSeconds() * 1000.0 >
              static_cast<double>(options_.idle_timeout_ms)) {
        idle.push_back(id);
      }
    }
    for (uint64_t id : idle) {
      stats_.idle_closes.fetch_add(1);
      Srv().idle_closes_total->Increment();
      CloseSession(id, "idle timeout");
    }
  }

  if (shutting_down_) {
    const bool grace_over =
        shutdown_timer_.ElapsedSeconds() * 1000.0 >
        static_cast<double>(options_.shutdown_grace_ms);
    if (jobs_.empty()) {
      std::vector<uint64_t> done;
      for (auto& [id, session] : sessions_) {
        if (session->out.empty() || grace_over) done.push_back(id);
      }
      for (uint64_t id : done) CloseSession(id, "shutdown");
      if (sessions_.empty()) stop_loop_ = true;
    } else if (grace_over) {
      SETM_LOG(kWarn) << "shutdown grace elapsed with " << jobs_.size()
                      << " jobs still running; abandoning their responses";
      std::vector<uint64_t> ids;
      for (const auto& [id, session] : sessions_) ids.push_back(id);
      for (uint64_t id : ids) CloseSession(id, "shutdown (grace elapsed)");
      stop_loop_ = true;
    }
  }
}

void MiningServer::BeginShutdown() {
  shutting_down_ = true;
  shutdown_timer_.Restart();
  SETM_LOG(kInfo) << "shutdown requested: " << sessions_.size()
                  << " connections, " << jobs_.size() << " jobs in flight";
  if (listener_ != nullptr) {
    loop_->Remove(listener_->fd());
    listener_.reset();  // stop accepting; closes the socket
  }
  for (auto& [id, session] : sessions_) {
    session->state = Session::State::kClosing;
    if (session->job != nullptr) session->job->cancel.Cancel();
  }
}

void MiningServer::AcceptPending() {
  while (listener_ != nullptr) {
    auto fd_or = listener_->Accept();
    if (!fd_or.ok()) {
      SETM_LOG(kWarn) << "accept failed: " << fd_or.status().ToString();
      return;
    }
    const int fd = fd_or.value();
    if (fd < 0) return;  // drained
    stats_.connections_accepted.fetch_add(1);
    Srv().connections_total->Increment();
    if (shutting_down_ || sessions_.size() >= options_.max_connections) {
      stats_.rejected_connections.fetch_add(1);
      Srv().rejected_connections_total->Increment();
      const std::string err = FrameError(Status::ResourceExhausted(
          shutting_down_
              ? "server shutting down"
              : "server at --max-conns " +
                    std::to_string(options_.max_connections) +
                    " connections"));
      // Best-effort: the empty socket buffer virtually always takes it.
      [[maybe_unused]] ssize_t n = ::write(fd, err.data(), err.size());
      ::close(fd);
      continue;
    }
    const uint64_t id = next_session_id_++;
    auto session = std::make_unique<Session>(id, fd, options_);
    Status added = loop_->Add(
        fd, kReadEvent, [this, id](uint32_t events) {
          OnSessionEvent(id, events);
        });
    if (!added.ok()) {
      SETM_LOG(kWarn) << "cannot register connection: " << added.ToString();
      ::close(fd);
      continue;
    }
    sessions_[id] = std::move(session);
    stats_.connections_active.store(sessions_.size());
    Srv().connections_active->Set(static_cast<int64_t>(sessions_.size()));
  }
}

void MiningServer::OnSessionEvent(uint64_t session_id, uint32_t events) {
  if (events & kWriteEvent) {
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    FlushSession(it->second.get());
  }
  if ((events & kReadEvent) == 0) return;

  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;  // closed by the flush above
  Session* session = it->second.get();

  char buf[4096];
  while (true) {
    const ssize_t n = ::read(session->fd, buf, sizeof(buf));
    if (n > 0) {
      Srv().bytes_read_total->Increment(static_cast<uint64_t>(n));
      session->in.Feed(buf, static_cast<size_t>(n));
      session->activity.Restart();
      continue;
    }
    if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
      if (n < 0 && errno == EINTR) continue;
      // EOF or a hard error: the client went away. Cancel its job — the
      // observer vetoes the next iteration — and free the connection slot.
      stats_.disconnects.fetch_add(1);
      Srv().disconnects_total->Increment();
      CloseSession(session_id, n == 0 ? "client disconnected"
                                      : "read error");
      return;
    }
    break;  // EAGAIN: drained
  }

  const size_t oversized = session->in.TakeOversized();
  for (size_t i = 0; i < oversized; ++i) {
    stats_.oversized_lines.fetch_add(1);
    Srv().oversized_lines_total->Increment();
    auto sit = sessions_.find(session_id);
    if (sit == sessions_.end()) return;  // Send() may close on overflow
    Send(sit->second.get(),
         FrameError(Status::ResourceExhausted(
             "line exceeds " + std::to_string(options_.max_line_bytes) +
             " bytes")));
  }
  ProcessLines(session_id);
}

void MiningServer::ProcessLines(uint64_t session_id) {
  std::string line;
  while (true) {
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;  // closed by a handler below
    Session* session = it->second.get();
    if (!session->in.NextLine(&line)) return;
    switch (session->state) {
      case Session::State::kCommand:
        HandleCommand(session, line);
        break;
      case Session::State::kAppend:
      case Session::State::kAppendDrain:
        HandleAppendData(session, line);
        break;
      case Session::State::kMerge:
      case Session::State::kMergeDrain:
        HandleMergeData(session, line);
        break;
      case Session::State::kClosing:
        break;  // input after QUIT is ignored
    }
  }
}

void MiningServer::HandleCommand(Session* session, const std::string& line) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;

  auto cmd_or = ParseCommand(line);
  if (!cmd_or.ok()) {
    stats_.parse_errors.fetch_add(1);
    Srv().parse_errors_total->Increment();
    Send(session, FrameError(cmd_or.status()));
    return;
  }
  Command cmd = std::move(cmd_or).value();
  stats_.requests.fetch_add(1);
  Srv().requests_total->Increment();
  VerbCounter(cmd.verb)->Increment();

  switch (cmd.verb) {
    case Verb::kPing:
      Send(session, FrameOk("pong", ""));
      return;
    case Verb::kQuit: {
      if (session->job != nullptr) session->job->cancel.Cancel();
      session->state = Session::State::kClosing;
      Send(session, FrameOk("bye", ""));
      return;
    }
    case Verb::kStats: {
      obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::Global()->Snapshot();
      std::string payload = cmd.stats_format == "json"
                                ? obs::RenderJson(snapshot)
                            : cmd.stats_format == "prom"
                                ? obs::RenderPrometheus(snapshot)
                                : obs::RenderText(snapshot);
      Send(session, FrameOk("stats format=" + cmd.stats_format, payload));
      return;
    }
    default:
      break;
  }

  // Job verbs: one in flight per connection.
  if (session->job != nullptr) {
    stats_.rejected_busy.fetch_add(1);
    Srv().rejected_busy_total->Increment();
    Send(session,
         FrameError(Status::ResourceExhausted(
             "a request is already in flight on this connection; wait for "
             "its response (PING, STATS and QUIT are always served)")));
    return;
  }

  if (cmd.verb == Verb::kMine || cmd.verb == Verb::kExplain ||
      cmd.verb == Verb::kAppend) {
    auto info_or = MinerRegistry::Info(cmd.algo);
    if (!info_or.ok()) {
      Send(session, FrameError(info_or.status()));
      return;
    }
  }

  if (cmd.verb == Verb::kLcount || cmd.verb == Verb::kMerge) {
    // Continuations need a run; a fresh "LCOUNT <table> K 1" never does (it
    // replaces whatever run the connection had).
    const bool begins_run = cmd.verb == Verb::kLcount && cmd.shard_k == 1;
    if (!begins_run && session->shard_run == nullptr) {
      Send(session,
           FrameError(Status::NotFound(
               "no shard run on this connection; start with "
               "LCOUNT <table> K 1")));
      return;
    }
    if (cmd.verb == Verb::kMerge) {
      session->state = Session::State::kMerge;
      session->merge_cmd = cmd;
      session->merge_keys.clear();
      session->merge_error = Status::OK();
      return;  // itemsets follow; the response comes after "."
    }
    auto job = std::make_shared<Job>();
    job->verb = Verb::kLcount;
    job->shard_backend =
        begins_run ? std::make_shared<shard::LocalShardBackend>(
                         db_, "srv:" + cmd.table, "lcount_")
                   : session->shard_run;
    job->cmd = std::move(cmd);
    DispatchJob(session, std::move(job));
    return;
  }

  if (cmd.verb == Verb::kAppend) {
    session->state = Session::State::kAppend;
    session->append_cmd = cmd;
    session->append_batch.clear();
    session->append_error = Status::OK();
    return;  // rows follow; the response comes after "."
  }

  auto job = std::make_shared<Job>();
  job->verb = cmd.verb;
  if (cmd.verb == Verb::kRules) {
    if (session->last_itemsets == nullptr) {
      Send(session,
           FrameError(Status::NotFound(
               "no mining result on this connection; run MINE first")));
      return;
    }
    job->rules_input = session->last_itemsets;
  }
  job->cmd = std::move(cmd);
  DispatchJob(session, std::move(job));
}

void MiningServer::HandleAppendData(Session* session,
                                    const std::string& line) {
  if (line == ".") {
    if (session->state == Session::State::kAppendDrain) {
      session->state = Session::State::kCommand;
      Send(session, FrameError(session->append_error));
      return;
    }
    session->state = Session::State::kCommand;
    auto job = std::make_shared<Job>();
    job->verb = Verb::kAppend;
    job->cmd = session->append_cmd;
    job->append_batch = std::move(session->append_batch);
    session->append_batch.clear();
    DispatchJob(session, std::move(job));
    return;
  }
  if (session->state == Session::State::kAppendDrain) return;

  if (session->append_batch.size() >= options_.max_append_rows) {
    session->state = Session::State::kAppendDrain;
    session->append_error = Status::ResourceExhausted(
        "APPEND batch exceeds " + std::to_string(options_.max_append_rows) +
        " rows");
    return;
  }
  auto row_or = ParseAppendRow(line);
  if (!row_or.ok()) {
    stats_.parse_errors.fetch_add(1);
    Srv().parse_errors_total->Increment();
    session->state = Session::State::kAppendDrain;
    session->append_error = row_or.status();
    return;
  }
  session->append_batch.push_back(std::move(row_or).value());
}

void MiningServer::HandleMergeData(Session* session,
                                   const std::string& line) {
  if (line == ".") {
    if (session->state == Session::State::kMergeDrain) {
      session->state = Session::State::kCommand;
      Send(session, FrameError(session->merge_error));
      return;
    }
    session->state = Session::State::kCommand;
    auto job = std::make_shared<Job>();
    job->verb = Verb::kMerge;
    job->cmd = session->merge_cmd;
    job->shard_backend = session->shard_run;
    job->merge_keys = std::move(session->merge_keys);
    session->merge_keys.clear();
    DispatchJob(session, std::move(job));
    return;
  }
  if (session->state == Session::State::kMergeDrain) return;

  if (session->merge_keys.size() >= options_.max_append_rows) {
    session->state = Session::State::kMergeDrain;
    session->merge_error = Status::ResourceExhausted(
        "MERGE batch exceeds " + std::to_string(options_.max_append_rows) +
        " itemsets");
    return;
  }
  auto itemset_or = ParseItemsetLine(line);
  if (itemset_or.ok() &&
      itemset_or.value().size() != session->merge_cmd.shard_k) {
    itemset_or = Status::InvalidArgument(
        "MERGE K " + std::to_string(session->merge_cmd.shard_k) +
        " itemset has " + std::to_string(itemset_or.value().size()) +
        " items: " + line);
  }
  if (!itemset_or.ok()) {
    stats_.parse_errors.fetch_add(1);
    Srv().parse_errors_total->Increment();
    session->state = Session::State::kMergeDrain;
    session->merge_error = itemset_or.status();
    return;
  }
  session->merge_keys.push_back(std::move(itemset_or).value());
}

void MiningServer::DispatchJob(Session* session, std::shared_ptr<Job> job) {
  job->id = next_job_id_++;
  job->session_id = session->id;
  job->dispatched.Restart();
  session->job = job;
  jobs_[job->id] = job;
  std::shared_ptr<Job> j = std::move(job);
  job_pool_->Submit([this, j] { RunJobBody(j); });
}

void MiningServer::RunJobBody(const std::shared_ptr<Job>& job) {
  Status status;
  if (job->cancel.cancelled()) {
    status = Status::Cancelled("request cancelled before it started");
  } else if (job->verb == Verb::kRules) {
    // Pure in-memory work on a shared snapshot: no database, no mutex.
    if (options_.trace) {
      job->trace_root = std::make_unique<obs::TraceSpan>("request");
      job->trace_root->AddTag("verb", VerbName(job->verb));
    }
    status = ExecuteRulesJob(job.get());
  } else {
    std::lock_guard<std::mutex> lock(db_mutex_);
    if (job->cancel.cancelled()) {
      status = Status::Cancelled("request cancelled while queued");
    } else {
      // The trace root starts inside the mutex so its page-read delta
      // covers exactly this job's work, not a concurrent job's.
      if (options_.trace) {
        job->trace_root =
            std::make_unique<obs::TraceSpan>("request", db_->io_stats());
        job->trace_root->AddTag("verb", VerbName(job->verb));
        job->trace_root->AddTag("table", job->cmd.table);
      }
      switch (job->verb) {
        case Verb::kExplain:
          status = ExecuteExplainJob(job.get());
          break;
        case Verb::kLcount:
          status = ExecuteLcountJob(job.get());
          break;
        case Verb::kMerge:
          status = ExecuteMergeJob(job.get());
          break;
        default:
          status = ExecuteMineJob(job.get());
          break;
      }
      // A failed shard job leaves the run unusable (the iteration protocol
      // is a lock-step sequence); release its scratch while the mutex is
      // still held and have FinishJob drop the session's handle.
      if (!status.ok() && job->shard_backend != nullptr) {
        job->shard_backend->EndRun();
        job->shard_install = false;
        job->shard_teardown = true;
      }
    }
  }

  if (!status.ok()) {
    if (status.IsCancelled()) {
      job->cancelled_result = true;
      if (job->timed_out.load(std::memory_order_relaxed)) {
        status = Status::Cancelled(
            "request exceeded the " +
            std::to_string(options_.request_timeout_ms) +
            " ms request timeout");
      }
    }
    job->response = FrameError(status);
  }
  if (job->trace_root != nullptr) {
    job->trace_root->AddTag(
        "status",
        status.ok() ? "ok" : std::string(StatusCodeName(status.code())));
    job->trace_root->End();
  }
  completions_->Notify(job->id);
}

Status MiningServer::ExecuteMineJob(Job* job) {
  auto table_or = db_->catalog()->ResolveTable(job->cmd.table);
  if (!table_or.ok()) return table_or.status();

  auto info_or = MinerRegistry::Info(job->cmd.algo);
  if (!info_or.ok()) return info_or.status();
  size_t threads = job->cmd.threads;
  if (threads == 0) {
    threads = info_or.value().honors_threads ? options_.default_mine_threads
                                             : 1;
  }

  JobObserver observer(&job->cancel, &job->timed_out, &job->dispatched,
                       &options_);
  const TableBacking backing =
      db_->persistent() ? TableBacking::kHeap : TableBacking::kMemory;

  PlannerOptions planner_options;
  planner_options.store_prefix = options_.store_prefix;
  planner_options.store_backing = backing;
  planner_options.algorithm = job->cmd.algo;
  planner_options.setm.storage = backing;
  planner_options.setm.num_threads = threads;
  planner_options.full_remine_fraction = options_.full_remine_fraction;

  PlanRequest request;
  request.table = table_or.value();
  request.options.min_support = job->cmd.min_support;
  request.options.min_support_count = job->cmd.min_support_count;
  request.options.max_pattern_length = job->cmd.max_k;
  request.options.observer = &observer;
  if (job->verb == Verb::kAppend && !job->append_batch.empty()) {
    request.append = &job->append_batch;
  }
  request.trace = job->trace_root.get();

  // A planner per job is cheap (the cache keys on catalog relations, which
  // are shared); per-request ALGO/THREADS never leak into another request.
  MiningPlanner planner(db_, planner_options);
  auto exec_or = planner.Execute(request);
  if (!exec_or.ok()) return exec_or.status();
  PlanExecution exec = std::move(exec_or).value();

  auto itemsets =
      std::make_shared<FrequentItemsets>(std::move(exec.result.itemsets));
  itemsets->Normalize();
  job->result_itemsets = itemsets;

  // The info line is deterministic — no timing, no strategy — so answers to
  // the same question are byte-identical no matter which plan served them.
  char info[160];
  if (job->verb == Verb::kAppend) {
    std::snprintf(info, sizeof(info),
                  "appended=%zu patterns=%zu transactions=%llu",
                  job->append_batch.size(), itemsets->TotalPatterns(),
                  static_cast<unsigned long long>(itemsets->num_transactions));
  } else {
    std::snprintf(info, sizeof(info),
                  "patterns=%zu transactions=%llu maxk=%zu",
                  itemsets->TotalPatterns(),
                  static_cast<unsigned long long>(itemsets->num_transactions),
                  itemsets->MaxSize());
  }
  job->response = FrameOk(info, RenderItemsets(*itemsets));
  return Status::OK();
}

Status MiningServer::ExecuteExplainJob(Job* job) {
  auto table_or = db_->catalog()->ResolveTable(job->cmd.table);
  if (!table_or.ok()) return table_or.status();

  PlannerOptions planner_options;
  planner_options.store_prefix = options_.store_prefix;
  planner_options.store_backing =
      db_->persistent() ? TableBacking::kHeap : TableBacking::kMemory;
  planner_options.algorithm = job->cmd.algo;
  planner_options.full_remine_fraction = options_.full_remine_fraction;

  PlanRequest request;
  request.table = table_or.value();
  request.options.min_support = job->cmd.min_support;
  request.options.min_support_count = job->cmd.min_support_count;
  request.options.max_pattern_length = job->cmd.max_k;

  MiningPlanner planner(db_, planner_options);
  auto plan_or = planner.Plan(request);
  if (!plan_or.ok()) return plan_or.status();
  const MiningPlan& plan = plan_or.value();
  job->response =
      FrameOk(std::string("explain strategy=") + PlanStrategyName(plan.strategy),
              plan.Explain());
  return Status::OK();
}

Status MiningServer::ExecuteLcountJob(Job* job) {
  const size_t k = job->cmd.shard_k;
  if (k == 1) {
    // A new run. Scratch stays in memory regardless of the database's
    // backing: shard relations are per-request transients, and the remote
    // coordinator retries elsewhere on failure, so durability buys nothing.
    shard::ShardRunOptions run;
    run.storage = TableBacking::kMemory;
    run.count_method = job->cmd.shard_method == "hash" ? CountMethod::kHash
                                                       : CountMethod::kSortMerge;
    run.filter_r1 = job->cmd.shard_filter;
    job->shard_backend->BindTable(job->cmd.table);
    SETM_RETURN_IF_ERROR(job->shard_backend->BeginRun(run));
  }
  auto counts_or = job->shard_backend->CountIteration(k);
  if (!counts_or.ok()) return counts_or.status();
  shard::ShardLocalCounts counts = std::move(counts_or).value();

  // Deterministic payload: counts sorted by itemset. The info line carries
  // the cardinalities the coordinator folds into IterationStats — and no
  // timings, so responses to the same question are byte-identical.
  std::sort(counts.counts.begin(), counts.counts.end(),
            [](const PatternCount& a, const PatternCount& b) {
              return a.items < b.items;
            });
  std::string payload;
  for (const PatternCount& pattern : counts.counts) {
    for (ItemId item : pattern.items) {
      payload += std::to_string(item);
      payload += ' ';
    }
    payload += std::to_string(pattern.count);
    payload += '\n';
  }

  char info[160];
  if (k == 1) {
    std::snprintf(info, sizeof(info),
                  "lcount k=1 transactions=%llu rprime=%llu rbytes=%llu "
                  "rpages=%llu",
                  static_cast<unsigned long long>(counts.transactions),
                  static_cast<unsigned long long>(counts.r_prime_rows),
                  static_cast<unsigned long long>(counts.r_bytes),
                  static_cast<unsigned long long>(counts.r_pages));
    job->shard_install = true;
  } else {
    std::snprintf(info, sizeof(info), "lcount k=%zu rprime=%llu", k,
                  static_cast<unsigned long long>(counts.r_prime_rows));
  }
  job->response = FrameOk(info, payload);
  return Status::OK();
}

Status MiningServer::ExecuteMergeJob(Job* job) {
  auto stats_or = job->shard_backend->ApplyGlobalCk(job->cmd.shard_k,
                                                    job->merge_keys);
  if (!stats_or.ok()) return stats_or.status();
  const shard::ShardFilterStats& stats = stats_or.value();
  char info[160];
  std::snprintf(info, sizeof(info),
                "merge k=%zu rows=%llu bytes=%llu pages=%llu",
                job->cmd.shard_k,
                static_cast<unsigned long long>(stats.r_rows),
                static_cast<unsigned long long>(stats.r_bytes),
                static_cast<unsigned long long>(stats.r_pages));
  job->response = FrameOk(info, "");
  return Status::OK();
}

Status MiningServer::ExecuteRulesJob(Job* job) {
  JobObserver observer(&job->cancel, &job->timed_out, &job->dispatched,
                       &options_);
  MiningOptions options;
  options.min_confidence = job->cmd.min_confidence;
  options.observer = &observer;
  auto rules_or =
      GenerateRules(*job->rules_input, options, job->cmd.rule_mode);
  if (!rules_or.ok()) return rules_or.status();
  const std::vector<AssociationRule>& rules = rules_or.value();
  job->response = FrameOk("rules=" + std::to_string(rules.size()),
                          FormatRulesCsv(rules));
  return Status::OK();
}

void MiningServer::DrainCompletions() {
  for (uint64_t token : completions_->Drain()) FinishJob(token);
}

void MiningServer::FinishJob(uint64_t job_id) {
  auto jit = jobs_.find(job_id);
  if (jit == jobs_.end()) return;
  std::shared_ptr<Job> job = jit->second;
  jobs_.erase(jit);

  Srv().request_micros->ObserveDurationMicros(
      job->dispatched.ElapsedSeconds());
  if (job->cancelled_result) {
    stats_.cancelled_jobs.fetch_add(1);
    Srv().cancelled_jobs_total->Increment();
    if (job->timed_out.load(std::memory_order_relaxed)) {
      stats_.request_timeouts.fetch_add(1);
      Srv().request_timeouts_total->Increment();
    }
  }
  if (job->trace_root != nullptr) {
    std::fprintf(stderr, "trace:\n%s",
                 job->trace_root->Render(2).c_str());
  }

  auto sit = sessions_.find(job->session_id);
  if (sit == sessions_.end()) return;  // client gone; response dropped
  Session* session = sit->second.get();
  if (session->job != nullptr && session->job->id == job->id) {
    session->job.reset();
  }
  if (job->result_itemsets != nullptr) {
    session->last_itemsets = job->result_itemsets;
  }
  if (job->shard_install) {
    session->shard_run = job->shard_backend;
  } else if (job->shard_teardown &&
             session->shard_run == job->shard_backend) {
    session->shard_run.reset();
  }
  session->activity.Restart();
  if (session->state == Session::State::kClosing) {
    // The client already said QUIT (or shutdown began); it got its "bye".
    FlushSession(session);
    return;
  }
  Send(session, job->response);
}

void MiningServer::Send(Session* session, const std::string& framed) {
  Status appended = session->out.Append(framed);
  if (!appended.ok()) {
    SETM_LOG(kWarn) << "session " << session->id
                    << ": write backlog over "
                    << options_.max_write_buffer_bytes
                    << " bytes, closing: " << appended.ToString();
    CloseSession(session->id, "write backlog exceeded");
    return;
  }
  FlushSession(session);
}

void MiningServer::FlushSession(Session* session) {
  auto n_or = session->out.DrainTo(session->fd);
  if (!n_or.ok()) {
    CloseSession(session->id, "write failed");
    return;
  }
  if (n_or.value() > 0) {
    Srv().bytes_written_total->Increment(n_or.value());
  }
  if (session->out.empty()) {
    if (session->state == Session::State::kClosing &&
        session->job == nullptr) {
      CloseSession(session->id, "quit");
      return;
    }
    loop_->SetInterest(session->fd, kReadEvent);
  } else {
    loop_->SetInterest(session->fd, kReadEvent | kWriteEvent);
  }
}

void MiningServer::CloseSession(uint64_t session_id, const char* reason) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  Session* session = it->second.get();
  if (session->job != nullptr) session->job->cancel.Cancel();
  SETM_LOG(kInfo) << "session " << session_id << " closed: " << reason;
  loop_->Remove(session->fd);
  ::close(session->fd);
  sessions_.erase(it);
  stats_.connections_active.store(sessions_.size());
  Srv().connections_active->Set(static_cast<int64_t>(sessions_.size()));
}

}  // namespace setm::net

#ifndef SETM_NET_LISTENER_H_
#define SETM_NET_LISTENER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace setm::net {

/// Marks `fd` non-blocking + close-on-exec. Every fd the server touches —
/// listener, accepted connections, pipes — goes through this.
Status MakeNonBlocking(int fd);

/// Disables Nagle on a TCP socket; best-effort (a failure is ignorable for
/// correctness, it only batches small responses).
void SetNoDelay(int fd);

/// A non-blocking TCP listening socket bound to an IPv4 address.
///
/// Port 0 asks the kernel for an ephemeral port; port() reports the one
/// actually bound, which the daemon prints (and writes to --port-file) so
/// scripts and tests never race on a fixed port.
class Listener {
 public:
  static Result<std::unique_ptr<Listener>> Bind(const std::string& host,
                                                uint16_t port, int backlog);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

  /// Accepts one pending connection, already non-blocking + NODELAY.
  /// Returns -1 when no connection is pending (EAGAIN); an IOError Status
  /// for real failures. EMFILE/ENFILE come back as ResourceExhausted so the
  /// server can shed load instead of dying.
  Result<int> Accept();

 private:
  Listener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  uint16_t port_;
};

}  // namespace setm::net

#endif  // SETM_NET_LISTENER_H_

#ifndef SETM_NET_LINE_BUFFER_H_
#define SETM_NET_LINE_BUFFER_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace setm::net {

/// Incremental line framing over a byte stream, the read half of a
/// connection. Bytes arrive in arbitrary chunks (partial lines, many lines
/// coalesced into one read); NextLine() hands back complete lines with the
/// trailing LF — and an optional preceding CR — stripped, so CRLF and LF
/// clients look identical to the protocol layer.
///
/// The buffer is bounded: a line longer than `max_line_bytes` is *rejected,
/// not buffered* — the offending bytes are discarded up to and including
/// the terminating newline, one oversize event is recorded for the session
/// to answer with a protocol error, and framing resynchronizes on the next
/// line. Memory stays O(max_line_bytes) no matter what a client sends.
class LineBuffer {
 public:
  explicit LineBuffer(size_t max_line_bytes) : max_line_(max_line_bytes) {}

  /// Appends one read()'s worth of bytes.
  void Feed(const char* data, size_t n);

  /// Extracts the next complete line (terminator stripped). Returns false
  /// when no complete line is buffered yet.
  bool NextLine(std::string* line);

  /// Oversized-line events recorded since the last call (each counts one
  /// discarded line); calling resets the counter to zero.
  size_t TakeOversized();

  /// Bytes currently buffered (the partial tail of the next line).
  size_t buffered_bytes() const { return pending_.size(); }

 private:
  size_t max_line_;
  std::string pending_;
  bool discarding_ = false;  ///< inside an oversized line, eat until LF
  size_t oversized_ = 0;
};

/// The write half: a bounded outgoing byte queue with short-write handling.
/// Responses are Append()ed whole; DrainTo() writes as much as the socket
/// accepts right now and keeps the rest for the next writable event.
///
/// The cap is an admission-control backstop against clients that request
/// large payloads and never read them: Append fails with ResourceExhausted
/// once the backlog would exceed `max_bytes`, and the session closes the
/// connection instead of buffering without bound.
class WriteBuffer {
 public:
  explicit WriteBuffer(size_t max_bytes) : max_(max_bytes) {}

  /// Queues `data`; ResourceExhausted when the backlog would exceed the cap.
  Status Append(const std::string& data);

  /// Writes buffered bytes to `fd` until done or the socket would block.
  /// Returns the byte count written (possibly 0); IOError on a write
  /// failure other than EAGAIN/EINTR.
  Result<size_t> DrainTo(int fd);

  bool empty() const { return offset_ >= buf_.size(); }
  size_t pending_bytes() const { return buf_.size() - offset_; }

 private:
  size_t max_;
  std::string buf_;
  size_t offset_ = 0;  ///< bytes of buf_ already written
};

}  // namespace setm::net

#endif  // SETM_NET_LINE_BUFFER_H_

#ifndef SETM_NET_PROTOCOL_H_
#define SETM_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/rules.h"
#include "core/types.h"

namespace setm::net {

/// The setm_served wire protocol: line-oriented text, LF- or CRLF-
/// terminated, one request per line (APPEND additionally streams data
/// lines). Keywords are case-insensitive; table names are not.
///
///   MINE <table> SUPPORT <spec> [ALGO <name>] [THREADS <n>] [MAXK <k>]
///   APPEND <table> SUPPORT <spec> [ALGO <name>] [THREADS <n>] [MAXK <k>]
///                             then one transaction per line ("<trans_id>
///                             <item> [<item> ...]"), terminated by ".";
///                             the response is the refreshed mining answer
///   RULES <conf>[%] [MODE single|subsets]
///   EXPLAIN <table> SUPPORT <spec> [ALGO <name>] [THREADS <n>] [MAXK <k>]
///   LCOUNT <table> K 1 [METHOD sortmerge|hash] [FILTER]
///                             begins a shard run over <table>: builds the
///                             local R_1 and answers the full local item
///                             counts ("<item> <count>" lines) — phase 1 of
///                             the distributed two-phase count
///   LCOUNT K <k>              continues the connection's shard run (k >= 2):
///                             local R'_k join, answers candidate counts
///                             ("<item_1> ... <item_k> <count>" lines)
///   MERGE K <k>               then one surviving global itemset per line
///                             ("<item_1> ... <item_k>", ascending),
///                             terminated by "."; filters the local R'_k
///                             (or R_1, for k == 1 under FILTER) down to
///                             R_k — phase 2 of the distributed count
///   STATS [text|json|prom]
///   PING
///   QUIT
///
/// <spec> is either "<pct>%" (minimum support as a percentage of
/// transactions, e.g. "2%", "0.5%") or a bare integer (absolute minimum
/// support count). <conf> is a percentage; the % sign is optional.
///
/// Responses:
///   OK <info>\n<payload lines...>\n.\n     every success, payload may be
///                                          empty; a payload line starting
///                                          with '.' is sent dot-stuffed
///   ERR <Code> <message>\n                 single line, connection stays up
enum class Verb {
  kMine,
  kAppend,
  kRules,
  kExplain,
  kLcount,
  kMerge,
  kStats,
  kPing,
  kQuit,
};

/// Stable lower-case name of a verb ("mine", "append", ...), for metrics
/// and logs.
const char* VerbName(Verb verb);

/// One parsed request line.
struct Command {
  Verb verb = Verb::kPing;
  std::string table;             ///< MINE / APPEND / EXPLAIN
  double min_support = 0.0;      ///< MINE/EXPLAIN: fraction, when % spec
  int64_t min_support_count = 0; ///< MINE/EXPLAIN: absolute, when bare int
  std::string algo = "setm";     ///< MINE/EXPLAIN ALGO
  size_t threads = 0;            ///< MINE/EXPLAIN THREADS (0 = server default)
  size_t max_k = 0;              ///< MINE/EXPLAIN MAXK (0 = unbounded)
  double min_confidence = 0.0;   ///< RULES: fraction
  RuleMode rule_mode = RuleMode::kSingleConsequent;  ///< RULES MODE
  std::string stats_format = "text";                 ///< STATS
  size_t shard_k = 0;            ///< LCOUNT / MERGE: iteration number
  std::string shard_method = "sortmerge";  ///< LCOUNT METHOD
  bool shard_filter = false;     ///< LCOUNT FILTER (a filter_r1 run)
};

/// Parses one request line. InvalidArgument (with a message naming the
/// offending token) on anything malformed — the session answers with a
/// protocol ERR, never by disconnecting.
Result<Command> ParseCommand(const std::string& line);

/// Parses one APPEND data line: "<trans_id> <item> [<item> ...]". Items are
/// sorted and deduplicated; ids and items must be non-negative integers.
Result<Transaction> ParseAppendRow(const std::string& line);

/// Parses one MERGE data line: "<item_1> [<item_2> ...]" — one surviving
/// global itemset. Items must be non-negative integers in strictly
/// ascending order (the coordinator broadcasts canonical sorted itemsets;
/// anything else is a protocol violation, not data to be repaired).
Result<std::vector<ItemId>> ParseItemsetLine(const std::string& line);

/// Frames a success response: "OK <info>\n" + dot-stuffed payload + ".\n".
/// `payload` may be empty or multi-line (trailing newline optional).
std::string FrameOk(const std::string& info, const std::string& payload);

/// Frames an error response from a Status: "ERR <Code> <message>\n".
std::string FrameError(const Status& status);

/// Canonical rendering of a mining result's itemsets, one line per pattern:
/// "<item_1> <item_2> ... <item_k> <count>", sizes ascending, items
/// lexicographic within a size — deterministic for a Normalized result, so
/// two clients (or a client and the CLI) can diff answers byte for byte.
std::string RenderItemsets(const FrequentItemsets& itemsets);

/// Client-side helper: strips the dot-stuffing FrameOk applied.
std::string UnstuffPayloadLine(const std::string& line);

}  // namespace setm::net

#endif  // SETM_NET_PROTOCOL_H_

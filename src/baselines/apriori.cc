#include "baselines/apriori.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "baselines/hash_tree.h"
#include "common/timer.h"

namespace setm {

std::vector<std::vector<ItemId>> AprioriMiner::GenerateCandidates(
    const std::vector<std::vector<ItemId>>& prev) {
  std::vector<std::vector<ItemId>> candidates;
  if (prev.empty()) return candidates;
  const size_t k1 = prev[0].size();  // size of L_{k-1} itemsets

  std::unordered_set<std::string> prev_keys;
  prev_keys.reserve(prev.size() * 2);
  for (const auto& items : prev) prev_keys.insert(ItemsetKey(items));

  // Join step: pairs sharing the first k-2 items (prev is sorted, so equal
  // prefixes are contiguous).
  for (size_t i = 0; i < prev.size(); ++i) {
    for (size_t j = i + 1; j < prev.size(); ++j) {
      bool same_prefix =
          std::equal(prev[i].begin(), prev[i].end() - 1, prev[j].begin());
      if (!same_prefix) break;  // sorted order: no later j can match either
      std::vector<ItemId> cand = prev[i];
      cand.push_back(prev[j].back());
      // Prune step: every (k-1)-subset must be frequent.
      bool keep = true;
      std::vector<ItemId> subset(cand.size() - 1);
      for (size_t drop = 0; drop + 2 < cand.size() && keep; ++drop) {
        // Subsets missing the last two items are new; subsets missing one
        // of the last two equal prev[i]/prev[j], already known frequent.
        size_t s = 0;
        for (size_t x = 0; x < cand.size(); ++x) {
          if (x != drop) subset[s++] = cand[x];
        }
        keep = prev_keys.count(ItemsetKey(subset)) != 0;
      }
      if (keep) candidates.push_back(std::move(cand));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  (void)k1;
  return candidates;
}

Result<MiningResult> AprioriMiner::Mine(const TransactionDb& transactions,
                                        const MiningOptions& options) {
  SETM_RETURN_IF_ERROR(ValidateTransactions(transactions));
  WallTimer timer;
  MiningResult result;
  result.itemsets.num_transactions = transactions.size();
  const int64_t minsup = ResolveMinSupportCount(options, transactions.size());

  // Pass 1: plain item counting.
  std::vector<std::vector<ItemId>> frontier;
  {
    WallTimer iter_timer;
    std::unordered_map<ItemId, int64_t> counts;
    for (const Transaction& t : transactions) {
      for (ItemId item : t.items) ++counts[item];
    }
    std::vector<PatternCount> l1;
    for (const auto& [item, count] : counts) {
      if (count >= minsup) l1.push_back(PatternCount{{item}, count});
    }
    std::sort(l1.begin(), l1.end(),
              [](const PatternCount& a, const PatternCount& b) {
                return a.items < b.items;
              });
    for (PatternCount& pc : l1) {
      frontier.push_back(pc.items);
      result.itemsets.Add(std::move(pc.items), pc.count);
    }
    IterationStats stats;
    stats.k = 1;
    stats.r_prime_rows = counts.size();
    stats.c_size = frontier.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
  }

  for (size_t k = 2; !frontier.empty(); ++k) {
    if (options.max_pattern_length != 0 && k > options.max_pattern_length) {
      break;
    }
    WallTimer iter_timer;
    std::vector<std::vector<ItemId>> candidates =
        GenerateCandidates(frontier);
    if (candidates.empty()) break;

    HashTree tree(k);
    for (const auto& cand : candidates) tree.Insert(cand);
    for (const Transaction& t : transactions) {
      tree.CountTransaction(t.items);
    }

    frontier.clear();
    std::vector<PatternCount> lk;
    tree.ForEach([&](const std::vector<ItemId>& items, int64_t count) {
      if (count >= minsup) lk.push_back(PatternCount{items, count});
    });
    std::sort(lk.begin(), lk.end(),
              [](const PatternCount& a, const PatternCount& b) {
                return a.items < b.items;
              });
    for (PatternCount& pc : lk) {
      frontier.push_back(pc.items);
      result.itemsets.Add(std::move(pc.items), pc.count);
    }

    IterationStats stats;
    stats.k = k;
    stats.r_prime_rows = candidates.size();
    stats.c_size = frontier.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
  }

  result.itemsets.Normalize();
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace setm

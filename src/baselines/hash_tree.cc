#include "baselines/hash_tree.h"

#include <algorithm>

#include "common/logging.h"

namespace setm {

HashTree::HashTree(size_t k, size_t max_leaf, size_t buckets)
    : k_(k), max_leaf_(max_leaf), buckets_(buckets),
      root_(std::make_unique<Node>()) {
  SETM_CHECK(k_ >= 1);
  SETM_CHECK(buckets_ >= 2);
}

void HashTree::Insert(const std::vector<ItemId>& items) {
  SETM_DCHECK(items.size() == k_);
  SETM_DCHECK(std::is_sorted(items.begin(), items.end()));
  InsertAt(root_.get(), Candidate{items, 0, 0}, 0);
  ++size_;
}

void HashTree::InsertAt(Node* node, Candidate cand, size_t depth) {
  if (!node->leaf) {
    const size_t b = Bucket(cand.items[depth]);
    InsertAt(node->kids[b].get(), std::move(cand), depth + 1);
    return;
  }
  node->candidates.push_back(std::move(cand));
  // Split once the leaf overflows, unless all k items are already consumed
  // as hash levels (then the leaf simply grows).
  if (node->candidates.size() > max_leaf_ && depth < k_) {
    node->leaf = false;
    node->kids.resize(buckets_);
    for (auto& kid : node->kids) kid = std::make_unique<Node>();
    for (Candidate& c : node->candidates) {
      const size_t b = Bucket(c.items[depth]);
      InsertAt(node->kids[b].get(), std::move(c), depth + 1);
    }
    node->candidates.clear();
    node->candidates.shrink_to_fit();
  }
}

void HashTree::CountTransaction(const std::vector<ItemId>& txn) {
  ++stamp_counter_;  // candidates start at stamp 0, so 1 is never "seen"
  if (txn.size() < k_) return;
  Count(root_.get(), txn, 0, 0, stamp_counter_);
}

void HashTree::Count(Node* node, const std::vector<ItemId>& txn, size_t start,
                     size_t depth, uint64_t stamp) {
  if (node->leaf) {
    for (Candidate& c : node->candidates) {
      if (c.stamp == stamp) continue;  // already counted via another path
      if (std::includes(txn.begin(), txn.end(), c.items.begin(),
                        c.items.end())) {
        c.stamp = stamp;
        ++c.count;
      }
    }
    return;
  }
  // Need k_ - depth more items; stop once too few remain.
  for (size_t i = start; i + (k_ - depth) <= txn.size(); ++i) {
    Node* kid = node->kids[Bucket(txn[i])].get();
    Count(kid, txn, i + 1, depth + 1, stamp);
  }
}

void HashTree::ForEach(
    const std::function<void(const std::vector<ItemId>&, int64_t)>& fn) const {
  Visit(root_.get(), fn);
}

void HashTree::Visit(
    const Node* node,
    const std::function<void(const std::vector<ItemId>&, int64_t)>& fn) const {
  if (node->leaf) {
    for (const Candidate& c : node->candidates) fn(c.items, c.count);
    return;
  }
  for (const auto& kid : node->kids) Visit(kid.get(), fn);
}

}  // namespace setm

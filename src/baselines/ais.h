#ifndef SETM_BASELINES_AIS_H_
#define SETM_BASELINES_AIS_H_

#include "core/types.h"

namespace setm {

/// AIS (Agrawal, Imieliński & Swami, SIGMOD'93) — reference [4] of the
/// paper and the algorithm SETM positions itself against ("the algorithm in
/// [4] still has a tuple-oriented flavor ... and is rather complex").
///
/// Pass k: for every transaction t and every frontier itemset f from
/// L_{k-1} contained in t, the candidates f + {i} are counted for each item
/// i in t with i > max(f). Unlike Apriori, candidates are generated *during
/// the data scan*, so infrequent extensions are repeatedly materialized —
/// the inefficiency Apriori's candidate generation later removed.
///
/// Simplification vs. the original: AIS's support-estimation machinery
/// (extending by several items at once when the expected support allows)
/// is omitted; every extension is by exactly one item, which matches how
/// SETM (and the comparison in this library) iterates. Documented in
/// DESIGN.md.
class AisMiner {
 public:
  Result<MiningResult> Mine(const TransactionDb& transactions,
                            const MiningOptions& options);
};

}  // namespace setm

#endif  // SETM_BASELINES_AIS_H_

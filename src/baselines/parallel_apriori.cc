#include "baselines/parallel_apriori.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "baselines/apriori.h"
#include "baselines/hash_tree.h"
#include "common/timer.h"
#include "exec/worker_pool.h"

namespace setm {

namespace {

/// One contiguous transaction range [begin, end).
struct Chunk {
  size_t begin = 0;
  size_t end = 0;
};

std::vector<Chunk> SplitChunks(size_t n, size_t want) {
  const size_t num_chunks = std::max<size_t>(
      1, std::min(want, std::max<size_t>(1, n)));
  std::vector<Chunk> chunks(num_chunks);
  const size_t target = (n + num_chunks - 1) / num_chunks;
  for (size_t i = 0; i < num_chunks; ++i) {
    chunks[i].begin = std::min(n, i * target);
    chunks[i].end = std::min(n, (i + 1) * target);
  }
  return chunks;
}

}  // namespace

Result<MiningResult> ParallelAprioriMiner::Mine(
    const TransactionDb& transactions, const MiningOptions& options) {
  SETM_RETURN_IF_ERROR(ValidateTransactions(transactions));
  WallTimer timer;
  MiningResult result;
  result.itemsets.num_transactions = transactions.size();
  const int64_t minsup = ResolveMinSupportCount(options, transactions.size());

  const std::vector<Chunk> chunks =
      SplitChunks(transactions.size(), std::max<size_t>(1, num_threads_));
  WorkerPool* pool = pool_;
  std::unique_ptr<WorkerPool> owned_pool;
  if (pool == nullptr && num_threads_ > 1) {
    owned_pool =
        std::make_unique<WorkerPool>(std::min(num_threads_, chunks.size()));
    pool = owned_pool.get();
  }

  // Pass 1: per-chunk item counts, summed before the filter.
  std::vector<std::vector<ItemId>> frontier;
  {
    WallTimer iter_timer;
    std::vector<std::unordered_map<ItemId, int64_t>> partial(chunks.size());
    TaskGroup group(pool);
    for (size_t c = 0; c < chunks.size(); ++c) {
      const Chunk chunk = chunks[c];
      std::unordered_map<ItemId, int64_t>* out = &partial[c];
      group.Submit([&transactions, chunk, out] {
        for (size_t t = chunk.begin; t < chunk.end; ++t) {
          for (ItemId item : transactions[t].items) ++(*out)[item];
        }
        return Status::OK();
      });
    }
    SETM_RETURN_IF_ERROR(group.Wait());
    std::unordered_map<ItemId, int64_t> counts;
    for (auto& p : partial) {
      for (const auto& [item, count] : p) counts[item] += count;
    }
    std::vector<PatternCount> l1;
    for (const auto& [item, count] : counts) {
      if (count >= minsup) l1.push_back(PatternCount{{item}, count});
    }
    std::sort(l1.begin(), l1.end(),
              [](const PatternCount& a, const PatternCount& b) {
                return a.items < b.items;
              });
    for (PatternCount& pc : l1) {
      frontier.push_back(pc.items);
      result.itemsets.Add(std::move(pc.items), pc.count);
    }
    IterationStats stats;
    stats.k = 1;
    stats.r_prime_rows = counts.size();
    stats.c_size = frontier.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
  }

  for (size_t k = 2; !frontier.empty(); ++k) {
    if (options.max_pattern_length != 0 && k > options.max_pattern_length) {
      break;
    }
    WallTimer iter_timer;
    // Serial, deterministic candidate generation — every chunk counts the
    // same C_k.
    std::vector<std::vector<ItemId>> candidates =
        AprioriMiner::GenerateCandidates(frontier);
    if (candidates.empty()) break;

    // One hash tree per chunk over the identical candidate list; the tree's
    // probe stamps make sharing one tree across threads a data race.
    std::vector<std::unordered_map<std::string, PatternCount>> partial(
        chunks.size());
    TaskGroup group(pool);
    for (size_t c = 0; c < chunks.size(); ++c) {
      const Chunk chunk = chunks[c];
      std::unordered_map<std::string, PatternCount>* out = &partial[c];
      group.Submit([&transactions, &candidates, chunk, k, out] {
        HashTree tree(k);
        for (const auto& cand : candidates) tree.Insert(cand);
        for (size_t t = chunk.begin; t < chunk.end; ++t) {
          tree.CountTransaction(transactions[t].items);
        }
        tree.ForEach([out](const std::vector<ItemId>& items, int64_t count) {
          if (count == 0) return;
          PatternCount& pc = (*out)[ItemsetKey(items)];
          if (pc.count == 0) pc.items = items;
          pc.count += count;
        });
        return Status::OK();
      });
    }
    SETM_RETURN_IF_ERROR(group.Wait());

    std::unordered_map<std::string, PatternCount> counts;
    for (auto& p : partial) {
      for (auto& [key, pc] : p) {
        PatternCount& g = counts[key];
        if (g.count == 0) g.items = std::move(pc.items);
        g.count += pc.count;
      }
    }
    frontier.clear();
    std::vector<PatternCount> lk;
    for (auto& [key, pc] : counts) {
      if (pc.count >= minsup) lk.push_back(std::move(pc));
    }
    std::sort(lk.begin(), lk.end(),
              [](const PatternCount& a, const PatternCount& b) {
                return a.items < b.items;
              });
    for (PatternCount& pc : lk) {
      frontier.push_back(pc.items);
      result.itemsets.Add(std::move(pc.items), pc.count);
    }

    IterationStats stats;
    stats.k = k;
    stats.r_prime_rows = candidates.size();
    stats.c_size = frontier.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
  }

  result.itemsets.Normalize();
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace setm

#ifndef SETM_BASELINES_HASH_TREE_H_
#define SETM_BASELINES_HASH_TREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/types.h"

namespace setm {

/// The candidate hash tree of Apriori (Agrawal & Srikant, VLDB'94).
///
/// Interior nodes hash one item per depth level; leaves hold candidate
/// k-itemsets with their running support counts. Counting a transaction
/// descends along every combination of its items (in order), so each
/// candidate contained in the transaction is found without enumerating all
/// k-subsets of the transaction. A per-candidate transaction stamp prevents
/// double counting when several hash paths reach the same leaf.
class HashTree {
 public:
  /// `k` is the candidate size; `max_leaf` the split threshold.
  explicit HashTree(size_t k, size_t max_leaf = 8, size_t buckets = 13);

  /// Adds a candidate (sorted, size k) with count 0.
  void Insert(const std::vector<ItemId>& items);

  /// Increments the count of every candidate contained in `txn` (sorted).
  void CountTransaction(const std::vector<ItemId>& txn);

  /// Visits every candidate with its count.
  void ForEach(
      const std::function<void(const std::vector<ItemId>&, int64_t)>& fn)
      const;

  /// Number of candidates stored.
  size_t size() const { return size_; }

 private:
  struct Candidate {
    std::vector<ItemId> items;
    int64_t count = 0;
    uint64_t stamp = 0;  // last transaction that counted this candidate
  };

  struct Node {
    bool leaf = true;
    std::vector<Candidate> candidates;        // leaf payload
    std::vector<std::unique_ptr<Node>> kids;  // interior: `buckets` slots
  };

  size_t Bucket(ItemId item) const {
    return static_cast<size_t>(static_cast<uint32_t>(item)) % buckets_;
  }
  void InsertAt(Node* node, Candidate cand, size_t depth);
  void Count(Node* node, const std::vector<ItemId>& txn, size_t start,
             size_t depth, uint64_t stamp);
  void Visit(const Node* node,
             const std::function<void(const std::vector<ItemId>&, int64_t)>&
                 fn) const;

  size_t k_;
  size_t max_leaf_;
  size_t buckets_;
  size_t size_ = 0;
  uint64_t stamp_counter_ = 0;  // one per CountTransaction call
  std::unique_ptr<Node> root_;
};

}  // namespace setm

#endif  // SETM_BASELINES_HASH_TREE_H_

#ifndef SETM_BASELINES_PARALLEL_APRIORI_H_
#define SETM_BASELINES_PARALLEL_APRIORI_H_

#include <cstddef>

#include "core/types.h"

namespace setm {

class WorkerPool;

/// Data-parallel Apriori (the "count distribution" scheme of Agrawal &
/// Shafer, TKDE'96): transactions are split into contiguous chunks, every
/// chunk counts the SAME global candidate set against its own hash tree
/// (HashTree's probe stamps make one tree thread-unsafe, so sharing is not
/// an option), and per-chunk counts are summed before the minsupport
/// filter. Candidate generation stays serial and deterministic
/// (AprioriMiner::GenerateCandidates), so results are bit-identical to the
/// serial AprioriMiner for any thread count — asserted by
/// miners_equivalence_test under the registry name "apriori-parallel".
class ParallelAprioriMiner {
 public:
  /// `pool` (optional, borrowed) runs the chunk tasks; without one, a
  /// private pool of `num_threads` workers is spun up per Mine call when
  /// num_threads > 1.
  explicit ParallelAprioriMiner(size_t num_threads = 1,
                                WorkerPool* pool = nullptr)
      : num_threads_(num_threads), pool_(pool) {}

  Result<MiningResult> Mine(const TransactionDb& transactions,
                            const MiningOptions& options);

 private:
  size_t num_threads_;
  WorkerPool* pool_;
};

}  // namespace setm

#endif  // SETM_BASELINES_PARALLEL_APRIORI_H_

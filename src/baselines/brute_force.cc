#include "baselines/brute_force.h"

#include <map>

#include "common/timer.h"

namespace setm {

Result<MiningResult> BruteForceMiner::Mine(const TransactionDb& transactions,
                                           const MiningOptions& options) {
  SETM_RETURN_IF_ERROR(ValidateTransactions(transactions));
  WallTimer timer;
  MiningResult result;
  result.itemsets.num_transactions = transactions.size();
  const int64_t minsup = ResolveMinSupportCount(options, transactions.size());

  // Level-wise: count all k-subsets of each transaction whose (k-1)-prefix
  // family was not already globally infrequent. To stay simple and exact we
  // recount every level from scratch.
  std::vector<std::vector<ItemId>> frontier;  // frequent (k-1)-itemsets
  for (size_t k = 1;; ++k) {
    if (options.max_pattern_length != 0 && k > options.max_pattern_length) {
      break;
    }
    WallTimer iter_timer;
    std::map<std::vector<ItemId>, int64_t> counts;
    std::vector<ItemId> subset(k);
    for (const Transaction& t : transactions) {
      const size_t n = t.items.size();
      if (n < k) continue;
      // Enumerate k-subsets of t.items with an index odometer.
      std::vector<size_t> pick(k);
      for (size_t i = 0; i < k; ++i) pick[i] = i;
      while (true) {
        for (size_t i = 0; i < k; ++i) subset[i] = t.items[pick[i]];
        ++counts[subset];
        ptrdiff_t i = static_cast<ptrdiff_t>(k) - 1;
        while (i >= 0 && pick[i] == static_cast<size_t>(i) + n - k) --i;
        if (i < 0) break;
        ++pick[i];
        for (size_t j = static_cast<size_t>(i) + 1; j < k; ++j) {
          pick[j] = pick[j - 1] + 1;
        }
      }
    }
    frontier.clear();
    for (const auto& [items, count] : counts) {
      if (count >= minsup) {
        result.itemsets.Add(items, count);
        frontier.push_back(items);
      }
    }
    IterationStats stats;
    stats.k = k;
    stats.r_prime_rows = counts.size();
    stats.c_size = frontier.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
    if (frontier.empty()) break;
  }

  result.itemsets.Normalize();
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace setm

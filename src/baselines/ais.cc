#include "baselines/ais.h"

#include <algorithm>
#include <unordered_map>
#include <cstring>
#include <unordered_set>

#include "common/timer.h"

namespace setm {

Result<MiningResult> AisMiner::Mine(const TransactionDb& transactions,
                                    const MiningOptions& options) {
  SETM_RETURN_IF_ERROR(ValidateTransactions(transactions));
  WallTimer timer;
  MiningResult result;
  result.itemsets.num_transactions = transactions.size();
  const int64_t minsup = ResolveMinSupportCount(options, transactions.size());

  // Pass 1.
  std::vector<std::vector<ItemId>> frontier;
  {
    WallTimer iter_timer;
    std::unordered_map<ItemId, int64_t> counts;
    for (const Transaction& t : transactions) {
      for (ItemId item : t.items) ++counts[item];
    }
    std::vector<PatternCount> l1;
    for (const auto& [item, count] : counts) {
      if (count >= minsup) l1.push_back(PatternCount{{item}, count});
    }
    std::sort(l1.begin(), l1.end(),
              [](const PatternCount& a, const PatternCount& b) {
                return a.items < b.items;
              });
    for (PatternCount& pc : l1) {
      frontier.push_back(pc.items);
      result.itemsets.Add(std::move(pc.items), pc.count);
    }
    IterationStats stats;
    stats.k = 1;
    stats.r_prime_rows = counts.size();
    stats.c_size = frontier.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
  }

  // Passes k >= 2: extend frontier sets found in each transaction.
  for (size_t k = 2; !frontier.empty(); ++k) {
    if (options.max_pattern_length != 0 && k > options.max_pattern_length) {
      break;
    }
    WallTimer iter_timer;
    std::unordered_map<std::string, int64_t> counts;
    std::vector<ItemId> extended;
    for (const Transaction& t : transactions) {
      if (t.items.size() < k) continue;
      for (const auto& f : frontier) {
        // Containment check: frontier and transaction items are sorted.
        if (!std::includes(t.items.begin(), t.items.end(), f.begin(),
                           f.end())) {
          continue;
        }
        // Extend with every later item of the transaction.
        auto from = std::upper_bound(t.items.begin(), t.items.end(), f.back());
        for (auto it = from; it != t.items.end(); ++it) {
          extended = f;
          extended.push_back(*it);
          ++counts[ItemsetKey(extended)];
        }
      }
    }

    frontier.clear();
    std::vector<PatternCount> lk;
    for (const auto& [key, count] : counts) {
      if (count < minsup) continue;
      std::vector<ItemId> items(key.size() / sizeof(ItemId));
      std::memcpy(items.data(), key.data(), key.size());
      lk.push_back(PatternCount{std::move(items), count});
    }
    std::sort(lk.begin(), lk.end(),
              [](const PatternCount& a, const PatternCount& b) {
                return a.items < b.items;
              });
    for (PatternCount& pc : lk) {
      frontier.push_back(pc.items);
      result.itemsets.Add(std::move(pc.items), pc.count);
    }

    IterationStats stats;
    stats.k = k;
    stats.r_prime_rows = counts.size();
    stats.c_size = frontier.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
  }

  result.itemsets.Normalize();
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace setm

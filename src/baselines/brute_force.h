#ifndef SETM_BASELINES_BRUTE_FORCE_H_
#define SETM_BASELINES_BRUTE_FORCE_H_

#include "core/types.h"

namespace setm {

/// Oracle miner: enumerates every itemset that occurs in some transaction
/// and counts supports exactly, with no pruning cleverness beyond the
/// anti-monotone level-wise cut. Exponential in the worst case — test-sized
/// inputs only. Every other miner's output is checked against this one.
class BruteForceMiner {
 public:
  /// Mines `transactions`; items in each transaction must be sorted/unique.
  Result<MiningResult> Mine(const TransactionDb& transactions,
                            const MiningOptions& options);
};

}  // namespace setm

#endif  // SETM_BASELINES_BRUTE_FORCE_H_

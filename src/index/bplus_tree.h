#ifndef SETM_INDEX_BPLUS_TREE_H_
#define SETM_INDEX_BPLUS_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace setm {

/// Encodes the composite key (hi, lo) into one order-preserving uint64.
/// The nested-loop mining strategy indexes SALES on (item, trans_id) and on
/// (trans_id); items and transaction ids are non-negative 32-bit values, so
/// (hi << 32) | lo sorts exactly like the pair.
inline uint64_t ComposeKey(uint32_t hi, uint32_t lo) {
  return (static_cast<uint64_t>(hi) << 32) | lo;
}
/// High 32 bits of a composite key.
inline uint32_t KeyHigh(uint64_t key) { return static_cast<uint32_t>(key >> 32); }
/// Low 32 bits of a composite key.
inline uint32_t KeyLow(uint64_t key) { return static_cast<uint32_t>(key); }

/// A disk-resident B+-tree with fixed-size 64-bit keys and 64-bit payloads.
///
/// Entries are ordered by the (key, payload) pair, which makes duplicate
/// keys well-defined (the (trans_id) index stores one entry per SALES row).
/// Leaves are chained for range scans. Nodes occupy exactly one 4 KiB page,
/// so every node access is one page access in the IoStats ledger — the
/// measurements behind the Section 3.2 analysis.
///
/// Deletion removes entries in place; structurally empty leaves are kept in
/// the chain and skipped by scans (lazy space reclamation, documented
/// engine-wide; mining workloads drop whole relations rather than trickle-
/// delete).
class BPlusTree {
 public:
  /// An entry is a (key, payload) pair.
  struct Entry {
    uint64_t key;
    uint64_t value;
    bool operator==(const Entry& o) const {
      return key == o.key && value == o.value;
    }
    bool operator<(const Entry& o) const {
      return key < o.key || (key == o.key && value < o.value);
    }
  };

  /// Creates an empty tree whose nodes are allocated from `pool`.
  static Result<BPlusTree> Create(BufferPool* pool);

  /// Builds a tree from entries sorted by (key, value) — duplicates allowed.
  /// Leaves are filled to a fill factor of ~100% and written once; this is
  /// how the experiments construct the SALES indexes in bulk.
  static Result<BPlusTree> BulkLoad(BufferPool* pool,
                                    const std::vector<Entry>& sorted_entries);

  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  /// Inserts one entry. AlreadyExists if the identical (key, value) pair is
  /// present.
  Status Insert(uint64_t key, uint64_t value);

  /// Removes one entry; NotFound if absent.
  Status Delete(uint64_t key, uint64_t value);

  /// True iff the exact (key, value) entry exists.
  Result<bool> Contains(uint64_t key, uint64_t value) const;

  /// Number of live entries.
  uint64_t num_entries() const { return num_entries_; }

  /// Height of the tree (1 = root is a leaf).
  uint32_t height() const { return height_; }

  /// Pages allocated for nodes (leaf + internal), the ||index|| of the
  /// analytical model.
  uint64_t num_pages() const { return num_pages_; }

  /// Forward scanner over entries with key in [lower, upper].
  ///
  ///     auto it = tree.Seek(ComposeKey(item, 0));
  ///     while (it.Valid() && KeyHigh(it.entry().key) == item) {
  ///       ...; if (!it.Next().ok()) break;
  ///     }
  class Iterator {
   public:
    /// True when positioned on an entry.
    bool Valid() const { return valid_; }
    /// Current entry; requires Valid().
    const Entry& entry() const { return entry_; }
    /// Advances; Valid() turns false past the last entry.
    Status Next();

   private:
    friend class BPlusTree;
    Iterator(const BPlusTree* tree, PageId leaf, uint16_t slot)
        : tree_(tree), leaf_(leaf), slot_(slot) {}
    Status LoadCurrent();

    const BPlusTree* tree_;
    PageId leaf_;
    uint16_t slot_;
    Entry entry_{0, 0};
    bool valid_ = false;
  };

  /// Iterator positioned at the first entry with key >= `key`
  /// (and among equal keys, the smallest payload).
  Result<Iterator> Seek(uint64_t key) const;

  /// Iterator at the smallest entry.
  Result<Iterator> Begin() const;

  /// Collects all payloads whose key equals `key` (convenience for probes).
  Status GetAll(uint64_t key, std::vector<uint64_t>* values) const;

  /// Validates structural invariants (ordering within and across nodes,
  /// key separation at internal nodes, leaf chain consistency). Test hook.
  Status CheckInvariants() const;

 private:
  explicit BPlusTree(BufferPool* pool) : pool_(pool) {}

  struct SplitResult {
    bool split = false;
    uint64_t sep_key = 0;    // smallest (key,value).key in the right node
    uint64_t sep_value = 0;  // payload part of the separator pair
    PageId right = kInvalidPageId;
  };

  Result<SplitResult> InsertRecursive(PageId node, uint64_t key,
                                      uint64_t value);
  Result<PageId> FindLeaf(uint64_t key, uint64_t value) const;

  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  uint64_t num_entries_ = 0;
  uint64_t num_pages_ = 0;
  uint32_t height_ = 1;
};

}  // namespace setm

#endif  // SETM_INDEX_BPLUS_TREE_H_

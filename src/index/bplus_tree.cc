#include "index/bplus_tree.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace setm {

namespace {

// Node layouts --------------------------------------------------------------
//
// Both node kinds fit exactly one page:
//   leaf:     [NodeHeader | Entry entries[kLeafCap]]
//   internal: [NodeHeader | PageId children[kInternalCap+1]
//                         | Entry separators[kInternalCap]]
//
// Internal separators are full (key, payload) pairs: the tree orders by the
// pair, which keeps duplicate keys exact instead of "mostly sorted".
// children[i] covers pairs < separators[i]; children[i+1] covers >= .

struct NodeHeader {
  uint16_t is_leaf;
  uint16_t num_keys;
  PageId next_leaf;  // leaves only; kInvalidPageId elsewhere
};

constexpr size_t kHeaderSize = sizeof(NodeHeader);
constexpr size_t kLeafCap = (kPageSize - kHeaderSize) / sizeof(BPlusTree::Entry);
constexpr size_t kInternalCap =
    (kPageSize - kHeaderSize - sizeof(PageId)) /
    (sizeof(BPlusTree::Entry) + sizeof(PageId));

static_assert(kLeafCap >= 4, "page too small");
static_assert(kInternalCap >= 4, "page too small");

NodeHeader* Header(Page* p) { return p->As<NodeHeader>(); }
const NodeHeader* Header(const Page* p) { return p->As<NodeHeader>(); }

BPlusTree::Entry* LeafEntries(Page* p) {
  return p->As<BPlusTree::Entry>(kHeaderSize);
}
const BPlusTree::Entry* LeafEntries(const Page* p) {
  return p->As<BPlusTree::Entry>(kHeaderSize);
}

PageId* Children(Page* p) { return p->As<PageId>(kHeaderSize); }
const PageId* Children(const Page* p) { return p->As<PageId>(kHeaderSize); }

constexpr size_t kSepOffset = kHeaderSize + (kInternalCap + 1) * sizeof(PageId);

BPlusTree::Entry* Separators(Page* p) {
  return p->As<BPlusTree::Entry>(kSepOffset);
}
const BPlusTree::Entry* Separators(const Page* p) {
  return p->As<BPlusTree::Entry>(kSepOffset);
}

void InitLeaf(Page* p) {
  p->Clear();
  NodeHeader* h = Header(p);
  h->is_leaf = 1;
  h->num_keys = 0;
  h->next_leaf = kInvalidPageId;
}

void InitInternal(Page* p) {
  p->Clear();
  NodeHeader* h = Header(p);
  h->is_leaf = 0;
  h->num_keys = 0;
  h->next_leaf = kInvalidPageId;
}

// First position in [0, n) whose entry is >= e.
uint16_t LowerBound(const BPlusTree::Entry* entries, uint16_t n,
                    const BPlusTree::Entry& e) {
  return static_cast<uint16_t>(
      std::lower_bound(entries, entries + n, e) - entries);
}

// Child index to follow for pair e: number of separators <= e.
uint16_t ChildIndex(const Page* p, const BPlusTree::Entry& e) {
  const NodeHeader* h = Header(p);
  const BPlusTree::Entry* seps = Separators(p);
  return static_cast<uint16_t>(
      std::upper_bound(seps, seps + h->num_keys, e) - seps);
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Result<BPlusTree> BPlusTree::Create(BufferPool* pool) {
  BPlusTree tree(pool);
  auto guard_or = pool->NewPage();
  if (!guard_or.ok()) return guard_or.status();
  InitLeaf(guard_or.value().page());
  guard_or.value().MarkDirty();
  tree.root_ = guard_or.value().id();
  tree.num_pages_ = 1;
  return tree;
}

Result<BPlusTree> BPlusTree::BulkLoad(
    BufferPool* pool, const std::vector<Entry>& sorted_entries) {
  SETM_DCHECK(std::is_sorted(sorted_entries.begin(), sorted_entries.end()));
  if (sorted_entries.empty()) return Create(pool);

  BPlusTree tree(pool);
  // Level 0: pack leaves left to right.
  struct NodeRef {
    PageId id;
    Entry first;  // smallest pair in the subtree
  };
  std::vector<NodeRef> level;
  PageId prev_leaf = kInvalidPageId;
  size_t pos = 0;
  while (pos < sorted_entries.size()) {
    auto guard_or = pool->NewPage();
    if (!guard_or.ok()) return guard_or.status();
    PageGuard guard = std::move(guard_or).value();
    InitLeaf(guard.page());
    ++tree.num_pages_;
    const size_t n = std::min(kLeafCap, sorted_entries.size() - pos);
    std::memcpy(LeafEntries(guard.page()), sorted_entries.data() + pos,
                n * sizeof(Entry));
    Header(guard.page())->num_keys = static_cast<uint16_t>(n);
    guard.MarkDirty();
    if (prev_leaf != kInvalidPageId) {
      auto prev_or = pool->FetchPage(prev_leaf);
      if (!prev_or.ok()) return prev_or.status();
      Header(prev_or.value().page())->next_leaf = guard.id();
      prev_or.value().MarkDirty();
    }
    level.push_back(NodeRef{guard.id(), sorted_entries[pos]});
    prev_leaf = guard.id();
    pos += n;
  }

  // Build internal levels until a single root remains.
  while (level.size() > 1) {
    std::vector<NodeRef> next;
    size_t i = 0;
    while (i < level.size()) {
      auto guard_or = pool->NewPage();
      if (!guard_or.ok()) return guard_or.status();
      PageGuard guard = std::move(guard_or).value();
      InitInternal(guard.page());
      ++tree.num_pages_;
      // Fan-in: up to kInternalCap+1 children per node, but never leave a
      // single orphan child for the last node.
      size_t take = std::min(kInternalCap + 1, level.size() - i);
      if (level.size() - i - take == 1) --take;  // rebalance the tail
      NodeHeader* h = Header(guard.page());
      PageId* children = Children(guard.page());
      Entry* seps = Separators(guard.page());
      for (size_t j = 0; j < take; ++j) {
        children[j] = level[i + j].id;
        if (j > 0) seps[j - 1] = level[i + j].first;
      }
      h->num_keys = static_cast<uint16_t>(take - 1);
      guard.MarkDirty();
      next.push_back(NodeRef{guard.id(), level[i].first});
      i += take;
    }
    level = std::move(next);
    ++tree.height_;
  }
  tree.root_ = level[0].id;
  tree.num_entries_ = sorted_entries.size();
  return tree;
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

Status BPlusTree::Insert(uint64_t key, uint64_t value) {
  auto split_or = InsertRecursive(root_, key, value);
  if (!split_or.ok()) return split_or.status();
  const SplitResult& split = split_or.value();
  if (split.split) {
    // Grow a new root.
    auto guard_or = pool_->NewPage();
    if (!guard_or.ok()) return guard_or.status();
    PageGuard guard = std::move(guard_or).value();
    InitInternal(guard.page());
    ++num_pages_;
    NodeHeader* h = Header(guard.page());
    Children(guard.page())[0] = root_;
    Children(guard.page())[1] = split.right;
    Separators(guard.page())[0] = Entry{split.sep_key, split.sep_value};
    h->num_keys = 1;
    guard.MarkDirty();
    root_ = guard.id();
    ++height_;
  }
  ++num_entries_;
  return Status::OK();
}

Result<BPlusTree::SplitResult> BPlusTree::InsertRecursive(PageId node,
                                                          uint64_t key,
                                                          uint64_t value) {
  auto guard_or = pool_->FetchPage(node);
  if (!guard_or.ok()) return guard_or.status();
  PageGuard guard = std::move(guard_or).value();
  Page* p = guard.page();
  NodeHeader* h = Header(p);
  const Entry e{key, value};

  if (h->is_leaf) {
    Entry* entries = LeafEntries(p);
    uint16_t pos = LowerBound(entries, h->num_keys, e);
    if (pos < h->num_keys && entries[pos] == e) {
      return Status::AlreadyExists("duplicate index entry");
    }
    if (h->num_keys < kLeafCap) {
      std::memmove(entries + pos + 1, entries + pos,
                   (h->num_keys - pos) * sizeof(Entry));
      entries[pos] = e;
      ++h->num_keys;
      guard.MarkDirty();
      return SplitResult{};
    }
    // Split the leaf: upper half moves right.
    auto right_or = pool_->NewPage();
    if (!right_or.ok()) return right_or.status();
    PageGuard right = std::move(right_or).value();
    InitLeaf(right.page());
    ++num_pages_;
    NodeHeader* rh = Header(right.page());
    Entry* rentries = LeafEntries(right.page());
    const uint16_t mid = static_cast<uint16_t>(kLeafCap / 2);
    const uint16_t move = static_cast<uint16_t>(kLeafCap - mid);
    std::memcpy(rentries, entries + mid, move * sizeof(Entry));
    rh->num_keys = move;
    h->num_keys = mid;
    rh->next_leaf = h->next_leaf;
    h->next_leaf = right.id();
    // Insert into the proper half.
    if (e < rentries[0]) {
      uint16_t ipos = LowerBound(entries, h->num_keys, e);
      std::memmove(entries + ipos + 1, entries + ipos,
                   (h->num_keys - ipos) * sizeof(Entry));
      entries[ipos] = e;
      ++h->num_keys;
    } else {
      uint16_t ipos = LowerBound(rentries, rh->num_keys, e);
      std::memmove(rentries + ipos + 1, rentries + ipos,
                   (rh->num_keys - ipos) * sizeof(Entry));
      rentries[ipos] = e;
      ++rh->num_keys;
    }
    guard.MarkDirty();
    right.MarkDirty();
    SplitResult out;
    out.split = true;
    out.sep_key = rentries[0].key;
    out.sep_value = rentries[0].value;
    out.right = right.id();
    return out;
  }

  // Internal node.
  const uint16_t child_idx = ChildIndex(p, e);
  const PageId child = Children(p)[child_idx];
  auto child_split_or = InsertRecursive(child, key, value);
  if (!child_split_or.ok()) return child_split_or.status();
  const SplitResult child_split = child_split_or.value();
  if (!child_split.split) return SplitResult{};

  const Entry sep{child_split.sep_key, child_split.sep_value};
  Entry* seps = Separators(p);
  PageId* children = Children(p);
  uint16_t pos = LowerBound(seps, h->num_keys, sep);
  if (h->num_keys < kInternalCap) {
    std::memmove(seps + pos + 1, seps + pos,
                 (h->num_keys - pos) * sizeof(Entry));
    std::memmove(children + pos + 2, children + pos + 1,
                 (h->num_keys - pos) * sizeof(PageId));
    seps[pos] = sep;
    children[pos + 1] = child_split.right;
    ++h->num_keys;
    guard.MarkDirty();
    return SplitResult{};
  }

  // Split this internal node. Assemble the full sequence, then cut at the
  // middle separator (which is promoted, not retained).
  std::vector<Entry> all_seps(seps, seps + h->num_keys);
  std::vector<PageId> all_children(children, children + h->num_keys + 1);
  all_seps.insert(all_seps.begin() + pos, sep);
  all_children.insert(all_children.begin() + pos + 1, child_split.right);

  const size_t total = all_seps.size();  // kInternalCap + 1
  const size_t mid = total / 2;
  auto right_or = pool_->NewPage();
  if (!right_or.ok()) return right_or.status();
  PageGuard right = std::move(right_or).value();
  InitInternal(right.page());
  ++num_pages_;

  // Left keeps separators [0, mid) and children [0, mid].
  h->num_keys = static_cast<uint16_t>(mid);
  std::memcpy(seps, all_seps.data(), mid * sizeof(Entry));
  std::memcpy(children, all_children.data(), (mid + 1) * sizeof(PageId));

  // Right takes separators (mid, total) and children [mid+1, total].
  NodeHeader* rh = Header(right.page());
  rh->num_keys = static_cast<uint16_t>(total - mid - 1);
  std::memcpy(Separators(right.page()), all_seps.data() + mid + 1,
              rh->num_keys * sizeof(Entry));
  std::memcpy(Children(right.page()), all_children.data() + mid + 1,
              (rh->num_keys + 1) * sizeof(PageId));

  guard.MarkDirty();
  right.MarkDirty();
  SplitResult out;
  out.split = true;
  out.sep_key = all_seps[mid].key;
  out.sep_value = all_seps[mid].value;
  out.right = right.id();
  return out;
}

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

Result<PageId> BPlusTree::FindLeaf(uint64_t key, uint64_t value) const {
  const Entry e{key, value};
  PageId node = root_;
  while (true) {
    auto guard_or = pool_->FetchPage(node);
    if (!guard_or.ok()) return guard_or.status();
    const Page* p = guard_or.value().page();
    if (Header(p)->is_leaf) return node;
    node = Children(p)[ChildIndex(p, e)];
  }
}

Status BPlusTree::Delete(uint64_t key, uint64_t value) {
  auto leaf_or = FindLeaf(key, value);
  if (!leaf_or.ok()) return leaf_or.status();
  auto guard_or = pool_->FetchPage(leaf_or.value());
  if (!guard_or.ok()) return guard_or.status();
  PageGuard guard = std::move(guard_or).value();
  Page* p = guard.page();
  NodeHeader* h = Header(p);
  Entry* entries = LeafEntries(p);
  const Entry e{key, value};
  uint16_t pos = LowerBound(entries, h->num_keys, e);
  if (pos >= h->num_keys || !(entries[pos] == e)) {
    return Status::NotFound("index entry not found");
  }
  std::memmove(entries + pos, entries + pos + 1,
               (h->num_keys - pos - 1) * sizeof(Entry));
  --h->num_keys;
  guard.MarkDirty();
  --num_entries_;
  return Status::OK();
}

Result<bool> BPlusTree::Contains(uint64_t key, uint64_t value) const {
  auto leaf_or = FindLeaf(key, value);
  if (!leaf_or.ok()) return leaf_or.status();
  auto guard_or = pool_->FetchPage(leaf_or.value());
  if (!guard_or.ok()) return guard_or.status();
  const Page* p = guard_or.value().page();
  const NodeHeader* h = Header(p);
  const Entry* entries = LeafEntries(p);
  const Entry e{key, value};
  uint16_t pos = LowerBound(entries, h->num_keys, e);
  return pos < h->num_keys && entries[pos] == e;
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

Status BPlusTree::Iterator::LoadCurrent() {
  valid_ = false;
  while (leaf_ != kInvalidPageId) {
    auto guard_or = tree_->pool_->FetchPage(leaf_);
    if (!guard_or.ok()) return guard_or.status();
    const Page* p = guard_or.value().page();
    const NodeHeader* h = Header(p);
    if (slot_ < h->num_keys) {
      entry_ = LeafEntries(p)[slot_];
      valid_ = true;
      return Status::OK();
    }
    leaf_ = h->next_leaf;  // skip exhausted/empty leaves
    slot_ = 0;
  }
  return Status::OK();
}

Status BPlusTree::Iterator::Next() {
  SETM_DCHECK(valid_);
  ++slot_;
  return LoadCurrent();
}

Result<BPlusTree::Iterator> BPlusTree::Seek(uint64_t key) const {
  auto leaf_or = FindLeaf(key, 0);
  if (!leaf_or.ok()) return leaf_or.status();
  auto guard_or = pool_->FetchPage(leaf_or.value());
  if (!guard_or.ok()) return guard_or.status();
  const Page* p = guard_or.value().page();
  const NodeHeader* h = Header(p);
  const Entry e{key, 0};
  uint16_t pos = LowerBound(LeafEntries(p), h->num_keys, e);
  Iterator it(this, leaf_or.value(), pos);
  SETM_RETURN_IF_ERROR(it.LoadCurrent());
  return it;
}

Result<BPlusTree::Iterator> BPlusTree::Begin() const { return Seek(0); }

Status BPlusTree::GetAll(uint64_t key, std::vector<uint64_t>* values) const {
  auto it_or = Seek(key);
  if (!it_or.ok()) return it_or.status();
  Iterator it = std::move(it_or).value();
  while (it.Valid() && it.entry().key == key) {
    values->push_back(it.entry().value);
    SETM_RETURN_IF_ERROR(it.Next());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Invariant checking (test hook)
// ---------------------------------------------------------------------------

namespace {
struct CheckContext {
  const BufferPool* pool;
  uint64_t entries_seen = 0;
};
}  // namespace

Status BPlusTree::CheckInvariants() const {
  // Recursive structural check with (lo, hi) pair bounds.
  struct Checker {
    BufferPool* pool;
    uint64_t leaf_entries = 0;

    Status Check(PageId node, const Entry* lo, const Entry* hi, int depth,
                 int* leaf_depth) {
      auto guard_or = pool->FetchPage(node);
      if (!guard_or.ok()) return guard_or.status();
      const Page* p = guard_or.value().page();
      const NodeHeader* h = Header(p);
      if (h->is_leaf) {
        if (*leaf_depth == -1) *leaf_depth = depth;
        if (*leaf_depth != depth) {
          return Status::Corruption("leaves at differing depths");
        }
        const Entry* entries = LeafEntries(p);
        for (uint16_t i = 0; i < h->num_keys; ++i) {
          if (i > 0 && !(entries[i - 1] < entries[i])) {
            return Status::Corruption("leaf entries out of order");
          }
          if (lo != nullptr && entries[i] < *lo) {
            return Status::Corruption("leaf entry below subtree bound");
          }
          if (hi != nullptr && !(entries[i] < *hi)) {
            return Status::Corruption("leaf entry above subtree bound");
          }
        }
        leaf_entries += h->num_keys;
        return Status::OK();
      }
      const Entry* seps = Separators(p);
      const PageId* children = Children(p);
      if (h->num_keys == 0) {
        return Status::Corruption("internal node without separators");
      }
      for (uint16_t i = 0; i < h->num_keys; ++i) {
        if (i > 0 && !(seps[i - 1] < seps[i])) {
          return Status::Corruption("separators out of order");
        }
      }
      for (uint16_t i = 0; i <= h->num_keys; ++i) {
        const Entry* child_lo = i == 0 ? lo : &seps[i - 1];
        const Entry* child_hi = i == h->num_keys ? hi : &seps[i];
        SETM_RETURN_IF_ERROR(
            Check(children[i], child_lo, child_hi, depth + 1, leaf_depth));
      }
      return Status::OK();
    }
  };

  Checker checker{pool_};
  int leaf_depth = -1;
  SETM_RETURN_IF_ERROR(
      checker.Check(root_, nullptr, nullptr, 0, &leaf_depth));
  if (checker.leaf_entries != num_entries_) {
    return Status::Corruption("entry count mismatch: tree says " +
                              std::to_string(num_entries_) + ", found " +
                              std::to_string(checker.leaf_entries));
  }
  return Status::OK();
}

}  // namespace setm

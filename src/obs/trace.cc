#include "obs/trace.h"

#include <cstdio>

namespace setm::obs {

TraceSpan::TraceSpan(std::string name, const IoStats* ledger)
    : name_(std::move(name)), ledger_(ledger) {
  if (ledger_ != nullptr) {
    start_reads_ = ledger_->page_reads.load(std::memory_order_relaxed);
  }
}

TraceSpan* TraceSpan::StartChild(std::string name) {
  children_.push_back(
      std::make_unique<TraceSpan>(std::move(name), ledger_));
  return children_.back().get();
}

TraceSpan* TraceSpan::AddCompletedChild(std::string name, double seconds,
                                        uint64_t page_reads) {
  // A pre-measured child: no ledger, clock frozen at the reported values.
  children_.push_back(std::make_unique<TraceSpan>(std::move(name), nullptr));
  TraceSpan* child = children_.back().get();
  child->seconds_ = seconds;
  child->page_reads_ = page_reads;
  child->ended_ = true;
  return child;
}

void TraceSpan::End() {
  if (ended_) return;
  for (auto& child : children_) child->End();
  seconds_ = timer_.ElapsedSeconds();
  if (ledger_ != nullptr) {
    const uint64_t now = ledger_->page_reads.load(std::memory_order_relaxed);
    page_reads_ = now >= start_reads_ ? now - start_reads_ : 0;
  }
  ended_ = true;
}

void TraceSpan::AddTag(std::string key, std::string value) {
  tags_.emplace_back(std::move(key), std::move(value));
}

void TraceSpan::AddCount(std::string key, uint64_t value) {
  counts_.emplace_back(std::move(key), value);
}

double TraceSpan::seconds() const {
  return ended_ ? seconds_ : timer_.ElapsedSeconds();
}

std::string TraceSpan::Render(size_t indent) const {
  std::string out(indent, ' ');
  out += name_;
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %.3fms", seconds() * 1000.0);
  out += buf;
  std::snprintf(buf, sizeof(buf), " reads=%llu",
                static_cast<unsigned long long>(page_reads_));
  out += buf;
  for (const auto& [key, value] : tags_) {
    out += " " + key + "=" + value;
  }
  for (const auto& [key, value] : counts_) {
    std::snprintf(buf, sizeof(buf), " %s=%llu", key.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  out += "\n";
  for (const auto& child : children_) {
    out += child->Render(indent + 2);
  }
  return out;
}

}  // namespace setm::obs

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace setm::obs {

namespace {

/// Bucket index for a value: 0 for 0, else 1 + ceil(log2(v)), capped so the
/// last bucket absorbs the astronomical tail.
size_t BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  if (v == 1) return 1;
  // ceil(log2(v)) == bit_width(v - 1) for v >= 2.
  const size_t ceil_log2 =
      64 - static_cast<size_t>(__builtin_clzll(v - 1));
  return std::min<size_t>(1 + ceil_log2, Histogram::kNumBuckets - 1);
}

}  // namespace

uint64_t HistogramSnapshot::UpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= Histogram::kNumBuckets - 1) return UINT64_MAX;
  return uint64_t{1} << (i - 1);
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-th observation, 1-based (nearest-rank definition).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(count) - 1e-9)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return UpperBound(i);
  }
  return UpperBound(buckets.empty() ? 0 : buckets.size() - 1);
}

void Histogram::Observe(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  // Derive count/sum totals that can never *understate* the buckets copied
  // above (an Observe between the loops would otherwise leave a snapshot
  // whose buckets sum past its count).
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  snap.count = std::max(count_.load(std::memory_order_relaxed), bucket_total);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.type == MetricType::kCounter) {
      return m.counter_value;
    }
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.type == MetricType::kHistogram) {
      return &m.histogram;
    }
  }
  return nullptr;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(const std::string& name,
                                                     const std::string& help,
                                                     MetricType type) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    // Re-registration under a different kind is a naming bug, not a
    // recoverable condition — two layers fighting over one series would
    // silently corrupt both.
    SETM_CHECK(it->second.type == type);
    return &it->second;
  }
  Entry entry;
  entry.type = type;
  entry.help = help;
  switch (type) {
    case MetricType::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entries_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetOrCreate(name, help, MetricType::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetOrCreate(name, help, MetricType::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  return GetOrCreate(name, help, MetricType::kHistogram)->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.metrics.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      MetricSnapshot m;
      m.name = name;
      m.help = entry.help;
      m.type = entry.type;
      switch (entry.type) {
        case MetricType::kCounter:
          m.counter_value = entry.counter->Value();
          break;
        case MetricType::kGauge:
          m.gauge_value = entry.gauge->Value();
          break;
        case MetricType::kHistogram:
          m.histogram = entry.histogram->Snapshot();
          break;
      }
      snap.metrics.push_back(std::move(m));
    }
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace setm::obs

#ifndef SETM_OBS_TRACE_H_
#define SETM_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "storage/io_stats.h"

namespace setm::obs {

/// One node of a per-request trace tree.
///
/// The paper costs SETM in page accesses; a span carries exactly that next
/// to wall time: constructed against an IoStats ledger, it records the
/// ledger's page_reads at start and attributes the delta to itself at
/// End(). A mining request builds one root span with children for plan /
/// load-or-mine / per-iteration work / rule generation, so "where did this
/// request's milliseconds and pages go" has a structural answer.
///
/// Spans also carry string tags (strategy, algorithm) and named counts
/// (tuple cardinalities). The tree is single-writer: all Start/End/annotate
/// calls for one tree must come from the thread driving the request — the
/// same contract MiningObserver callbacks already have.
///
///     TraceSpan root("request", db->io_stats());
///     TraceSpan* mine = root.StartChild("mine");
///     ... run ...
///     mine->End();
///     root.End();
///     fputs(root.Render().c_str(), stderr);
class TraceSpan {
 public:
  /// Starts the span's clock. `ledger` (optional) is sampled now and again
  /// at End() for the span's page-read delta; it must outlive the span.
  explicit TraceSpan(std::string name, const IoStats* ledger = nullptr);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Starts a child span (inheriting this span's ledger). The child is
  /// owned by this span; the returned pointer stays valid for the parent's
  /// lifetime.
  TraceSpan* StartChild(std::string name);

  /// Attaches an already-measured child (the observer seam reports
  /// iterations after the fact, with their timing already taken).
  TraceSpan* AddCompletedChild(std::string name, double seconds,
                               uint64_t page_reads);

  /// Freezes seconds and the page-read delta. Ends still-open children
  /// first (in creation order), so ending the root finalizes the tree.
  /// Idempotent.
  void End();

  void AddTag(std::string key, std::string value);
  void AddCount(std::string key, uint64_t value);

  const std::string& name() const { return name_; }
  bool ended() const { return ended_; }
  /// Wall time (valid after End(); live reading before).
  double seconds() const;
  /// Page reads attributed to this span, children included (valid after
  /// End(); 0 without a ledger).
  uint64_t page_reads() const { return page_reads_; }
  const std::vector<std::unique_ptr<TraceSpan>>& children() const {
    return children_;
  }
  const std::vector<std::pair<std::string, std::string>>& tags() const {
    return tags_;
  }
  const std::vector<std::pair<std::string, uint64_t>>& counts() const {
    return counts_;
  }

  /// Indented rendering of this span's subtree, one line per span:
  ///   name 12.345ms reads=120 strategy=full-mine k=2 |R'|=930
  std::string Render(size_t indent = 0) const;

 private:
  std::string name_;
  const IoStats* ledger_;
  WallTimer timer_;
  uint64_t start_reads_ = 0;
  double seconds_ = 0.0;
  uint64_t page_reads_ = 0;
  bool ended_ = false;
  std::vector<std::pair<std::string, std::string>> tags_;
  std::vector<std::pair<std::string, uint64_t>> counts_;
  std::vector<std::unique_ptr<TraceSpan>> children_;
};

}  // namespace setm::obs

#endif  // SETM_OBS_TRACE_H_

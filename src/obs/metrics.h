#ifndef SETM_OBS_METRICS_H_
#define SETM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace setm::obs {

/// Process-wide metrics plane for the mining stack.
///
/// The paper's whole evaluation is an accounting exercise — page accesses
/// converted to time by a disk model — and the engine mirrors that: every
/// layer (buffer pool, WAL, worker pool, external sort, planner, miners)
/// reports into one named registry, so one snapshot answers "where did this
/// process's milliseconds and pages go". The hot path is a single relaxed
/// atomic add on a pointer the instrumented layer cached at construction;
/// registration (name lookup) happens once, reads snapshot on demand.
///
/// Three metric kinds, Prometheus-compatible by construction:
///   Counter    monotone uint64 (events, pages, bytes);
///   Gauge      signed level (queue depth);
///   Histogram  log2-bucketed distribution (latencies, batch sizes) with
///              count/sum and quantile estimates on snapshot.

/// Monotonically increasing counter. Lock-free; safe from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Signed instantaneous level. Lock-free; safe from any thread.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// One read-consistent-enough view of a histogram (buckets are copied
/// without stopping writers; totals may trail by in-flight observes, which
/// is the standard snapshot-on-read contract).
struct HistogramSnapshot {
  uint64_t count = 0;  ///< observations
  uint64_t sum = 0;    ///< sum of observed values
  /// Per-bucket (non-cumulative) counts; bucket i covers
  /// (UpperBound(i-1), UpperBound(i)].
  std::vector<uint64_t> buckets;

  /// Inclusive upper bound of bucket `i`: 0, 1, 2, 4, 8, ... UINT64_MAX.
  static uint64_t UpperBound(size_t i);

  /// Quantile estimate: the upper bound of the bucket holding the q-th
  /// observation (q in [0,1]). Because buckets are log2-spaced, the true
  /// value v satisfies estimate/2 < v <= estimate (for v >= 1) — a
  /// guaranteed 2x bound the quantile tests assert against a sorted oracle.
  uint64_t Quantile(double q) const;
};

/// Log2-bucketed histogram: value v lands in the bucket whose inclusive
/// upper bound is the smallest power of two >= v (0 has its own bucket).
/// Observe() is lock-free — three relaxed atomic adds.
class Histogram {
 public:
  /// Bucket 0 holds zeros; bucket i (1..64) holds (2^(i-2), 2^(i-1)] with
  /// the last bucket absorbing everything above 2^62.
  static constexpr size_t kNumBuckets = 64;

  void Observe(uint64_t value);

  /// Records a wall-clock duration given in seconds as microseconds — the
  /// unit convention every *_micros histogram in the stack (planner, worker
  /// pool, server request latency) shares, kept in one place so exporters
  /// and dashboards never mix units.
  void ObserveDurationMicros(double seconds) {
    Observe(seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e6));
  }

  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One exported metric in a registry snapshot.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  uint64_t counter_value = 0;           ///< kCounter
  int64_t gauge_value = 0;              ///< kGauge
  HistogramSnapshot histogram;          ///< kHistogram
};

/// A full registry snapshot, sorted by metric name (deterministic exports).
struct MetricsSnapshot {
  std::vector<MetricSnapshot> metrics;

  /// Counter value by name (0 when absent) — the bench-delta helper.
  uint64_t CounterValue(const std::string& name) const;
  /// Histogram by name (nullptr when absent).
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

/// Named metric registry. GetCounter/GetGauge/GetHistogram are
/// get-or-create: the first call under a name creates the metric, later
/// calls return the same pointer — so independent instances of a layer
/// (two buffer pools, many sorts) accumulate into one process-wide series,
/// which is exactly the semantics a scrape endpoint wants. Returned
/// pointers are stable for the registry's lifetime; callers cache them and
/// never pay the name lookup on the hot path. Asking for an existing name
/// with a different type is a fatal programming error.
///
/// Global() is the process-wide instance every production layer uses;
/// tests build local registries for deterministic golden snapshots.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed: instrumented singletons
  /// and static destructors may report during teardown).
  static MetricsRegistry* Global();

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  /// Point-in-time copy of every registered metric, sorted by name.
  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    MetricType type;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetOrCreate(const std::string& name, const std::string& help,
                     MetricType type);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace setm::obs

#endif  // SETM_OBS_METRICS_H_

#include "obs/mining_trace.h"

namespace setm::obs {

TracingObserver::TracingObserver(TraceSpan* parent, const IoStats* ledger,
                                 MiningObserver* inner)
    : parent_(parent), ledger_(ledger), inner_(inner) {
  if (ledger_ != nullptr) {
    last_reads_ = ledger_->page_reads.load(std::memory_order_relaxed);
  }
}

bool TracingObserver::OnIteration(const IterationStats& stats) {
  uint64_t delta = 0;
  if (ledger_ != nullptr) {
    const uint64_t now = ledger_->page_reads.load(std::memory_order_relaxed);
    delta = now >= last_reads_ ? now - last_reads_ : 0;
    last_reads_ = now;
  }
  TraceSpan* span =
      parent_->AddCompletedChild("iteration", stats.seconds, delta);
  span->AddCount("k", stats.k);
  span->AddCount("r_prime_rows", stats.r_prime_rows);
  span->AddCount("r_rows", stats.r_rows);
  span->AddCount("c_size", stats.c_size);
  return inner_ == nullptr || inner_->OnIteration(stats);
}

}  // namespace setm::obs

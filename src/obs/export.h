#ifndef SETM_OBS_EXPORT_H_
#define SETM_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace setm::obs {

/// Renders a registry snapshot in three formats, all deterministic (the
/// snapshot is name-sorted):
///
///   RenderText        aligned human-readable lines, histograms with
///                     count/sum and p50/p90/p99 estimates;
///   RenderJson        one {"metrics": [...]} document for scripting;
///   RenderPrometheus  the text exposition format a scrape endpoint
///                     serves — counters and gauges as single samples,
///                     histograms as cumulative _bucket{le=...} series
///                     plus _sum and _count.
///
/// These are the three faces of `setm_mine --metrics` and the payloads the
/// future `setm_served` daemon will return from its STATS verb.
std::string RenderText(const MetricsSnapshot& snapshot);
std::string RenderJson(const MetricsSnapshot& snapshot);
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

}  // namespace setm::obs

#endif  // SETM_OBS_EXPORT_H_

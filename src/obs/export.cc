#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace setm::obs {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

/// Highest bucket index holding any observation (0 when empty) — exports
/// trim the long zero tail of the 64 log2 buckets.
size_t HighestNonEmptyBucket(const HistogramSnapshot& h) {
  size_t highest = 0;
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] > 0) highest = i;
  }
  return highest;
}

/// Minimal JSON string escaping (metric names are identifier-shaped, but
/// help texts may hold anything).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus label value of a bucket bound: the numeric inclusive upper
/// bound, with the overflow bucket as the conventional "+Inf".
std::string BucketLabel(size_t index) {
  const uint64_t bound = HistogramSnapshot::UpperBound(index);
  return bound == UINT64_MAX ? "+Inf" : U64(bound);
}

}  // namespace

std::string RenderText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricSnapshot& m : snapshot.metrics) {
    char line[256];
    switch (m.type) {
      case MetricType::kCounter:
        std::snprintf(line, sizeof(line), "%-44s %" PRIu64 "\n",
                      m.name.c_str(), m.counter_value);
        break;
      case MetricType::kGauge:
        std::snprintf(line, sizeof(line), "%-44s %" PRId64 "\n",
                      m.name.c_str(), m.gauge_value);
        break;
      case MetricType::kHistogram:
        std::snprintf(line, sizeof(line),
                      "%-44s count=%" PRIu64 " sum=%" PRIu64 " p50=%" PRIu64
                      " p90=%" PRIu64 " p99=%" PRIu64 "\n",
                      m.name.c_str(), m.histogram.count, m.histogram.sum,
                      m.histogram.Quantile(0.50), m.histogram.Quantile(0.90),
                      m.histogram.Quantile(0.99));
        break;
    }
    out += line;
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(m.name) + "\"";
    switch (m.type) {
      case MetricType::kCounter:
        out += ",\"type\":\"counter\",\"value\":" + U64(m.counter_value);
        break;
      case MetricType::kGauge:
        out += ",\"type\":\"gauge\",\"value\":" +
               std::to_string(m.gauge_value);
        break;
      case MetricType::kHistogram:
        out += ",\"type\":\"histogram\",\"count\":" + U64(m.histogram.count) +
               ",\"sum\":" + U64(m.histogram.sum) +
               ",\"p50\":" + U64(m.histogram.Quantile(0.50)) +
               ",\"p90\":" + U64(m.histogram.Quantile(0.90)) +
               ",\"p99\":" + U64(m.histogram.Quantile(0.99));
        break;
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!m.help.empty()) {
      // Exposition-format escaping for HELP text: backslash and newline.
      std::string help;
      for (char c : m.help) {
        if (c == '\\') {
          help += "\\\\";
        } else if (c == '\n') {
          help += "\\n";
        } else {
          help += c;
        }
      }
      out += "# HELP " + m.name + " " + help + "\n";
    }
    switch (m.type) {
      case MetricType::kCounter:
        out += "# TYPE " + m.name + " counter\n";
        out += m.name + " " + U64(m.counter_value) + "\n";
        break;
      case MetricType::kGauge:
        out += "# TYPE " + m.name + " gauge\n";
        out += m.name + " " + std::to_string(m.gauge_value) + "\n";
        break;
      case MetricType::kHistogram: {
        out += "# TYPE " + m.name + " histogram\n";
        // Cumulative buckets up to the highest populated bound, then the
        // mandatory +Inf bucket equal to _count.
        const size_t highest = HighestNonEmptyBucket(m.histogram);
        uint64_t cumulative = 0;
        for (size_t i = 0; i <= highest && i < m.histogram.buckets.size();
             ++i) {
          cumulative += m.histogram.buckets[i];
          const std::string label = BucketLabel(i);
          if (label == "+Inf") continue;  // emitted once below
          out += m.name + "_bucket{le=\"" + label + "\"} " +
                 U64(cumulative) + "\n";
        }
        out += m.name + "_bucket{le=\"+Inf\"} " + U64(m.histogram.count) +
               "\n";
        out += m.name + "_sum " + U64(m.histogram.sum) + "\n";
        out += m.name + "_count " + U64(m.histogram.count) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace setm::obs

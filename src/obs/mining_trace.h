#ifndef SETM_OBS_MINING_TRACE_H_
#define SETM_OBS_MINING_TRACE_H_

#include <cstdint>

#include "core/types.h"
#include "obs/trace.h"

namespace setm::obs {

/// Bridges the MiningObserver seam into a trace tree: installed on a
/// MiningRequest, it turns every completed iteration into an "iteration"
/// child span under `parent`, carrying the iteration's wall time, tuple
/// cardinalities (|R'_k|, |R_k|, |C_k|) and — when a ledger is supplied —
/// the page reads the iteration cost. Because every miner already reports
/// through NotifyIteration, this traces all seven algorithms without a
/// line of per-algorithm code.
///
/// Chains an optional inner observer so tracing composes with user
/// callbacks (progress bars, cancellation): the inner observer's verdict
/// decides whether mining continues. Runs on the mining thread, same as
/// any observer.
class TracingObserver : public MiningObserver {
 public:
  /// `parent` is the span to hang iteration spans off (not owned, must
  /// outlive the mine call). `ledger` (optional) attributes per-iteration
  /// page-read deltas. `inner` (optional) is the caller's own observer.
  TracingObserver(TraceSpan* parent, const IoStats* ledger,
                  MiningObserver* inner = nullptr);

  bool OnIteration(const IterationStats& stats) override;

 private:
  TraceSpan* parent_;
  const IoStats* ledger_;
  MiningObserver* inner_;
  uint64_t last_reads_ = 0;
};

}  // namespace setm::obs

#endif  // SETM_OBS_MINING_TRACE_H_

#include "incremental/itemset_store.h"

#include <algorithm>
#include <utility>

namespace setm {

namespace {

// Column positions of the metadata relation (kept in one place so Save and
// Load cannot drift apart).
enum MetaColumn : size_t {
  kNumTransactions = 0,
  kMinSupportCount,
  kSpecMinSupport,
  kSpecMinSupportCount,
  kMaxPatternLength,
  kWatermark,
  kMaxK,
  kSourceTable,
  kSourceRows,  // appended last: stores written before the column have one
                // value fewer and load with source_rows = 0
};

}  // namespace

ItemsetStore::ItemsetStore(Database* db, std::string prefix,
                           TableBacking backing)
    : db_(db), prefix_(std::move(prefix)), backing_(backing) {}

Schema ItemsetStore::MetaSchema() {
  return Schema({Column{"num_transactions", ValueType::kInt64},
                 Column{"min_support_count", ValueType::kInt64},
                 Column{"spec_min_support", ValueType::kDouble},
                 Column{"spec_min_support_count", ValueType::kInt64},
                 Column{"max_pattern_length", ValueType::kInt64},
                 Column{"watermark", ValueType::kInt32},
                 Column{"max_k", ValueType::kInt64},
                 Column{"source_table", ValueType::kString},
                 Column{"source_rows", ValueType::kInt64}});
}

Schema ItemsetStore::LevelSchema(size_t k) {
  Schema schema;
  for (size_t i = 1; i <= k; ++i) {
    schema.AddColumn(Column{"item" + std::to_string(i), ValueType::kInt32});
  }
  schema.AddColumn(Column{"support", ValueType::kInt64});
  return schema;
}

bool ItemsetStore::Exists() const {
  return db_->catalog()->HasTable(MetaTableName());
}

Status ItemsetStore::Drop() {
  Catalog* catalog = db_->catalog();
  // One deferred checkpoint for the whole multi-table drop.
  ScopedCheckpointDeferral deferral(catalog);
  if (catalog->HasTable(MetaTableName())) {
    SETM_RETURN_IF_ERROR(catalog->DropTable(MetaTableName()));
  }
  // Level tables are contiguous in k by construction; stop at the first gap.
  for (size_t k = 1; catalog->HasTable(LevelTableName(k)); ++k) {
    SETM_RETURN_IF_ERROR(catalog->DropTable(LevelTableName(k)));
  }
  return deferral.Commit();
}

Status ItemsetStore::Save(const FrequentItemsets& itemsets,
                          const StoredRunMeta& meta) {
  Catalog* catalog = db_->catalog();
  // Defer DDL checkpoints across the whole save: the K+1 table operations
  // below become one checkpoint, taken only after the metadata row — whose
  // presence is what marks the store as valid — has been inserted. No
  // intermediate state (old store dropped, meta table still row-less) can
  // become the durable image, preserving the half-written-save-stays-
  // invisible contract across restarts too.
  ScopedCheckpointDeferral deferral(catalog);
  SETM_RETURN_IF_ERROR(Drop());

  const size_t max_k = itemsets.MaxSize();
  for (size_t k = 1; k <= max_k; ++k) {
    auto table_or =
        catalog->CreateTable(LevelTableName(k), LevelSchema(k), backing_);
    if (!table_or.ok()) return table_or.status();
    Table* table = table_or.value();
    for (const PatternCount& pc : itemsets.OfSize(k)) {
      std::vector<Value> values;
      values.reserve(k + 1);
      for (ItemId item : pc.items) values.push_back(Value::Int32(item));
      values.push_back(Value::Int64(pc.count));
      SETM_RETURN_IF_ERROR(table->Insert(Tuple(std::move(values))));
    }
  }

  // The metadata relation is written last: its presence is what Exists()
  // and Load() key off, so a failed half-written save stays invisible.
  auto meta_or = catalog->CreateTable(MetaTableName(), MetaSchema(), backing_);
  if (!meta_or.ok()) return meta_or.status();
  SETM_RETURN_IF_ERROR(meta_or.value()->Insert(Tuple({
      Value::Int64(static_cast<int64_t>(meta.num_transactions)),
      Value::Int64(meta.min_support_count),
      Value::Double(meta.spec_min_support),
      Value::Int64(meta.spec_min_support_count),
      Value::Int64(static_cast<int64_t>(meta.max_pattern_length)),
      Value::Int32(meta.watermark),
      Value::Int64(static_cast<int64_t>(max_k)),
      Value::String(meta.source_table),
      Value::Int64(static_cast<int64_t>(meta.source_rows)),
  })));
  return deferral.Commit();
}

Status ItemsetStore::ReadMetaRow(StoredRunMeta* meta, size_t* max_k) const {
  Catalog* catalog = db_->catalog();
  auto meta_table_or = catalog->GetTable(MetaTableName());
  if (!meta_table_or.ok()) {
    return Status::NotFound("no itemset store under prefix '" + prefix_ + "'");
  }

  auto it = meta_table_or.value()->Scan();
  Tuple row;
  auto more = it->Next(&row);
  if (!more.ok()) return more.status();
  // Stores written before the source_rows column carry one value fewer;
  // they load with source_rows = 0 ("unknown"), which freshness checks
  // treat as stale-by-default.
  const size_t num_columns = MetaSchema().NumColumns();
  if (!more.value() ||
      (row.NumValues() != num_columns && row.NumValues() != num_columns - 1)) {
    return Status::Corruption("itemset store '" + prefix_ +
                              "': malformed metadata relation");
  }
  meta->num_transactions =
      static_cast<uint64_t>(row.value(kNumTransactions).AsInt64());
  meta->min_support_count = row.value(kMinSupportCount).AsInt64();
  meta->spec_min_support = row.value(kSpecMinSupport).AsDouble();
  meta->spec_min_support_count = row.value(kSpecMinSupportCount).AsInt64();
  meta->max_pattern_length =
      static_cast<uint64_t>(row.value(kMaxPatternLength).AsInt64());
  meta->watermark = row.value(kWatermark).AsInt32();
  *max_k = static_cast<size_t>(row.value(kMaxK).AsInt64());
  meta->source_table = row.value(kSourceTable).AsString();
  meta->source_rows =
      row.NumValues() == num_columns
          ? static_cast<uint64_t>(row.value(kSourceRows).AsInt64())
          : 0;

  // A store whose source relation has since been dropped is an orphan: its
  // counts answer a question about data that no longer exists. Report it as
  // absent (naming the table) rather than corrupt, so callers fall back to
  // mining whatever the catalog holds now.
  if (!meta->source_table.empty() && !catalog->HasTable(meta->source_table)) {
    return Status::NotFound("itemset store '" + prefix_ +
                            "': source table '" + meta->source_table +
                            "' has been dropped");
  }
  return Status::OK();
}

Status ItemsetStore::LoadLevels(size_t max_k, int64_t min_support_count,
                                size_t max_level,
                                FrequentItemsets* out) const {
  Catalog* catalog = db_->catalog();
  if (max_level != 0 && max_level < max_k) max_k = max_level;
  for (size_t k = 1; k <= max_k; ++k) {
    auto table_or = catalog->GetTable(LevelTableName(k));
    if (!table_or.ok()) {
      return Status::Corruption("itemset store '" + prefix_ +
                                "': missing level relation " +
                                LevelTableName(k));
    }
    auto it = table_or.value()->Scan();
    Tuple row;
    bool any_survived = false;
    while (true) {
      auto more = it->Next(&row);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      if (row.NumValues() != k + 1) {
        return Status::Corruption("itemset store '" + prefix_ +
                                  "': bad arity in " + LevelTableName(k));
      }
      const int64_t support = row.value(k).AsInt64();
      if (support < min_support_count) continue;
      any_survived = true;
      std::vector<ItemId> items;
      items.reserve(k);
      for (size_t i = 0; i < k; ++i) items.push_back(row.value(i).AsInt32());
      out->Add(std::move(items), support);
    }
    // Anti-monotone early stop: if no k-pattern clears the threshold, no
    // (k+1)-pattern can — every superset's support is <= its subsets'.
    if (!any_survived && min_support_count > 0) break;
  }
  return Status::OK();
}

Result<StoredResult> ItemsetStore::Load() const {
  StoredResult out;
  size_t max_k = 0;
  SETM_RETURN_IF_ERROR(ReadMetaRow(&out.meta, &max_k));
  SETM_RETURN_IF_ERROR(LoadLevels(max_k, /*min_support_count=*/0,
                                  /*max_level=*/0, &out.itemsets));
  out.itemsets.num_transactions = out.meta.num_transactions;
  out.itemsets.Normalize();
  return out;
}

Result<StoredRunMeta> ItemsetStore::LoadMeta() const {
  StoredRunMeta meta;
  size_t max_k = 0;
  SETM_RETURN_IF_ERROR(ReadMetaRow(&meta, &max_k));
  return meta;
}

Result<StoredResult> ItemsetStore::LoadAtSupport(
    int64_t min_support_count, uint64_t max_pattern_length) const {
  StoredResult out;
  size_t max_k = 0;
  SETM_RETURN_IF_ERROR(ReadMetaRow(&out.meta, &max_k));
  SETM_RETURN_IF_ERROR(LoadLevels(max_k, min_support_count,
                                  static_cast<size_t>(max_pattern_length),
                                  &out.itemsets));
  out.itemsets.num_transactions = out.meta.num_transactions;
  out.itemsets.Normalize();
  return out;
}

StoredRunMeta MakeRunMeta(const FrequentItemsets& itemsets,
                          const MiningOptions& options,
                          TransactionId watermark,
                          std::string source_table,
                          uint64_t source_rows) {
  StoredRunMeta meta;
  meta.num_transactions = itemsets.num_transactions;
  meta.min_support_count =
      ResolveMinSupportCount(options, itemsets.num_transactions);
  meta.spec_min_support = options.min_support;
  meta.spec_min_support_count = options.min_support_count;
  meta.max_pattern_length = options.max_pattern_length;
  meta.watermark = watermark;
  meta.source_table = std::move(source_table);
  meta.source_rows = source_rows;
  return meta;
}

TransactionId MaxTransactionId(const TransactionDb& transactions) {
  TransactionId max_id = 0;
  for (const Transaction& t : transactions) max_id = std::max(max_id, t.id);
  return max_id;
}

}  // namespace setm

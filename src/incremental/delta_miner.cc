#include "incremental/delta_miner.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/miner_registry.h"
#include "exec/exec_context.h"
#include "exec/external_sort.h"

namespace setm {

namespace {

/// True iff every item of `pattern` occurs in `txn_items`.
bool ContainsPattern(const std::unordered_set<ItemId>& txn_items,
                     const std::vector<ItemId>& pattern) {
  for (ItemId item : pattern) {
    if (txn_items.count(item) == 0) return false;
  }
  return true;
}

/// Exact delta count of every stored pattern: one pass over the delta
/// transactions, testing containment against each pattern. This is
/// decidable purely in memory — the stored supports plus these counts
/// settle every stored itemset's global frequency without touching the old
/// partition.
std::vector<std::pair<const PatternCount*, int64_t>> CountStoredInDelta(
    const FrequentItemsets& stored, const TransactionDb& delta) {
  std::vector<std::pair<const PatternCount*, int64_t>> counts;
  for (size_t k = 1; k <= stored.MaxSize(); ++k) {
    for (const PatternCount& pc : stored.OfSize(k)) {
      counts.emplace_back(&pc, 0);
    }
  }
  std::unordered_set<ItemId> txn_items;
  for (const Transaction& t : delta) {
    if (t.items.empty()) continue;
    txn_items.clear();
    txn_items.insert(t.items.begin(), t.items.end());
    for (auto& entry : counts) {
      if (ContainsPattern(txn_items, entry.first->items)) ++entry.second;
    }
  }
  return counts;
}

/// Counts the borderline candidates against the old partition: one scan of
/// the SALES relation keeping rows with trans_id <= watermark, grouped into
/// transactions via the external sort (the relation can exceed RAM, so
/// grouping must go through the bounded-memory spill path, not an in-memory
/// vector), each transaction tested against every candidate. Skipped
/// entirely when no candidate exists.
Result<std::vector<int64_t>> CountCandidatesInOldPartition(
    Database* db, const Table& sales, TransactionId watermark,
    const std::vector<PatternCount>& candidates) {
  std::vector<int64_t> counts(candidates.size(), 0);
  if (candidates.empty()) return counts;

  ExecContext ctx = ExecContext::From(db);
  ExternalSort sort(ctx, SetmMiner::SalesSchema(), TupleComparator({0, 1}));
  {
    auto it = sales.Scan();
    Tuple row;
    while (true) {
      auto more = it->Next(&row);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      if (row.value(0).AsInt32() <= watermark) {
        SETM_RETURN_IF_ERROR(sort.Add(row));
      }
    }
  }
  auto sorted_or = sort.Finish();
  if (!sorted_or.ok()) return sorted_or.status();
  std::unique_ptr<TupleIterator> sorted = std::move(sorted_or).value();

  std::unordered_set<ItemId> txn_items;
  bool in_txn = false;
  TransactionId current = 0;
  auto flush_txn = [&] {
    if (!in_txn) return;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (ContainsPattern(txn_items, candidates[c].items)) ++counts[c];
    }
  };
  Tuple row;
  while (true) {
    auto more = sorted->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    const TransactionId tid = row.value(0).AsInt32();
    if (!in_txn || tid != current) {
      flush_txn();
      txn_items.clear();
      current = tid;
      in_txn = true;
    }
    txn_items.insert(row.value(1).AsInt32());
  }
  flush_txn();
  return counts;
}

/// The stored run answers the same question iff the support spec and the
/// pattern-length cap match; anything else makes stored supports useless
/// for combination and forces the full-remine path.
bool OptionsCompatible(const StoredRunMeta& meta,
                       const MiningOptions& options) {
  return meta.spec_min_support == options.min_support &&
         meta.spec_min_support_count == options.min_support_count &&
         meta.max_pattern_length == options.max_pattern_length;
}

}  // namespace

Result<DeltaMineResult> DeltaMiner::AppendAndUpdate(
    ItemsetStore* store, Table* sales, const TransactionDb& delta,
    const MiningOptions& options) {
  WallTimer total_timer;
  const IoStats io_before = *db_->io_stats();

  SETM_RETURN_IF_ERROR(ValidateTransactions(delta));
  auto stored_or = store->Load();
  if (!stored_or.ok()) return stored_or.status();
  StoredResult stored = std::move(stored_or).value();

  // The watermark is the partition boundary: ids at or below it are already
  // counted in the store, so reusing one would double-count silently.
  {
    std::unordered_set<TransactionId> seen;
    for (const Transaction& t : delta) {
      if (t.id <= stored.meta.watermark) {
        return Status::InvalidArgument(
            "delta transaction " + std::to_string(t.id) +
            " is at or below the stored watermark " +
            std::to_string(stored.meta.watermark));
      }
      if (!seen.insert(t.id).second) {
        return Status::InvalidArgument("duplicate delta transaction id " +
                                       std::to_string(t.id));
      }
    }
  }

  // Crash-interrupted append detection: rows beyond the stored watermark
  // mean a previous AppendAndUpdate committed its batch but died before the
  // store update checkpointed. Commit() marks whole batches only, so such
  // orphans are complete transactions; the retry contract is that the
  // caller re-submits the same batch, in which case each orphan is skipped
  // on insert instead of duplicated. An orphan id the batch does *not*
  // re-submit means the table and the retry diverged — refuse rather than
  // silently mix two different batches.
  std::unordered_set<TransactionId> orphans;
  {
    auto it = sales->Scan();
    Tuple row;
    while (true) {
      auto more = it->Next(&row);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      const TransactionId tid = row.value(0).AsInt32();
      if (tid > stored.meta.watermark) orphans.insert(tid);
    }
  }
  if (!orphans.empty()) {
    std::unordered_set<TransactionId> batch_ids;
    for (const Transaction& t : delta) batch_ids.insert(t.id);
    for (TransactionId tid : orphans) {
      if (batch_ids.count(tid) == 0) {
        return Status::InvalidArgument(
            "table '" + sales->name() + "' already holds transaction " +
            std::to_string(tid) + " beyond the stored watermark " +
            std::to_string(stored.meta.watermark) +
            " (a crash-interrupted append), and this batch does not "
            "re-submit it — retry the interrupted batch first");
      }
    }
  }

  TransactionId new_watermark = stored.meta.watermark;
  uint64_t delta_transactions = 0;
  for (const Transaction& t : delta) {
    if (!t.items.empty()) ++delta_transactions;
    new_watermark = std::max(new_watermark, t.id);
  }
  // The table mutation is deferred until every failure-prone computation of
  // the chosen path has succeeded, so an error normally leaves SALES
  // untouched (see the AppendAndUpdate contract).
  auto append_batch = [&]() -> Status {
    for (const Transaction& t : delta) {
      if (orphans.count(t.id) != 0) continue;  // already in the table
      for (ItemId item : t.items) {
        SETM_RETURN_IF_ERROR(
            sales->Insert(Tuple({Value::Int32(t.id), Value::Int32(item)})));
      }
    }
    // Batch boundary: the rows are crash-durable — and replay-atomic as a
    // unit — from here, even though the store update below still has to
    // checkpoint. A kill in between leaves exactly the orphan state the
    // scan above repairs on retry.
    return db_->Commit();
  };

  const uint64_t combined_transactions =
      stored.meta.num_transactions + delta_transactions;
  const int64_t minsup =
      ResolveMinSupportCount(options, combined_transactions);
  const int64_t stored_minsup = stored.meta.min_support_count;

  DeltaMineResult out;
  out.delta_transactions = delta_transactions;

  const bool too_large =
      static_cast<double>(delta_transactions) >
      options_.full_remine_fraction *
          static_cast<double>(std::max<uint64_t>(combined_transactions, 1));
  if (too_large || !OptionsCompatible(stored.meta, options)) {
    // Full remine of the combined relation through the polymorphic mining
    // interface — the same surface the CLI and benches drive, so observer
    // callbacks and cancellation work on the fallback path too.
    SETM_RETURN_IF_ERROR(append_batch());
    auto miner_or = MinerRegistry::Create("setm", db_, options_.setm);
    if (!miner_or.ok()) return miner_or.status();
    MiningRequest request;
    request.table = sales;
    request.options = options;
    auto remined = miner_or.value()->Mine(request);
    if (!remined.ok()) return remined.status();
    out.result = std::move(remined).value();
    out.full_remine = true;
  } else {
    // 1. Mine only the delta partition. An itemset absent from the store
    //    has old count <= stored_minsup - 1, so it can reach the combined
    //    threshold only with delta count >= minsup - stored_minsup + 1.
    MiningOptions delta_options = options;
    delta_options.min_support_count =
        std::max<int64_t>(1, minsup - stored_minsup + 1);
    SetmMiner miner(db_, options_.setm);
    auto delta_mined = miner.Mine(delta, delta_options);
    if (!delta_mined.ok()) return delta_mined.status();
    MiningResult delta_result = std::move(delta_mined).value();

    // 2. Stored itemsets: exact combined support = stored + delta count.
    FrequentItemsets combined;
    for (const auto& entry : CountStoredInDelta(stored.itemsets, delta)) {
      const int64_t total = entry.first->count + entry.second;
      if (total >= minsup) {
        combined.Add(entry.first->items, total);
      }
    }

    // 3. Borderline itemsets (delta-frequent, not stored): their old count
    //    is undecidable from the store, so re-count them in one scan of the
    //    old partition (= the whole of SALES, since the batch is not
    //    appended yet).
    std::vector<PatternCount> borderline;
    for (size_t k = 1; k <= delta_result.itemsets.MaxSize(); ++k) {
      for (const PatternCount& pc : delta_result.itemsets.OfSize(k)) {
        if (stored.itemsets.CountOf(pc.items) == 0) borderline.push_back(pc);
      }
    }
    out.borderline_candidates = borderline.size();
    auto old_counts_or = CountCandidatesInOldPartition(
        db_, *sales, stored.meta.watermark, borderline);
    if (!old_counts_or.ok()) return old_counts_or.status();
    const std::vector<int64_t>& old_counts = old_counts_or.value();
    for (size_t c = 0; c < borderline.size(); ++c) {
      const int64_t total = old_counts[c] + borderline[c].count;
      if (total >= minsup) {
        combined.Add(std::move(borderline[c].items), total);
      }
    }

    combined.Normalize();
    combined.num_transactions = combined_transactions;
    out.result.itemsets = std::move(combined);
    out.result.iterations = std::move(delta_result.iterations);

    // All computation succeeded; only now does the batch reach the table.
    SETM_RETURN_IF_ERROR(append_batch());
  }

  // Persist the refreshed run so the next batch starts from here.
  StoredRunMeta meta;
  meta.num_transactions = out.result.itemsets.num_transactions;
  meta.min_support_count =
      ResolveMinSupportCount(options, out.result.itemsets.num_transactions);
  meta.spec_min_support = options.min_support;
  meta.spec_min_support_count = options.min_support_count;
  meta.max_pattern_length = options.max_pattern_length;
  meta.watermark = new_watermark;
  meta.source_table = sales->name();
  meta.source_rows = sales->num_rows();
  SETM_RETURN_IF_ERROR(store->Save(out.result.itemsets, meta));

  out.result.total_seconds = total_timer.ElapsedSeconds();
  out.result.io = Diff(*db_->io_stats(), io_before);
  return out;
}

}  // namespace setm

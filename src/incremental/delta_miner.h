#ifndef SETM_INCREMENTAL_DELTA_MINER_H_
#define SETM_INCREMENTAL_DELTA_MINER_H_

#include "core/setm.h"
#include "core/types.h"
#include "incremental/itemset_store.h"
#include "relational/database.h"

namespace setm {

/// Knobs of the incremental maintenance path.
struct DeltaOptions {
  /// Physical options for the delta mine and the full-remine fallback
  /// (storage backing, thread count, count method). num_threads > 1 runs
  /// the delta partition through the parallel partitioned executor.
  SetmOptions setm;
  /// When the appended batch exceeds this fraction of the *combined*
  /// transaction count, incremental maintenance stops paying off (the
  /// borderline candidate set approaches the full candidate space) and the
  /// miner falls back to a full remine of the combined table.
  double full_remine_fraction = 0.25;
};

/// What one incremental update reports, beyond the mining result itself.
struct DeltaMineResult {
  /// The combined-database result: itemsets are bit-identical to a full
  /// remine of old + delta at the same MiningOptions. `iterations` holds
  /// the delta mine's per-iteration stats on the incremental path (the full
  /// remine's on the fallback path); `io` covers the whole update.
  MiningResult result;
  /// True when the update fell back to a full remine (batch too large, or
  /// the stored run's options were incompatible with the request).
  bool full_remine = false;
  /// Non-empty transactions in the appended batch.
  uint64_t delta_transactions = 0;
  /// Itemsets frequent in the delta but absent from the store — the ones
  /// whose global frequency was undecidable from stored supports alone and
  /// had to be re-counted against the old partition.
  uint64_t borderline_candidates = 0;
};

/// Incremental SETM maintenance in the FUP style (Cheung et al.), built on
/// one inequality: an itemset absent from a store mined at threshold s_old
/// had old-partition count <= s_old - 1. With s the threshold for the
/// combined database, such an itemset can only be globally frequent when
/// its delta count is >= s - s_old + 1. So the update
///
///   1. mines *only* the delta partition (reusing SetmMiner, and through it
///      the parallel partitioned executor) at that reduced threshold;
///   2. combines stored supports with exact delta counts for every stored
///      itemset — decidable without touching old data;
///   3. re-counts only the "borderline" itemsets (delta-frequent, not
///      stored) against the old partition, in one scan;
///   4. falls back to a full remine when the batch exceeds
///      DeltaOptions::full_remine_fraction of the combined database.
///
/// The result is exact, not approximate: incremental_test sweeps seeds,
/// backings and batch sizes asserting bit-identical itemsets vs remining.
///
///     ItemsetStore store(&db, "fi", backing);
///     // ... full mine + store.Save(...) once, then per batch:
///     DeltaMiner miner(&db, delta_options);
///     auto r = miner.AppendAndUpdate(&store, sales, batch, options);
class DeltaMiner {
 public:
  explicit DeltaMiner(Database* db, DeltaOptions options = {})
      : db_(db), options_(options) {}

  /// Appends `delta` to the SALES relation `sales`, brings `store` up to
  /// date, and returns the combined result. Requirements: `store` holds a
  /// run whose source rows are exactly the current contents of `sales`;
  /// every delta transaction id is unique and > the stored watermark (the
  /// watermark is what separates the partitions, so a violation is an
  /// InvalidArgument, not a silent wrong answer). `options` must ask the
  /// same question as the stored run (same support spec and max pattern
  /// length) — a different question forces the full-remine path.
  ///
  /// Failure contract: the batch is appended only after the chosen path's
  /// mining succeeded, so on most errors SALES is untouched and the call
  /// may simply be retried. If the append itself (or the final store Save)
  /// fails, the batch may sit partially in SALES while the store still
  /// describes the old run — recover by remining the table
  /// (SetmMiner::MineTable + ItemsetStore::Save), not by retrying the
  /// batch, which would double-insert its rows.
  Result<DeltaMineResult> AppendAndUpdate(ItemsetStore* store, Table* sales,
                                          const TransactionDb& delta,
                                          const MiningOptions& options);

 private:
  Database* db_;
  DeltaOptions options_;
};

}  // namespace setm

#endif  // SETM_INCREMENTAL_DELTA_MINER_H_

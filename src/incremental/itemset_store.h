#ifndef SETM_INCREMENTAL_ITEMSET_STORE_H_
#define SETM_INCREMENTAL_ITEMSET_STORE_H_

#include <string>

#include "core/types.h"
#include "relational/database.h"

namespace setm {

/// Metadata of one persisted mining run — everything the incremental
/// maintenance path needs to decide, without touching the old data, whether
/// a stored support can be combined with a delta count.
struct StoredRunMeta {
  /// Transactions covered by the stored counts (|D_old|).
  uint64_t num_transactions = 0;
  /// The resolved support threshold the stored run was mined with, in
  /// transactions. Every itemset *not* in the store is known to have had
  /// count <= min_support_count - 1 over the covered transactions — the
  /// inequality the DeltaMiner's borderline rule is built on.
  int64_t min_support_count = 0;
  /// The original MiningOptions spec (fraction and absolute forms). An
  /// incremental update must be asked with the same spec; otherwise the
  /// stored counts answer a different question and a full remine is forced.
  double spec_min_support = 0.0;
  int64_t spec_min_support_count = 0;
  uint64_t max_pattern_length = 0;
  /// Highest trans_id covered by the stored counts. Appended batches must
  /// use strictly larger ids — that is what makes "old partition" and
  /// "delta partition" disjoint by predicate alone.
  TransactionId watermark = 0;
  /// Name of the SALES relation the run mined ("" when not table-backed).
  std::string source_table;
};

/// A loaded store: the frequent itemsets with their exact supports plus the
/// run metadata.
struct StoredResult {
  FrequentItemsets itemsets;
  StoredRunMeta meta;
};

/// Persists the result of a mining run as schema'd catalog relations, in
/// the paper's spirit of keeping everything inside the DBMS: each F_k
/// level becomes a relation `<prefix>_f<k>` (item1..itemk INT32,
/// support INT64) — the materialized count relation C_k — and the run
/// metadata becomes the one-row relation `<prefix>_meta`. Both live behind
/// the Catalog, so the SQL engine can scan them like any other table
/// (`SELECT * FROM fi_f2 WHERE support >= 100`), and either TableBacking
/// works: kHeap puts the store on paged storage where loads and saves show
/// up in the IoStats ledger.
///
/// In a file-backed database with kHeap backing the store is durable: the
/// catalog manifest (src/persist/) records the relations at every DDL, so
/// Save() in one process and Load() — or DeltaMiner::AppendAndUpdate — in
/// a later one operate on the same run (persist_test and
/// scripts/smoke_db_persist.sh exercise the cross-process round trip).
///
///     ItemsetStore store(&db, "fi", TableBacking::kHeap);
///     store.Save(result.itemsets, meta);
///     auto loaded = store.Load().value();   // identical itemsets + meta
class ItemsetStore {
 public:
  /// `prefix` must be a valid SQL identifier; tables are created through
  /// `db->catalog()` with the given backing.
  ItemsetStore(Database* db, std::string prefix,
               TableBacking backing = TableBacking::kMemory);

  /// Materializes `itemsets` + `meta`, replacing any previous run stored
  /// under this prefix. `itemsets.num_transactions` is ignored in favour of
  /// `meta.num_transactions` (they are the same value on every sane call).
  Status Save(const FrequentItemsets& itemsets, const StoredRunMeta& meta);

  /// Loads the stored run; NotFound when nothing was saved under the
  /// prefix. The returned itemsets are normalized and carry exact supports:
  /// Save() then Load() round-trips to an identical FrequentItemsets.
  Result<StoredResult> Load() const;

  /// True iff a run is stored under this prefix.
  bool Exists() const;

  /// Drops every relation of the stored run (idempotent).
  Status Drop();

  const std::string& prefix() const { return prefix_; }
  std::string MetaTableName() const { return prefix_ + "_meta"; }
  std::string LevelTableName(size_t k) const {
    return prefix_ + "_f" + std::to_string(k);
  }

  /// Schema of the one-row metadata relation.
  static Schema MetaSchema();

  /// Schema of a level relation: (item1 .. itemk INT32, support INT64).
  static Schema LevelSchema(size_t k);

 private:
  Database* db_;
  std::string prefix_;
  TableBacking backing_;
};

/// Builds the metadata record of a *full* mining run: resolves the support
/// threshold the run effectively used from `options` and
/// `itemsets.num_transactions`, and records the caller-supplied watermark
/// (the highest transaction id the run covered).
StoredRunMeta MakeRunMeta(const FrequentItemsets& itemsets,
                          const MiningOptions& options,
                          TransactionId watermark,
                          std::string source_table = "");

/// Highest transaction id in the database (0 when empty) — the watermark of
/// a run that mined exactly these transactions.
TransactionId MaxTransactionId(const TransactionDb& transactions);

}  // namespace setm

#endif  // SETM_INCREMENTAL_ITEMSET_STORE_H_

#ifndef SETM_INCREMENTAL_ITEMSET_STORE_H_
#define SETM_INCREMENTAL_ITEMSET_STORE_H_

#include <string>

#include "core/types.h"
#include "relational/database.h"

namespace setm {

/// Metadata of one persisted mining run — everything the incremental
/// maintenance path needs to decide, without touching the old data, whether
/// a stored support can be combined with a delta count.
struct StoredRunMeta {
  /// Transactions covered by the stored counts (|D_old|).
  uint64_t num_transactions = 0;
  /// The resolved support threshold the stored run was mined with, in
  /// transactions. Every itemset *not* in the store is known to have had
  /// count <= min_support_count - 1 over the covered transactions — the
  /// inequality the DeltaMiner's borderline rule is built on.
  int64_t min_support_count = 0;
  /// The original MiningOptions spec (fraction and absolute forms). An
  /// incremental update must be asked with the same spec; otherwise the
  /// stored counts answer a different question and a full remine is forced.
  double spec_min_support = 0.0;
  int64_t spec_min_support_count = 0;
  uint64_t max_pattern_length = 0;
  /// Highest trans_id covered by the stored counts. Appended batches must
  /// use strictly larger ids — that is what makes "old partition" and
  /// "delta partition" disjoint by predicate alone.
  TransactionId watermark = 0;
  /// Name of the SALES relation the run mined ("" when not table-backed).
  std::string source_table;
  /// Row count of the source relation when the run was stored (0 when not
  /// table-backed or stored by a build predating the column). Source tables
  /// are append-only, so equality with the live row count is an O(1)
  /// freshness check that needs no scan.
  uint64_t source_rows = 0;
};

/// A loaded store: the frequent itemsets with their exact supports plus the
/// run metadata.
struct StoredResult {
  FrequentItemsets itemsets;
  StoredRunMeta meta;
};

/// Persists the result of a mining run as schema'd catalog relations, in
/// the paper's spirit of keeping everything inside the DBMS: each F_k
/// level becomes a relation `<prefix>_f<k>` (item1..itemk INT32,
/// support INT64) — the materialized count relation C_k — and the run
/// metadata becomes the one-row relation `<prefix>_meta`. Both live behind
/// the Catalog, so the SQL engine can scan them like any other table
/// (`SELECT * FROM fi_f2 WHERE support >= 100`), and either TableBacking
/// works: kHeap puts the store on paged storage where loads and saves show
/// up in the IoStats ledger.
///
/// In a file-backed database with kHeap backing the store is durable: the
/// catalog manifest (src/persist/) records the relations at every DDL, so
/// Save() in one process and Load() — or DeltaMiner::AppendAndUpdate — in
/// a later one operate on the same run (persist_test and
/// scripts/smoke_db_persist.sh exercise the cross-process round trip).
///
///     ItemsetStore store(&db, "fi", TableBacking::kHeap);
///     store.Save(result.itemsets, meta);
///     auto loaded = store.Load().value();   // identical itemsets + meta
class ItemsetStore {
 public:
  /// `prefix` must be a valid SQL identifier; tables are created through
  /// `db->catalog()` with the given backing.
  ItemsetStore(Database* db, std::string prefix,
               TableBacking backing = TableBacking::kMemory);

  /// Materializes `itemsets` + `meta`, replacing any previous run stored
  /// under this prefix. `itemsets.num_transactions` is ignored in favour of
  /// `meta.num_transactions` (they are the same value on every sane call).
  Status Save(const FrequentItemsets& itemsets, const StoredRunMeta& meta);

  /// Loads the stored run; NotFound when nothing was saved under the
  /// prefix, and NotFound (naming the table) when the meta row references a
  /// source relation that has since been dropped — the store is then an
  /// orphan, not a corruption, and callers fall back to a full mine. The
  /// returned itemsets are normalized and carry exact supports: Save() then
  /// Load() round-trips to an identical FrequentItemsets.
  Result<StoredResult> Load() const;

  /// Reads only the one-row metadata relation — the cache key — without
  /// touching any level relation. Same NotFound semantics as Load().
  Result<StoredRunMeta> LoadMeta() const;

  /// Loads the stored run filtered to `support >= min_support_count`
  /// (and, when `max_pattern_length` > 0, to patterns of at most that many
  /// items). The anti-monotone property makes this exact whenever the
  /// stored threshold is <= the requested one: every itemset frequent at
  /// the higher threshold is already materialized, so filtering stored
  /// levels answers the query with zero mining. Level scans stop early at
  /// the first level where nothing survives the filter — no superset can
  /// survive either. The caller is responsible for checking domination via
  /// LoadMeta(); this routine just filters what is stored.
  Result<StoredResult> LoadAtSupport(int64_t min_support_count,
                                     uint64_t max_pattern_length = 0) const;

  /// True iff a run is stored under this prefix.
  bool Exists() const;

  /// Drops every relation of the stored run (idempotent).
  Status Drop();

  const std::string& prefix() const { return prefix_; }
  std::string MetaTableName() const { return prefix_ + "_meta"; }
  std::string LevelTableName(size_t k) const {
    return prefix_ + "_f" + std::to_string(k);
  }

  /// Schema of the one-row metadata relation.
  static Schema MetaSchema();

  /// Schema of a level relation: (item1 .. itemk INT32, support INT64).
  static Schema LevelSchema(size_t k);

 private:
  /// Reads and validates the one-row metadata relation; shared by Load,
  /// LoadMeta and LoadAtSupport. `max_k` receives the number of stored
  /// level relations.
  Status ReadMetaRow(StoredRunMeta* meta, size_t* max_k) const;

  /// Scans level relations 1..max_k into `out`, keeping rows with
  /// `support >= min_support_count` (0 keeps everything). Stops at the
  /// first level where nothing survives — anti-monotonicity guarantees no
  /// larger pattern can either. `max_level` of 0 means "all stored levels".
  Status LoadLevels(size_t max_k, int64_t min_support_count, size_t max_level,
                    FrequentItemsets* out) const;

  Database* db_;
  std::string prefix_;
  TableBacking backing_;
};

/// Builds the metadata record of a *full* mining run: resolves the support
/// threshold the run effectively used from `options` and
/// `itemsets.num_transactions`, and records the caller-supplied watermark
/// (the highest transaction id the run covered).
StoredRunMeta MakeRunMeta(const FrequentItemsets& itemsets,
                          const MiningOptions& options,
                          TransactionId watermark,
                          std::string source_table = "",
                          uint64_t source_rows = 0);

/// Highest transaction id in the database (0 when empty) — the watermark of
/// a run that mined exactly these transactions.
TransactionId MaxTransactionId(const TransactionDb& transactions);

}  // namespace setm

#endif  // SETM_INCREMENTAL_ITEMSET_STORE_H_

#include "core/mining_planner.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/miner_registry.h"
#include "incremental/delta_miner.h"
#include "obs/metrics.h"
#include "obs/mining_trace.h"

namespace setm {

namespace {

// Process-wide mirror of the per-planner PlanStats, plus the request
// latency distribution — what a scrape sees across every planner instance.
struct GlobalPlanMetrics {
  obs::Counter* requests;
  obs::Counter* cache_filters;
  obs::Counter* delta_derives;
  obs::Counter* full_mines;
  obs::Counter* write_backs;
  obs::Counter* invalidations;
  obs::Histogram* request_micros;
};

const GlobalPlanMetrics& PlanMetrics() {
  static const GlobalPlanMetrics metrics = [] {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
    GlobalPlanMetrics m;
    m.requests = registry->GetCounter("setm_plan_requests_total",
                                      "Mining requests planned");
    m.cache_filters = registry->GetCounter(
        "setm_plan_cache_filter_total",
        "Requests answered by filtering a stored run (zero mining)");
    m.delta_derives = registry->GetCounter(
        "setm_plan_delta_derive_total",
        "Requests answered by incremental derivation");
    m.full_mines = registry->GetCounter("setm_plan_full_mine_total",
                                        "Requests answered by a full mine");
    m.write_backs = registry->GetCounter(
        "setm_plan_write_back_total", "Results written back into the store");
    m.invalidations = registry->GetCounter(
        "setm_plan_invalidation_total",
        "Stored runs found unusable for a request");
    m.request_micros = registry->GetHistogram(
        "setm_plan_request_micros",
        "Microseconds per executed mining request, end to end");
    return m;
  }();
  return metrics;
}

/// Non-empty transactions — the unit every support fraction resolves
/// against (empty baskets carry no items and are not counted as coverage).
uint64_t CountNonEmpty(const TransactionDb& txns) {
  uint64_t n = 0;
  for (const Transaction& t : txns) {
    if (!t.items.empty()) ++n;
  }
  return n;
}

/// The stored run answers the same question iff the support spec and the
/// pattern cap match — the DeltaMiner's compatibility rule, reproduced here
/// so the planner decides the fallback before handing work over.
bool SpecCompatible(const StoredRunMeta& meta, const MiningOptions& options) {
  return meta.spec_min_support == options.min_support &&
         meta.spec_min_support_count == options.min_support_count &&
         meta.max_pattern_length == options.max_pattern_length;
}

/// One decimal place is plenty for plan reasons ("12.5% of the combined
/// database").
std::string Percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace

const char* PlanStrategyName(PlanStrategy strategy) {
  switch (strategy) {
    case PlanStrategy::kCacheFilter:
      return "cache-filter";
    case PlanStrategy::kDeltaDerive:
      return "delta-derive";
    case PlanStrategy::kFullMine:
      return "full-mine";
  }
  return "unknown";
}

std::string MiningPlan::Explain() const {
  std::string out = "strategy: ";
  out += PlanStrategyName(strategy);
  out += "\nreason: " + reason;
  if (store_found) {
    out += "\nstored run: " + std::to_string(stored.num_transactions) +
           " transactions at support " +
           std::to_string(stored.min_support_count) + ", watermark " +
           std::to_string(stored.watermark);
    if (!stored.source_table.empty()) {
      out += ", source '" + stored.source_table + "' (" +
             std::to_string(stored.source_rows) + " rows at save)";
    }
  }
  if (resolved_min_support_count > 0) {
    out += "\nresolved min support: " +
           std::to_string(resolved_min_support_count) + " transactions";
  }
  if (!delta.empty()) {
    out += "\ndelta: " + std::to_string(delta.size()) + " transactions";
    if (!orphans.empty()) {
      out += " (" + std::to_string(orphans.size()) +
             " already in the table from an interrupted append)";
    }
  }
  out += save_after_mine ? "\nwrite-back: yes" : "\nwrite-back: no";
  return out;
}

MiningPlanner::MiningPlanner(Database* db, PlannerOptions options)
    : db_(db), options_(std::move(options)) {
  if (!options_.store_prefix.empty()) {
    cache_ = std::make_unique<MiningCache>(db_, options_.store_prefix,
                                           options_.store_backing);
  }
}

Status MiningPlanner::ValidateRequest(const PlanRequest& request) const {
  const int sources = (request.table != nullptr ? 1 : 0) +
                      (request.transactions != nullptr ? 1 : 0);
  if (sources != 1) {
    return Status::InvalidArgument(
        "mining request must set exactly one source (table or "
        "transactions)");
  }
  if (request.append != nullptr && request.table == nullptr) {
    return Status::InvalidArgument(
        "append batches require a table source — an in-memory transaction "
        "database has nothing durable to append to");
  }
  if (request.append != nullptr) {
    SETM_RETURN_IF_ERROR(ValidateTransactions(*request.append));
  }
  return Status::OK();
}

Result<MiningPlan> MiningPlanner::Plan(const PlanRequest& request) {
  return PlanInternal(request);
}

Result<MiningPlan> MiningPlanner::PlanInternal(const PlanRequest& request) {
  SETM_RETURN_IF_ERROR(ValidateRequest(request));
  ++stats_.plans;
  PlanMetrics().requests->Increment();

  MiningPlan plan;
  const bool has_batch =
      request.append != nullptr && !request.append->empty();
  if (has_batch) plan.delta = *request.append;

  // In-memory sources have no catalog identity to key a cache entry on.
  if (request.transactions != nullptr) {
    plan.strategy = PlanStrategy::kFullMine;
    plan.reason =
        "in-memory transaction source — caching needs a catalog relation";
    if (request.options.min_support_count > 0) {
      plan.resolved_min_support_count = request.options.min_support_count;
    }
    return plan;
  }

  Table* table = request.table;

  if (cache_ == nullptr) {
    plan.strategy = PlanStrategy::kFullMine;
    plan.reason = "result cache disabled (no store prefix configured)";
    if (request.options.min_support_count > 0) {
      plan.resolved_min_support_count = request.options.min_support_count;
    }
    if (has_batch) {
      // Without a store there is no watermark; only in-batch duplicates
      // can be rejected cheaply.
      std::unordered_set<TransactionId> seen;
      for (const Transaction& t : *request.append) {
        if (!seen.insert(t.id).second) {
          return Status::InvalidArgument("duplicate delta transaction id " +
                                         std::to_string(t.id));
        }
        plan.new_watermark = std::max(plan.new_watermark, t.id);
      }
    }
    return plan;
  }

  auto meta_or = cache_->Probe();
  if (!meta_or.ok()) {
    if (meta_or.status().code() != StatusCode::kNotFound) {
      return meta_or.status();
    }
    // Cache miss: either nothing stored under the prefix or the stored
    // run's source table has been dropped — the probe's message says which.
    plan.strategy = PlanStrategy::kFullMine;
    plan.reason = meta_or.status().message();
    plan.save_after_mine = options_.write_back;
    if (request.options.min_support_count > 0) {
      plan.resolved_min_support_count = request.options.min_support_count;
    }
    // Watermark discipline without a store: batch ids must clear whatever
    // the table already holds, and the write-back must record the true
    // high-water mark, so establish it with one scan (skipped when the
    // table is empty and nothing needs it).
    TransactionId existing_max = 0;
    if (table->num_rows() > 0 && (has_batch || plan.save_after_mine)) {
      auto it = table->Scan();
      Tuple row;
      while (true) {
        auto more = it->Next(&row);
        if (!more.ok()) return more.status();
        if (!more.value()) break;
        existing_max = std::max(existing_max, row.value(0).AsInt32());
      }
    }
    plan.new_watermark = existing_max;
    if (has_batch) {
      std::unordered_set<TransactionId> seen;
      for (const Transaction& t : *request.append) {
        if (t.id <= existing_max) {
          return Status::InvalidArgument(
              "append transaction " + std::to_string(t.id) +
              " is at or below the highest existing trans_id " +
              std::to_string(existing_max));
        }
        if (!seen.insert(t.id).second) {
          return Status::InvalidArgument("duplicate delta transaction id " +
                                         std::to_string(t.id));
        }
        plan.new_watermark = std::max(plan.new_watermark, t.id);
      }
    }
    return plan;
  }

  plan.store_found = true;
  plan.stored = std::move(meta_or).value();
  const StoredRunMeta& stored = plan.stored;
  plan.new_watermark = stored.watermark;

  // A stored run speaks only for the relation it was mined from.
  if (!stored.source_table.empty() &&
      stored.source_table != table->name()) {
    plan.strategy = PlanStrategy::kFullMine;
    plan.reason = "stored run was mined from '" + stored.source_table +
                  "', not '" + table->name() + "'";
    plan.save_after_mine = options_.write_back;
    ++stats_.invalidations;
    PlanMetrics().invalidations->Increment();
    return plan;
  }

  // Batch ids must respect the watermark: ids at or below it are already
  // counted in the store, so reusing one would double-count silently. The
  // wording matches the DeltaMiner's so both layers report the same
  // violation identically.
  if (has_batch) {
    std::unordered_set<TransactionId> seen;
    for (const Transaction& t : *request.append) {
      if (t.id <= stored.watermark) {
        return Status::InvalidArgument(
            "delta transaction " + std::to_string(t.id) +
            " is at or below the stored watermark " +
            std::to_string(stored.watermark));
      }
      if (!seen.insert(t.id).second) {
        return Status::InvalidArgument("duplicate delta transaction id " +
                                       std::to_string(t.id));
      }
      plan.new_watermark = std::max(plan.new_watermark, t.id);
    }
  }

  // Freshness. Source tables are append-only, so a live row count equal to
  // the count recorded at save time proves the store still covers the whole
  // table — an O(1) check with zero page reads. Anything else needs one
  // scan of the tail beyond the watermark (crash-interrupted appends, rows
  // added without a store refresh, or a legacy store without source_rows).
  const bool rows_match =
      stored.source_rows != 0 && table->num_rows() == stored.source_rows;
  uint64_t tail_rows = 0;
  if (!rows_match) {
    std::map<TransactionId, std::vector<ItemId>> tail;
    auto it = table->Scan();
    Tuple row;
    while (true) {
      auto more = it->Next(&row);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      const TransactionId tid = row.value(0).AsInt32();
      if (tid > stored.watermark) {
        tail[tid].push_back(row.value(1).AsInt32());
        ++tail_rows;
      }
    }
    if (stored.source_rows != 0 &&
        stored.source_rows + tail_rows != table->num_rows()) {
      // The table changed at or below the watermark (or shrank) — the
      // stored counts describe data that no longer exists as saved.
      plan.strategy = PlanStrategy::kFullMine;
      plan.reason = "table '" + table->name() +
                    "' changed at or below the stored watermark " +
                    std::to_string(stored.watermark) +
                    " — stored counts are unusable";
      plan.save_after_mine = options_.write_back;
      ++stats_.invalidations;
    PlanMetrics().invalidations->Increment();
      return plan;
    }
    for (auto& [tid, items] : tail) {
      plan.orphans.push_back(tid);
      plan.new_watermark = std::max(plan.new_watermark, tid);
      if (!has_batch) {
        Transaction t;
        t.id = tid;
        std::sort(items.begin(), items.end());
        items.erase(std::unique(items.begin(), items.end()), items.end());
        t.items = std::move(items);
        plan.delta.push_back(std::move(t));
      }
    }
  }

  const bool stale = has_batch || !plan.orphans.empty();
  if (!stale) {
    // The store covers exactly the live table; domination is now a pure
    // threshold-and-cap comparison against the meta row.
    const int64_t query_minsup =
        ResolveMinSupportCount(request.options, stored.num_transactions);
    const bool cap_ok =
        stored.max_pattern_length == 0 ||
        (request.options.max_pattern_length != 0 &&
         request.options.max_pattern_length <= stored.max_pattern_length);
    if (query_minsup >= stored.min_support_count && cap_ok) {
      plan.strategy = PlanStrategy::kCacheFilter;
      plan.resolved_min_support_count = query_minsup;
      plan.reason = "stored run at support " +
                    std::to_string(stored.min_support_count) +
                    " dominates the query at support " +
                    std::to_string(query_minsup) +
                    " — filter stored levels, no mining";
      return plan;
    }
    plan.strategy = PlanStrategy::kFullMine;
    plan.save_after_mine = options_.write_back;
    plan.resolved_min_support_count = query_minsup;
    if (!cap_ok) {
      plan.reason =
          "stored run is capped at patterns of length " +
          std::to_string(stored.max_pattern_length) +
          " and cannot answer a query capped at " +
          std::to_string(request.options.max_pattern_length) +
          (request.options.max_pattern_length == 0 ? " (unbounded)" : "");
    } else {
      plan.reason = "query at support " + std::to_string(query_minsup) +
                    " is below the stored threshold " +
                    std::to_string(stored.min_support_count) +
                    " — the store cannot contain every answer";
    }
    ++stats_.invalidations;
    PlanMetrics().invalidations->Increment();
    return plan;
  }

  // Stale store. Derivation needs the stored run to answer the same
  // question (the DeltaMiner's compatibility rule) and the delta to stay
  // within the budget.
  if (!SpecCompatible(stored, request.options)) {
    plan.strategy = PlanStrategy::kFullMine;
    plan.reason =
        "stored run answers a different question (support spec or pattern "
        "cap differ) — derivation impossible";
    plan.save_after_mine = options_.write_back;
    ++stats_.invalidations;
    PlanMetrics().invalidations->Increment();
    return plan;
  }

  const uint64_t delta_txns = CountNonEmpty(plan.delta);
  const uint64_t combined = stored.num_transactions + delta_txns;
  plan.resolved_min_support_count =
      ResolveMinSupportCount(request.options, combined);
  const double fraction =
      static_cast<double>(delta_txns) /
      static_cast<double>(std::max<uint64_t>(combined, 1));
  const bool too_large =
      static_cast<double>(delta_txns) >
      options_.full_remine_fraction *
          static_cast<double>(std::max<uint64_t>(combined, 1));
  if (too_large) {
    plan.strategy = PlanStrategy::kFullMine;
    plan.reason =
        options_.full_remine_fraction <= 0.0
            ? "incremental derivation disabled (budget 0%) — full remine"
            : "delta is " + Percent(fraction) +
                  " of the combined database, above the " +
                  Percent(options_.full_remine_fraction) +
                  " derivation budget";
    plan.save_after_mine = options_.write_back;
    ++stats_.invalidations;
    PlanMetrics().invalidations->Increment();
    return plan;
  }
  plan.strategy = PlanStrategy::kDeltaDerive;
  plan.reason = "delta is " + Percent(fraction) +
                " of the combined database, within the " +
                Percent(options_.full_remine_fraction) +
                " derivation budget";
  // The DeltaMiner refreshes the store itself.
  plan.save_after_mine = false;
  return plan;
}

Result<PlanExecution> MiningPlanner::Execute(const PlanRequest& request) {
  WallTimer total_timer;
  const IoStats io_before = *db_->io_stats();
  obs::TraceSpan* root = request.trace;

  obs::TraceSpan* plan_span =
      root != nullptr ? root->StartChild("plan") : nullptr;
  auto plan_or = PlanInternal(request);
  if (plan_span != nullptr) plan_span->End();
  if (!plan_or.ok()) return plan_or.status();

  PlanExecution out;
  out.plan = std::move(plan_or).value();
  out.delta_transactions = CountNonEmpty(out.plan.delta);

  // With a trace attached, the execution phase gets its own child span and
  // mining strategies get a TracingObserver wrapped around the caller's
  // observer, so every iteration lands as a span. Cache filtering runs no
  // iterations; its "load" span stays childless by construction.
  PlanRequest run = request;
  std::optional<obs::TracingObserver> tracing;
  obs::TraceSpan* exec_span = nullptr;
  if (root != nullptr) {
    root->AddTag("strategy", PlanStrategyName(out.plan.strategy));
    switch (out.plan.strategy) {
      case PlanStrategy::kCacheFilter:
        exec_span = root->StartChild("load");
        break;
      case PlanStrategy::kDeltaDerive:
        exec_span = root->StartChild("derive");
        break;
      case PlanStrategy::kFullMine:
        exec_span = root->StartChild("mine");
        exec_span->AddTag("algorithm", options_.algorithm);
        break;
    }
    if (out.plan.strategy != PlanStrategy::kCacheFilter) {
      tracing.emplace(exec_span, db_->io_stats(), request.options.observer);
      run.options.observer = &*tracing;
    }
  }

  Status status;
  switch (out.plan.strategy) {
    case PlanStrategy::kCacheFilter:
      status = ExecuteCacheFilter(run, &out.plan, &out);
      if (status.ok()) {
        ++stats_.cache_filters;
        PlanMetrics().cache_filters->Increment();
      }
      break;
    case PlanStrategy::kDeltaDerive:
      status = ExecuteDeltaDerive(run, &out.plan, &out);
      if (status.ok()) {
        ++stats_.delta_derives;
        ++stats_.write_backs;
        PlanMetrics().delta_derives->Increment();
        PlanMetrics().write_backs->Increment();
      }
      break;
    case PlanStrategy::kFullMine:
      status = ExecuteFullMine(run, &out.plan, &out);
      if (status.ok()) {
        ++stats_.full_mines;
        PlanMetrics().full_mines->Increment();
      }
      break;
  }
  if (exec_span != nullptr) exec_span->End();
  SETM_RETURN_IF_ERROR(status);

  // Plan-layer accounting covers the whole answer — probe, tail scan,
  // append, mine and write-back — which is the fair basis for comparing
  // strategies against each other.
  out.result.total_seconds = total_timer.ElapsedSeconds();
  out.result.io = Diff(*db_->io_stats(), io_before);
  PlanMetrics().request_micros->ObserveDurationMicros(
      out.result.total_seconds);
  return out;
}

Status MiningPlanner::ExecuteCacheFilter(const PlanRequest& request,
                                         MiningPlan* plan,
                                         PlanExecution* out) {
  auto loaded_or = cache_->LoadFiltered(plan->resolved_min_support_count,
                                        request.options.max_pattern_length);
  if (!loaded_or.ok()) return loaded_or.status();
  out->result.itemsets = std::move(loaded_or.value().itemsets);
  // Zero mining happened: no iterations, and the observer is never called.
  out->result.iterations.clear();
  return Status::OK();
}

Status MiningPlanner::ExecuteDeltaDerive(const PlanRequest& request,
                                         MiningPlan* plan,
                                         PlanExecution* out) {
  DeltaOptions delta_options;
  delta_options.setm = options_.setm;
  delta_options.full_remine_fraction = options_.full_remine_fraction;
  DeltaMiner delta_miner(db_, delta_options);
  auto derived_or = delta_miner.AppendAndUpdate(
      cache_->store(), request.table, plan->delta, request.options);
  if (!derived_or.ok()) return derived_or.status();
  DeltaMineResult derived = std::move(derived_or).value();
  out->result = std::move(derived.result);
  out->delta_full_remine = derived.full_remine;
  out->delta_transactions = derived.delta_transactions;
  out->borderline_candidates = derived.borderline_candidates;
  return Status::OK();
}

Status MiningPlanner::ExecuteFullMine(const PlanRequest& request,
                                      MiningPlan* plan, PlanExecution* out) {
  // Append the batch first (skipping transactions a crash-interrupted
  // append already left in the table), so the mine below sees the combined
  // relation.
  if (request.table != nullptr && !plan->delta.empty()) {
    std::unordered_set<TransactionId> already(plan->orphans.begin(),
                                              plan->orphans.end());
    bool inserted = false;
    for (const Transaction& t : plan->delta) {
      if (already.count(t.id) != 0) continue;
      for (ItemId item : t.items) {
        SETM_RETURN_IF_ERROR(request.table->Insert(
            Tuple({Value::Int32(t.id), Value::Int32(item)})));
      }
      inserted = true;
    }
    if (inserted && db_->persistent()) {
      SETM_RETURN_IF_ERROR(db_->Commit());
    }
  }

  auto miner_or =
      MinerRegistry::Create(options_.algorithm, db_, options_.setm);
  if (!miner_or.ok()) return miner_or.status();
  MiningRequest mine_request;
  mine_request.table = request.table;
  mine_request.transactions = request.transactions;
  mine_request.options = request.options;
  auto mined_or = miner_or.value()->Mine(mine_request);
  if (!mined_or.ok()) return mined_or.status();
  out->result = std::move(mined_or).value();

  if (plan->save_after_mine && cache_ != nullptr &&
      request.table != nullptr) {
    StoredRunMeta meta = MakeRunMeta(
        out->result.itemsets, request.options, plan->new_watermark,
        request.table->name(), request.table->num_rows());
    SETM_RETURN_IF_ERROR(cache_->Put(out->result.itemsets, meta));
    ++stats_.write_backs;
    PlanMetrics().write_backs->Increment();
  }
  return Status::OK();
}

}  // namespace setm

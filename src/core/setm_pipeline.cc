#include "core/setm_pipeline.h"

#include <utility>

#include "exec/expression.h"
#include "exec/external_sort.h"
#include "exec/hash_operators.h"
#include "exec/operators.h"

namespace setm {

namespace {

/// Key columns (item_1 .. item_k) of an R_k row.
std::vector<size_t> ItemColumns(size_t k) {
  std::vector<size_t> cols;
  cols.reserve(k);
  for (size_t i = 1; i <= k; ++i) cols.push_back(i);
  return cols;
}

}  // namespace

Status JoinIntoRkPrime(const Table& left, const Table& r1, size_t k,
                       Table* rk_prime, const CountSink& sink) {
  // Combined row: (trans_id, item_1..item_{k-1}, trans_id, item).
  const size_t last_left_item = k - 1;  // index of item_{k-1}
  const size_t right_item = k + 1;
  ExprPtr residual = Binary(BinaryOp::kGt, Col(right_item, "q.item"),
                            Col(last_left_item, "p.item_last"));
  MergeJoinIterator join(left.Scan(), r1.Scan(), {0}, {0},
                         std::move(residual));
  // Project to (trans_id, item_1 .. item_k).
  Tuple row;
  std::vector<Value> values;
  std::vector<ItemId> items(k);
  while (true) {
    auto more = join.Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    values.clear();
    for (size_t i = 0; i < k; ++i) values.push_back(row.value(i));
    values.push_back(row.value(right_item));
    SETM_RETURN_IF_ERROR(rk_prime->Insert(Tuple(values)));
    if (sink) {
      for (size_t i = 0; i < k; ++i) items[i] = values[i + 1].AsInt32();
      sink(items);
    }
  }
  return Status::OK();
}

Status FilterRkPrimeIntoRk(ExecContext ctx, const Table& rk_prime, size_t k,
                           const CkProbe& in_ck, Table* rk) {
  ExternalSort sort(ctx, SetmMiner::RkSchema(k),
                    TupleComparator(SetmMiner::TidItemColumns(k)));
  auto it = rk_prime.Scan();
  Tuple row;
  std::vector<ItemId> items(k);
  while (true) {
    auto more = it->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    for (size_t i = 0; i < k; ++i) items[i] = row.value(i + 1).AsInt32();
    if (in_ck(ItemsetKey(items))) {
      SETM_RETURN_IF_ERROR(sort.Add(row));
    }
  }
  auto sorted_or = sort.Finish();
  if (!sorted_or.ok()) return sorted_or.status();
  return MaterializeInto(sorted_or.value().get(), rk);
}

Status FilterR1Into(const Table& r1, const CkProbe& keep, Table* out) {
  auto it = r1.Scan();
  Tuple row;
  while (true) {
    auto more = it->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    if (keep(ItemsetKey({row.value(1).AsInt32()}))) {
      SETM_RETURN_IF_ERROR(out->Insert(row));
    }
  }
  return Status::OK();
}

std::unique_ptr<TupleIterator> MakeGroupCount(
    ExecContext ctx, std::unique_ptr<TupleIterator> input,
    std::vector<size_t> group_columns, int64_t min_count, CountMethod method) {
  if (method == CountMethod::kHash) {
    return std::make_unique<HashGroupCountIterator>(
        std::move(input), std::move(group_columns), min_count);
  }
  auto sorted = std::make_unique<SortIterator>(
      ctx, std::move(input), TupleComparator(group_columns));
  return std::make_unique<SortedGroupCountIterator>(
      std::move(sorted), std::move(group_columns), min_count);
}

Status CountInto(ExecContext ctx, const Table& relation, size_t k,
                 int64_t min_count, CountMethod method,
                 const GroupSink& sink) {
  auto counts = MakeGroupCount(ctx, relation.Scan(), ItemColumns(k),
                               min_count, method);
  Tuple row;
  while (true) {
    auto more = counts->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    std::vector<ItemId> items;
    items.reserve(k);
    for (size_t i = 0; i < k; ++i) items.push_back(row.value(i).AsInt32());
    sink(std::move(items), row.value(k).AsInt64());
  }
  return Status::OK();
}

}  // namespace setm

#include "core/nested_loop_sql.h"

#include "common/timer.h"

namespace setm {

namespace {

/// "item1 INT, ..., itemk INT".
std::string ItemColumnsDdl(size_t k) {
  std::string out;
  for (size_t i = 1; i <= k; ++i) {
    if (i > 1) out += ", ";
    out += "item" + std::to_string(i) + " INT";
  }
  return out;
}

}  // namespace

Result<sql::QueryResult> NestedLoopSqlMiner::Run(const std::string& statement,
                                                 const sql::Params& params) {
  statements_.push_back(statement);
  return engine_.Execute(statement, params);
}

Result<MiningResult> NestedLoopSqlMiner::MineTable(
    const MiningOptions& options) {
  statements_.clear();
  // Drop scratch tables from a previous run.
  for (const std::string& name : db_->catalog()->TableNames()) {
    if (name.rfind("nl_", 0) == 0) {
      SETM_RETURN_IF_ERROR(db_->catalog()->DropTable(name));
    }
  }

  WallTimer total_timer;
  MiningResult result;

  {
    auto r = Run("SELECT DISTINCT trans_id FROM " + sales_table_);
    if (!r.ok()) return r.status();
    result.itemsets.num_transactions = r.value().rows.size();
  }
  const int64_t minsup =
      ResolveMinSupportCount(options, result.itemsets.num_transactions);
  const sql::Params params = {{"minsupport", Value::Int64(minsup)}};

  // C_1: the first query of Section 3.1.
  {
    WallTimer iter_timer;
    auto r = Run("CREATE MEMORY TABLE nl_c1 (item1 INT, cnt BIGINT)");
    if (!r.ok()) return r.status();
    r = Run("INSERT INTO nl_c1 SELECT r1.item, COUNT(*) FROM " + sales_table_ +
                " r1 GROUP BY r1.item HAVING COUNT(*) >= :minsupport",
            params);
    if (!r.ok()) return r.status();
    auto c1 = Run("SELECT item1, cnt FROM nl_c1 ORDER BY item1");
    if (!c1.ok()) return c1.status();
    for (const Tuple& row : c1.value().rows) {
      result.itemsets.Add({row.value(0).AsInt32()}, row.value(1).AsInt64());
    }
    IterationStats stats;
    stats.k = 1;
    stats.c_size = c1.value().rows.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
  }

  // C_k: the generalized k-way self-join of Section 3.1.
  for (size_t k = 2;; ++k) {
    if (options.max_pattern_length != 0 && k > options.max_pattern_length) {
      break;
    }
    if (result.itemsets.OfSize(k - 1).empty()) break;
    WallTimer iter_timer;
    const std::string ck = "nl_c" + std::to_string(k);
    const std::string ck_prev = "nl_c" + std::to_string(k - 1);

    auto r = Run("CREATE MEMORY TABLE " + ck + " (" + ItemColumnsDdl(k) +
                 ", cnt BIGINT)");
    if (!r.ok()) return r.status();

    // SELECT r1.item, ..., rk.item, COUNT(*)
    std::string sql = "INSERT INTO " + ck + " SELECT ";
    for (size_t i = 1; i <= k; ++i) {
      if (i > 1) sql += ", ";
      sql += "r" + std::to_string(i) + ".item";
    }
    sql += ", COUNT(*) FROM " + ck_prev + " c";
    for (size_t i = 1; i <= k; ++i) {
      sql += ", " + sales_table_ + " r" + std::to_string(i);
    }
    sql += " WHERE ";
    // r1.trans_id = r2.trans_id AND ... (pairwise chain, as the paper's
    // "r1.trans_id = ... = rk.trans_id" expands).
    for (size_t i = 1; i < k; ++i) {
      if (i > 1) sql += " AND ";
      sql += "r" + std::to_string(i) + ".trans_id = r" + std::to_string(i + 1) +
             ".trans_id";
    }
    // r_i.item = c.item_i for i < k.
    for (size_t i = 1; i < k; ++i) {
      sql += " AND r" + std::to_string(i) + ".item = c.item" +
             std::to_string(i);
    }
    // r_k.item > r_{k-1}.item (single inequality suffices: items are
    // generated in lexicographic order, Section 3.1).
    sql += " AND r" + std::to_string(k) + ".item > r" + std::to_string(k - 1) +
           ".item GROUP BY ";
    for (size_t i = 1; i <= k; ++i) {
      if (i > 1) sql += ", ";
      sql += "r" + std::to_string(i) + ".item";
    }
    sql += " HAVING COUNT(*) >= :minsupport";
    r = Run(sql, params);
    if (!r.ok()) return r.status();

    std::string select = "SELECT ";
    for (size_t i = 1; i <= k; ++i) {
      select += "item" + std::to_string(i) + ", ";
    }
    select += "cnt FROM " + ck;
    auto rows = Run(select);
    if (!rows.ok()) return rows.status();
    for (const Tuple& row : rows.value().rows) {
      std::vector<ItemId> items;
      items.reserve(k);
      for (size_t i = 0; i < k; ++i) items.push_back(row.value(i).AsInt32());
      result.itemsets.Add(std::move(items), row.value(k).AsInt64());
    }

    IterationStats stats;
    stats.k = k;
    stats.c_size = rows.value().rows.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    if (rows.value().rows.empty()) break;
  }

  result.itemsets.Normalize();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace setm

#ifndef SETM_CORE_SETM_H_
#define SETM_CORE_SETM_H_

#include <memory>

#include "core/miner.h"
#include "core/types.h"
#include "relational/database.h"

namespace setm {

// CountMethod and SetmOptions — the physical knobs of a SETM run, now the
// uniform knob set of the whole mining API — live in core/miner.h and are
// re-exported here for the many existing call sites.

/// Algorithm SETM (Figure 4 of the paper), implemented directly on the
/// engine's two primitives: external sort and merge-scan join.
///
/// Per iteration k:
///   1. R'_k := merge-scan join of R_{k-1} (sorted on trans_id, items) with
///      R_1 (sorted on trans_id, item) on trans_id, keeping extensions with
///      q.item > p.item_{k-1} — lexicographic candidate patterns;
///   2. sort R'_k on (item_1 .. item_k) and stream-count groups, keeping
///      those with count >= minsupport: the count relation C_k;
///   3. R_k := R'_k filtered to patterns present in C_k ("simple table
///      look-ups on relation C_k"), sorted back on (trans_id, items).
/// The loop ends when R_k (equivalently C_k) is empty.
///
///     Database db;
///     SetmMiner miner(&db);
///     MiningResult result = miner.Mine(transactions, options).value();
class SetmMiner {
 public:
  explicit SetmMiner(Database* db, SetmOptions setm_options = {})
      : db_(db), setm_options_(setm_options) {}

  /// Mines a transaction database. Loads it into a SALES-shaped relation
  /// first (items within a transaction must be sorted and unique).
  Result<MiningResult> Mine(const TransactionDb& transactions,
                            const MiningOptions& options);

  /// Mines an existing relation with schema (trans_id INT32, item INT32);
  /// rows need not be sorted.
  Result<MiningResult> MineTable(const Table& sales,
                                 const MiningOptions& options);

  /// The canonical SALES schema: (trans_id INT32, item INT32).
  static Schema SalesSchema();

  /// Schema of R_k: (trans_id, item_1, .., item_k), all INT32.
  static Schema RkSchema(size_t k);

  /// Sort-key columns (trans_id, item_1 .. item_k) of an R_k row — the
  /// order every R_k is maintained in. Shared with the parallel executor.
  static std::vector<size_t> TidItemColumns(size_t k);

 private:
  Result<std::unique_ptr<Table>> NewRelation(const std::string& name,
                                             Schema schema);

  Database* db_;
  SetmOptions setm_options_;
};

/// Creates a catalog table `name` with the SALES schema and loads the
/// transaction database into it. Convenience shared by the SQL mining path,
/// the examples and the benchmarks.
Result<Table*> LoadSalesTable(Database* db, const std::string& name,
                              const TransactionDb& transactions,
                              TableBacking backing);

}  // namespace setm

#endif  // SETM_CORE_SETM_H_

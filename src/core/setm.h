#ifndef SETM_CORE_SETM_H_
#define SETM_CORE_SETM_H_

#include <memory>

#include "core/types.h"
#include "relational/database.h"

namespace setm {

/// How the support counts C_k are produced from R'_k.
enum class CountMethod {
  /// The paper's pipeline: sort R'_k on its item columns, then one
  /// streaming group-count scan (Figure 4's "sort R'_k on item_1..item_k;
  /// C_k := generate counts").
  kSortMerge,
  /// Hash aggregation, the post-1995 alternative; skips the sort entirely.
  /// Results are identical (the ablation `ablation_count_method` compares
  /// the physical behaviour).
  kHash,
};

/// Physical knobs of the SETM run.
struct SetmOptions {
  /// Where SALES/R_k relations live. kHeap stores them in paged tables so
  /// every scan, spill and materialization is visible in the IoStats ledger
  /// (the configuration the paper's Section 4.3 analysis describes);
  /// kMemory mirrors the paper's Section 6 implementation, which "ran in
  /// main memory" for the timing experiments.
  TableBacking storage = TableBacking::kMemory;
  /// Physical strategy for the C_k aggregation. Only consulted by the
  /// serial pipeline: the partitioned executor always hash-aggregates its
  /// partition-local counts (partial maps must merge globally before the
  /// minsupport filter, so a per-partition sort buys nothing), making the
  /// sort-merge/hash ablation meaningful at num_threads == 1 only.
  CountMethod count_method = CountMethod::kSortMerge;
  /// Degree of partition parallelism. 1 runs the classic single-threaded
  /// pipeline; > 1 routes to the partitioned executor (parallel_setm.h):
  /// SALES is range-partitioned on trans_id, candidate generation and
  /// counting run per partition on a worker pool, and partial C_k counts
  /// are merged before the global minsupport filter. Itemsets and rules
  /// are identical to the serial pipeline for any thread count (physical
  /// knobs like count_method may be overridden, see above).
  size_t num_threads = 1;
};

/// Algorithm SETM (Figure 4 of the paper), implemented directly on the
/// engine's two primitives: external sort and merge-scan join.
///
/// Per iteration k:
///   1. R'_k := merge-scan join of R_{k-1} (sorted on trans_id, items) with
///      R_1 (sorted on trans_id, item) on trans_id, keeping extensions with
///      q.item > p.item_{k-1} — lexicographic candidate patterns;
///   2. sort R'_k on (item_1 .. item_k) and stream-count groups, keeping
///      those with count >= minsupport: the count relation C_k;
///   3. R_k := R'_k filtered to patterns present in C_k ("simple table
///      look-ups on relation C_k"), sorted back on (trans_id, items).
/// The loop ends when R_k (equivalently C_k) is empty.
///
///     Database db;
///     SetmMiner miner(&db);
///     MiningResult result = miner.Mine(transactions, options).value();
class SetmMiner {
 public:
  explicit SetmMiner(Database* db, SetmOptions setm_options = {})
      : db_(db), setm_options_(setm_options) {}

  /// Mines a transaction database. Loads it into a SALES-shaped relation
  /// first (items within a transaction must be sorted and unique).
  Result<MiningResult> Mine(const TransactionDb& transactions,
                            const MiningOptions& options);

  /// Mines an existing relation with schema (trans_id INT32, item INT32);
  /// rows need not be sorted.
  Result<MiningResult> MineTable(const Table& sales,
                                 const MiningOptions& options);

  /// The canonical SALES schema: (trans_id INT32, item INT32).
  static Schema SalesSchema();

  /// Schema of R_k: (trans_id, item_1, .., item_k), all INT32.
  static Schema RkSchema(size_t k);

  /// Sort-key columns (trans_id, item_1 .. item_k) of an R_k row — the
  /// order every R_k is maintained in. Shared with the parallel executor.
  static std::vector<size_t> TidItemColumns(size_t k);

 private:
  Result<std::unique_ptr<Table>> NewRelation(const std::string& name,
                                             Schema schema);

  Database* db_;
  SetmOptions setm_options_;
};

/// Creates a catalog table `name` with the SALES schema and loads the
/// transaction database into it. Convenience shared by the SQL mining path,
/// the examples and the benchmarks.
Result<Table*> LoadSalesTable(Database* db, const std::string& name,
                              const TransactionDb& transactions,
                              TableBacking backing);

}  // namespace setm

#endif  // SETM_CORE_SETM_H_

#ifndef SETM_CORE_TYPES_H_
#define SETM_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/io_stats.h"

namespace setm {

/// Items and transaction ids are 4-byte integers, as in the paper's
/// analysis ("each item and transaction id is represented using 4 bytes").
using ItemId = int32_t;
using TransactionId = int32_t;

/// One customer transaction (basket). Items are kept sorted and unique.
struct Transaction {
  TransactionId id = 0;
  std::vector<ItemId> items;
};

/// A transaction database, the logical content of SALES(trans_id, item).
using TransactionDb = std::vector<Transaction>;

/// An itemset with its support count — one row of a count relation C_k.
struct PatternCount {
  std::vector<ItemId> items;  // lexicographically ordered
  int64_t count = 0;

  bool operator==(const PatternCount& o) const {
    return count == o.count && items == o.items;
  }
};

/// Serializes an itemset into a flat hash key.
std::string ItemsetKey(const std::vector<ItemId>& items);

/// All frequent itemsets found by a miner, organized by size: the contents
/// of the count relations C_1, C_2, ... plus a lookup index used by rule
/// generation ("available by lookup in a previous count relation").
class FrequentItemsets {
 public:
  /// Registers one frequent pattern; `items` must be sorted ascending.
  void Add(std::vector<ItemId> items, int64_t count);

  /// Support count of an exact itemset, or 0 if it is not frequent.
  int64_t CountOf(const std::vector<ItemId>& items) const;

  /// The patterns of size k (empty vector when none). k >= 1.
  const std::vector<PatternCount>& OfSize(size_t k) const;

  /// Largest k with any frequent pattern (0 when empty).
  size_t MaxSize() const { return by_size_.size(); }

  /// Total number of frequent patterns over all sizes.
  size_t TotalPatterns() const;

  /// Number of transactions in the mined database (for support fractions).
  uint64_t num_transactions = 0;

  /// Canonical ordering (by size, then lexicographic items) applied in
  /// place; makes outputs of different miners directly comparable.
  void Normalize();

  bool operator==(const FrequentItemsets& o) const;

 private:
  std::vector<std::vector<PatternCount>> by_size_;  // [k-1] -> C_k rows
  std::unordered_map<std::string, int64_t> index_;
};

/// An association rule X => Y with its metrics. The paper's generator emits
/// single-item consequents; the extended (Agrawal-style) generator allows
/// larger consequents.
struct AssociationRule {
  std::vector<ItemId> antecedent;
  std::vector<ItemId> consequent;
  double confidence = 0.0;  // |X u Y| / |X|
  double support = 0.0;     // |X u Y| / |D|
  /// Lift = confidence / P(Y): > 1 means X genuinely raises the odds of Y
  /// (a post-1995 metric, filled in because bare confidence famously
  /// over-reports rules whose consequent is popular anyway). 0 when the
  /// consequent's own support was unavailable.
  double lift = 0.0;

  bool operator==(const AssociationRule& o) const {
    return antecedent == o.antecedent && consequent == o.consequent;
  }
};

struct IterationStats;

/// Per-iteration hook shared by every miner. Implementations receive the
/// finished iteration's IterationStats and decide whether mining continues:
/// returning false requests cooperative cancellation — the miner stops
/// before starting the next iteration, releases its scratch state (SQL
/// miners drop their catalog scratch relations) and returns a Status with
/// code kCancelled. Callbacks run on the thread driving the mining loop;
/// they must not re-enter the miner.
class MiningObserver {
 public:
  virtual ~MiningObserver() = default;

  /// Called once per completed iteration, in k order. Return true to
  /// continue, false to cancel.
  virtual bool OnIteration(const IterationStats& stats) = 0;
};

/// Mining parameters shared by every miner in this library.
struct MiningOptions {
  /// Minimum support as a fraction of transactions (e.g. 0.01 = 1%).
  /// Used when min_support_count == 0.
  double min_support = 0.01;
  /// Absolute minimum support count; overrides min_support when > 0.
  int64_t min_support_count = 0;
  /// Minimum confidence for rule generation (e.g. 0.7 = 70%).
  double min_confidence = 0.5;
  /// Stop after patterns of this length (0 = run until fixpoint).
  size_t max_pattern_length = 0;
  /// SETM ablation: drop non-frequent items from R1 before the loop.
  /// The paper's Figure 4 joins with the unfiltered R1; this switch enables
  /// the obvious optimization for comparison.
  bool filter_r1 = false;
  /// Optional per-iteration observer (not owned; must outlive the Mine
  /// call). Not part of the mining "question": stored-run compatibility and
  /// result identity ignore it. See MiningObserver for the cancellation
  /// contract.
  MiningObserver* observer = nullptr;
};

/// Reports a finished iteration to options.observer, if any. Returns a
/// kCancelled Status when the observer vetoes continuing — miners propagate
/// it as the result of the whole Mine call.
Status NotifyIteration(const MiningOptions& options,
                       const IterationStats& stats);

/// Resolves the effective support threshold in transactions (>= 1).
int64_t ResolveMinSupportCount(const MiningOptions& options,
                               uint64_t num_transactions);

/// Per-iteration observability, the raw material for Figures 5 and 6.
struct IterationStats {
  size_t k = 0;              ///< pattern length of this iteration
  uint64_t r_prime_rows = 0; ///< |R'_k| (candidate pattern tuples)
  uint64_t r_rows = 0;       ///< |R_k| after the support filter
  uint64_t r_bytes = 0;      ///< size of R_k in bytes (Figure 5 plots KB)
  uint64_t r_pages = 0;      ///< ||R_k|| in pages
  uint64_t c_size = 0;       ///< |C_k| (Figure 6)
  double seconds = 0.0;      ///< wall-clock for the iteration
};

/// What a miner returns.
struct MiningResult {
  FrequentItemsets itemsets;
  std::vector<IterationStats> iterations;
  double total_seconds = 0.0;
  IoStats io;  ///< page traffic attributable to this mining run
};

/// Validates a transaction database: ids strictly increasing is not
/// required, but items within each transaction must be sorted, unique and
/// non-negative. Returns InvalidArgument describing the first offence.
Status ValidateTransactions(const TransactionDb& db);

}  // namespace setm

#endif  // SETM_CORE_TYPES_H_

#ifndef SETM_CORE_RULES_H_
#define SETM_CORE_RULES_H_

#include <functional>
#include <string>
#include <vector>

#include "core/types.h"

namespace setm {

/// Rule-generation mode.
enum class RuleMode {
  /// The paper's Section 5 generator: for a pattern of length k, every
  /// combination of k-1 items forms the antecedent and the remaining item
  /// the consequent.
  kSingleConsequent,
  /// Extended (Agrawal-style): every non-empty proper subset forms the
  /// antecedent, the complement the consequent.
  kAnySubset,
};

/// Generates association rules from the count relations.
///
/// A rule X => I qualifies when conf = |X u I| / |X| meets the minimum
/// confidence; its support is |X u I| / |D|. The antecedent count comes
/// from a lookup in the next-smaller count relation, exactly as Section 5
/// describes. Results are sorted by (pattern size, antecedent, consequent).
///
/// `options.observer` receives the same progress + cooperative-cancellation
/// hooks as the mining loop: one OnIteration per finished pattern size
/// (stats.k = the size, stats.c_size = patterns expanded, stats.r_rows =
/// rules emitted so far) plus periodic mid-level callbacks on large levels,
/// so even a kAnySubset pass over a huge result set stays interruptible.
/// Returns Cancelled when the observer vetoes continuing.
Result<std::vector<AssociationRule>> GenerateRules(
    const FrequentItemsets& itemsets, const MiningOptions& options,
    RuleMode mode = RuleMode::kSingleConsequent);

/// Renders a rule in the paper's output format:
///   "B C ==> A, [75.0%, 30.0%]"  (confidence first, then support),
/// with items printed through `item_name` (defaults to the numeric id).
std::string FormatRule(
    const AssociationRule& rule,
    const std::function<std::string(ItemId)>& item_name = {});

/// Renders rules as CSV with a header row:
///   antecedent,consequent,confidence,support,lift
///   1 2,3,0.750000,0.300000,1.250000
/// Items are space-joined, metrics fixed at six decimals. This single
/// implementation backs both `setm_mine --format csv` and the server's
/// RULES payload, so the two surfaces are bit-identical by construction.
std::string FormatRulesCsv(const std::vector<AssociationRule>& rules);

}  // namespace setm

#endif  // SETM_CORE_RULES_H_

#include "core/miner_registry.h"

#include <mutex>
#include <utility>

#include "baselines/ais.h"
#include "baselines/apriori.h"
#include "baselines/brute_force.h"
#include "baselines/parallel_apriori.h"
#include "core/nested_loop_miner.h"
#include "core/parallel_setm.h"
#include "core/setm.h"
#include "core/setm_sql.h"
#include "shard/sharded_setm.h"

namespace setm {

namespace {

/// Catalog name the setm-sql adapter loads a transactions source under
/// (dropped again after the run). Outside the scratch namespace, so the
/// miner's clobber protection ignores it; a user table with this name makes
/// the load fail with AlreadyExists instead of overwriting anything.
const char kSqlSourceTable[] = "setm_sql_source";

/// Common adapter plumbing: name, bound database, default knobs, and the
/// request validation every algorithm shares.
class MinerAdapter : public Miner {
 public:
  MinerAdapter(std::string name, Database* db, SetmOptions knobs,
               bool honors_threads)
      : name_(std::move(name)),
        db_(db),
        knobs_(knobs),
        honors_threads_(honors_threads) {}

  const std::string& name() const override { return name_; }

  Result<MiningResult> Mine(const MiningRequest& request) override {
    SETM_RETURN_IF_ERROR(ValidateMiningRequest(request));
    const SetmOptions knobs = request.physical.value_or(knobs_);
    if (!honors_threads_ && knobs.num_threads > 1) {
      return Status::InvalidArgument(
          "algorithm '" + name_ + "' is not partition-parallel and cannot "
          "honor num_threads > 1 (MinerRegistry::List reports which "
          "algorithms can)");
    }
    return MineWith(request, knobs);
  }

 protected:
  virtual Result<MiningResult> MineWith(const MiningRequest& request,
                                        const SetmOptions& knobs) = 0;

  /// The request's transactions, extracted from the table source through
  /// one scan into `storage` when necessary — the shared MineTable path of
  /// the algorithms without a native table pipeline.
  Result<const TransactionDb*> SourceTransactions(
      const MiningRequest& request, TransactionDb* storage) {
    if (request.transactions != nullptr) return request.transactions;
    auto txns = TransactionsFromTable(*request.table);
    if (!txns.ok()) return txns.status();
    *storage = std::move(txns).value();
    return static_cast<const TransactionDb*>(storage);
  }

  Database* db() { return db_; }

 private:
  std::string name_;
  Database* db_;
  SetmOptions knobs_;
  bool honors_threads_;
};

class SetmAdapter : public MinerAdapter {
 public:
  using MinerAdapter::MinerAdapter;

 protected:
  Result<MiningResult> MineWith(const MiningRequest& request,
                                const SetmOptions& knobs) override {
    SetmMiner miner(db(), knobs);
    if (request.table != nullptr) {
      return miner.MineTable(*request.table, request.options);
    }
    return miner.Mine(*request.transactions, request.options);
  }
};

class ParallelSetmAdapter : public MinerAdapter {
 public:
  using MinerAdapter::MinerAdapter;

 protected:
  Result<MiningResult> MineWith(const MiningRequest& request,
                                const SetmOptions& knobs) override {
    ParallelSetmMiner miner(db(), knobs);
    if (request.table != nullptr) {
      return miner.MineTable(*request.table, request.options);
    }
    return miner.Mine(*request.transactions, request.options);
  }
};

class ShardedSetmAdapter : public MinerAdapter {
 public:
  using MinerAdapter::MinerAdapter;

 protected:
  Result<MiningResult> MineWith(const MiningRequest& request,
                                const SetmOptions& knobs) override {
    shard::ShardedSetmMiner miner(db(), knobs);
    if (request.table != nullptr) {
      return miner.MineTable(*request.table, request.options);
    }
    return miner.Mine(*request.transactions, request.options);
  }
};

class ParallelAprioriAdapter : public MinerAdapter {
 public:
  using MinerAdapter::MinerAdapter;

 protected:
  Result<MiningResult> MineWith(const MiningRequest& request,
                                const SetmOptions& knobs) override {
    TransactionDb storage;
    auto txns = SourceTransactions(request, &storage);
    if (!txns.ok()) return txns.status();
    return ParallelAprioriMiner(knobs.num_threads, db()->worker_pool())
        .Mine(*txns.value(), request.options);
  }
};

class SetmSqlAdapter : public MinerAdapter {
 public:
  using MinerAdapter::MinerAdapter;

 protected:
  Result<MiningResult> MineWith(const MiningRequest& request,
                                const SetmOptions& knobs) override {
    SetmSqlMiner miner(db(), knobs.storage);
    const Table* source = request.table;
    bool temp_source = false;
    if (source == nullptr) {
      auto loaded = LoadSalesTable(db(), kSqlSourceTable,
                                   *request.transactions, knobs.storage);
      if (!loaded.ok()) return loaded.status();
      source = loaded.value();
      temp_source = true;
    }
    auto result = miner.MineTable(*source, request.options);
    // Registry-driven callers never inspect scratch relations, so leave the
    // catalog exactly as found (modulo a successful run's result).
    Status cleanup = miner.DropOwnScratch();
    if (temp_source) {
      Status drop = db()->catalog()->DropTable(kSqlSourceTable);
      if (cleanup.ok()) cleanup = drop;
    }
    if (result.ok() && !cleanup.ok()) return cleanup;
    return result;
  }
};

class NestedLoopAdapter : public MinerAdapter {
 public:
  using MinerAdapter::MinerAdapter;

 protected:
  Result<MiningResult> MineWith(const MiningRequest& request,
                                const SetmOptions& knobs) override {
    (void)knobs;  // indexes always live behind the database's buffer pool
    TransactionDb storage;
    auto txns = SourceTransactions(request, &storage);
    if (!txns.ok()) return txns.status();
    return NestedLoopMiner(db()).Mine(*txns.value(), request.options);
  }
};

/// Adapter for the in-memory baselines (apriori, ais, brute-force), which
/// share one calling convention.
template <typename Algorithm>
class BaselineAdapter : public MinerAdapter {
 public:
  using MinerAdapter::MinerAdapter;

 protected:
  Result<MiningResult> MineWith(const MiningRequest& request,
                                const SetmOptions& knobs) override {
    (void)knobs;  // purely in-memory: no storage/count-method dimension
    TransactionDb storage;
    auto txns = SourceTransactions(request, &storage);
    if (!txns.ok()) return txns.status();
    return Algorithm().Mine(*txns.value(), request.options);
  }
};

struct RegistryEntry {
  MinerInfo info;
  MinerRegistry::Factory factory;
};

/// The process-wide registry state. Built-ins are installed in the
/// constructor (directly, not through MinerRegistry::Register, which would
/// re-enter the singleton accessor).
class RegistryState {
 public:
  static RegistryState& Get() {
    static RegistryState state;
    return state;
  }

  std::mutex mu;
  std::vector<RegistryEntry> entries;

  RegistryEntry* FindLocked(const std::string& name) {
    for (RegistryEntry& entry : entries) {
      if (entry.info.name == name) return &entry;
    }
    return nullptr;
  }

 private:
  template <typename Adapter>
  void AddBuiltin(MinerInfo info) {
    const std::string name = info.name;
    const bool honors_threads = info.honors_threads;
    entries.push_back(RegistryEntry{
        std::move(info),
        [name, honors_threads](Database* db, const SetmOptions& knobs) {
          return std::unique_ptr<Miner>(
              std::make_unique<Adapter>(name, db, knobs, honors_threads));
        }});
  }

  RegistryState() {
    AddBuiltin<SetmAdapter>(MinerInfo{
        "setm",
        "Algorithm SETM (Figure 4): external sort + merge-scan join "
        "pipeline; routes to the partitioned executor when num_threads > 1",
        /*honors_storage=*/true, /*honors_count_method=*/true,
        /*honors_threads=*/true});
    AddBuiltin<ParallelSetmAdapter>(MinerInfo{
        "setm-parallel",
        "partition-parallel SETM: trans_id ranges mined on a worker pool, "
        "partial counts shard-merged before the global support filter",
        /*honors_storage=*/true, /*honors_count_method=*/true,
        /*honors_threads=*/true});
    AddBuiltin<ShardedSetmAdapter>(MinerInfo{
        "setm-sharded",
        "SETM through the distributed two-phase count coordinator: trans_id "
        "shard slices behind the ShardBackend seam, local counts merged "
        "before the global support filter",
        /*honors_storage=*/true, /*honors_count_method=*/true,
        /*honors_threads=*/true});
    AddBuiltin<SetmSqlAdapter>(MinerInfo{
        "setm-sql",
        "SETM as the literal Section 4.1 SQL statements, executed through "
        "the engine's SQL layer",
        /*honors_storage=*/true, /*honors_count_method=*/false,
        /*honors_threads=*/false});
    AddBuiltin<NestedLoopAdapter>(MinerInfo{
        "nested-loop",
        "the Section 3.2 strategy: candidate counting via index-backed "
        "nested-loop joins over two B+-tree SALES indexes",
        /*honors_storage=*/false, /*honors_count_method=*/false,
        /*honors_threads=*/false});
    AddBuiltin<BaselineAdapter<AprioriMiner>>(MinerInfo{
        "apriori",
        "Apriori (VLDB'94): level-wise candidate generation, subset "
        "pruning and hash-tree counting",
        /*honors_storage=*/false, /*honors_count_method=*/false,
        /*honors_threads=*/false});
    AddBuiltin<ParallelAprioriAdapter>(MinerInfo{
        "apriori-parallel",
        "count-distribution Apriori (TKDE'96): transaction chunks count the "
        "same candidate hash tree in parallel, partial counts summed before "
        "the support filter",
        /*honors_storage=*/false, /*honors_count_method=*/false,
        /*honors_threads=*/true});
    AddBuiltin<BaselineAdapter<AisMiner>>(MinerInfo{
        "ais",
        "AIS (SIGMOD'93): candidates generated and counted during the "
        "data scan",
        /*honors_storage=*/false, /*honors_count_method=*/false,
        /*honors_threads=*/false});
    AddBuiltin<BaselineAdapter<BruteForceMiner>>(MinerInfo{
        "brute-force",
        "oracle: exhaustive level-wise subset counting (test-sized inputs "
        "only)",
        /*honors_storage=*/false, /*honors_count_method=*/false,
        /*honors_threads=*/false});
  }
};

}  // namespace

Status MinerRegistry::Register(MinerInfo info, Factory factory) {
  if (info.name.empty()) {
    return Status::InvalidArgument("algorithm name must be non-empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("algorithm '" + info.name +
                                   "' needs a factory");
  }
  RegistryState& state = RegistryState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.FindLocked(info.name) != nullptr) {
    return Status::AlreadyExists("algorithm '" + info.name +
                                 "' is already registered");
  }
  state.entries.push_back(RegistryEntry{std::move(info), std::move(factory)});
  return Status::OK();
}

Result<std::unique_ptr<Miner>> MinerRegistry::Create(const std::string& name,
                                                     Database* db,
                                                     const SetmOptions& knobs) {
  if (db == nullptr) {
    return Status::InvalidArgument(
        "MinerRegistry::Create requires a database (it hosts relations, "
        "indexes and the I/O ledger of the created miner)");
  }
  RegistryState& state = RegistryState::Get();
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    RegistryEntry* entry = state.FindLocked(name);
    if (entry == nullptr) {
      std::string known;
      for (const RegistryEntry& e : state.entries) {
        if (!known.empty()) known += ", ";
        known += e.info.name;
      }
      return Status::NotFound("unknown algorithm '" + name +
                              "'; registered: " + known);
    }
    factory = entry->factory;
  }
  std::unique_ptr<Miner> miner = factory(db, knobs);
  if (miner == nullptr) {
    return Status::Internal("factory for algorithm '" + name +
                            "' returned null");
  }
  return miner;
}

Result<MinerInfo> MinerRegistry::Info(const std::string& name) {
  RegistryState& state = RegistryState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  RegistryEntry* entry = state.FindLocked(name);
  if (entry == nullptr) {
    return Status::NotFound("unknown algorithm '" + name + "'");
  }
  return entry->info;
}

std::vector<MinerInfo> MinerRegistry::List() {
  RegistryState& state = RegistryState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<MinerInfo> infos;
  infos.reserve(state.entries.size());
  for (const RegistryEntry& entry : state.entries) {
    infos.push_back(entry.info);
  }
  return infos;
}

}  // namespace setm

#include "core/itemset_utils.h"

#include <algorithm>

namespace setm {

namespace {

/// True iff sorted `a` is a subset of sorted `b`.
bool IsSubset(const std::vector<ItemId>& a, const std::vector<ItemId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Shared scaffolding: keep patterns of size k for which no (k+1)-pattern
/// superset satisfies `dominates`.
template <typename Dominates>
std::vector<PatternCount> FilterDominated(const FrequentItemsets& itemsets,
                                          Dominates dominates) {
  std::vector<PatternCount> out;
  for (size_t k = 1; k <= itemsets.MaxSize(); ++k) {
    for (const PatternCount& p : itemsets.OfSize(k)) {
      bool dominated = false;
      // Anti-monotonicity: if any superset dominates, some superset of size
      // k+1 does (it has at least the count of the larger superset).
      for (const PatternCount& q : itemsets.OfSize(k + 1)) {
        if (IsSubset(p.items, q.items) && dominates(p, q)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PatternCount& a, const PatternCount& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return out;
}

}  // namespace

std::vector<PatternCount> MaximalItemsets(const FrequentItemsets& itemsets) {
  return FilterDominated(itemsets,
                         [](const PatternCount&, const PatternCount&) {
                           return true;  // any frequent superset dominates
                         });
}

std::vector<PatternCount> ClosedItemsets(const FrequentItemsets& itemsets) {
  return FilterDominated(itemsets,
                         [](const PatternCount& p, const PatternCount& q) {
                           return q.count == p.count;
                         });
}

int64_t SupportFromClosed(const std::vector<PatternCount>& closed,
                          const std::vector<ItemId>& items) {
  int64_t best = 0;
  for (const PatternCount& c : closed) {
    if (c.count > best && IsSubset(items, c.items)) best = c.count;
  }
  return best;
}

}  // namespace setm

#ifndef SETM_CORE_SETM_SQL_H_
#define SETM_CORE_SETM_SQL_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "relational/database.h"
#include "sql/engine.h"

namespace setm {

/// Algorithm SETM expressed as the SQL of Section 4.1, executed through the
/// engine's SQL layer — the paper's headline claim that "at least some
/// aspects of data mining can be carried out by using general query
/// languages such as SQL" made concrete.
///
/// For each iteration the miner emits and runs the three statements of
/// Section 4.1 against a SALES table in the catalog:
///
///   INSERT INTO setm_r2p SELECT p.trans_id, p.item1, q.item
///     FROM setm_r1 p, sales q
///     WHERE q.trans_id = p.trans_id AND q.item > p.item1;
///   INSERT INTO setm_c2 SELECT p.item1, p.item2, COUNT(*) FROM setm_r2p p
///     GROUP BY p.item1, p.item2 HAVING COUNT(*) >= :minsupport;
///   INSERT INTO setm_r2 SELECT p.trans_id, p.item1, p.item2
///     FROM setm_r2p p, setm_c2 q
///     WHERE p.item1 = q.item1 AND p.item2 = q.item2
///     ORDER BY p.trans_id, p.item1, p.item2;
///
/// The planner turns these into sort + merge-scan joins, i.e. exactly the
/// physical plan of Figure 4. Every executed statement is recorded and can
/// be inspected afterwards (see executed_statements()).
class SetmSqlMiner {
 public:
  /// `sales_table` must exist in `db`'s catalog with schema
  /// (trans_id INT32, item INT32). Intermediate R tables use `backing`.
  SetmSqlMiner(Database* db, std::string sales_table,
               TableBacking backing = TableBacking::kMemory)
      : db_(db),
        engine_(db),
        sales_table_(std::move(sales_table)),
        backing_(backing) {}

  /// Runs the full SETM loop; returns itemsets, per-iteration stats and the
  /// I/O delta, like every other miner in the library.
  Result<MiningResult> MineTable(const MiningOptions& options);

  /// The SQL statements executed by the last MineTable call, in order.
  const std::vector<std::string>& executed_statements() const {
    return statements_;
  }

 private:
  Result<sql::QueryResult> Run(const std::string& statement,
                               const sql::Params& params = {});
  /// Drops every table named with the setm_ prefix from earlier runs.
  Status DropScratchTables();

  Database* db_;
  sql::SqlEngine engine_;
  std::string sales_table_;
  TableBacking backing_;
  std::vector<std::string> statements_;
};

}  // namespace setm

#endif  // SETM_CORE_SETM_SQL_H_

#ifndef SETM_CORE_SETM_SQL_H_
#define SETM_CORE_SETM_SQL_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "core/types.h"
#include "relational/database.h"
#include "sql/engine.h"

namespace setm {

/// Algorithm SETM expressed as the SQL of Section 4.1, executed through the
/// engine's SQL layer — the paper's headline claim that "at least some
/// aspects of data mining can be carried out by using general query
/// languages such as SQL" made concrete.
///
/// For each iteration the miner emits and runs the three statements of
/// Section 4.1 against a SALES-shaped table in the catalog:
///
///   INSERT INTO setm_r2p SELECT p.trans_id, p.item1, q.item
///     FROM setm_r1 p, sales q
///     WHERE q.trans_id = p.trans_id AND q.item > p.item1;
///   INSERT INTO setm_c2 SELECT p.item1, p.item2, COUNT(*) FROM setm_r2p p
///     GROUP BY p.item1, p.item2 HAVING COUNT(*) >= :minsupport;
///   INSERT INTO setm_r2 SELECT p.trans_id, p.item1, p.item2
///     FROM setm_r2p p, setm_c2 q
///     WHERE p.item1 = q.item1 AND p.item2 = q.item2
///     ORDER BY p.trans_id, p.item1, p.item2;
///
/// The planner turns these into sort + merge-scan joins, i.e. exactly the
/// physical plan of Figure 4. Every executed statement is recorded and can
/// be inspected afterwards (see executed_statements()).
///
/// The source table comes per MineTable call (from the MiningRequest when
/// driven through the registry), not at construction. Scratch relations
/// (setm_r<k>, setm_r<k>p, setm_c<k>) stay in the catalog after a
/// successful run so they can be inspected with ad-hoc SQL; a rerun on the
/// same miner instance drops its own leftovers first. Scratch-named tables
/// this miner did *not* create are never dropped: mining with such a table
/// present fails with AlreadyExists (and a source table whose own name
/// falls in the scratch namespace is InvalidArgument) instead of silently
/// clobbering user relations, and a cancelled run drops everything it
/// created before returning.
class SetmSqlMiner {
 public:
  /// Intermediate R tables use `backing`; C tables are always MEMORY.
  explicit SetmSqlMiner(Database* db,
                        TableBacking backing = TableBacking::kMemory)
      : db_(db), engine_(db), backing_(backing) {}

  /// Runs the full SETM loop over `sales`, which must be a catalog-resident
  /// table of `db` with schema (trans_id INT32, item INT32) — the SQL
  /// statements reference it by name. Returns itemsets, per-iteration stats
  /// and the I/O delta, like every other miner in the library.
  Result<MiningResult> MineTable(const Table& sales,
                                 const MiningOptions& options);

  /// The SQL statements executed by the last MineTable call, in order.
  const std::vector<std::string>& executed_statements() const {
    return statements_;
  }

  /// Drops every scratch table this miner instance created. Runs
  /// automatically on cancellation; the registry adapter also calls it
  /// after each run, since registry-driven callers never inspect scratch.
  Status DropOwnScratch();

 private:
  Result<sql::QueryResult> Run(const std::string& statement,
                               const sql::Params& params = {});
  /// CREATE TABLE through the engine, recording the name as owned scratch.
  Status CreateScratch(const std::string& ddl, const std::string& name);
  /// Drops this miner's leftover scratch tables from earlier runs; any
  /// foreign table in the scratch namespace is AlreadyExists, not a drop.
  Status PrepareScratch();

  Database* db_;
  sql::SqlEngine engine_;
  TableBacking backing_;
  std::vector<std::string> statements_;
  /// Catalog names of scratch tables created by this instance.
  std::unordered_set<std::string> created_;
};

/// True iff `name` falls in SetmSqlMiner's scratch namespace:
/// setm_r<digits>, setm_r<digits>p or setm_c<digits>.
bool IsSetmSqlScratchName(const std::string& name);

}  // namespace setm

#endif  // SETM_CORE_SETM_SQL_H_

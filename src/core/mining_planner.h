#ifndef SETM_CORE_MINING_PLANNER_H_
#define SETM_CORE_MINING_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/mining_cache.h"
#include "core/miner.h"
#include "obs/trace.h"
#include "relational/database.h"

namespace setm {

/// How a mining request will be answered.
enum class PlanStrategy {
  /// A stored run dominates the query (same source, fresh, stored threshold
  /// <= requested, pattern cap compatible): filter the stored level
  /// relations by the requested threshold. Zero mining iterations.
  kCacheFilter,
  /// The store is stale (an appended batch and/or rows beyond the stored
  /// watermark) but close enough: derive the combined answer through the
  /// incremental DeltaMiner and refresh the store.
  kDeltaDerive,
  /// Mine from scratch through the MinerRegistry, optionally writing the
  /// result back into the store.
  kFullMine,
};

/// Registry name for display ("cache-filter", "delta-derive", "full-mine").
const char* PlanStrategyName(PlanStrategy strategy);

/// Knobs of the plan layer — what the CLI's --store/--append/--incremental/
/// --fallback flags configure.
struct PlannerOptions {
  /// ItemsetStore prefix the cache lives under; "" disables caching and
  /// write-back entirely (every plan is kFullMine).
  std::string store_prefix;
  /// Backing for store relations created by write-back.
  TableBacking store_backing = TableBacking::kMemory;
  /// Registry algorithm used by kFullMine ("setm", "apriori", ...). The
  /// cache itself requires exact supports, which every registered algorithm
  /// produces, so any of them may fill it.
  std::string algorithm = "setm";
  /// Physical knobs handed to the registry miner and the DeltaMiner.
  SetmOptions setm;
  /// Staleness budget: a delta larger than this fraction of the combined
  /// transaction count is answered by kFullMine instead of kDeltaDerive.
  /// 0 disables derivation (every stale store forces a full mine).
  double full_remine_fraction = 0.25;
  /// Refresh the store after a full mine (ignored without a store_prefix or
  /// for in-memory transaction sources).
  bool write_back = true;
};

/// One mining request as the planner sees it. Exactly one of `table` /
/// `transactions` must be set; `append` (optional, table sources only) is a
/// batch of new transactions to add to the table before answering.
struct PlanRequest {
  /// Catalog-resident source relation (trans_id INT32, item INT32).
  /// Non-const because append-carrying plans insert into it.
  Table* table = nullptr;
  /// In-memory source; caching is disabled for it (no relation to key on).
  const TransactionDb* transactions = nullptr;
  /// Batch to append. Ids must be unique and above the stored watermark
  /// (crash-orphaned ids already in the table are tolerated and skipped).
  const TransactionDb* append = nullptr;
  /// The logical question: thresholds, pattern cap, observer.
  MiningOptions options;
  /// Optional trace root (not owned; must outlive Execute). Execute hangs
  /// a "plan" child and one execution child ("load" / "derive" / "mine",
  /// with per-iteration spans under "mine") off it and tags the root with
  /// the chosen strategy. The caller Ends and renders the root.
  obs::TraceSpan* trace = nullptr;
};

/// An inspectable plan: the strategy, why it was chosen, and everything the
/// executor needs to run it. Obtained from MiningPlanner::Plan (pure
/// inspection, e.g. the CLI's --explain) or implicitly via Execute.
struct MiningPlan {
  PlanStrategy strategy = PlanStrategy::kFullMine;
  /// Human-readable justification ("stored run at support 4 dominates the
  /// query at support 7", "batch is 40% of the combined database, above the
  /// 25% derivation budget", ...).
  std::string reason;
  /// The support threshold, in transactions, the answer is filtered at —
  /// resolved against the stored run's transaction count for kCacheFilter,
  /// against the estimated combined count otherwise.
  int64_t resolved_min_support_count = 0;
  /// Whether Execute will write the result back into the store.
  bool save_after_mine = false;
  /// True when a stored run was found under the prefix (meta below valid).
  bool store_found = false;
  StoredRunMeta stored;
  /// The delta the plan operates on: the append batch for kDeltaDerive and
  /// batch-carrying kFullMine plans; crash-orphaned transactions beyond the
  /// stored watermark when the table grew without a batch.
  TransactionDb delta;
  /// Transaction ids already present in the table beyond the stored
  /// watermark (crash-interrupted appends); Execute skips them on insert.
  std::vector<TransactionId> orphans;
  /// The high-water mark a write-back will record: the stored watermark
  /// (or the table's highest trans_id when no run is stored) combined with
  /// every delta id.
  TransactionId new_watermark = 0;

  /// Multi-line rendering for --explain.
  std::string Explain() const;
};

/// What Execute reports beyond the mining result.
struct PlanExecution {
  MiningPlan plan;
  MiningResult result;
  /// kDeltaDerive only: whether the DeltaMiner itself fell back to a full
  /// remine, and its batch statistics.
  bool delta_full_remine = false;
  uint64_t delta_transactions = 0;
  uint64_t borderline_candidates = 0;
};

/// The plan layer: turns a mining request into an explicit MiningPlan and
/// runs it. Every mining entry point (CLI, benches, the future server)
/// routes here instead of calling Miner::Mine directly, so repeated queries
/// are answered from stored relations, near-stale stores are derived
/// incrementally, and only cold queries pay for a full mine.
///
///     MiningPlanner planner(&db, {.store_prefix = "fi",
///                                 .store_backing = TableBacking::kHeap});
///     PlanRequest request;
///     request.table = sales;
///     request.options.min_support_count = 3;
///     auto exec = planner.Execute(request).value();   // plan + run
///     // planner.stats() now records the hit/miss/derive counters.
class MiningPlanner {
 public:
  MiningPlanner(Database* db, PlannerOptions options = {});

  /// Decides how the request would be answered, without mining or mutating
  /// anything (at most one scan of the table tail when the store looks
  /// stale). Counts into stats().plans but not into the strategy counters —
  /// only executed plans do.
  Result<MiningPlan> Plan(const PlanRequest& request);

  /// Plans and runs the request. Results are bit-identical across the three
  /// strategies; InvalidArgument for malformed requests (no source, both
  /// sources, append on an in-memory source, batch ids at or below the
  /// stored watermark or duplicated).
  Result<PlanExecution> Execute(const PlanRequest& request);

  const PlanStats& stats() const { return stats_; }
  /// The cache, or null when store_prefix is empty.
  MiningCache* cache() { return cache_.get(); }
  const PlannerOptions& options() const { return options_; }

 private:
  Status ValidateRequest(const PlanRequest& request) const;
  /// The planning body shared by Plan and Execute; `counting` selects
  /// whether strategy counters are charged.
  Result<MiningPlan> PlanInternal(const PlanRequest& request);

  Status ExecuteCacheFilter(const PlanRequest& request, MiningPlan* plan,
                            PlanExecution* out);
  Status ExecuteDeltaDerive(const PlanRequest& request, MiningPlan* plan,
                            PlanExecution* out);
  Status ExecuteFullMine(const PlanRequest& request, MiningPlan* plan,
                         PlanExecution* out);

  Database* db_;
  PlannerOptions options_;
  std::unique_ptr<MiningCache> cache_;
  PlanStats stats_;
};

}  // namespace setm

#endif  // SETM_CORE_MINING_PLANNER_H_

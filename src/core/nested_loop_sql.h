#ifndef SETM_CORE_NESTED_LOOP_SQL_H_
#define SETM_CORE_NESTED_LOOP_SQL_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "relational/database.h"
#include "sql/engine.h"

namespace setm {

/// The paper's *first* SQL formulation (Section 3.1), executed literally:
///
///   INSERT INTO C_k
///   SELECT r1.item, ..., rk.item, COUNT(*)
///   FROM C_{k-1} c, SALES r1, ..., SALES rk
///   WHERE r1.trans_id = r2.trans_id AND ... AND
///         r1.item = c.item1 AND ... AND r_{k-1}.item = c.item_{k-1} AND
///         rk.item > r_{k-1}.item
///   GROUP BY r1.item, ..., rk.item
///   HAVING COUNT(*) >= :minsupport
///
/// The paper analyzes this query under a nested-loop plan and rejects it
/// (Section 3.2); this class exists to demonstrate that the formulation is
/// *correct* — it must produce exactly the same count relations as SETM —
/// and to let the k-way self-join be executed at small scale. Our planner
/// runs it with sort-merge joins, so it is slow only polynomially, not
/// catastrophically; the Section 3.2 strategy with real index probes lives
/// in NestedLoopMiner.
class NestedLoopSqlMiner {
 public:
  /// `sales_table` must exist in `db`'s catalog as (trans_id, item).
  NestedLoopSqlMiner(Database* db, std::string sales_table)
      : db_(db), engine_(db), sales_table_(std::move(sales_table)) {}

  /// Runs the Section 3.1 loop until C_k is empty.
  Result<MiningResult> MineTable(const MiningOptions& options);

  /// SQL statements executed by the last MineTable call.
  const std::vector<std::string>& executed_statements() const {
    return statements_;
  }

 private:
  Result<sql::QueryResult> Run(const std::string& statement,
                               const sql::Params& params = {});

  Database* db_;
  sql::SqlEngine engine_;
  std::string sales_table_;
  std::vector<std::string> statements_;
};

}  // namespace setm

#endif  // SETM_CORE_NESTED_LOOP_SQL_H_

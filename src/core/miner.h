#ifndef SETM_CORE_MINER_H_
#define SETM_CORE_MINER_H_

#include <optional>
#include <string>

#include "core/types.h"
#include "relational/catalog.h"

namespace setm {

/// How the support counts C_k are produced from R'_k.
enum class CountMethod {
  /// The paper's pipeline: sort R'_k on its item columns, then one
  /// streaming group-count scan (Figure 4's "sort R'_k on item_1..item_k;
  /// C_k := generate counts").
  kSortMerge,
  /// Hash aggregation, the post-1995 alternative; skips the sort entirely.
  /// Results are identical (the ablation `ablation_count_method` compares
  /// the physical behaviour).
  kHash,
};

/// Physical knobs of a mining run. Historically SETM-specific, now the
/// uniform knob set the MinerRegistry hands every algorithm; miners without
/// a given physical dimension ignore the corresponding knob (MinerInfo in
/// miner_registry.h records which knobs an algorithm honors), except that
/// num_threads > 1 is rejected with InvalidArgument by miners that cannot
/// run partition-parallel — a thread count is an explicit request, never a
/// default.
struct SetmOptions {
  /// Where SALES/R_k relations live. kHeap stores them in paged tables so
  /// every scan, spill and materialization is visible in the IoStats ledger
  /// (the configuration the paper's Section 4.3 analysis describes);
  /// kMemory mirrors the paper's Section 6 implementation, which "ran in
  /// main memory" for the timing experiments.
  TableBacking storage = TableBacking::kMemory;
  /// Physical strategy for the C_k aggregation. Honored by both SETM
  /// executors: the serial pipeline counts the materialized R'_k through a
  /// sort+stream or hash aggregation, and the partitioned executor
  /// (num_threads > 1) applies the same choice to each partition's local
  /// counts — kSortMerge sorts the partition's R'_k slice before counting,
  /// reproducing the sort-based I/O profile per partition. The
  /// cross-partition merge of partial counts is always hash-based (shards
  /// must combine before the global minsupport filter), so only the
  /// partition-local aggregation differs between the methods; results are
  /// identical either way.
  CountMethod count_method = CountMethod::kSortMerge;
  /// Degree of partition parallelism. 1 runs the classic single-threaded
  /// pipeline; > 1 routes to the partitioned executor (parallel_setm.h):
  /// SALES is range-partitioned on trans_id, candidate generation and
  /// counting run per partition on a worker pool, and partial C_k counts
  /// are merged before the global minsupport filter. Itemsets and rules
  /// are identical to the serial pipeline for any thread count.
  size_t num_threads = 1;
};

/// One mining question, bundled: the data source, the logical options
/// (support/confidence thresholds, observer) and optional physical-knob
/// overrides. Exactly one source must be set.
///
///     MiningRequest request;
///     request.transactions = &txns;       // or request.table = sales;
///     request.options.min_support = 0.01;
///     request.options.observer = &progress;   // optional, cancellable
///     auto result = miner->Mine(request);
struct MiningRequest {
  /// In-memory source: a validated transaction database.
  const TransactionDb* transactions = nullptr;
  /// Relational source: a table with schema (trans_id INT32, item INT32).
  /// Rows need not be sorted. Algorithms without a native table pipeline
  /// extract the transactions through one scan (TransactionsFromTable);
  /// setm-sql additionally requires the table to be catalog-resident, since
  /// its statements name it by table name.
  const Table* table = nullptr;
  /// The logical question: thresholds, pattern cap, ablations — plus the
  /// optional per-iteration MiningObserver (options.observer) for progress
  /// callbacks and cooperative cancellation.
  MiningOptions options;
  /// Physical knobs for this run. When unset, the knobs the miner was
  /// created with (MinerRegistry::Create's `knobs` argument) apply.
  std::optional<SetmOptions> physical;
};

/// The polymorphic mining interface: one canonical entry point for every
/// algorithm in the library. Instances are created through MinerRegistry
/// (miner_registry.h) and are single-threaded — one Mine call at a time —
/// but independent instances may run concurrently on separate Databases.
class Miner {
 public:
  virtual ~Miner() = default;

  /// The registry name this miner was created under, e.g. "setm".
  virtual const std::string& name() const = 0;

  /// Runs the algorithm over the request's source. Returns the frequent
  /// itemsets with per-iteration stats and the I/O delta, or:
  ///   InvalidArgument — malformed request (no source / both sources / a
  ///                     physical knob the algorithm cannot honor);
  ///   Cancelled       — the request's observer vetoed continuing.
  virtual Result<MiningResult> Mine(const MiningRequest& request) = 0;
};

/// Checks that exactly one source is set. Shared by every Miner
/// implementation so the error text stays uniform.
Status ValidateMiningRequest(const MiningRequest& request);

/// Extracts the transaction database from a SALES-shaped relation
/// (trans_id INT32, item INT32): one scan, grouped by trans_id, items
/// sorted per transaction, transactions ordered by id. Duplicate
/// (trans_id, item) rows are InvalidArgument — row-oriented miners would
/// count them, so silently merging here would break cross-algorithm
/// equivalence. This is how algorithms without a native table pipeline
/// (apriori, ais, brute-force, nested-loop) serve MiningRequest::table.
Result<TransactionDb> TransactionsFromTable(const Table& sales);

}  // namespace setm

#endif  // SETM_CORE_MINER_H_

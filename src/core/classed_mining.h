#ifndef SETM_CORE_CLASSED_MINING_H_
#define SETM_CORE_CLASSED_MINING_H_

#include <map>
#include <vector>

#include "core/setm.h"
#include "core/types.h"
#include "relational/database.h"

namespace setm {

/// Customer-class label attached to transactions.
using ClassId = int32_t;

/// Assignment of transactions to customer classes — the CUSTOMERS
/// (trans_id, class) relation of the paper's closing remark. Transactions
/// without an assignment belong to kDefaultClass.
struct CustomerClasses {
  static constexpr ClassId kDefaultClass = 0;
  std::vector<std::pair<TransactionId, ClassId>> assignments;
};

/// Result of classed mining: one count-relation family per class.
struct ClassedMiningResult {
  std::map<ClassId, FrequentItemsets> per_class;
  std::vector<IterationStats> iterations;  ///< aggregated over classes
  double total_seconds = 0.0;
};

/// The extension the paper announces in its conclusion: "extending the
/// algorithm in order to handle additional kinds of mining, e.g., relating
/// association rules to customer classes."
///
/// Set-oriented realization: the class joins into R_1 (logically
/// SALES ⋈ CUSTOMERS on trans_id) and simply rides through every
/// merge-scan extension; the count relations group by
/// (class, item_1 .. item_k), so one pass produces C_k for every class at
/// once — no per-class re-mining. Minimum support is evaluated per class
/// against that class's own transaction count (a 1% rule for a 100-
/// transaction class needs 1 transaction, not 469).
///
///     ClassedSetmMiner miner(&db);
///     auto result = miner.Mine(txns, classes, options).value();
///     for (auto& [cls, itemsets] : result.per_class)
///       auto rules = GenerateRules(itemsets, options);
class ClassedSetmMiner {
 public:
  explicit ClassedSetmMiner(Database* db, SetmOptions setm_options = {})
      : db_(db), setm_options_(setm_options) {}

  /// Mines per-class frequent itemsets. Transactions not named in
  /// `classes` fall into CustomerClasses::kDefaultClass; a transaction id
  /// assigned twice is InvalidArgument.
  Result<ClassedMiningResult> Mine(const TransactionDb& transactions,
                                   const CustomerClasses& classes,
                                   const MiningOptions& options);

  /// Schema of the classed R_k: (class, trans_id, item_1 .. item_k).
  static Schema ClassedRkSchema(size_t k);

 private:
  Database* db_;
  SetmOptions setm_options_;
};

}  // namespace setm

#endif  // SETM_CORE_CLASSED_MINING_H_

#include "core/mining_cache.h"

#include <utility>

namespace setm {

std::string PlanStats::ToString() const {
  return "plans=" + std::to_string(plans) +
         " cache_filters=" + std::to_string(cache_filters) +
         " delta_derives=" + std::to_string(delta_derives) +
         " full_mines=" + std::to_string(full_mines) +
         " write_backs=" + std::to_string(write_backs) +
         " invalidations=" + std::to_string(invalidations);
}

MiningCache::MiningCache(Database* db, std::string prefix,
                         TableBacking backing)
    : store_(db, std::move(prefix), backing) {}

Result<StoredRunMeta> MiningCache::Probe() const { return store_.LoadMeta(); }

Result<StoredResult> MiningCache::LoadFiltered(
    int64_t min_support_count, uint64_t max_pattern_length) const {
  return store_.LoadAtSupport(min_support_count, max_pattern_length);
}

Result<StoredResult> MiningCache::LoadAll() const { return store_.Load(); }

Status MiningCache::Put(const FrequentItemsets& itemsets,
                        const StoredRunMeta& meta) {
  return store_.Save(itemsets, meta);
}

Status MiningCache::Invalidate() { return store_.Drop(); }

}  // namespace setm

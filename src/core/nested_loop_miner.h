#ifndef SETM_CORE_NESTED_LOOP_MINER_H_
#define SETM_CORE_NESTED_LOOP_MINER_H_

#include "core/types.h"
#include "relational/database.h"

namespace setm {

/// The Section 3 mining strategy: candidate patterns are counted through
/// index-backed nested-loop joins instead of sorting.
///
/// As the paper's operational sketch (steps 1-5 of Section 3.2) describes,
/// the strategy needs two B+-tree indexes over SALES: one on
/// (item, trans_id) and one on (trans_id). For every row c of C_{k-1}:
///
///   1. the (item, trans_id) index yields the transactions containing
///      c.item_1;
///   2. for each such transaction, point probes of the same index check
///      c.item_2 .. c.item_{k-1};
///   3. the (trans_id) index enumerates that transaction's items with
///      item > c.item_{k-1}, each extending the pattern by one;
///   4. extension counts are aggregated and the minimum-support constraint
///      applied, yielding C_k.
///
/// Every index node touched is a page access in the database's IoStats
/// ledger; run it behind a small buffer pool to observe the random-I/O
/// behaviour the paper's analysis predicts (~2,000,000 page fetches on the
/// reference database — the reason the paper abandons this strategy).
class NestedLoopMiner {
 public:
  explicit NestedLoopMiner(Database* db) : db_(db) {}

  /// Builds the two indexes (bulk-loaded; build I/O excluded from the
  /// returned stats) and runs the strategy.
  Result<MiningResult> Mine(const TransactionDb& transactions,
                            const MiningOptions& options);

 private:
  Database* db_;
};

}  // namespace setm

#endif  // SETM_CORE_NESTED_LOOP_MINER_H_

#ifndef SETM_CORE_PARALLEL_SETM_H_
#define SETM_CORE_PARALLEL_SETM_H_

#include "core/setm.h"
#include "core/types.h"
#include "relational/database.h"

namespace setm {

/// Partition-parallel executor for Algorithm SETM.
///
/// SETM reduces mining to external sort and merge-scan join, and both
/// primitives distribute naturally over disjoint trans_id ranges: the R'_k
/// join matches rows of one transaction only, and support counts are plain
/// sums. The executor exploits exactly that:
///
///   1. SALES is range-partitioned on trans_id into roughly row-balanced
///      partitions (never splitting a transaction);
///   2. per iteration k, every partition independently computes its
///      R'_k = merge-scan(R_{k-1}, R_1) and aggregates *local* candidate
///      counts on a worker pool — no minsupport filter yet, because support
///      is a global property;
///   3. the coordinator merges the partial counts, applies the global
///      minsupport filter to form C_k, and hands the surviving keys back so
///      each partition can build its sorted R_k slice.
///
/// The output is identical to the single-threaded SetmMiner for any thread
/// count (asserted by miners_equivalence_test): partitions are disjoint and
/// exhaustive, so merged counts equal global counts, and the final
/// Normalize() makes ordering canonical.
///
/// Shared state is limited to the database's buffer pools and IoStats
/// ledger, which are thread-safe; every relation, sort and scratch map is
/// partition-private.
///
///     Database db;
///     SetmOptions o;
///     o.num_threads = 4;
///     ParallelSetmMiner miner(&db, o);       // or SetmMiner(&db, o)
///     MiningResult r = miner.Mine(transactions, options).value();
class ParallelSetmMiner {
 public:
  /// Uses the database's shared worker pool when it has one, otherwise
  /// spins up a private pool of `setm_options.num_threads` workers per
  /// Mine call.
  explicit ParallelSetmMiner(Database* db, SetmOptions setm_options = {})
      : db_(db), setm_options_(setm_options) {}

  /// Mines a transaction database (same contract as SetmMiner::Mine).
  Result<MiningResult> Mine(const TransactionDb& transactions,
                            const MiningOptions& options);

  /// Mines an existing relation with schema (trans_id INT32, item INT32).
  Result<MiningResult> MineTable(const Table& sales,
                                 const MiningOptions& options);

 private:
  Database* db_;
  SetmOptions setm_options_;
};

}  // namespace setm

#endif  // SETM_CORE_PARALLEL_SETM_H_

#ifndef SETM_CORE_SETM_PIPELINE_H_
#define SETM_CORE_SETM_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/setm.h"
#include "exec/exec_context.h"

namespace setm {

// The join/filter bodies of Algorithm SETM, shared verbatim by the serial
// executor (setm.cc) and the partitioned executor (parallel_setm.cc). Each
// helper is parameterized by a sink or membership probe, which is the only
// thing the two executors legitimately differ in: the serial pipeline
// aggregates into one global C_k, a partition aggregates local counts that
// merge later. Everything else — the residual predicate, the column
// indices, the projection, the (trans_id, items) sort order — exists once,
// so the executors cannot drift apart by construction.

/// Receives the item vector of each candidate row the R'_k join produces.
/// Pass an empty function when the caller counts some other way.
using CountSink = std::function<void(const std::vector<ItemId>& items)>;

/// Membership probe over C_k (keys are ItemsetKey-serialized item vectors).
using CkProbe = std::function<bool(const std::string& key)>;

/// Receives one counted group: its items and the group's count.
using GroupSink = std::function<void(std::vector<ItemId> items,
                                     int64_t count)>;

/// R'_k := merge-scan join of `left` (R_{k-1}, sorted on trans_id, items)
/// with `r1` (R_1) on trans_id, keeping extensions with q.item >
/// p.item_{k-1}, projected to (trans_id, item_1..item_k) and materialized
/// into `rk_prime`. When `sink` is set it sees each produced row's items —
/// how the partitioned executor aggregates hash counts in the same pass.
Status JoinIntoRkPrime(const Table& left, const Table& r1, size_t k,
                       Table* rk_prime, const CountSink& sink);

/// R_k := rows of `rk_prime` whose item key passes `in_ck` ("simple table
/// look-ups on relation C_k"), sorted back on (trans_id, item_1..item_k)
/// and materialized into `rk`.
Status FilterRkPrimeIntoRk(ExecContext ctx, const Table& rk_prime, size_t k,
                           const CkProbe& in_ck, Table* rk);

/// The filter_r1 ablation body: copies rows of `r1` whose single-item key
/// passes `keep` into `out` (order preserved, so `out` stays sorted).
Status FilterR1Into(const Table& r1, const CkProbe& keep, Table* out);

/// The C_k aggregation pipeline under either physical strategy. Both emit
/// identical rows (group columns + count, ordered by the group columns).
std::unique_ptr<TupleIterator> MakeGroupCount(
    ExecContext ctx, std::unique_ptr<TupleIterator> input,
    std::vector<size_t> group_columns, int64_t min_count, CountMethod method);

/// Streams MakeGroupCount over `relation`'s item columns (an R'_k-shaped
/// relation of width k+1) into `sink`, keeping groups with count >=
/// `min_count`. The serial executor calls it with the global minsupport;
/// a partition calls it with min_count = 1 (support is a global property,
/// so local counts must all survive to the merge) — which is exactly how
/// CountMethod::kSortMerge is honored per partition.
Status CountInto(ExecContext ctx, const Table& relation, size_t k,
                 int64_t min_count, CountMethod method, const GroupSink& sink);

}  // namespace setm

#endif  // SETM_CORE_SETM_PIPELINE_H_

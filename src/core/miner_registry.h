#ifndef SETM_CORE_MINER_REGISTRY_H_
#define SETM_CORE_MINER_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/miner.h"
#include "relational/database.h"

namespace setm {

/// One registry entry's metadata: the name algorithms are created under,
/// a one-line description for `--algo list`, and which physical knobs the
/// algorithm honors — the axes sweeps (equivalence tests, benches, the CLI)
/// use to decide which configurations are meaningful.
struct MinerInfo {
  std::string name;
  std::string description;
  /// Honors SetmOptions::storage (kMemory vs kHeap relations).
  bool honors_storage = false;
  /// Honors SetmOptions::count_method (sort-merge vs hash C_k counting).
  bool honors_count_method = false;
  /// Honors SetmOptions::num_threads; algorithms with false reject
  /// num_threads > 1 with InvalidArgument.
  bool honors_threads = false;
};

/// Process-wide name -> Miner factory map. The seven built-in algorithms
///
///   setm setm-parallel setm-sql nested-loop apriori ais brute-force
///
/// are registered on first use, in that (stable) enumeration order;
/// libraries and tests may Register additional algorithms, which then
/// automatically appear in `setm_mine --algo list`, the cross-algorithm
/// equivalence suite and the registry-driven benches. Thread-safe.
///
///     Database db;
///     auto miner = MinerRegistry::Create("apriori", &db).value();
///     MiningRequest request;
///     request.transactions = &txns;
///     request.options.min_support = 0.01;
///     MiningResult result = miner->Mine(request).value();
class MinerRegistry {
 public:
  /// Builds a Miner bound to `db` with default physical knobs `knobs`
  /// (a request's `physical` field overrides them per call). Returns the
  /// adapter, or NotFound naming the registered algorithms.
  using Factory = std::function<std::unique_ptr<Miner>(
      Database* db, const SetmOptions& knobs)>;

  /// Registers an algorithm. InvalidArgument for an empty name,
  /// AlreadyExists when the name is taken (built-ins included).
  static Status Register(MinerInfo info, Factory factory);

  /// Creates the named algorithm bound to `db` (required — every miner
  /// reports I/O through the database's ledger even when it never touches
  /// a relation). `knobs` become the miner's default physical options.
  static Result<std::unique_ptr<Miner>> Create(const std::string& name,
                                               Database* db,
                                               const SetmOptions& knobs = {});

  /// Metadata of one registered algorithm; NotFound when absent.
  static Result<MinerInfo> Info(const std::string& name);

  /// All registered algorithms, in registration order (built-ins first).
  static std::vector<MinerInfo> List();
};

}  // namespace setm

#endif  // SETM_CORE_MINER_REGISTRY_H_

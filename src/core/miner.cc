#include "core/miner.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "relational/table.h"

namespace setm {

Status ValidateMiningRequest(const MiningRequest& request) {
  if (request.transactions != nullptr && request.table != nullptr) {
    return Status::InvalidArgument(
        "MiningRequest sets both transactions and table; exactly one source "
        "is allowed");
  }
  if (request.transactions == nullptr && request.table == nullptr) {
    return Status::InvalidArgument(
        "MiningRequest has no source; set transactions or table");
  }
  return Status::OK();
}

Result<TransactionDb> TransactionsFromTable(const Table& sales) {
  if (sales.schema().NumColumns() != 2) {
    return Status::InvalidArgument("SALES must have schema (trans_id, item)");
  }
  std::vector<std::pair<TransactionId, ItemId>> rows;
  rows.reserve(sales.num_rows());
  auto it = sales.Scan();
  Tuple row;
  while (true) {
    auto more = it->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    rows.emplace_back(row.value(0).AsInt32(), row.value(1).AsInt32());
  }
  std::sort(rows.begin(), rows.end());
  // Duplicate (trans_id, item) rows are rejected, not silently merged: the
  // miners with a native table pipeline (setm, setm-sql) count every row,
  // so deduplicating here would make the same MiningRequest yield
  // different supports per algorithm. SALES is set-valued — a duplicate
  // row is malformed input, and the caller should hear about it.
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i] == rows[i - 1]) {
      return Status::InvalidArgument(
          "SALES row (" + std::to_string(rows[i].first) + ", " +
          std::to_string(rows[i].second) +
          ") appears more than once; duplicate rows would be counted by "
          "row-oriented miners and must be removed first");
    }
  }

  TransactionDb txns;
  for (size_t i = 0; i < rows.size();) {
    Transaction t;
    t.id = rows[i].first;
    size_t j = i;
    while (j < rows.size() && rows[j].first == t.id) {
      t.items.push_back(rows[j].second);
      ++j;
    }
    txns.push_back(std::move(t));
    i = j;
  }
  SETM_RETURN_IF_ERROR(ValidateTransactions(txns));
  return txns;
}

}  // namespace setm

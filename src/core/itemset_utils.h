#ifndef SETM_CORE_ITEMSET_UTILS_H_
#define SETM_CORE_ITEMSET_UTILS_H_

#include <vector>

#include "core/types.h"

namespace setm {

/// Maximal frequent itemsets: frequent sets with no frequent superset.
/// The standard compressed summary of a FrequentItemsets result (the full
/// family can be reconstructed as all non-empty subsets, minus counts).
/// Output is sorted by (size, items).
std::vector<PatternCount> MaximalItemsets(const FrequentItemsets& itemsets);

/// Closed frequent itemsets: frequent sets with no superset of *equal*
/// support. Closed sets preserve every support value of the full family
/// while usually being far fewer.
std::vector<PatternCount> ClosedItemsets(const FrequentItemsets& itemsets);

/// Reconstructs the support of an arbitrary (sub)set from a closed-set
/// summary: the support of X is the maximum count among closed supersets
/// of X; returns 0 if no closed superset exists (X is infrequent).
int64_t SupportFromClosed(const std::vector<PatternCount>& closed,
                          const std::vector<ItemId>& items);

}  // namespace setm

#endif  // SETM_CORE_ITEMSET_UTILS_H_

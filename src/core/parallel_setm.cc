#include "core/parallel_setm.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/setm_pipeline.h"
#include "exec/exec_context.h"
#include "exec/worker_pool.h"

namespace setm {

namespace {

/// One SALES row; the unit the partitioner distributes.
struct SalesRow {
  TransactionId tid = 0;
  ItemId item = 0;
};

/// A candidate pattern with its partition-local support contribution.
struct LocalPattern {
  std::vector<ItemId> items;
  int64_t count = 0;
};

/// Partial counts keyed by ItemsetKey.
using CountMap = std::unordered_map<std::string, LocalPattern>;

/// Shard assignment of an itemset key. Partitions bucket their partial
/// counts by this hash while counting, so the global merge decomposes into
/// `num_shards` disjoint tasks (shard s only ever sees keys hashing to s)
/// that run on the worker pool instead of serially on the coordinator.
size_t ShardOf(const std::string& key, size_t num_shards) {
  return std::hash<std::string>{}(key) % num_shards;
}

/// Everything one trans_id range owns. Worker tasks mutate only their own
/// partition; the shared buffer pools and IoStats ledger are thread-safe.
struct Partition {
  std::vector<SalesRow> rows;       ///< SALES slice, sorted on (tid, item)
  std::unique_ptr<Table> r1;        ///< R_1 slice (filtered when requested)
  std::unique_ptr<Table> r_prev;    ///< R_{k-1}; null means use r1
  std::unique_ptr<Table> rk_prime;  ///< R'_k of the current iteration
  std::unique_ptr<Table> rk;        ///< R_k of the current iteration
  /// Per-iteration partial candidate counts, bucketed by ShardOf.
  std::vector<CountMap> counts;
};

/// One shard's share of the global C_k: the frequent patterns whose keys
/// hash to the shard, plus the key set Phase B probes.
struct CkShard {
  std::unordered_set<std::string> keys;
  std::vector<PatternCount> rows;
};

/// Membership probe over the sharded C_k (same hash as the merge used).
bool CkContains(const std::vector<CkShard>& shards, const std::string& key) {
  return shards[ShardOf(key, shards.size())].keys.count(key) != 0;
}

Result<std::unique_ptr<Table>> NewRelation(Database* db, TableBacking backing,
                                           const std::string& name,
                                           Schema schema) {
  if (backing == TableBacking::kMemory) {
    return std::unique_ptr<Table>(
        std::make_unique<MemTable>(name, std::move(schema)));
  }
  // Per-partition scratch relations never outlive the run: unlogged.
  auto t = HeapTable::Create(name, std::move(schema), db->pool(),
                             db->UnloggedPageTagger());
  if (!t.ok()) return t.status();
  return std::unique_ptr<Table>(std::move(t).value());
}

/// Adds one locally counted pattern occurrence (or a pre-aggregated group
/// of `count` occurrences) into the partition's sharded count maps.
void AddLocalCount(Partition* p, size_t num_shards,
                   const std::vector<ItemId>& items, int64_t count) {
  std::string key = ItemsetKey(items);
  LocalPattern& lp = p->counts[ShardOf(key, num_shards)][std::move(key)];
  if (lp.count == 0) lp.items = items;
  lp.count += count;
}

/// Phase k=1: materialize the partition's R_1 slice (already sorted) and
/// count single items locally, bucketed by key shard. Under kSortMerge the
/// counting runs as a sorted group-count over the materialized slice (the
/// paper's physical plan, per partition); under kHash it folds into the
/// insert pass.
Status BuildR1(Database* db, const SetmOptions& so, ExecContext ctx,
               size_t index, size_t num_shards, Partition* p) {
  auto r1_or = NewRelation(db, so.storage, "p" + std::to_string(index) + "_r1",
                           SetmMiner::RkSchema(1));
  if (!r1_or.ok()) return r1_or.status();
  p->r1 = std::move(r1_or).value();
  p->counts.assign(num_shards, CountMap());
  std::vector<ItemId> item(1);
  for (const SalesRow& row : p->rows) {
    SETM_RETURN_IF_ERROR(
        p->r1->Insert(Tuple({Value::Int32(row.tid), Value::Int32(row.item)})));
    if (so.count_method == CountMethod::kHash) {
      item[0] = row.item;
      AddLocalCount(p, num_shards, item, 1);
    }
  }
  p->rows.clear();
  p->rows.shrink_to_fit();
  if (so.count_method == CountMethod::kSortMerge) {
    SETM_RETURN_IF_ERROR(CountInto(
        ctx, *p->r1, 1, /*min_count=*/1, CountMethod::kSortMerge,
        [&](std::vector<ItemId> items, int64_t count) {
          AddLocalCount(p, num_shards, items, count);
        }));
  }
  return Status::OK();
}

/// Optional ablation: drop rows of non-frequent items from the R_1 slice.
Status FilterR1(Database* db, const SetmOptions& so, size_t index,
                const std::vector<CkShard>* c1, Partition* p) {
  auto filtered_or =
      NewRelation(db, so.storage, "p" + std::to_string(index) + "_r1f",
                  SetmMiner::RkSchema(1));
  if (!filtered_or.ok()) return filtered_or.status();
  std::unique_ptr<Table> filtered = std::move(filtered_or).value();
  SETM_RETURN_IF_ERROR(FilterR1Into(
      *p->r1, [c1](const std::string& key) { return CkContains(*c1, key); },
      filtered.get()));
  p->r1 = std::move(filtered);
  return Status::OK();
}

/// Phase A of iteration k: R'_k slice via the shared merge-scan join body
/// plus local candidate counts (full counts — minsupport is applied
/// globally after the merge, because support is a property of the whole
/// database). kHash counts in the join's count sink; kSortMerge counts by
/// sorting the materialized slice, same as the serial pipeline would.
Status JoinAndCount(Database* db, const SetmOptions& so, ExecContext ctx,
                    size_t index, size_t k, size_t num_shards, Partition* p) {
  const Table* left = p->r_prev != nullptr ? p->r_prev.get() : p->r1.get();
  auto rkp_or = NewRelation(db, so.storage,
                            "p" + std::to_string(index) + "_r" +
                                std::to_string(k) + "p",
                            SetmMiner::RkSchema(k));
  if (!rkp_or.ok()) return rkp_or.status();
  p->rk_prime = std::move(rkp_or).value();
  p->counts.assign(num_shards, CountMap());

  CountSink sink;
  if (so.count_method == CountMethod::kHash) {
    sink = [p, num_shards](const std::vector<ItemId>& items) {
      AddLocalCount(p, num_shards, items, 1);
    };
  }
  SETM_RETURN_IF_ERROR(
      JoinIntoRkPrime(*left, *p->r1, k, p->rk_prime.get(), sink));
  if (so.count_method == CountMethod::kSortMerge) {
    SETM_RETURN_IF_ERROR(CountInto(
        ctx, *p->rk_prime, k, /*min_count=*/1, CountMethod::kSortMerge,
        [&](std::vector<ItemId> items, int64_t count) {
          AddLocalCount(p, num_shards, items, count);
        }));
  }
  return Status::OK();
}

/// Phase B of iteration k: R_k slice = R'_k filtered by the global C_k,
/// sorted back on (trans_id, items) — the shared filter body with the
/// sharded-C_k membership probe.
Status FilterAndSort(Database* db, const SetmOptions& so, ExecContext ctx,
                     size_t index, size_t k, const std::vector<CkShard>* ck,
                     Partition* p) {
  auto rk_or = NewRelation(
      db, so.storage,
      "p" + std::to_string(index) + "_r" + std::to_string(k),
      SetmMiner::RkSchema(k));
  if (!rk_or.ok()) return rk_or.status();
  p->rk = std::move(rk_or).value();
  bool any_frequent = false;
  for (const CkShard& shard : *ck) any_frequent |= !shard.keys.empty();
  if (!any_frequent) return Status::OK();

  return FilterRkPrimeIntoRk(
      ctx, *p->rk_prime, k,
      [ck](const std::string& key) { return CkContains(*ck, key); },
      p->rk.get());
}

/// Merges one shard: sums every partition's partial map for this shard
/// (stealing the item vectors) and applies the global minsupport filter.
/// Shards are hash-disjoint, so the merge that used to run serially on the
/// coordinator becomes `num_shards` independent pool tasks — the Amdahl
/// term `bench/scaling_threads` exposed at 8 threads.
Status MergeShard(std::vector<Partition>* parts, size_t shard, int64_t minsup,
                  CkShard* out) {
  CountMap merged;
  for (Partition& p : *parts) {
    for (auto& entry : p.counts[shard]) {
      LocalPattern& g = merged[entry.first];
      if (g.count == 0) g.items = std::move(entry.second.items);
      g.count += entry.second.count;
    }
    p.counts[shard].clear();
  }
  for (auto& entry : merged) {
    if (entry.second.count >= minsup) {
      out->rows.push_back(
          PatternCount{std::move(entry.second.items), entry.second.count});
      out->keys.insert(entry.first);
    }
  }
  return Status::OK();
}

/// Runs MergeShard for every shard on the pool and waits.
Status MergeAllShards(WorkerPool* pool, std::vector<Partition>* parts,
                      int64_t minsup, std::vector<CkShard>* shards) {
  TaskGroup group(pool);
  for (size_t s = 0; s < shards->size(); ++s) {
    CkShard* out = &(*shards)[s];
    group.Submit(
        [parts, s, minsup, out] { return MergeShard(parts, s, minsup, out); });
  }
  return group.Wait();
}

/// The partitioned pipeline over pre-extracted SALES rows.
Result<MiningResult> RunPartitioned(Database* db, const SetmOptions& so,
                                    std::vector<SalesRow> rows,
                                    const MiningOptions& options) {
  WallTimer total_timer;
  const IoStats io_before = *db->io_stats();
  MiningResult result;

  // Global sort on (trans_id, item) — the same order the serial pipeline
  // establishes for R_1, here done once up front so partitions are
  // contiguous trans_id ranges.
  std::sort(rows.begin(), rows.end(), [](const SalesRow& a, const SalesRow& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.item < b.item;
  });
  uint64_t num_transactions = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i == 0 || rows[i].tid != rows[i - 1].tid) ++num_transactions;
  }

  // Row-balanced range partitioning that never splits a transaction.
  const size_t want = std::max<size_t>(1, so.num_threads);
  const size_t num_parts = static_cast<size_t>(std::min<uint64_t>(
      want, std::max<uint64_t>(1, num_transactions)));
  std::vector<Partition> parts(num_parts);
  const size_t target = (rows.size() + num_parts - 1) / num_parts;
  size_t pi = 0;
  for (size_t i = 0; i < rows.size();) {
    size_t j = i;
    while (j < rows.size() && rows[j].tid == rows[i].tid) ++j;
    if (parts[pi].rows.size() >= target && pi + 1 < num_parts) ++pi;
    parts[pi].rows.insert(parts[pi].rows.end(), rows.begin() + i,
                          rows.begin() + j);
    i = j;
  }
  rows.clear();
  rows.shrink_to_fit();

  WorkerPool* pool = db->worker_pool();
  std::unique_ptr<WorkerPool> owned_pool;
  if (pool == nullptr && so.num_threads > 1) {
    // No point spawning more workers than partitions to occupy them.
    owned_pool = std::make_unique<WorkerPool>(
        std::min(so.num_threads, parts.size()));
    pool = owned_pool.get();
  }
  // Workers must not re-enter the pool: partition tasks run *on* it, so the
  // per-partition sorts and group-counts get a context without workers.
  ExecContext worker_ctx;
  worker_ctx.temp_pool = db->temp_pool();
  worker_ctx.sort_memory_bytes = db->options().sort_memory_bytes;
  worker_ctx.workers = nullptr;

  // Shard count for the parallel C_k merge: one merge task per partition
  // keeps every worker busy during the merge phase too.
  const size_t num_shards = num_parts;

  // --- R_1 and C_1. -------------------------------------------------------
  WallTimer iter1_timer;
  {
    TaskGroup group(pool);
    for (size_t i = 0; i < parts.size(); ++i) {
      Partition* p = &parts[i];
      group.Submit([db, &so, worker_ctx, i, num_shards, p] {
        return BuildR1(db, so, worker_ctx, i, num_shards, p);
      });
    }
    SETM_RETURN_IF_ERROR(group.Wait());
  }
  result.itemsets.num_transactions = num_transactions;
  const int64_t minsup = ResolveMinSupportCount(options, num_transactions);

  std::vector<CkShard> c1(num_shards);
  {
    SETM_RETURN_IF_ERROR(MergeAllShards(pool, &parts, minsup, &c1));
    IterationStats stats;
    stats.k = 1;
    for (const Partition& p : parts) {
      stats.r_prime_rows += p.r1->num_rows();
      stats.r_bytes += p.r1->size_bytes();
      stats.r_pages += p.r1->num_pages();
    }
    stats.r_rows = stats.r_prime_rows;
    for (CkShard& shard : c1) {
      stats.c_size += shard.rows.size();
      for (PatternCount& pc : shard.rows) {
        result.itemsets.Add(std::move(pc.items), pc.count);
      }
      shard.rows.clear();
    }
    stats.seconds = iter1_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
  }

  if (options.filter_r1) {
    TaskGroup group(pool);
    for (size_t i = 0; i < parts.size(); ++i) {
      Partition* p = &parts[i];
      group.Submit([db, &so, i, p, &c1] {
        return FilterR1(db, so, i, &c1, p);
      });
    }
    SETM_RETURN_IF_ERROR(group.Wait());
  }

  // --- Main loop (Figure 4, partitioned). ---------------------------------
  for (size_t k = 2;; ++k) {
    if (options.max_pattern_length != 0 && k > options.max_pattern_length) {
      break;
    }
    uint64_t left_rows = 0;
    for (const Partition& p : parts) {
      left_rows += (p.r_prev != nullptr ? p.r_prev : p.r1)->num_rows();
    }
    if (left_rows == 0) break;
    WallTimer iter_timer;

    // Phase A: per-partition R'_k join + local candidate counts.
    {
      TaskGroup group(pool);
      for (size_t i = 0; i < parts.size(); ++i) {
        Partition* p = &parts[i];
        group.Submit([db, &so, worker_ctx, i, k, num_shards, p] {
          return JoinAndCount(db, so, worker_ctx, i, k, num_shards, p);
        });
      }
      SETM_RETURN_IF_ERROR(group.Wait());
    }

    // Merge partial counts shard-parallel; the minsupport filter sees
    // global counts only (applied inside each shard's merge task).
    std::vector<CkShard> ck(num_shards);
    SETM_RETURN_IF_ERROR(MergeAllShards(pool, &parts, minsup, &ck));

    // Phase B: per-partition support filter + sort back to (tid, items).
    {
      TaskGroup group(pool);
      for (size_t i = 0; i < parts.size(); ++i) {
        Partition* p = &parts[i];
        group.Submit([db, &so, worker_ctx, i, k, p, &ck] {
          return FilterAndSort(db, so, worker_ctx, i, k, &ck, p);
        });
      }
      SETM_RETURN_IF_ERROR(group.Wait());
    }

    IterationStats stats;
    stats.k = k;
    for (const Partition& p : parts) {
      stats.r_prime_rows += p.rk_prime->num_rows();
      stats.r_rows += p.rk->num_rows();
      stats.r_bytes += p.rk->size_bytes();
      stats.r_pages += p.rk->num_pages();
    }
    for (CkShard& shard : ck) {
      stats.c_size += shard.rows.size();
      for (PatternCount& pc : shard.rows) {
        result.itemsets.Add(std::move(pc.items), pc.count);
      }
    }
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
    const uint64_t rk_rows = stats.r_rows;
    for (Partition& p : parts) {
      p.r_prev = std::move(p.rk);
      p.rk_prime.reset();
    }
    if (rk_rows == 0) break;
  }

  result.itemsets.Normalize();
  result.total_seconds = total_timer.ElapsedSeconds();
  result.io = Diff(*db->io_stats(), io_before);
  return result;
}

}  // namespace

Result<MiningResult> ParallelSetmMiner::Mine(const TransactionDb& transactions,
                                             const MiningOptions& options) {
  SETM_RETURN_IF_ERROR(ValidateTransactions(transactions));
  std::vector<SalesRow> rows;
  size_t total = 0;
  for (const Transaction& t : transactions) total += t.items.size();
  rows.reserve(total);
  for (const Transaction& t : transactions) {
    for (ItemId item : t.items) rows.push_back(SalesRow{t.id, item});
  }
  return RunPartitioned(db_, setm_options_, std::move(rows), options);
}

Result<MiningResult> ParallelSetmMiner::MineTable(const Table& sales,
                                                  const MiningOptions& options) {
  if (sales.schema().NumColumns() != 2) {
    return Status::InvalidArgument("SALES must have schema (trans_id, item)");
  }
  std::vector<SalesRow> rows;
  rows.reserve(sales.num_rows());
  auto it = sales.Scan();
  Tuple row;
  while (true) {
    auto more = it->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    rows.push_back(SalesRow{row.value(0).AsInt32(), row.value(1).AsInt32()});
  }
  return RunPartitioned(db_, setm_options_, std::move(rows), options);
}

}  // namespace setm

#include "core/setm.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "core/parallel_setm.h"
#include "core/setm_pipeline.h"
#include "exec/exec_context.h"
#include "exec/external_sort.h"
#include "exec/operators.h"

namespace setm {

Schema SetmMiner::SalesSchema() {
  return Schema({Column{"trans_id", ValueType::kInt32},
                 Column{"item", ValueType::kInt32}});
}

Schema SetmMiner::RkSchema(size_t k) {
  Schema schema;
  schema.AddColumn(Column{"trans_id", ValueType::kInt32});
  for (size_t i = 1; i <= k; ++i) {
    schema.AddColumn(Column{"item" + std::to_string(i), ValueType::kInt32});
  }
  return schema;
}

std::vector<size_t> SetmMiner::TidItemColumns(size_t k) {
  std::vector<size_t> cols;
  cols.reserve(k + 1);
  for (size_t i = 0; i <= k; ++i) cols.push_back(i);
  return cols;
}

Result<std::unique_ptr<Table>> SetmMiner::NewRelation(const std::string& name,
                                                      Schema schema) {
  if (setm_options_.storage == TableBacking::kMemory) {
    return std::unique_ptr<Table>(
        std::make_unique<MemTable>(name, std::move(schema)));
  }
  // Intermediate relations are dropped at the end of the run; tagging their
  // pages unlogged keeps them out of the write-ahead log.
  auto t = HeapTable::Create(name, std::move(schema), db_->pool(),
                             db_->UnloggedPageTagger());
  if (!t.ok()) return t.status();
  return std::unique_ptr<Table>(std::move(t).value());
}

Result<Table*> LoadSalesTable(Database* db, const std::string& name,
                              const TransactionDb& transactions,
                              TableBacking backing) {
  SETM_RETURN_IF_ERROR(ValidateTransactions(transactions));
  auto table_or =
      db->catalog()->CreateTable(name, SetmMiner::SalesSchema(), backing);
  if (!table_or.ok()) return table_or.status();
  Table* table = table_or.value();
  for (const Transaction& t : transactions) {
    for (ItemId item : t.items) {
      SETM_RETURN_IF_ERROR(table->Insert(
          Tuple({Value::Int32(t.id), Value::Int32(item)})));
    }
  }
  return table;
}

Result<MiningResult> SetmMiner::Mine(const TransactionDb& transactions,
                                     const MiningOptions& options) {
  if (setm_options_.num_threads > 1) {
    // Route before materializing SALES: the partitioned executor builds its
    // row slices straight from the transaction database.
    return ParallelSetmMiner(db_, setm_options_).Mine(transactions, options);
  }
  SETM_RETURN_IF_ERROR(ValidateTransactions(transactions));
  auto sales_or = NewRelation("sales", SalesSchema());
  if (!sales_or.ok()) return sales_or.status();
  std::unique_ptr<Table> sales = std::move(sales_or).value();
  for (const Transaction& t : transactions) {
    for (ItemId item : t.items) {
      SETM_RETURN_IF_ERROR(
          sales->Insert(Tuple({Value::Int32(t.id), Value::Int32(item)})));
    }
  }
  return MineTable(*sales, options);
}

Result<MiningResult> SetmMiner::MineTable(const Table& sales,
                                          const MiningOptions& options) {
  if (sales.schema().NumColumns() != 2) {
    return Status::InvalidArgument("SALES must have schema (trans_id, item)");
  }
  if (setm_options_.num_threads > 1) {
    return ParallelSetmMiner(db_, setm_options_).MineTable(sales, options);
  }
  WallTimer total_timer;
  const IoStats io_before = *db_->io_stats();
  ExecContext ctx = ExecContext::From(db_);
  MiningResult result;

  // --- R_1 := SALES sorted on (trans_id, item); count transactions. ------
  auto r1_or = NewRelation("r1", RkSchema(1));
  if (!r1_or.ok()) return r1_or.status();
  std::unique_ptr<Table> r1 = std::move(r1_or).value();
  uint64_t num_transactions = 0;
  {
    auto sorted = std::make_unique<SortIterator>(ctx, sales.Scan(),
                                                 TupleComparator({0, 1}));
    Tuple row;
    bool first = true;
    int32_t prev_tid = 0;
    while (true) {
      auto more = sorted->Next(&row);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      const int32_t tid = row.value(0).AsInt32();
      if (first || tid != prev_tid) {
        ++num_transactions;
        prev_tid = tid;
        first = false;
      }
      SETM_RETURN_IF_ERROR(r1->Insert(row));
    }
  }
  result.itemsets.num_transactions = num_transactions;
  const int64_t minsup = ResolveMinSupportCount(options, num_transactions);

  // --- C_1: group-count R_1 on item, keep count >= minsupport. -----------
  std::unordered_set<std::string> frequent_keys;
  {
    WallTimer iter_timer;
    SETM_RETURN_IF_ERROR(CountInto(
        ctx, *r1, 1, minsup, setm_options_.count_method,
        [&](std::vector<ItemId> items, int64_t count) {
          frequent_keys.insert(ItemsetKey(items));
          result.itemsets.Add(std::move(items), count);
        }));
    IterationStats stats;
    stats.k = 1;
    stats.r_prime_rows = r1->num_rows();
    stats.r_rows = r1->num_rows();
    stats.r_bytes = r1->size_bytes();
    stats.r_pages = r1->num_pages();
    stats.c_size = result.itemsets.OfSize(1).size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
  }

  // Optional ablation: restrict R_1 to frequent items before the loop.
  if (options.filter_r1) {
    auto filtered_or = NewRelation("r1f", RkSchema(1));
    if (!filtered_or.ok()) return filtered_or.status();
    std::unique_ptr<Table> filtered = std::move(filtered_or).value();
    SETM_RETURN_IF_ERROR(FilterR1Into(
        *r1, [&](const std::string& key) { return frequent_keys.count(key) != 0; },
        filtered.get()));
    r1 = std::move(filtered);
  }

  // --- Main loop (Figure 4). ---------------------------------------------
  std::unique_ptr<Table> r_prev = nullptr;  // R_{k-1}; null means use R_1
  for (size_t k = 2;; ++k) {
    if (options.max_pattern_length != 0 && k > options.max_pattern_length) {
      break;
    }
    WallTimer iter_timer;
    const Table* left_table = r_prev == nullptr ? r1.get() : r_prev.get();
    if (left_table->num_rows() == 0) break;

    // R'_k := merge-scan(R_{k-1}, R_1) on trans_id with q.item > p.item_k-1.
    // Both inputs are maintained sorted on (trans_id, items...), so no sort
    // is needed here — the "sort order tracked across iterations" remark of
    // Section 4.1.
    auto rk_prime_or = NewRelation("r" + std::to_string(k) + "p", RkSchema(k));
    if (!rk_prime_or.ok()) return rk_prime_or.status();
    std::unique_ptr<Table> rk_prime = std::move(rk_prime_or).value();
    SETM_RETURN_IF_ERROR(
        JoinIntoRkPrime(*left_table, *r1, k, rk_prime.get(), {}));

    // C_k := group-count R'_k on items, keep count >= minsupport.
    std::unordered_set<std::string> ck_keys;
    std::vector<PatternCount> ck_rows;
    SETM_RETURN_IF_ERROR(CountInto(
        ctx, *rk_prime, k, minsup, setm_options_.count_method,
        [&](std::vector<ItemId> items, int64_t count) {
          ck_keys.insert(ItemsetKey(items));
          ck_rows.push_back(PatternCount{std::move(items), count});
        }));

    // R_k := filter R'_k by C_k membership, sorted on (trans_id, items).
    auto rk_or = NewRelation("r" + std::to_string(k), RkSchema(k));
    if (!rk_or.ok()) return rk_or.status();
    std::unique_ptr<Table> rk = std::move(rk_or).value();
    if (!ck_keys.empty()) {
      SETM_RETURN_IF_ERROR(FilterRkPrimeIntoRk(
          ctx, *rk_prime, k,
          [&](const std::string& key) { return ck_keys.count(key) != 0; },
          rk.get()));
    }

    IterationStats stats;
    stats.k = k;
    stats.r_prime_rows = rk_prime->num_rows();
    stats.r_rows = rk->num_rows();
    stats.r_bytes = rk->size_bytes();
    stats.r_pages = rk->num_pages();
    stats.c_size = ck_rows.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);

    for (PatternCount& pc : ck_rows) {
      result.itemsets.Add(std::move(pc.items), pc.count);
    }
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
    if (rk->num_rows() == 0) break;
    r_prev = std::move(rk);
  }

  result.itemsets.Normalize();
  result.total_seconds = total_timer.ElapsedSeconds();
  result.io = Diff(*db_->io_stats(), io_before);
  return result;
}

}  // namespace setm

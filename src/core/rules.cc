#include "core/rules.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/timer.h"

namespace setm {

namespace {

/// Enumerates all subsets of `items` with the given size, invoking `fn`
/// with (subset, complement). Items are sorted; subsets come out in
/// lexicographic order.
void ForEachSubsetOfSize(
    const std::vector<ItemId>& items, size_t size,
    const std::function<void(const std::vector<ItemId>&,
                             const std::vector<ItemId>&)>& fn) {
  const size_t n = items.size();
  SETM_DCHECK(size >= 1 && size < n);
  std::vector<size_t> pick(size);
  for (size_t i = 0; i < size; ++i) pick[i] = i;
  std::vector<ItemId> subset(size), complement(n - size);
  while (true) {
    for (size_t i = 0; i < size; ++i) subset[i] = items[pick[i]];
    size_t c = 0, p = 0;
    for (size_t i = 0; i < n; ++i) {
      if (p < size && pick[p] == i) {
        ++p;
      } else {
        complement[c++] = items[i];
      }
    }
    fn(subset, complement);
    // Advance to the next combination (standard odometer).
    ptrdiff_t i = static_cast<ptrdiff_t>(size) - 1;
    while (i >= 0 && pick[i] == static_cast<size_t>(i) + n - size) --i;
    if (i < 0) return;
    ++pick[i];
    for (size_t j = static_cast<size_t>(i) + 1; j < size; ++j) {
      pick[j] = pick[j - 1] + 1;
    }
  }
}

}  // namespace

Result<std::vector<AssociationRule>> GenerateRules(
    const FrequentItemsets& itemsets, const MiningOptions& options,
    RuleMode mode) {
  std::vector<AssociationRule> rules;
  const double n = static_cast<double>(itemsets.num_transactions);

  // Cancellation granularity: within a level, check in on the observer
  // every this many expanded patterns — large kAnySubset levels must not
  // run uninterruptible until the level boundary.
  constexpr size_t kPatternsPerProgressCheck = 2048;

  WallTimer level_timer;
  for (size_t k = 2; k <= itemsets.MaxSize(); ++k) {
    size_t expanded = 0;
    for (const PatternCount& pattern : itemsets.OfSize(k)) {
      const double pattern_support =
          n > 0 ? static_cast<double>(pattern.count) / n : 0.0;

      auto consider = [&](const std::vector<ItemId>& antecedent,
                          const std::vector<ItemId>& consequent) {
        const int64_t antecedent_count = itemsets.CountOf(antecedent);
        if (antecedent_count <= 0) return;  // cannot happen for frequent sets
        const double confidence = static_cast<double>(pattern.count) /
                                  static_cast<double>(antecedent_count);
        if (confidence + 1e-12 < options.min_confidence) return;
        AssociationRule rule;
        rule.antecedent = antecedent;
        rule.consequent = consequent;
        rule.confidence = confidence;
        rule.support = pattern_support;
        // Lift needs the consequent's own support; it is always available
        // (any subset of a frequent set is frequent).
        const int64_t consequent_count = itemsets.CountOf(consequent);
        if (consequent_count > 0 && n > 0) {
          rule.lift = confidence /
                      (static_cast<double>(consequent_count) / n);
        }
        rules.push_back(std::move(rule));
      };

      if (mode == RuleMode::kSingleConsequent) {
        ForEachSubsetOfSize(pattern.items, k - 1, consider);
      } else {
        for (size_t a = 1; a < k; ++a) {
          ForEachSubsetOfSize(pattern.items, a, consider);
        }
      }

      if (++expanded % kPatternsPerProgressCheck == 0) {
        IterationStats stats;
        stats.k = k;
        stats.c_size = expanded;
        stats.r_rows = rules.size();
        stats.seconds = level_timer.ElapsedSeconds();
        SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
      }
    }

    // Level boundary: one callback per finished pattern size, mirroring the
    // per-k cadence of the mining loop.
    if (expanded > 0) {
      IterationStats stats;
      stats.k = k;
      stats.c_size = expanded;
      stats.r_rows = rules.size();
      stats.seconds = level_timer.ElapsedSeconds();
      SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
      level_timer.Restart();
    }
  }

  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              const size_t sa = a.antecedent.size() + a.consequent.size();
              const size_t sb = b.antecedent.size() + b.consequent.size();
              if (sa != sb) return sa < sb;
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  return rules;
}

std::string FormatRule(const AssociationRule& rule,
                       const std::function<std::string(ItemId)>& item_name) {
  auto name = [&](ItemId id) {
    return item_name ? item_name(id) : std::to_string(id);
  };
  std::string out;
  for (size_t i = 0; i < rule.antecedent.size(); ++i) {
    if (i > 0) out += ' ';
    out += name(rule.antecedent[i]);
  }
  out += " ==> ";
  for (size_t i = 0; i < rule.consequent.size(); ++i) {
    if (i > 0) out += ' ';
    out += name(rule.consequent[i]);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), ", [%.1f%%, %.1f%%]",
                rule.confidence * 100.0, rule.support * 100.0);
  out += buf;
  return out;
}

std::string FormatRulesCsv(const std::vector<AssociationRule>& rules) {
  std::string out = "antecedent,consequent,confidence,support,lift\n";
  auto join = [](const std::vector<ItemId>& items, std::string* dst) {
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) *dst += ' ';
      *dst += std::to_string(items[i]);
    }
  };
  char buf[96];
  for (const AssociationRule& r : rules) {
    join(r.antecedent, &out);
    out += ',';
    join(r.consequent, &out);
    std::snprintf(buf, sizeof(buf), ",%.6f,%.6f,%.6f\n", r.confidence,
                  r.support, r.lift);
    out += buf;
  }
  return out;
}

}  // namespace setm

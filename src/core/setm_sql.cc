#include "core/setm_sql.h"

#include <cctype>

#include "common/logging.h"
#include "common/timer.h"

namespace setm {

namespace {

/// "p.item1, p.item2, ..., p.itemk" with the given qualifier.
std::string ItemList(size_t k, const std::string& qualifier) {
  std::string out;
  for (size_t i = 1; i <= k; ++i) {
    if (i > 1) out += ", ";
    if (!qualifier.empty()) {
      out += qualifier;
      out += '.';
    }
    out += "item" + std::to_string(i);
  }
  return out;
}

/// "item1 INT, item2 INT, ..., itemk INT".
std::string ItemColumnsDdl(size_t k) {
  std::string out;
  for (size_t i = 1; i <= k; ++i) {
    if (i > 1) out += ", ";
    out += "item" + std::to_string(i) + " INT";
  }
  return out;
}

}  // namespace

bool IsSetmSqlScratchName(const std::string& name) {
  if (name.rfind("setm_", 0) != 0) return false;
  size_t i = 5;
  if (i >= name.size() || (name[i] != 'r' && name[i] != 'c')) return false;
  const char kind = name[i];
  ++i;
  size_t digits = 0;
  while (i < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[i])) != 0) {
    ++i;
    ++digits;
  }
  if (digits == 0) return false;
  if (i == name.size()) return true;
  return kind == 'r' && name[i] == 'p' && i + 1 == name.size();
}

Result<sql::QueryResult> SetmSqlMiner::Run(const std::string& statement,
                                           const sql::Params& params) {
  statements_.push_back(statement);
  return engine_.Execute(statement, params);
}

Status SetmSqlMiner::CreateScratch(const std::string& ddl,
                                   const std::string& name) {
  auto r = Run(ddl);
  if (!r.ok()) return r.status();
  created_.insert(name);
  return Status::OK();
}

Status SetmSqlMiner::PrepareScratch() {
  for (const std::string& name : db_->catalog()->TableNames()) {
    if (!IsSetmSqlScratchName(name)) continue;
    if (created_.count(name) == 0) {
      return Status::AlreadyExists(
          "table '" + name + "' occupies the setm-sql scratch namespace "
          "(setm_r<k>/setm_r<k>p/setm_c<k>) but was not created by this "
          "miner; drop or rename it before mining");
    }
    SETM_RETURN_IF_ERROR(db_->catalog()->DropTable(name));
    created_.erase(name);
  }
  return Status::OK();
}

Status SetmSqlMiner::DropOwnScratch() {
  for (const std::string& name : created_) {
    if (db_->catalog()->HasTable(name)) {
      SETM_RETURN_IF_ERROR(db_->catalog()->DropTable(name));
    }
  }
  created_.clear();
  return Status::OK();
}

Result<MiningResult> SetmSqlMiner::MineTable(const Table& sales,
                                             const MiningOptions& options) {
  const std::string& sales_table = sales.name();
  if (IsSetmSqlScratchName(sales_table)) {
    return Status::InvalidArgument(
        "source table '" + sales_table + "' is named inside the setm-sql "
        "scratch namespace and would collide with the miner's relations");
  }
  auto resident = db_->catalog()->GetTable(sales_table);
  if (!resident.ok() || resident.value() != &sales) {
    return Status::InvalidArgument(
        "setm-sql mines catalog-resident tables (its SQL names the source "
        "by table name); '" + sales_table + "' is not in this database's "
        "catalog");
  }
  if (sales.schema().NumColumns() != 2) {
    return Status::InvalidArgument("SALES must have schema (trans_id, item)");
  }
  statements_.clear();
  SETM_RETURN_IF_ERROR(PrepareScratch());

  // On cancellation the scratch relations are useless (no result to
  // inspect), so drop them before surfacing the Cancelled status. A failed
  // drop must not mask the cancellation — callers branch on IsCancelled()
  // to tell a deliberate abort from a mining failure — so it is logged and
  // the Cancelled status wins.
  auto notify = [&](const IterationStats& stats) -> Status {
    Status s = NotifyIteration(options, stats);
    if (s.IsCancelled()) {
      Status drop = DropOwnScratch();
      if (!drop.ok()) {
        SETM_LOG(kWarn) << "cancelled setm-sql run could not drop its "
                        << "scratch tables: " << drop.ToString();
      }
    }
    return s;
  };

  WallTimer total_timer;
  const IoStats io_before = *db_->io_stats();
  MiningResult result;
  const std::string mem = backing_ == TableBacking::kMemory ? "MEMORY " : "";

  // Number of transactions (for the support threshold).
  {
    auto r = Run("SELECT DISTINCT trans_id FROM " + sales_table);
    if (!r.ok()) return r.status();
    result.itemsets.num_transactions = r.value().rows.size();
  }
  const int64_t minsup =
      ResolveMinSupportCount(options, result.itemsets.num_transactions);
  const sql::Params params = {{"minsupport", Value::Int64(minsup)}};

  // R_1 := SALES sorted on (trans_id, item); C_1 := supported items.
  {
    WallTimer iter_timer;
    SETM_RETURN_IF_ERROR(CreateScratch(
        "CREATE " + mem + "TABLE setm_r1 (trans_id INT, item1 INT)",
        "setm_r1"));
    auto r = Run("INSERT INTO setm_r1 SELECT s.trans_id, s.item FROM " +
                 sales_table + " s ORDER BY s.trans_id, s.item");
    if (!r.ok()) return r.status();
    SETM_RETURN_IF_ERROR(CreateScratch(
        "CREATE MEMORY TABLE setm_c1 (item1 INT, cnt BIGINT)", "setm_c1"));
    r = Run(
        "INSERT INTO setm_c1 SELECT p.item1, COUNT(*) FROM setm_r1 p "
        "GROUP BY p.item1 HAVING COUNT(*) >= :minsupport",
        params);
    if (!r.ok()) return r.status();
    auto c1 = Run("SELECT item1, cnt FROM setm_c1");
    if (!c1.ok()) return c1.status();
    for (const Tuple& row : c1.value().rows) {
      result.itemsets.Add({row.value(0).AsInt32()}, row.value(1).AsInt64());
    }
    auto r1_table = db_->catalog()->GetTable("setm_r1");
    if (!r1_table.ok()) return r1_table.status();
    IterationStats stats;
    stats.k = 1;
    stats.r_prime_rows = r1_table.value()->num_rows();
    stats.r_rows = r1_table.value()->num_rows();
    stats.r_bytes = r1_table.value()->size_bytes();
    stats.r_pages = r1_table.value()->num_pages();
    stats.c_size = c1.value().rows.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(notify(stats));
  }

  // Main loop: the three statements of Section 4.1 per iteration.
  for (size_t k = 2;; ++k) {
    if (options.max_pattern_length != 0 && k > options.max_pattern_length) {
      break;
    }
    WallTimer iter_timer;
    const std::string rk_prev = "setm_r" + std::to_string(k - 1);
    const std::string rkp = "setm_r" + std::to_string(k) + "p";
    const std::string rk = "setm_r" + std::to_string(k);
    const std::string ck = "setm_c" + std::to_string(k);

    SETM_RETURN_IF_ERROR(CreateScratch(
        "CREATE " + mem + "TABLE " + rkp + " (trans_id INT, " +
            ItemColumnsDdl(k) + ")",
        rkp));
    // INSERT INTO R'_k SELECT p.trans_id, p.item_1.., q.item
    //   FROM R_{k-1} p, SALES q
    //   WHERE q.trans_id = p.trans_id AND q.item > p.item_{k-1}.
    auto r = Run("INSERT INTO " + rkp + " SELECT p.trans_id, " +
                 ItemList(k - 1, "p") + ", q.item FROM " + rk_prev + " p, " +
                 sales_table +
                 " q WHERE q.trans_id = p.trans_id AND q.item > p.item" +
                 std::to_string(k - 1));
    if (!r.ok()) return r.status();

    SETM_RETURN_IF_ERROR(CreateScratch(
        "CREATE MEMORY TABLE " + ck + " (" + ItemColumnsDdl(k) +
            ", cnt BIGINT)",
        ck));
    // INSERT INTO C_k SELECT items, COUNT(*) FROM R'_k
    //   GROUP BY items HAVING COUNT(*) >= :minsupport.
    r = Run("INSERT INTO " + ck + " SELECT " + ItemList(k, "p") +
                ", COUNT(*) FROM " + rkp + " p GROUP BY " + ItemList(k, "p") +
                " HAVING COUNT(*) >= :minsupport",
            params);
    if (!r.ok()) return r.status();

    auto ck_rows = Run("SELECT " + ItemList(k, "") + ", cnt FROM " + ck);
    if (!ck_rows.ok()) return ck_rows.status();

    // INSERT INTO R_k SELECT p.trans_id, p.items FROM R'_k p, C_k q
    //   WHERE p.item_i = q.item_i ... ORDER BY p.trans_id, p.items.
    SETM_RETURN_IF_ERROR(CreateScratch(
        "CREATE " + mem + "TABLE " + rk + " (trans_id INT, " +
            ItemColumnsDdl(k) + ")",
        rk));
    std::string filter_sql = "INSERT INTO " + rk + " SELECT p.trans_id, " +
                             ItemList(k, "p") + " FROM " + rkp + " p, " + ck +
                             " q WHERE ";
    for (size_t i = 1; i <= k; ++i) {
      if (i > 1) filter_sql += " AND ";
      filter_sql += "p.item" + std::to_string(i) + " = q.item" +
                    std::to_string(i);
    }
    filter_sql += " ORDER BY p.trans_id, " + ItemList(k, "p");
    r = Run(filter_sql);
    if (!r.ok()) return r.status();

    auto rkp_table = db_->catalog()->GetTable(rkp);
    if (!rkp_table.ok()) return rkp_table.status();
    auto rk_table = db_->catalog()->GetTable(rk);
    if (!rk_table.ok()) return rk_table.status();

    IterationStats stats;
    stats.k = k;
    stats.r_prime_rows = rkp_table.value()->num_rows();
    stats.r_rows = rk_table.value()->num_rows();
    stats.r_bytes = rk_table.value()->size_bytes();
    stats.r_pages = rk_table.value()->num_pages();
    stats.c_size = ck_rows.value().rows.size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);

    for (const Tuple& row : ck_rows.value().rows) {
      std::vector<ItemId> items;
      items.reserve(k);
      for (size_t i = 0; i < k; ++i) items.push_back(row.value(i).AsInt32());
      result.itemsets.Add(std::move(items), row.value(k).AsInt64());
    }
    SETM_RETURN_IF_ERROR(notify(stats));

    if (rk_table.value()->num_rows() == 0) break;
  }

  result.itemsets.Normalize();
  result.total_seconds = total_timer.ElapsedSeconds();
  result.io = Diff(*db_->io_stats(), io_before);
  return result;
}

}  // namespace setm

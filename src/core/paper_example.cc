#include "core/paper_example.h"

namespace setm {

namespace {
// A=0, B=1, C=2, D=3, E=4, F=5, G=6, H=7.
constexpr ItemId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, G = 6, H = 7;
}  // namespace

TransactionDb PaperExampleTransactions() {
  return TransactionDb{
      {10, {A, B, C}}, {20, {A, B, D}}, {30, {A, B, C}}, {40, {B, C, D}},
      {50, {A, C, G}}, {60, {A, D, G}}, {70, {A, E, H}}, {80, {D, E, F}},
      {90, {D, E, F}}, {99, {D, E, F}},
  };
}

MiningOptions PaperExampleOptions() {
  MiningOptions options;
  options.min_support = 0.30;
  options.min_confidence = 0.70;
  return options;
}

std::string PaperItemName(ItemId id) {
  if (id >= 0 && id < 8) return std::string(1, static_cast<char>('A' + id));
  return std::to_string(id);
}

}  // namespace setm

#include "core/types.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace setm {

std::string ItemsetKey(const std::vector<ItemId>& items) {
  std::string key;
  key.resize(items.size() * sizeof(ItemId));
  std::memcpy(key.data(), items.data(), key.size());
  return key;
}

void FrequentItemsets::Add(std::vector<ItemId> items, int64_t count) {
  SETM_DCHECK(std::is_sorted(items.begin(), items.end()));
  const size_t k = items.size();
  SETM_DCHECK(k >= 1);
  if (by_size_.size() < k) by_size_.resize(k);
  index_[ItemsetKey(items)] = count;
  by_size_[k - 1].push_back(PatternCount{std::move(items), count});
}

int64_t FrequentItemsets::CountOf(const std::vector<ItemId>& items) const {
  auto it = index_.find(ItemsetKey(items));
  return it == index_.end() ? 0 : it->second;
}

const std::vector<PatternCount>& FrequentItemsets::OfSize(size_t k) const {
  static const std::vector<PatternCount> kEmpty;
  if (k == 0 || k > by_size_.size()) return kEmpty;
  return by_size_[k - 1];
}

size_t FrequentItemsets::TotalPatterns() const {
  size_t total = 0;
  for (const auto& level : by_size_) total += level.size();
  return total;
}

void FrequentItemsets::Normalize() {
  for (auto& level : by_size_) {
    std::sort(level.begin(), level.end(),
              [](const PatternCount& a, const PatternCount& b) {
                return a.items < b.items;
              });
  }
  // Trim empty trailing levels so MaxSize() is exact.
  while (!by_size_.empty() && by_size_.back().empty()) by_size_.pop_back();
}

bool FrequentItemsets::operator==(const FrequentItemsets& o) const {
  return by_size_ == o.by_size_;
}

int64_t ResolveMinSupportCount(const MiningOptions& options,
                               uint64_t num_transactions) {
  if (options.min_support_count > 0) return options.min_support_count;
  const double raw = options.min_support * static_cast<double>(num_transactions);
  int64_t count = static_cast<int64_t>(std::ceil(raw - 1e-9));
  return std::max<int64_t>(count, 1);
}

Status NotifyIteration(const MiningOptions& options,
                       const IterationStats& stats) {
  // Every miner reports finished iterations through here, so this one seam
  // feeds the iteration metrics for all algorithms — observer or not.
  static obs::Counter* iterations = obs::MetricsRegistry::Global()->GetCounter(
      "setm_mine_iterations_total", "Mining iterations completed");
  static obs::Histogram* micros = obs::MetricsRegistry::Global()->GetHistogram(
      "setm_mine_iteration_micros", "Microseconds per mining iteration");
  iterations->Increment();
  micros->Observe(static_cast<uint64_t>(stats.seconds * 1e6));
  if (options.observer == nullptr) return Status::OK();
  if (options.observer->OnIteration(stats)) return Status::OK();
  return Status::Cancelled("mining cancelled by observer after iteration k=" +
                           std::to_string(stats.k));
}

Status ValidateTransactions(const TransactionDb& db) {
  for (size_t i = 0; i < db.size(); ++i) {
    const Transaction& t = db[i];
    for (size_t j = 0; j < t.items.size(); ++j) {
      if (t.items[j] < 0) {
        return Status::InvalidArgument("transaction " + std::to_string(t.id) +
                                       " has a negative item");
      }
      if (j > 0 && t.items[j] <= t.items[j - 1]) {
        return Status::InvalidArgument("transaction " + std::to_string(t.id) +
                                       " items not sorted/unique");
      }
    }
  }
  return Status::OK();
}

}  // namespace setm

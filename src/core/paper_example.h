#ifndef SETM_CORE_PAPER_EXAMPLE_H_
#define SETM_CORE_PAPER_EXAMPLE_H_

#include <string>

#include "core/types.h"

namespace setm {

/// The worked example of Sections 4.2 and 5: ten transactions of three
/// items each, mined at 30% minimum support and 70% minimum confidence.
///
/// The OCR of Figure 1 is partially garbled; the data set below was
/// reconstructed from the rule list of Section 5 and reproduces every
/// number stated in the paper (|AB|=3, |A|=6, |B|=4, IABI/IBI = 75%,
/// C2 = {AB, AC, BC, DE, DF, EF} all with count 3, C3 = {DEF:3}, and the
/// eleven rules with their confidence/support values):
///
///   10: A B C     40: B C D     70: A E H
///   20: A B D     50: A C G     80: D E F
///   30: A B C     60: A D G     90: D E F
///                               99: D E F
TransactionDb PaperExampleTransactions();

/// Mining options matching the example: 30% support, 70% confidence.
MiningOptions PaperExampleOptions();

/// Maps item ids 0..7 to the paper's item letters "A".."H".
std::string PaperItemName(ItemId id);

}  // namespace setm

#endif  // SETM_CORE_PAPER_EXAMPLE_H_

#ifndef SETM_CORE_MINING_CACHE_H_
#define SETM_CORE_MINING_CACHE_H_

#include <cstdint>
#include <string>

#include "incremental/itemset_store.h"
#include "relational/database.h"

namespace setm {

/// Counters of planner decisions — the cache's hit/miss ledger, reported
/// next to IoStats wherever mining statistics are printed. A "hit" is any
/// plan that avoided full mining (cache_filters + delta_derives); a "miss"
/// is a full_mines increment.
struct PlanStats {
  uint64_t plans = 0;          ///< mining requests planned
  uint64_t cache_filters = 0;  ///< answered by filtering stored levels
  uint64_t delta_derives = 0;  ///< answered through incremental derivation
  uint64_t full_mines = 0;     ///< answered by mining from scratch
  uint64_t write_backs = 0;    ///< store refreshes (Save) after answering
  uint64_t invalidations = 0;  ///< stored runs found unusable for the query

  /// One-line rendering, e.g.
  /// "plans=4 cache_filters=2 delta_derives=1 full_mines=1 write_backs=2
  ///  invalidations=0".
  std::string ToString() const;
};

/// The anti-monotone result cache over one ItemsetStore prefix.
///
/// The cache *is* the store: a mining run materialized at support `s`
/// algebraically contains the answer to every query at `s' >= s` over the
/// same data, and the store's one-row meta relation (source table, row
/// count, watermark, resolved threshold, pattern cap) is the cache key that
/// decides whether a stored run still speaks for the live table. This class
/// wraps ItemsetStore with the cache vocabulary the MiningPlanner uses:
/// Probe (read the key), LoadFiltered (serve a dominated query with zero
/// mining), Put (write-back) and Invalidate (drop a run that no longer
/// answers anything).
class MiningCache {
 public:
  MiningCache(Database* db, std::string prefix,
              TableBacking backing = TableBacking::kMemory);

  /// Reads the cache key — the stored run's meta row — without touching any
  /// level relation. NotFound when nothing is stored under the prefix or
  /// the stored run's source table has been dropped.
  Result<StoredRunMeta> Probe() const;

  /// Serves a dominated query from the stored relations: levels filtered to
  /// `support >= min_support_count` (and to the pattern cap when > 0), with
  /// the anti-monotone early stop. No mining happens.
  Result<StoredResult> LoadFiltered(int64_t min_support_count,
                                    uint64_t max_pattern_length = 0) const;

  /// Full unfiltered load (the DeltaMiner path reads through this).
  Result<StoredResult> LoadAll() const;

  /// Write-back: replaces the stored run.
  Status Put(const FrequentItemsets& itemsets, const StoredRunMeta& meta);

  /// Drops the stored run (idempotent).
  Status Invalidate();

  ItemsetStore* store() { return &store_; }
  const std::string& prefix() const { return store_.prefix(); }

 private:
  ItemsetStore store_;
};

}  // namespace setm

#endif  // SETM_CORE_MINING_CACHE_H_

#include "core/nested_loop_miner.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/timer.h"
#include "index/bplus_tree.h"

namespace setm {

Result<MiningResult> NestedLoopMiner::Mine(const TransactionDb& transactions,
                                           const MiningOptions& options) {
  SETM_RETURN_IF_ERROR(ValidateTransactions(transactions));
  MiningResult result;
  result.itemsets.num_transactions = transactions.size();
  const int64_t minsup = ResolveMinSupportCount(options, transactions.size());

  // --- Build the two SALES indexes (bulk-loaded from sorted entries). -----
  std::vector<BPlusTree::Entry> by_item_tid;
  std::vector<BPlusTree::Entry> by_tid;
  for (const Transaction& t : transactions) {
    for (ItemId item : t.items) {
      by_item_tid.push_back(
          {ComposeKey(static_cast<uint32_t>(item), static_cast<uint32_t>(t.id)),
           0});
      by_tid.push_back({ComposeKey(static_cast<uint32_t>(t.id), 0),
                        static_cast<uint64_t>(item)});
    }
  }
  std::sort(by_item_tid.begin(), by_item_tid.end());
  std::sort(by_tid.begin(), by_tid.end(),
            [](const BPlusTree::Entry& a, const BPlusTree::Entry& b) {
              return a.key < b.key || (a.key == b.key && a.value < b.value);
            });
  auto idx_item_tid_or = BPlusTree::BulkLoad(db_->pool(), by_item_tid);
  if (!idx_item_tid_or.ok()) return idx_item_tid_or.status();
  BPlusTree idx_item_tid = std::move(idx_item_tid_or).value();
  auto idx_tid_or = BPlusTree::BulkLoad(db_->pool(), by_tid);
  if (!idx_tid_or.ok()) return idx_tid_or.status();
  BPlusTree idx_tid = std::move(idx_tid_or).value();
  by_item_tid.clear();
  by_item_tid.shrink_to_fit();
  by_tid.clear();
  by_tid.shrink_to_fit();

  // Mining I/O is measured from here on (index build excluded).
  SETM_RETURN_IF_ERROR(db_->pool()->FlushAll());
  const IoStats io_before = *db_->io_stats();
  WallTimer total_timer;

  // --- C_1: one sequential range walk of the (item, trans_id) index. ------
  {
    WallTimer iter_timer;
    auto it_or = idx_item_tid.Begin();
    if (!it_or.ok()) return it_or.status();
    auto it = std::move(it_or).value();
    bool have_current = false;
    ItemId current = 0;
    int64_t count = 0;
    auto flush = [&]() {
      if (have_current && count >= minsup) {
        result.itemsets.Add({current}, count);
      }
    };
    while (it.Valid()) {
      const ItemId item = static_cast<ItemId>(KeyHigh(it.entry().key));
      if (!have_current || item != current) {
        flush();
        current = item;
        count = 0;
        have_current = true;
      }
      ++count;
      SETM_RETURN_IF_ERROR(it.Next());
    }
    flush();
    IterationStats stats;
    stats.k = 1;
    stats.c_size = result.itemsets.OfSize(1).size();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
  }

  // --- C_k from C_{k-1} via index nested loops (steps 1-5). ---------------
  for (size_t k = 2;; ++k) {
    if (options.max_pattern_length != 0 && k > options.max_pattern_length) {
      break;
    }
    const auto& prev = result.itemsets.OfSize(k - 1);
    if (prev.empty()) break;
    WallTimer iter_timer;

    // Extension counts, keyed by (pattern items..., extension item).
    std::map<std::vector<ItemId>, int64_t> counts;
    std::vector<TransactionId> tids;
    for (const PatternCount& c : prev) {
      // Step 1: transactions containing item_1.
      tids.clear();
      {
        auto it_or =
            idx_item_tid.Seek(ComposeKey(static_cast<uint32_t>(c.items[0]), 0));
        if (!it_or.ok()) return it_or.status();
        auto it = std::move(it_or).value();
        while (it.Valid() &&
               KeyHigh(it.entry().key) == static_cast<uint32_t>(c.items[0])) {
          tids.push_back(static_cast<TransactionId>(KeyLow(it.entry().key)));
          SETM_RETURN_IF_ERROR(it.Next());
        }
      }
      // Steps 2-3: point probes for item_2 .. item_{k-1}.
      for (TransactionId tid : tids) {
        bool all = true;
        for (size_t i = 1; i + 1 <= c.items.size() && all; ++i) {
          auto has = idx_item_tid.Contains(
              ComposeKey(static_cast<uint32_t>(c.items[i]),
                         static_cast<uint32_t>(tid)),
              0);
          if (!has.ok()) return has.status();
          all = has.value();
        }
        if (!all) continue;
        // Step 4: enumerate the transaction's items via the (trans_id)
        // index and keep r_k.item > c.item_{k-1}.
        auto it_or = idx_tid.Seek(ComposeKey(static_cast<uint32_t>(tid), 0));
        if (!it_or.ok()) return it_or.status();
        auto it = std::move(it_or).value();
        std::vector<ItemId> extended = c.items;
        extended.push_back(0);
        while (it.Valid() &&
               KeyHigh(it.entry().key) == static_cast<uint32_t>(tid)) {
          const ItemId item = static_cast<ItemId>(it.entry().value);
          if (item > c.items.back()) {
            extended.back() = item;
            ++counts[extended];
          }
          SETM_RETURN_IF_ERROR(it.Next());
        }
      }
    }

    // Step 5: apply the minimum-support constraint.
    size_t added = 0;
    for (const auto& [items, count] : counts) {
      if (count >= minsup) {
        result.itemsets.Add(items, count);
        ++added;
      }
    }
    IterationStats stats;
    stats.k = k;
    stats.r_prime_rows = counts.size();
    stats.c_size = added;
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
    SETM_RETURN_IF_ERROR(NotifyIteration(options, stats));
    if (added == 0) break;
  }

  result.itemsets.Normalize();
  result.total_seconds = total_timer.ElapsedSeconds();
  result.io = Diff(*db_->io_stats(), io_before);
  return result;
}

}  // namespace setm

#include "core/classed_mining.h"

#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "exec/exec_context.h"
#include "exec/external_sort.h"
#include "exec/hash_operators.h"
#include "exec/operators.h"

namespace setm {

namespace {

/// Hash key over (class, items...).
std::string ClassedKey(ClassId cls, const std::vector<ItemId>& items) {
  std::string key;
  key.resize(sizeof(ClassId) + items.size() * sizeof(ItemId));
  std::memcpy(key.data(), &cls, sizeof(ClassId));
  std::memcpy(key.data() + sizeof(ClassId), items.data(),
              items.size() * sizeof(ItemId));
  return key;
}

/// Group columns (class, item_1 .. item_k) of a classed R_k row:
/// column 0 is class, 1 is trans_id, 2.. are items.
std::vector<size_t> ClassItemColumns(size_t k) {
  std::vector<size_t> cols;
  cols.reserve(k + 1);
  cols.push_back(0);
  for (size_t i = 2; i < k + 2; ++i) cols.push_back(i);
  return cols;
}

}  // namespace

Schema ClassedSetmMiner::ClassedRkSchema(size_t k) {
  Schema schema;
  schema.AddColumn(Column{"class", ValueType::kInt32});
  schema.AddColumn(Column{"trans_id", ValueType::kInt32});
  for (size_t i = 1; i <= k; ++i) {
    schema.AddColumn(Column{"item" + std::to_string(i), ValueType::kInt32});
  }
  return schema;
}

Result<ClassedMiningResult> ClassedSetmMiner::Mine(
    const TransactionDb& transactions, const CustomerClasses& classes,
    const MiningOptions& options) {
  SETM_RETURN_IF_ERROR(ValidateTransactions(transactions));
  WallTimer total_timer;
  ExecContext ctx = ExecContext::From(db_);
  ClassedMiningResult result;

  // Resolve the CUSTOMERS relation into a lookup; duplicates are an error.
  std::unordered_map<TransactionId, ClassId> class_of;
  for (const auto& [tid, cls] : classes.assignments) {
    if (!class_of.emplace(tid, cls).second) {
      return Status::InvalidArgument("transaction " + std::to_string(tid) +
                                     " assigned to two classes");
    }
  }
  auto lookup = [&](TransactionId tid) {
    auto it = class_of.find(tid);
    return it == class_of.end() ? CustomerClasses::kDefaultClass : it->second;
  };

  // Per-class transaction totals and support thresholds.
  std::unordered_map<ClassId, uint64_t> class_txns;
  for (const Transaction& t : transactions) ++class_txns[lookup(t.id)];
  std::unordered_map<ClassId, int64_t> minsup;
  for (const auto& [cls, n] : class_txns) {
    minsup[cls] = ResolveMinSupportCount(options, n);
    result.per_class[cls].num_transactions = n;
  }

  auto make_table = [&](const std::string& name,
                        Schema schema) -> Result<std::unique_ptr<Table>> {
    if (setm_options_.storage == TableBacking::kMemory) {
      return std::unique_ptr<Table>(
          std::make_unique<MemTable>(name, std::move(schema)));
    }
    // Scratch relations of the classed pass are dropped with the run:
    // unlogged, so they never inflate the write-ahead log.
    auto t = HeapTable::Create(name, std::move(schema), db_->pool(),
                               db_->UnloggedPageTagger());
    if (!t.ok()) return t.status();
    return std::unique_ptr<Table>(std::move(t).value());
  };

  // --- R_1 := SALES ⋈ CUSTOMERS, sorted on (trans_id, item). -------------
  // (Logically the join of the paper's extension; built directly since the
  // class is a function of trans_id.)
  auto r1_or = make_table("cr1", ClassedRkSchema(1));
  if (!r1_or.ok()) return r1_or.status();
  std::unique_ptr<Table> r1 = std::move(r1_or).value();
  for (const Transaction& t : transactions) {
    const ClassId cls = lookup(t.id);
    for (ItemId item : t.items) {
      SETM_RETURN_IF_ERROR(r1->Insert(Tuple(
          {Value::Int32(cls), Value::Int32(t.id), Value::Int32(item)})));
    }
  }

  // Streaming (class, items..) -> count aggregation with per-class
  // thresholds; fills per_class C_k and the key set for the filter step.
  auto count_level =
      [&](Table* rk_prime, size_t k,
          std::unordered_set<std::string>* keep) -> Result<uint64_t> {
    auto counts = std::make_unique<HashGroupCountIterator>(
        rk_prime->Scan(), ClassItemColumns(k), /*min_count=*/1);
    Tuple row;
    uint64_t kept = 0;
    while (true) {
      auto more = counts->Next(&row);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      const ClassId cls = row.value(0).AsInt32();
      const int64_t count = row.value(k + 1).AsInt64();
      if (count < minsup[cls]) continue;
      std::vector<ItemId> items;
      items.reserve(k);
      for (size_t i = 1; i <= k; ++i) {
        items.push_back(row.value(i).AsInt32());
      }
      keep->insert(ClassedKey(cls, items));
      result.per_class[cls].Add(std::move(items), count);
      ++kept;
    }
    return kept;
  };

  // --- C_1 and the level-1 filter. ----------------------------------------
  std::unique_ptr<Table> r_prev;
  {
    WallTimer iter_timer;
    std::unordered_set<std::string> keep;
    auto kept = count_level(r1.get(), 1, &keep);
    if (!kept.ok()) return kept.status();
    IterationStats stats;
    stats.k = 1;
    stats.r_prime_rows = r1->num_rows();
    stats.r_rows = r1->num_rows();
    stats.r_bytes = r1->size_bytes();
    stats.r_pages = r1->num_pages();
    stats.c_size = kept.value();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);
  }

  // Sort R_1 on (trans_id, item) for the merge-scan loop. Columns:
  // class=0, trans_id=1, item=2.
  {
    ExternalSort sort(ctx, ClassedRkSchema(1), TupleComparator({1, 2}));
    auto it = r1->Scan();
    Tuple row;
    while (true) {
      auto more = it->Next(&row);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      SETM_RETURN_IF_ERROR(sort.Add(std::move(row)));
    }
    auto sorted_or = sort.Finish();
    if (!sorted_or.ok()) return sorted_or.status();
    auto fresh = make_table("cr1s", ClassedRkSchema(1));
    if (!fresh.ok()) return fresh.status();
    SETM_RETURN_IF_ERROR(
        MaterializeInto(sorted_or.value().get(), fresh.value().get()));
    r1 = std::move(fresh).value();
  }

  // --- Main loop, as in SetmMiner but with the class column riding along.
  for (size_t k = 2;; ++k) {
    if (options.max_pattern_length != 0 && k > options.max_pattern_length) {
      break;
    }
    WallTimer iter_timer;
    const Table* left = r_prev == nullptr ? r1.get() : r_prev.get();
    if (left->num_rows() == 0) break;

    // R'_k := merge-scan(R_{k-1}, R_1) on trans_id, q.item > p.item_{k-1}.
    auto rk_prime_or =
        make_table("cr" + std::to_string(k) + "p", ClassedRkSchema(k));
    if (!rk_prime_or.ok()) return rk_prime_or.status();
    std::unique_ptr<Table> rk_prime = std::move(rk_prime_or).value();
    {
      // Left row: (class, tid, i1..i_{k-1}); right row: (class, tid, item).
      const size_t left_width = k + 1;           // columns in the left row
      const size_t last_left_item = left_width - 1;
      const size_t right_item = left_width + 2;  // skip right class, tid
      ExprPtr residual = Binary(BinaryOp::kGt, Col(right_item, "q.item"),
                                Col(last_left_item, "p.item_last"));
      MergeJoinIterator join(left->Scan(), r1->Scan(), {1}, {1},
                             std::move(residual));
      Tuple row;
      std::vector<Value> values;
      while (true) {
        auto more = join.Next(&row);
        if (!more.ok()) return more.status();
        if (!more.value()) break;
        values.clear();
        for (size_t i = 0; i < left_width; ++i) values.push_back(row.value(i));
        values.push_back(row.value(right_item));
        SETM_RETURN_IF_ERROR(rk_prime->Insert(Tuple(values)));
      }
    }

    // C_k per class, then filter R'_k by the surviving (class, items) keys.
    std::unordered_set<std::string> keep;
    auto kept = count_level(rk_prime.get(), k, &keep);
    if (!kept.ok()) return kept.status();

    auto rk_or = make_table("cr" + std::to_string(k), ClassedRkSchema(k));
    if (!rk_or.ok()) return rk_or.status();
    std::unique_ptr<Table> rk = std::move(rk_or).value();
    if (!keep.empty()) {
      // Sorted back on (trans_id, items) for the next merge-scan.
      std::vector<size_t> order;
      for (size_t i = 1; i < k + 2; ++i) order.push_back(i);
      ExternalSort sort(ctx, ClassedRkSchema(k), TupleComparator(order));
      auto it = rk_prime->Scan();
      Tuple row;
      std::vector<ItemId> items(k);
      while (true) {
        auto more = it->Next(&row);
        if (!more.ok()) return more.status();
        if (!more.value()) break;
        for (size_t i = 0; i < k; ++i) items[i] = row.value(i + 2).AsInt32();
        if (keep.count(ClassedKey(row.value(0).AsInt32(), items)) != 0) {
          SETM_RETURN_IF_ERROR(sort.Add(row));
        }
      }
      auto sorted_or = sort.Finish();
      if (!sorted_or.ok()) return sorted_or.status();
      SETM_RETURN_IF_ERROR(MaterializeInto(sorted_or.value().get(), rk.get()));
    }

    IterationStats stats;
    stats.k = k;
    stats.r_prime_rows = rk_prime->num_rows();
    stats.r_rows = rk->num_rows();
    stats.r_bytes = rk->size_bytes();
    stats.r_pages = rk->num_pages();
    stats.c_size = kept.value();
    stats.seconds = iter_timer.ElapsedSeconds();
    result.iterations.push_back(stats);

    if (rk->num_rows() == 0) break;
    r_prev = std::move(rk);
  }

  for (auto& [cls, itemsets] : result.per_class) itemsets.Normalize();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace setm

#include "storage/storage_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace setm {

namespace {

// Process-wide page-traffic series, shared by every backend instance (the
// per-operation ledgers stay per-IoStats). Resolved once; reads after the
// magic-static init are lock-free.
struct GlobalIoMetrics {
  obs::Counter* reads;
  obs::Counter* writes;
  obs::Counter* allocations;
};

const GlobalIoMetrics& IoMetrics() {
  static const GlobalIoMetrics metrics = [] {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
    GlobalIoMetrics m;
    m.reads = registry->GetCounter("setm_io_page_reads_total",
                                   "Pages read from storage backends");
    m.writes = registry->GetCounter("setm_io_page_writes_total",
                                    "Pages written to storage backends");
    m.allocations = registry->GetCounter(
        "setm_io_pages_allocated_total",
        "Fresh pages allocated in storage backends");
    return m;
  }();
  return metrics;
}

}  // namespace

bool StorageBackend::ClassifySequential(PageId id) {
  std::lock_guard<std::mutex> lock(heads_mutex_);
  for (PageId& head : heads_) {
    if (head != kInvalidPageId && (id == head || id == head + 1)) {
      head = id;
      return true;
    }
  }
  // New stream: evict the round-robin victim slot.
  heads_[next_head_] = id;
  next_head_ = (next_head_ + 1) % kStreamHeads;
  return false;
}

void StorageBackend::AccountRead(PageId id) {
  IoMetrics().reads->Increment();
  if (stats_ == nullptr) return;
  ++stats_->page_reads;
  if (ClassifySequential(id)) {
    ++stats_->sequential_reads;
  } else {
    ++stats_->random_reads;
  }
}

void StorageBackend::AccountWrite(PageId id) {
  IoMetrics().writes->Increment();
  if (stats_ == nullptr) return;
  ++stats_->page_writes;
  if (ClassifySequential(id)) {
    ++stats_->sequential_writes;
  } else {
    ++stats_->random_writes;
  }
}

void StorageBackend::AccountAllocation() {
  IoMetrics().allocations->Increment();
  if (stats_ != nullptr) ++stats_->pages_allocated;
}

// ---------------------------------------------------------------------------
// MemoryBackend
// ---------------------------------------------------------------------------

Result<PageId> MemoryBackend::AllocatePage() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pages_.size() >= static_cast<size_t>(kInvalidPageId)) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  auto page = std::make_unique<Page>();
  page->Clear();
  pages_.push_back(std::move(page));
  AccountAllocation();
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemoryBackend::ReadPage(PageId id, Page* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= pages_.size()) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(id));
  }
  std::memcpy(out->data, pages_[id]->data, kPageSize);
  AccountRead(id);
  return Status::OK();
}

Status MemoryBackend::WritePage(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= pages_.size()) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(id));
  }
  std::memcpy(pages_[id]->data, page.data, kPageSize);
  AccountWrite(id);
  return Status::OK();
}

uint64_t MemoryBackend::NumPages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pages_.size();
}

// ---------------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------------

Result<std::unique_ptr<FileBackend>> FileBackend::Open(const std::string& path,
                                                       IoStats* stats,
                                                       bool truncate) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError("lseek(" + path + "): " + std::strerror(errno));
  }
  uint64_t num_pages = static_cast<uint64_t>(size) / kPageSize;
  return std::unique_ptr<FileBackend>(
      new FileBackend(path, fd, num_pages, stats));
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> FileBackend::AllocatePage() {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  const uint64_t next = num_pages_.load(std::memory_order_relaxed);
  if (next >= static_cast<uint64_t>(kInvalidPageId)) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  Page zero;
  zero.Clear();
  const off_t off = static_cast<off_t>(next) * kPageSize;
  ssize_t n = ::pwrite(fd_, zero.data, kPageSize, off);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite(" + path_ + "): " + std::strerror(errno));
  }
  AccountAllocation();
  num_pages_.store(next + 1, std::memory_order_release);
  return static_cast<PageId>(next);
}

Status FileBackend::ReadPage(PageId id, Page* out) {
  if (id >= NumPages()) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(id));
  }
  const off_t off = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pread(fd_, out->data, kPageSize, off);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pread(" + path_ + "): " + std::strerror(errno));
  }
  AccountRead(id);
  return Status::OK();
}

Status FileBackend::WritePage(PageId id, const Page& page) {
  if (id >= NumPages()) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(id));
  }
  const off_t off = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pwrite(fd_, page.data, kPageSize, off);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite(" + path_ + "): " + std::strerror(errno));
  }
  AccountWrite(id);
  return Status::OK();
}

Status FileBackend::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync(" + path_ + "): " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace setm

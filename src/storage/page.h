#ifndef SETM_STORAGE_PAGE_H_
#define SETM_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace setm {

/// Page size used throughout the engine. The paper's analysis (Sections 3.2
/// and 4.3) assumes 4 Kbyte pages; we keep the same constant so measured page
/// counts are directly comparable with the analytical model.
inline constexpr size_t kPageSize = 4096;

/// Identifier of a page within a storage backend.
using PageId = uint32_t;

/// Sentinel for "no page" (end of page chains, unset links).
inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// A fixed-size block of bytes as stored on disk. Pages carry no inherent
/// structure; table heaps and B+-tree nodes overlay their own layouts.
struct alignas(8) Page {
  char data[kPageSize];

  /// Zeroes the page contents.
  void Clear() { std::memset(data, 0, kPageSize); }

  /// Typed view of the page contents at byte offset `off`.
  template <typename T>
  T* As(size_t off = 0) {
    return reinterpret_cast<T*>(data + off);
  }
  template <typename T>
  const T* As(size_t off = 0) const {
    return reinterpret_cast<const T*>(data + off);
  }
};

static_assert(sizeof(Page) == kPageSize, "Page must be exactly one page");

}  // namespace setm

#endif  // SETM_STORAGE_PAGE_H_

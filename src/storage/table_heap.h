#ifndef SETM_STORAGE_TABLE_HEAP_H_
#define SETM_STORAGE_TABLE_HEAP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace setm {

/// Physical address of a record in a table heap.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid& other) const {
    return page_id == other.page_id && slot == other.slot;
  }
};

/// An unordered collection of variable-length records stored in a chain of
/// slotted pages, in the classic textbook layout:
///
///   [header | slot 0 | slot 1 | ... | free space ... | rec 1 | rec 0]
///
/// Records are addressed by Rid and never move within their page; deletion
/// tombstones the slot. Inserts append to the tail page and allocate a new
/// page when the record does not fit — exactly the sequential write pattern
/// SETM's intermediate relations R_k rely on.
class TableHeap {
 public:
  /// Observes every page id added to the chain — the seam the database uses
  /// to tag an unlogged table's pages for WAL bypass.
  using PageHook = std::function<void(PageId)>;

  /// Creates a fresh heap with one empty page. `page_hook`, if set, fires
  /// for that page and for every page a later Insert chains on.
  static Result<TableHeap> Create(BufferPool* pool,
                                  PageHook page_hook = nullptr);

  /// Re-opens an existing heap rooted at `first_page`. The tail is located
  /// by walking the chain (O(pages), done once at open). A chain that does
  /// not terminate within the backend's page count — a cycle or a next
  /// pointer into zeroed/foreign pages — fails with Corruption instead of
  /// looping forever, so reopening a damaged file stays a clean error.
  static Result<TableHeap> Open(BufferPool* pool, PageId first_page);

  TableHeap(TableHeap&&) = default;
  TableHeap& operator=(TableHeap&&) = default;

  /// Appends a record; fails with InvalidArgument if it can never fit in a
  /// page, IOError/ResourceExhausted on storage trouble.
  Result<Rid> Insert(std::string_view record);

  /// Reads the record at `rid` into `*out`. NotFound for tombstoned slots.
  Status Get(const Rid& rid, std::string* out) const;

  /// Tombstones the record at `rid` (idempotent).
  Status Delete(const Rid& rid);

  /// Number of live (non-deleted) records.
  uint64_t live_records() const { return live_records_; }

  /// Total bytes of live records (maintained on insert/delete; Open()
  /// recomputes it from the chain walk, so it is always derived from the
  /// heap itself rather than trusted from external metadata).
  uint64_t live_bytes() const { return live_bytes_; }

  /// First page of the chain (persist this to re-open the heap).
  PageId first_page() const { return first_page_; }

  /// Tail page of the chain (informational; Open() re-derives it).
  PageId last_page() const { return last_page_; }

  /// Number of pages in the chain — the ||R|| of the paper's formulas.
  uint64_t num_pages() const { return num_pages_; }

  /// Appends every page id of the chain to `*out` (walks the chain; same
  /// cycle guard as Open). Used to reclaim a dropped table's pages into the
  /// database free list.
  Status AppendChainPages(std::vector<PageId>* out) const;

  /// Chain walk without constructing a heap — reads only each page's next
  /// pointer, never its slots, so it is safe on chains whose record data a
  /// crash may have torn (reclaiming an unlogged table's old chain).
  static Status CollectChainPages(BufferPool* pool, PageId first,
                                  std::vector<PageId>* out);

  /// Forward iterator over live records in storage order.
  ///
  ///     for (auto it = heap.Begin(); it.Valid(); ) {
  ///       use(it.record());
  ///       if (!it.Next().ok()) break;
  ///     }
  class Iterator {
   public:
    /// True when positioned on a live record.
    bool Valid() const { return valid_; }
    /// The current record bytes (owned copy, stable until Next()).
    const std::string& record() const { return record_; }
    /// The current record's address.
    const Rid& rid() const { return rid_; }
    /// Advances to the next live record; Valid() turns false at the end.
    Status Next();

   private:
    friend class TableHeap;
    Iterator(const TableHeap* heap, PageId page, uint16_t slot)
        : heap_(heap), rid_{page, slot} {}
    /// Positions on the first live record at or after rid_.
    Status SeekForward();

    const TableHeap* heap_ = nullptr;
    Rid rid_;
    std::string record_;
    bool valid_ = false;
  };

  /// Iterator positioned at the first live record.
  /// On I/O error the iterator is invalid (treated as empty).
  Iterator Begin() const;

 private:
  TableHeap(BufferPool* pool, PageId first, PageId last, uint64_t pages)
      : pool_(pool), first_page_(first), last_page_(last), num_pages_(pages) {}

  BufferPool* pool_;
  PageId first_page_;
  PageId last_page_;
  uint64_t num_pages_;
  uint64_t live_records_ = 0;
  uint64_t live_bytes_ = 0;
  PageHook page_hook_;
};

}  // namespace setm

#endif  // SETM_STORAGE_TABLE_HEAP_H_

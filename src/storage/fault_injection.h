#ifndef SETM_STORAGE_FAULT_INJECTION_H_
#define SETM_STORAGE_FAULT_INJECTION_H_

#include <memory>

#include "storage/storage_backend.h"

namespace setm {

/// A StorageBackend decorator that starts failing after a configurable
/// number of operations — the RocksDB FaultInjectionTestEnv idea, used to
/// verify that I/O errors propagate as Status through every layer (buffer
/// pool, table heap, sorts, miners) instead of crashing or corrupting.
///
///     MemoryBackend real(&stats);
///     FaultInjectionBackend flaky(&real, /*fail_after_ops=*/100);
///     BufferPool pool(&flaky, 16);   // op #101 onward returns IOError
class FaultInjectionBackend : public StorageBackend {
 public:
  /// Operations (allocate/read/write) up to `fail_after_ops` succeed; every
  /// later one fails with IOError. The inner backend must outlive this.
  FaultInjectionBackend(StorageBackend* inner, uint64_t fail_after_ops)
      : StorageBackend(nullptr),
        inner_(inner),
        fail_after_ops_(fail_after_ops) {}

  Result<PageId> AllocatePage() override {
    SETM_RETURN_IF_ERROR(MaybeFail("AllocatePage"));
    return inner_->AllocatePage();
  }
  Status ReadPage(PageId id, Page* out) override {
    SETM_RETURN_IF_ERROR(MaybeFail("ReadPage"));
    return inner_->ReadPage(id, out);
  }
  Status WritePage(PageId id, const Page& page) override {
    if (id == poisoned_write_) {
      return Status::IOError("injected fault: page " + std::to_string(id) +
                             " is write-poisoned");
    }
    SETM_RETURN_IF_ERROR(MaybeFail("WritePage"));
    return inner_->WritePage(id, page);
  }
  Status Sync() override {
    SETM_RETURN_IF_ERROR(MaybeFail("Sync"));
    return inner_->Sync();
  }
  uint64_t NumPages() const override { return inner_->NumPages(); }

  /// Operations observed so far.
  uint64_t ops() const { return ops_; }

  /// Re-arms the trigger (e.g. to let cleanup succeed after the test).
  void Heal() { fail_after_ops_ = ~0ull; }

  /// Makes every write of one specific page fail (independent of the op
  /// budget) — models a single bad sector. The buffer pool's retryable
  /// eviction must route around such a page. Unpoison with
  /// `PoisonWrites(kInvalidPageId)`.
  void PoisonWrites(PageId id) { poisoned_write_ = id; }

 private:
  Status MaybeFail(const char* op) {
    if (++ops_ > fail_after_ops_) {
      return Status::IOError(std::string("injected fault in ") + op +
                             " after " + std::to_string(fail_after_ops_) +
                             " ops");
    }
    return Status::OK();
  }

  StorageBackend* inner_;
  uint64_t fail_after_ops_;
  uint64_t ops_ = 0;
  PageId poisoned_write_ = kInvalidPageId;
};

}  // namespace setm

#endif  // SETM_STORAGE_FAULT_INJECTION_H_

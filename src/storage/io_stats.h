#ifndef SETM_STORAGE_IO_STATS_H_
#define SETM_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace setm {

/// Counters for page-level I/O, split into sequential and random accesses.
///
/// The paper analyzes its two mining strategies in page accesses and converts
/// them to time with a simple disk model: a random page access costs ~20 ms,
/// a sequential one ~10 ms (Sections 3.2 and 4.3). Every storage backend
/// accumulates into one of these structs so experiments can report measured
/// page counts and model-derived times next to wall-clock time.
///
/// Counters are atomic so one ledger can be shared by backends driven from
/// concurrent worker threads (the parallel partitioned miner) without losing
/// increments; the struct itself still behaves as a copyable value (copies
/// are relaxed snapshots, exact once the workers have been joined).
struct IoStats {
  std::atomic<uint64_t> page_reads{0};   ///< total pages read from the backend
  std::atomic<uint64_t> page_writes{0};  ///< total pages written to the backend
  /// Reads at last accessed page + 1 (or same).
  std::atomic<uint64_t> sequential_reads{0};
  std::atomic<uint64_t> random_reads{0};  ///< all other reads
  std::atomic<uint64_t> sequential_writes{0};
  std::atomic<uint64_t> random_writes{0};
  std::atomic<uint64_t> pages_allocated{0};  ///< fresh pages handed out

  IoStats() = default;
  IoStats(const IoStats& other) { *this = other; }
  IoStats& operator=(const IoStats& other) {
    page_reads.store(other.page_reads.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    page_writes.store(other.page_writes.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    sequential_reads.store(
        other.sequential_reads.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    random_reads.store(other.random_reads.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    sequential_writes.store(
        other.sequential_writes.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    random_writes.store(other.random_writes.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    pages_allocated.store(
        other.pages_allocated.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  /// Total page accesses (reads + writes), the unit of the paper's formulas.
  uint64_t TotalAccesses() const { return page_reads + page_writes; }

  /// Time in seconds under the paper's disk model.
  /// Defaults: 20 ms per random access, 10 ms per sequential access.
  double ModelSeconds(double random_ms = 20.0, double sequential_ms = 10.0) const {
    const double rand_ops =
        static_cast<double>(random_reads + random_writes);
    const double seq_ops =
        static_cast<double>(sequential_reads + sequential_writes);
    return (rand_ops * random_ms + seq_ops * sequential_ms) / 1000.0;
  }

  /// Resets all counters to zero.
  void Reset() { *this = IoStats{}; }

  /// Element-wise accumulation.
  IoStats& operator+=(const IoStats& other) {
    page_reads += other.page_reads.load(std::memory_order_relaxed);
    page_writes += other.page_writes.load(std::memory_order_relaxed);
    sequential_reads +=
        other.sequential_reads.load(std::memory_order_relaxed);
    random_reads += other.random_reads.load(std::memory_order_relaxed);
    sequential_writes +=
        other.sequential_writes.load(std::memory_order_relaxed);
    random_writes += other.random_writes.load(std::memory_order_relaxed);
    pages_allocated += other.pages_allocated.load(std::memory_order_relaxed);
    return *this;
  }

  /// One-line human-readable rendering for bench output.
  std::string ToString() const;
};

/// Element-wise difference of two ledger snapshots (`after - before`) —
/// the page traffic attributable to one operation. Shared by every miner.
IoStats Diff(const IoStats& after, const IoStats& before);

}  // namespace setm

#endif  // SETM_STORAGE_IO_STATS_H_

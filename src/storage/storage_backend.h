#ifndef SETM_STORAGE_STORAGE_BACKEND_H_
#define SETM_STORAGE_STORAGE_BACKEND_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace setm {

/// Abstract page store: a flat, growable array of 4 KiB pages.
///
/// Implementations classify each access as sequential or random, mirroring
/// the cost model the paper uses in its analysis. Classification tracks a
/// small set of recent access positions ("stream heads", the way OS
/// readahead detects concurrent sequential streams): an access that
/// continues any tracked stream (same page or the next one) is sequential;
/// anything else is random and starts a new tracked stream. This keeps a
/// merge-scan join reading two tables alternately — perfectly sequential
/// per table — classified as sequential, as the paper's analysis assumes.
/// All accesses are accumulated into an IoStats owned by the caller, so
/// independent backends (base tables, sort run files) can share one ledger.
class StorageBackend {
 public:
  /// `stats` may be null (accounting disabled); otherwise must outlive this.
  explicit StorageBackend(IoStats* stats) : stats_(stats) {}
  virtual ~StorageBackend() = default;

  StorageBackend(const StorageBackend&) = delete;
  StorageBackend& operator=(const StorageBackend&) = delete;

  /// Appends a zeroed page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// Reads page `id` into `*out`. Fails with InvalidArgument for ids that
  /// were never allocated.
  virtual Status ReadPage(PageId id, Page* out) = 0;

  /// Writes `page` at `id`. Fails for ids that were never allocated.
  virtual Status WritePage(PageId id, const Page& page) = 0;

  /// Number of pages allocated so far.
  virtual uint64_t NumPages() const = 0;

  /// Forces every completed write to stable storage before returning.
  /// pwrite alone only reaches the OS page cache — a checkpoint's carefully
  /// ordered "data pages, then superblock" sequence is not ordered at the
  /// device until a sync sits between the two. Backends without a
  /// durability boundary (memory) are a no-op.
  virtual Status Sync() { return Status::OK(); }

  /// The shared I/O ledger (may be null).
  IoStats* stats() const { return stats_; }

 protected:
  /// Classifies and records a read of `id` in the ledger.
  void AccountRead(PageId id);
  /// Classifies and records a write of `id` in the ledger.
  void AccountWrite(PageId id);
  /// Records a fresh allocation in the ledger.
  void AccountAllocation();

 private:
  /// True (and the matching head advanced) if `id` continues a tracked
  /// sequential stream. Guarded by heads_mutex_ so backends accessed from
  /// concurrent worker threads classify without racing on the stream heads
  /// (the IoStats counters themselves are atomic).
  bool ClassifySequential(PageId id);

  IoStats* stats_;
  /// Recently observed stream positions; kInvalidPageId marks empty slots.
  static constexpr size_t kStreamHeads = 8;
  std::mutex heads_mutex_;
  PageId heads_[kStreamHeads] = {kInvalidPageId, kInvalidPageId,
                                 kInvalidPageId, kInvalidPageId,
                                 kInvalidPageId, kInvalidPageId,
                                 kInvalidPageId, kInvalidPageId};
  size_t next_head_ = 0;  // round-robin victim for new streams
};

/// Heap-backed page store. I/O costs are virtual (only counted), which keeps
/// experiments deterministic and fast while preserving the paper's unit of
/// measure; see FileBackend for a real-file implementation.
class MemoryBackend : public StorageBackend {
 public:
  explicit MemoryBackend(IoStats* stats = nullptr) : StorageBackend(stats) {}

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t NumPages() const override;

 private:
  /// Guards the page vector (growth in AllocatePage). Pages are held by
  /// unique_ptr so element addresses stay stable across growth; page data
  /// is copied under the lock, which at 4 KiB is cheap at this scale.
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Page>> pages_;
};

/// File-backed page store using POSIX pread/pwrite on a single file.
class FileBackend : public StorageBackend {
 public:
  /// Opens (creating if needed, truncating by default) the backing file.
  /// Check `status()` after construction.
  static Result<std::unique_ptr<FileBackend>> Open(const std::string& path,
                                                   IoStats* stats = nullptr,
                                                   bool truncate = true);

  ~FileBackend() override;

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t NumPages() const override {
    return num_pages_.load(std::memory_order_acquire);
  }
  /// fdatasync(2): file contents (and the size, which fdatasync covers when
  /// it changed) are on the device when this returns OK.
  Status Sync() override;

  const std::string& path() const { return path_; }

 private:
  FileBackend(std::string path, int fd, uint64_t num_pages, IoStats* stats)
      : StorageBackend(stats),
        path_(std::move(path)),
        fd_(fd),
        num_pages_(num_pages) {}

  std::string path_;
  int fd_;
  /// pread/pwrite are thread-safe per POSIX; allocation extends the file
  /// under alloc_mutex_ and publishes the new size with a release store.
  std::mutex alloc_mutex_;
  std::atomic<uint64_t> num_pages_;
};

}  // namespace setm

#endif  // SETM_STORAGE_STORAGE_BACKEND_H_

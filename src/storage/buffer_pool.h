#ifndef SETM_STORAGE_BUFFER_POOL_H_
#define SETM_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/storage_backend.h"

namespace setm {

class BufferPool;

/// RAII handle to a pinned buffer frame.
///
/// The frame stays pinned (ineligible for eviction) while at least one guard
/// references it. Call `MarkDirty()` after mutating the page so the pool
/// writes it back on eviction/flush. Guards are movable but not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_index, PageId id, Page* page)
      : pool_(pool), frame_index_(frame_index), id_(id), page_(page) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;

  /// True when the guard references a frame.
  bool valid() const { return page_ != nullptr; }

  /// The buffered page contents (mutable; pair writes with MarkDirty()).
  Page* page() const { return page_; }

  /// Page id of the pinned page.
  PageId id() const { return id_; }

  /// Flags the page for write-back on eviction or flush.
  void MarkDirty();

  /// Unpins early (idempotent); the guard becomes invalid.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_index_ = 0;
  PageId id_ = kInvalidPageId;
  Page* page_ = nullptr;
};

/// Fixed-capacity page cache over a StorageBackend with LRU replacement.
///
/// All page traffic of the engine flows through a pool, so the backend's
/// IoStats ledger reflects misses only — exactly the "page accesses" the
/// paper counts. Pool capacity is the knob for the buffer-size ablation.
///
/// Thread safety: all pool bookkeeping (page table, LRU, pin counts, frame
/// metadata) is guarded by an internal mutex, so guards may be fetched and
/// released from concurrent threads — the partitioned miners pin pages of
/// distinct table heaps from worker threads. The *contents* of a pinned
/// page are not synchronized by the pool: callers that share one page
/// across threads must coordinate their own reads/writes (the engine never
/// does — each worker owns its tables and sort runs).
class BufferPool {
 public:
  /// `capacity` is in frames (pages). The backend must outlive the pool.
  BufferPool(StorageBackend* backend, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the given page, reading it from the backend on a miss.
  Result<PageGuard> FetchPage(PageId id);

  /// Pins an already-allocated page *without* reading it from the backend
  /// on a miss, for callers that fully overwrite the page (manifest
  /// rewrites reusing a retired chain). Skipping the read keeps pointless
  /// read traffic out of the IoStats ledger. The frame comes back zeroed
  /// but *clean* — the caller pairs its overwrite with MarkDirty() as
  /// usual — so abandoning the page before writing (a later step of the
  /// rewrite failed) leaves the on-disk content untouched rather than
  /// risking a flush of zeros over it. On a hit the cached contents are
  /// returned unchanged. Caveat of the abandoned-miss case: the zeroed
  /// frame stays cached, shadowing the disk content — only use this for
  /// pages whose sole readers are future overwriters (retired manifest
  /// chains qualify; heap pages would not).
  Result<PageGuard> FetchPageForOverwrite(PageId id);

  /// Allocates a fresh zeroed page in the backend and pins it (dirty).
  /// When an allocation hook is set (see SetAllocationHook) and yields a
  /// recycled page id, that page is reused instead of extending the backend.
  Result<PageGuard> NewPage();

  /// Installs a recycler consulted by NewPage before the backend: return a
  /// previously freed PageId to reuse it, or kInvalidPageId to fall through
  /// to a fresh backend allocation. Called with the pool mutex held, so the
  /// hook must not call back into the pool. A recycled page must be
  /// *unreferenced*: no checkpointed structure may reach it and no guard may
  /// still pin it (the database's free list guarantees both).
  void SetAllocationHook(std::function<PageId()> hook) {
    std::lock_guard<std::mutex> lock(mutex_);
    allocation_hook_ = std::move(hook);
  }

  /// Number of frames currently holding unflushed modifications — lets the
  /// checkpoint detect "nothing changed" and skip the superblock flip.
  uint64_t DirtyPageCount() const;

  /// Writes back one page if cached and dirty.
  Status FlushPage(PageId id);

  /// Writes back every dirty frame (pages stay cached).
  Status FlushAll();

  /// Number of frames.
  size_t capacity() const { return frames_.size(); }

  /// Point-in-time cache statistics of this pool instance. The same events
  /// also feed the process-wide metrics registry (setm_pool_* counters);
  /// the instance view is what `setm_mine --stats` prints per database.
  struct PoolStats {
    uint64_t hits = 0;    ///< fetches served from a resident frame
    uint64_t misses = 0;  ///< fetches that went to the backend
    uint64_t evictions = 0;         ///< frames recycled for another page
    uint64_t dirty_writebacks = 0;  ///< dirty pages written to the backend
    /// Poisoned-victim skips: eviction candidates whose dirty write-back
    /// failed and that were left resident for a later retry.
    uint64_t eviction_retries = 0;
  };
  PoolStats Stats() const;

  /// Cache statistics.
  uint64_t hits() const;
  uint64_t misses() const;

  /// The underlying backend (for direct allocation checks in tests).
  StorageBackend* backend() const { return backend_; }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    PageId id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    // Position in lru_ when pin_count == 0 and the frame holds a page.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(size_t frame_index);
  void MarkDirty(size_t frame_index);
  /// Finds a frame to (re)use: a free frame, else the least recently used
  /// unpinned victim whose dirty write-back (if needed) succeeds. Victims
  /// with failing write-backs are skipped — they stay resident and dirty
  /// for a later retry — and the next LRU candidate is tried, so a single
  /// poisoned page cannot wedge eviction. Fails only when every unpinned
  /// frame is dirty on a failing backend (first write error) or all frames
  /// are pinned (ResourceExhausted); capacity never shrinks on any path.
  /// Caller must hold mutex_.
  Result<size_t> GetVictimFrameLocked();

  StorageBackend* backend_;
  std::function<PageId()> allocation_hook_;
  std::vector<Frame> frames_;
  mutable std::mutex mutex_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = most recently unpinned
  std::unordered_map<PageId, size_t> page_table_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t dirty_writebacks_ = 0;
  uint64_t eviction_retries_ = 0;

  // Process-wide series (resolved once at construction; all pools share
  // them, mirroring the instance counters above).
  obs::Counter* metric_hits_;
  obs::Counter* metric_misses_;
  obs::Counter* metric_evictions_;
  obs::Counter* metric_dirty_writebacks_;
  obs::Counter* metric_eviction_retries_;
};

}  // namespace setm

#endif  // SETM_STORAGE_BUFFER_POOL_H_

#include "storage/io_stats.h"

#include <cstdio>

namespace setm {

std::string IoStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "reads=%llu (seq=%llu rand=%llu) writes=%llu (seq=%llu "
                "rand=%llu) alloc=%llu model_time=%.1fs",
                static_cast<unsigned long long>(page_reads),
                static_cast<unsigned long long>(sequential_reads),
                static_cast<unsigned long long>(random_reads),
                static_cast<unsigned long long>(page_writes),
                static_cast<unsigned long long>(sequential_writes),
                static_cast<unsigned long long>(random_writes),
                static_cast<unsigned long long>(pages_allocated),
                ModelSeconds());
  return buf;
}

IoStats Diff(const IoStats& after, const IoStats& before) {
  IoStats d;
  d.page_reads = after.page_reads - before.page_reads;
  d.page_writes = after.page_writes - before.page_writes;
  d.sequential_reads = after.sequential_reads - before.sequential_reads;
  d.random_reads = after.random_reads - before.random_reads;
  d.sequential_writes = after.sequential_writes - before.sequential_writes;
  d.random_writes = after.random_writes - before.random_writes;
  d.pages_allocated = after.pages_allocated - before.pages_allocated;
  return d;
}

}  // namespace setm

#include "storage/io_stats.h"

#include <cstdio>

namespace setm {

std::string IoStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "reads=%llu (seq=%llu rand=%llu) writes=%llu (seq=%llu "
                "rand=%llu) alloc=%llu model_time=%.1fs",
                static_cast<unsigned long long>(page_reads),
                static_cast<unsigned long long>(sequential_reads),
                static_cast<unsigned long long>(random_reads),
                static_cast<unsigned long long>(page_writes),
                static_cast<unsigned long long>(sequential_writes),
                static_cast<unsigned long long>(random_writes),
                static_cast<unsigned long long>(pages_allocated),
                ModelSeconds());
  return buf;
}

}  // namespace setm

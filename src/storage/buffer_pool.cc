#include "storage/buffer_pool.h"

#include <iterator>

#include "common/logging.h"

namespace setm {

// ---------------------------------------------------------------------------
// PageGuard
// ---------------------------------------------------------------------------

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    id_ = other.id_;
    page_ = other.page_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.id_ = kInvalidPageId;
  }
  return *this;
}

void PageGuard::MarkDirty() {
  SETM_DCHECK(valid());
  pool_->MarkDirty(frame_index_);
}

void PageGuard::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(frame_index_);
  }
  pool_ = nullptr;
  page_ = nullptr;
  id_ = kInvalidPageId;
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(StorageBackend* backend, size_t capacity)
    : backend_(backend), frames_(capacity == 0 ? 1 : capacity) {
  free_frames_.reserve(frames_.size());
  for (size_t i = frames_.size(); i > 0; --i) free_frames_.push_back(i - 1);
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
  metric_hits_ = registry->GetCounter(
      "setm_pool_hits_total", "Buffer pool fetches served from cache");
  metric_misses_ = registry->GetCounter(
      "setm_pool_misses_total", "Buffer pool fetches that hit the backend");
  metric_evictions_ = registry->GetCounter(
      "setm_pool_evictions_total", "Frames recycled for another page");
  metric_dirty_writebacks_ = registry->GetCounter(
      "setm_pool_dirty_writebacks_total",
      "Dirty pages written back to the backend");
  metric_eviction_retries_ = registry->GetCounter(
      "setm_pool_eviction_retries_total",
      "Eviction candidates skipped after a failed dirty write-back");
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  if (!s.ok()) {
    SETM_LOG(kError) << "buffer pool flush on destruction failed: "
                     << s.ToString();
  }
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++hits_;
    metric_hits_->Increment();
    Frame& f = frames_[it->second];
    if (f.pin_count == 0 && f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageGuard(this, it->second, id, &f.page);
  }

  ++misses_;
  metric_misses_->Increment();
  auto victim = GetVictimFrameLocked();
  if (!victim.ok()) return victim.status();
  const size_t idx = victim.value();
  Frame& f = frames_[idx];
  Status read = backend_->ReadPage(id, &f.page);
  if (!read.ok()) {
    // The victim was already detached from the LRU and the page table; if
    // it were dropped here the pool would shrink by one frame forever.
    free_frames_.push_back(idx);
    return read;
  }
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_lru = false;
  page_table_[id] = idx;
  return PageGuard(this, idx, id, &f.page);
}

Result<PageGuard> BufferPool::FetchPageForOverwrite(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= backend_->NumPages()) {
    return Status::InvalidArgument(
        "overwrite-fetch of unallocated page " + std::to_string(id));
  }
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++hits_;
    metric_hits_->Increment();
    Frame& f = frames_[it->second];
    if (f.pin_count == 0 && f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageGuard(this, it->second, id, &f.page);
  }

  ++misses_;
  metric_misses_->Increment();
  auto victim = GetVictimFrameLocked();
  if (!victim.ok()) return victim.status();
  const size_t idx = victim.value();
  Frame& f = frames_[idx];
  f.page.Clear();
  f.id = id;
  f.pin_count = 1;
  // Deliberately clean: the disk still holds the page's previous (valid)
  // content, and the frame only diverges from it once the caller writes
  // and MarkDirty()s. If the caller bails before that — say a later
  // allocation in the same rewrite fails — eviction discards the zeroed
  // frame instead of flushing zeros over live data.
  f.dirty = false;
  f.in_lru = false;
  page_table_[id] = idx;
  return PageGuard(this, idx, id, &f.page);
}

Result<PageGuard> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mutex_);
  PageId id = kInvalidPageId;
  if (allocation_hook_) id = allocation_hook_();
  if (id != kInvalidPageId) {
    // Recycling a freed page. It may still be cached from its former life
    // (a retired manifest page, say); that stale frame must be reset, not
    // kept, or the new owner would see the old bytes.
    auto it = page_table_.find(id);
    if (it != page_table_.end()) {
      Frame& f = frames_[it->second];
      // Freed pages are unreferenced by contract, so nothing can hold a pin.
      SETM_CHECK(f.pin_count == 0);
      if (f.in_lru) {
        lru_.erase(f.lru_pos);
        f.in_lru = false;
      }
      f.page.Clear();
      f.pin_count = 1;
      f.dirty = true;  // the zeroed image must reach the backend eventually
      return PageGuard(this, it->second, id, &f.page);
    }
  } else {
    auto id_or = backend_->AllocatePage();
    if (!id_or.ok()) return id_or.status();
    id = id_or.value();
  }
  auto victim = GetVictimFrameLocked();
  if (!victim.ok()) return victim.status();
  const size_t idx = victim.value();
  Frame& f = frames_[idx];
  f.page.Clear();
  f.id = id;
  f.pin_count = 1;
  f.dirty = true;  // a new page must reach the backend eventually
  f.in_lru = false;
  page_table_[id] = idx;
  return PageGuard(this, idx, id, &f.page);
}

Status BufferPool::FlushPage(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return Status::OK();
  Frame& f = frames_[it->second];
  if (f.dirty) {
    SETM_RETURN_IF_ERROR(backend_->WritePage(f.id, f.page));
    f.dirty = false;
    ++dirty_writebacks_;
    metric_dirty_writebacks_->Increment();
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Frame& f : frames_) {
    if (f.id != kInvalidPageId && f.dirty) {
      SETM_RETURN_IF_ERROR(backend_->WritePage(f.id, f.page));
      f.dirty = false;
      ++dirty_writebacks_;
      metric_dirty_writebacks_->Increment();
    }
  }
  return Status::OK();
}

BufferPool::PoolStats BufferPool::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PoolStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.dirty_writebacks = dirty_writebacks_;
  s.eviction_retries = eviction_retries_;
  return s;
}

uint64_t BufferPool::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t BufferPool::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

uint64_t BufferPool::DirtyPageCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t n = 0;
  for (const Frame& f : frames_) {
    if (f.id != kInvalidPageId && f.dirty) ++n;
  }
  return n;
}

void BufferPool::Unpin(size_t frame_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& f = frames_[frame_index];
  SETM_CHECK(f.pin_count > 0);
  if (--f.pin_count == 0) {
    lru_.push_front(frame_index);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

void BufferPool::MarkDirty(size_t frame_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  frames_[frame_index].dirty = true;
}

Result<size_t> BufferPool::GetVictimFrameLocked() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all frames pinned");
  }
  // Walk candidates from the LRU end. A victim whose dirty write-back fails
  // is *skipped* — it stays resident (dirty, mapped, in LRU position) for a
  // later retry against a healed backend — and the next least-recently-used
  // frame is tried instead, so one poisoned page cannot wedge eviction while
  // clean or writable victims exist.
  Status first_error = Status::OK();
  for (auto it = std::prev(lru_.end());; --it) {
    const size_t idx = *it;
    Frame& f = frames_[idx];
    SETM_CHECK(f.pin_count == 0);
    if (f.dirty) {
      Status write = backend_->WritePage(f.id, f.page);
      if (!write.ok()) {
        ++eviction_retries_;
        metric_eviction_retries_->Increment();
        if (first_error.ok()) first_error = std::move(write);
        if (it == lru_.begin()) break;
        continue;
      }
      f.dirty = false;
      ++dirty_writebacks_;
      metric_dirty_writebacks_->Increment();
    }
    lru_.erase(it);
    f.in_lru = false;
    page_table_.erase(f.id);
    f.id = kInvalidPageId;
    ++evictions_;
    metric_evictions_->Increment();
    return idx;
  }
  // Every unpinned frame is dirty on a failing backend; report the first
  // write-back error. The pool keeps full capacity either way.
  return first_error;
}

}  // namespace setm

#include "storage/table_heap.h"

#include <cstring>

#include "common/logging.h"

namespace setm {

namespace {

// On-page layout ------------------------------------------------------------

struct HeapPageHeader {
  PageId next_page;         // kInvalidPageId at the tail
  uint16_t num_slots;       // slots ever created on this page
  uint16_t free_space_end;  // records occupy [free_space_end, kPageSize)
};

struct Slot {
  uint16_t offset;  // byte offset of the record within the page
  uint16_t length;  // record length; kTombstone marks deletion
};

constexpr uint16_t kTombstone = 0xFFFF;
constexpr size_t kHeaderSize = sizeof(HeapPageHeader);
constexpr size_t kSlotSize = sizeof(Slot);

HeapPageHeader* Header(Page* p) { return p->As<HeapPageHeader>(); }
const HeapPageHeader* Header(const Page* p) {
  return p->As<HeapPageHeader>();
}

Slot* SlotAt(Page* p, uint16_t i) {
  return p->As<Slot>(kHeaderSize + i * kSlotSize);
}
const Slot* SlotAt(const Page* p, uint16_t i) {
  return p->As<Slot>(kHeaderSize + i * kSlotSize);
}

// Free bytes available for one more record + its slot entry.
size_t FreeSpace(const Page* p) {
  const HeapPageHeader* h = Header(p);
  const size_t slots_end = kHeaderSize + h->num_slots * kSlotSize;
  SETM_DCHECK(h->free_space_end >= slots_end);
  return h->free_space_end - slots_end;
}

void InitHeapPage(Page* p) {
  p->Clear();
  HeapPageHeader* h = Header(p);
  h->next_page = kInvalidPageId;
  h->num_slots = 0;
  h->free_space_end = static_cast<uint16_t>(kPageSize);
}

}  // namespace

/// Largest record a single heap page can hold.
static constexpr size_t kMaxRecordSize = kPageSize - kHeaderSize - kSlotSize;

Result<TableHeap> TableHeap::Create(BufferPool* pool, PageHook page_hook) {
  auto guard_or = pool->NewPage();
  if (!guard_or.ok()) return guard_or.status();
  PageGuard& guard = guard_or.value();
  InitHeapPage(guard.page());
  guard.MarkDirty();
  if (page_hook) page_hook(guard.id());
  TableHeap heap(pool, guard.id(), guard.id(), /*pages=*/1);
  heap.page_hook_ = std::move(page_hook);
  return heap;
}

Result<TableHeap> TableHeap::Open(BufferPool* pool, PageId first_page) {
  PageId last = first_page;
  uint64_t pages = 0;
  uint64_t live = 0;
  uint64_t bytes = 0;
  PageId cur = first_page;
  const uint64_t max_pages = pool->backend()->NumPages();
  while (cur != kInvalidPageId) {
    if (pages >= max_pages) {
      return Status::Corruption(
          "heap page chain starting at page " + std::to_string(first_page) +
          " does not terminate within the file's " +
          std::to_string(max_pages) + " pages (cycle or corrupt link)");
    }
    auto guard_or = pool->FetchPage(cur);
    if (!guard_or.ok()) return guard_or.status();
    const Page* p = guard_or.value().page();
    const HeapPageHeader* h = Header(p);
    for (uint16_t i = 0; i < h->num_slots; ++i) {
      const Slot* slot = SlotAt(p, i);
      if (slot->length != kTombstone) {
        ++live;
        bytes += slot->length;
      }
    }
    ++pages;
    last = cur;
    cur = h->next_page;
  }
  TableHeap heap(pool, first_page, last, pages);
  heap.live_records_ = live;
  heap.live_bytes_ = bytes;
  return heap;
}

Status TableHeap::AppendChainPages(std::vector<PageId>* out) const {
  return CollectChainPages(pool_, first_page_, out);
}

Status TableHeap::CollectChainPages(BufferPool* pool, PageId first,
                                    std::vector<PageId>* out) {
  PageId cur = first;
  uint64_t seen = 0;
  const uint64_t max_pages = pool->backend()->NumPages();
  while (cur != kInvalidPageId) {
    if (seen >= max_pages || cur >= max_pages) {
      return Status::Corruption(
          "heap page chain starting at page " + std::to_string(first) +
          " does not terminate within the file's " +
          std::to_string(max_pages) + " pages (cycle or corrupt link)");
    }
    out->push_back(cur);
    auto guard_or = pool->FetchPage(cur);
    if (!guard_or.ok()) return guard_or.status();
    cur = Header(guard_or.value().page())->next_page;
    ++seen;
  }
  return Status::OK();
}

Result<Rid> TableHeap::Insert(std::string_view record) {
  if (record.size() > kMaxRecordSize) {
    return Status::InvalidArgument("record of " +
                                   std::to_string(record.size()) +
                                   " bytes exceeds page capacity");
  }
  auto guard_or = pool_->FetchPage(last_page_);
  if (!guard_or.ok()) return guard_or.status();
  PageGuard guard = std::move(guard_or).value();

  if (FreeSpace(guard.page()) < record.size() + kSlotSize) {
    // Tail page is full: chain a fresh page.
    auto new_or = pool_->NewPage();
    if (!new_or.ok()) return new_or.status();
    PageGuard new_guard = std::move(new_or).value();
    InitHeapPage(new_guard.page());
    Header(guard.page())->next_page = new_guard.id();
    guard.MarkDirty();
    new_guard.MarkDirty();
    last_page_ = new_guard.id();
    ++num_pages_;
    if (page_hook_) page_hook_(new_guard.id());
    guard = std::move(new_guard);
  }

  Page* p = guard.page();
  HeapPageHeader* h = Header(p);
  const uint16_t slot_index = h->num_slots;
  h->free_space_end = static_cast<uint16_t>(h->free_space_end - record.size());
  Slot* slot = SlotAt(p, slot_index);
  slot->offset = h->free_space_end;
  slot->length = static_cast<uint16_t>(record.size());
  std::memcpy(p->data + slot->offset, record.data(), record.size());
  ++h->num_slots;
  guard.MarkDirty();
  ++live_records_;
  live_bytes_ += record.size();
  return Rid{guard.id(), slot_index};
}

Status TableHeap::Get(const Rid& rid, std::string* out) const {
  auto guard_or = pool_->FetchPage(rid.page_id);
  if (!guard_or.ok()) return guard_or.status();
  const Page* p = guard_or.value().page();
  const HeapPageHeader* h = Header(p);
  if (rid.slot >= h->num_slots) {
    return Status::NotFound("no slot " + std::to_string(rid.slot));
  }
  const Slot* slot = SlotAt(p, rid.slot);
  if (slot->length == kTombstone) {
    return Status::NotFound("record was deleted");
  }
  out->assign(p->data + slot->offset, slot->length);
  return Status::OK();
}

Status TableHeap::Delete(const Rid& rid) {
  auto guard_or = pool_->FetchPage(rid.page_id);
  if (!guard_or.ok()) return guard_or.status();
  PageGuard guard = std::move(guard_or).value();
  Page* p = guard.page();
  HeapPageHeader* h = Header(p);
  if (rid.slot >= h->num_slots) {
    return Status::NotFound("no slot " + std::to_string(rid.slot));
  }
  Slot* slot = SlotAt(p, rid.slot);
  if (slot->length != kTombstone) {
    SETM_DCHECK(live_records_ > 0);
    SETM_DCHECK(live_bytes_ >= slot->length);
    live_bytes_ -= slot->length;
    slot->length = kTombstone;
    guard.MarkDirty();
    --live_records_;
  }
  return Status::OK();
}

TableHeap::Iterator TableHeap::Begin() const {
  Iterator it(this, first_page_, 0);
  Status s = it.SeekForward();
  if (!s.ok()) {
    SETM_LOG(kError) << "TableHeap iteration failed: " << s.ToString();
    it.valid_ = false;
  }
  return it;
}

Status TableHeap::Iterator::SeekForward() {
  valid_ = false;
  while (rid_.page_id != kInvalidPageId) {
    auto guard_or = heap_->pool_->FetchPage(rid_.page_id);
    if (!guard_or.ok()) return guard_or.status();
    const Page* p = guard_or.value().page();
    const HeapPageHeader* h = Header(p);
    while (rid_.slot < h->num_slots) {
      const Slot* slot = SlotAt(p, rid_.slot);
      if (slot->length != kTombstone) {
        record_.assign(p->data + slot->offset, slot->length);
        valid_ = true;
        return Status::OK();
      }
      ++rid_.slot;
    }
    rid_.page_id = h->next_page;
    rid_.slot = 0;
  }
  return Status::OK();
}

Status TableHeap::Iterator::Next() {
  SETM_DCHECK(valid_);
  ++rid_.slot;
  return SeekForward();
}

}  // namespace setm

#include "shard/coordinator.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/timer.h"
#include "exec/worker_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace setm::shard {

namespace {

/// Process-wide coordinator counters (get-or-create once, cached forever).
struct ShardMetrics {
  obs::Counter* runs;
  obs::Counter* failures;
  obs::Counter* iterations;
};

ShardMetrics* Metrics() {
  static ShardMetrics* metrics = [] {
    auto* registry = obs::MetricsRegistry::Global();
    auto* m = new ShardMetrics();
    m->runs = registry->GetCounter("setm_shard_runs_total",
                                   "Distributed mining runs started");
    m->failures =
        registry->GetCounter("setm_shard_run_failures_total",
                             "Distributed mining runs that returned an error");
    m->iterations =
        registry->GetCounter("setm_shard_iterations_total",
                             "Distributed iterations (both phases) completed");
    return m;
  }();
  return metrics;
}

/// Maps a shard-side error to the coordinator's contract: connection-level
/// failures become Unavailable naming the shard, cancellation passes
/// through, everything else keeps its code with the shard named.
Status WrapShardError(const std::string& shard, const char* phase,
                      const Status& s) {
  if (s.ok() || s.IsCancelled()) return s;
  if (s.IsIOError() || s.IsUnavailable()) {
    return Status::Unavailable("shard '" + shard + "' unavailable during " +
                               phase + ": " + s.message());
  }
  return Status(s.code(),
                "shard '" + shard + "' " + phase + ": " + s.message());
}

/// Per-shard state owned by exactly one fan-out task per phase; the
/// coordinator reads it only after the phase barrier (TaskGroup::Wait).
struct ShardState {
  ShardBackend* backend = nullptr;
  ShardLocalCounts counts;   ///< last CountIteration result
  uint64_t left_rows = 0;    ///< |R_k| rows still alive on this shard
  double last_seconds = 0.0; ///< coordinator-observed latency of the count
  obs::Histogram* latency = nullptr;
};

/// Phase 1 of iteration k: every shard counts locally, in parallel.
Status CountPhase(WorkerPool* pool, std::vector<ShardState>* states,
                  size_t k) {
  TaskGroup group(pool);
  for (ShardState& s : *states) {
    ShardState* state = &s;
    group.Submit([state, k] {
      WallTimer timer;
      auto counts_or = state->backend->CountIteration(k);
      state->last_seconds = timer.ElapsedSeconds();
      state->latency->ObserveDurationMicros(state->last_seconds);
      if (!counts_or.ok()) {
        return WrapShardError(state->backend->name(), "local count",
                              counts_or.status());
      }
      state->counts = std::move(counts_or).value();
      if (k == 1) state->left_rows = state->counts.r_prime_rows;
      return Status::OK();
    });
  }
  return group.Wait();
}

/// Phase 2 of iteration k: broadcast the surviving C_k, filter in parallel.
Status FilterPhase(WorkerPool* pool, std::vector<ShardState>* states,
                   size_t k, const std::vector<std::vector<ItemId>>* ck,
                   ShardFilterStats* total) {
  std::vector<ShardFilterStats> per_shard(states->size());
  TaskGroup group(pool);
  for (size_t i = 0; i < states->size(); ++i) {
    ShardState* state = &(*states)[i];
    ShardFilterStats* out = &per_shard[i];
    group.Submit([state, k, ck, out] {
      auto stats_or = state->backend->ApplyGlobalCk(k, *ck);
      if (!stats_or.ok()) {
        return WrapShardError(state->backend->name(), "C_k filter",
                              stats_or.status());
      }
      *out = stats_or.value();
      state->left_rows = out->r_rows;
      return Status::OK();
    });
  }
  SETM_RETURN_IF_ERROR(group.Wait());
  for (const ShardFilterStats& s : per_shard) {
    total->r_rows += s.r_rows;
    total->r_bytes += s.r_bytes;
    total->r_pages += s.r_pages;
  }
  return Status::OK();
}

/// Sums every shard's partial counts and applies the global minsupport.
/// Survivors land in `itemsets` and (in canonical sorted order, so remote
/// broadcast payloads are deterministic) in `ck`.
void MergeCounts(std::vector<ShardState>* states, int64_t minsup,
                 uint64_t* c_size, FrequentItemsets* itemsets,
                 std::vector<std::vector<ItemId>>* ck) {
  std::unordered_map<std::string, PatternCount> merged;
  for (ShardState& s : *states) {
    for (PatternCount& pc : s.counts.counts) {
      PatternCount& g = merged[ItemsetKey(pc.items)];
      if (g.count == 0) g.items = std::move(pc.items);
      g.count += pc.count;
    }
    s.counts.counts.clear();
    s.counts.counts.shrink_to_fit();
  }
  ck->clear();
  for (auto& entry : merged) {
    if (entry.second.count >= minsup) {
      ck->push_back(entry.second.items);
      itemsets->Add(std::move(entry.second.items), entry.second.count);
      ++*c_size;
    }
  }
  std::sort(ck->begin(), ck->end());
}

/// Attaches one completed iteration span with nested per-shard children.
void RecordIterationTrace(obs::TraceSpan* trace, const IterationStats& stats,
                          const std::vector<ShardState>& states) {
  if (trace == nullptr) return;
  obs::TraceSpan* iter = trace->AddCompletedChild(
      "iteration k=" + std::to_string(stats.k), stats.seconds, 0);
  iter->AddCount("|R'|", stats.r_prime_rows);
  iter->AddCount("|R|", stats.r_rows);
  iter->AddCount("|C|", stats.c_size);
  for (const ShardState& s : states) {
    iter->AddCompletedChild("shard " + s.backend->name(), s.last_seconds, 0);
  }
}

/// Best-effort EndRun on every shard (idempotent by contract).
void EndAll(std::vector<ShardState>* states) {
  for (ShardState& s : *states) s.backend->EndRun();
}

}  // namespace

Result<MiningResult> DistributedMine(const std::vector<ShardBackend*>& shards,
                                     const MiningOptions& options,
                                     const CoordinatorOptions& coord) {
  if (shards.empty()) {
    return Status::InvalidArgument(
        "distributed mine needs at least one shard");
  }
  Metrics()->runs->Increment();
  WallTimer total_timer;
  MiningResult result;

  ShardRunOptions run = coord.run;
  run.filter_r1 = options.filter_r1;

  std::vector<ShardState> states(shards.size());
  auto* registry = obs::MetricsRegistry::Global();
  for (size_t i = 0; i < shards.size(); ++i) {
    states[i].backend = shards[i];
    states[i].latency = registry->GetHistogram(
        "setm_shard_s" + std::to_string(i) + "_lcount_micros",
        "Coordinator-observed local-count latency of shard slot " +
            std::to_string(i));
  }

  // Single-exit error path: never returns partial results, always releases
  // every shard's run state.
  auto fail = [&states](Status s) {
    if (!s.IsCancelled()) Metrics()->failures->Increment();
    EndAll(&states);
    return s;
  };

  {
    TaskGroup group(coord.pool);
    for (ShardState& s : states) {
      ShardState* state = &s;
      group.Submit([state, &run] {
        return WrapShardError(state->backend->name(), "begin",
                              state->backend->BeginRun(run));
      });
    }
    Status s = group.Wait();
    if (!s.ok()) return fail(s);
  }

  // --- Iteration 1: R_1 slices and the global C_1. ------------------------
  int64_t minsup = 0;
  {
    WallTimer iter_timer;
    Status s = CountPhase(coord.pool, &states, 1);
    if (!s.ok()) return fail(s);
    uint64_t num_transactions = 0;
    for (const ShardState& st : states) {
      num_transactions += st.counts.transactions;
    }
    result.itemsets.num_transactions = num_transactions;
    minsup = ResolveMinSupportCount(options, num_transactions);

    IterationStats stats;
    stats.k = 1;
    for (const ShardState& st : states) {
      stats.r_prime_rows += st.counts.r_prime_rows;
      stats.r_bytes += st.counts.r_bytes;
      stats.r_pages += st.counts.r_pages;
    }
    stats.r_rows = stats.r_prime_rows;
    std::vector<std::vector<ItemId>> c1;
    MergeCounts(&states, minsup, &stats.c_size, &result.itemsets, &c1);
    stats.seconds = iter_timer.ElapsedSeconds();
    RecordIterationTrace(coord.trace, stats, states);
    result.iterations.push_back(stats);
    Metrics()->iterations->Increment();
    s = NotifyIteration(options, stats);
    if (!s.ok()) return fail(s);

    if (options.filter_r1) {
      ShardFilterStats total;
      s = FilterPhase(coord.pool, &states, 1, &c1, &total);
      if (!s.ok()) return fail(s);
    }
  }

  // --- Main loop (Figure 4, distributed). ---------------------------------
  for (size_t k = 2;; ++k) {
    if (options.max_pattern_length != 0 && k > options.max_pattern_length) {
      break;
    }
    uint64_t left_rows = 0;
    for (const ShardState& st : states) left_rows += st.left_rows;
    if (left_rows == 0) break;
    WallTimer iter_timer;

    Status s = CountPhase(coord.pool, &states, k);
    if (!s.ok()) return fail(s);

    IterationStats stats;
    stats.k = k;
    for (const ShardState& st : states) {
      stats.r_prime_rows += st.counts.r_prime_rows;
    }
    std::vector<std::vector<ItemId>> ck;
    MergeCounts(&states, minsup, &stats.c_size, &result.itemsets, &ck);

    // Phase 2 always runs, C_k empty or not: every shard materializes its
    // (possibly empty) R_k, exactly like the in-process executors, so the
    // iteration stats and observer callbacks stay aligned.
    ShardFilterStats total;
    s = FilterPhase(coord.pool, &states, k, &ck, &total);
    if (!s.ok()) return fail(s);
    stats.r_rows = total.r_rows;
    stats.r_bytes = total.r_bytes;
    stats.r_pages = total.r_pages;
    stats.seconds = iter_timer.ElapsedSeconds();
    RecordIterationTrace(coord.trace, stats, states);
    result.iterations.push_back(stats);
    Metrics()->iterations->Increment();
    s = NotifyIteration(options, stats);
    if (!s.ok()) return fail(s);
    if (stats.r_rows == 0) break;
  }

  {
    TaskGroup group(coord.pool);
    for (ShardState& s : states) {
      ShardState* state = &s;
      group.Submit([state] {
        return WrapShardError(state->backend->name(), "end",
                              state->backend->EndRun());
      });
    }
    Status s = group.Wait();
    if (!s.ok()) return fail(s);
  }

  result.itemsets.Normalize();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace setm::shard

#include "shard/sharded_db.h"

#include "common/logging.h"
#include "exec/worker_pool.h"
#include "shard/coordinator.h"
#include "shard/local_backend.h"
#include "shard/remote_backend.h"

namespace setm::shard {

Result<std::unique_ptr<ShardedDatabase>> ShardedDatabase::Open(
    ShardManifest manifest, ShardedDatabaseOptions options) {
  if (manifest.members.empty()) {
    return Status::InvalidArgument("shard manifest has no members");
  }
  std::unique_ptr<ShardedDatabase> db(new ShardedDatabase());
  db->manifest_ = std::move(manifest);
  db->options_ = std::move(options);

  for (const ShardMember& member : db->manifest_.members) {
    const std::string id = "s" + std::to_string(member.id);
    if (member.kind == ShardMember::Kind::kFile) {
      DatabaseOptions db_options = db->options_.db_options;
      db_options.file_path = member.path;
      auto member_db_or = Database::Open(std::move(db_options));
      if (!member_db_or.ok()) {
        return Status(member_db_or.status().code(),
                      "shard '" + id + "' (" + member.path +
                          "): " + member_db_or.status().message());
      }
      db->file_dbs_.push_back(std::move(member_db_or).value());
      auto backend = std::make_unique<LocalShardBackend>(
          db->file_dbs_.back().get(), id + ":" + member.path, id + "_");
      backend->BindTable(member.table);
      db->owned_backends_.push_back(std::move(backend));
    } else {
      db->owned_backends_.push_back(std::make_unique<RemoteShardBackend>(
          member.host, member.port, member.table,
          id + "@" + member.host + ":" + std::to_string(member.port),
          db->options_.remote_timeout_ms));
    }
    db->backends_.push_back(db->owned_backends_.back().get());
  }

  const size_t fanout = db->options_.fanout_threads != 0
                            ? db->options_.fanout_threads
                            : db->backends_.size();
  if (fanout > 1) db->fanout_ = std::make_unique<WorkerPool>(fanout);
  return db;
}

ShardedDatabase::~ShardedDatabase() {
  Status s = Close();
  if (!s.ok()) {
    SETM_LOG(kError) << "closing sharded database: " << s.ToString();
  }
}

Result<MiningResult> ShardedDatabase::Mine(const MiningOptions& options) {
  CoordinatorOptions coord;
  coord.run = options_.run;
  coord.pool = fanout_.get();
  return DistributedMine(backends_, options, coord);
}

std::vector<ShardMemberHealth> ShardedDatabase::Health() {
  std::vector<ShardMemberHealth> out;
  out.reserve(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    ShardMemberHealth member;
    member.id = manifest_.members[i].id;
    member.name = backends_[i]->name();
    auto health_or = backends_[i]->Health();
    if (health_or.ok()) member.health = health_or.value();
    out.push_back(std::move(member));
  }
  return out;
}

Status ShardedDatabase::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  // Backends first: they hold scratch relations inside the member databases.
  for (auto& backend : owned_backends_) backend->EndRun();
  Status first;
  for (auto& db : file_dbs_) {
    Status s = db->Close();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

}  // namespace setm::shard

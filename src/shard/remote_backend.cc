#include "shard/remote_backend.h"

#include <cstdlib>

#include "common/timer.h"

namespace setm::shard {

namespace {

/// Rehydrates a protocol "ERR <Code> <message>" into a Status of the same
/// category, so a remote NotFound (unknown table) stays a NotFound at the
/// coordinator and only transport failures read as IOError/Unavailable.
Status StatusFromError(const net::ClientResponse& response) {
  static const struct {
    const char* name;
    StatusCode code;
  } kCodes[] = {
      {"InvalidArgument", StatusCode::kInvalidArgument},
      {"NotFound", StatusCode::kNotFound},
      {"AlreadyExists", StatusCode::kAlreadyExists},
      {"Corruption", StatusCode::kCorruption},
      {"IOError", StatusCode::kIOError},
      {"NotSupported", StatusCode::kNotSupported},
      {"OutOfRange", StatusCode::kOutOfRange},
      {"ResourceExhausted", StatusCode::kResourceExhausted},
      {"Internal", StatusCode::kInternal},
      {"Cancelled", StatusCode::kCancelled},
      {"Unavailable", StatusCode::kUnavailable},
  };
  for (const auto& entry : kCodes) {
    if (response.code == entry.name) {
      return Status(entry.code, response.info);
    }
  }
  return Status::Internal("server error [" + response.code + "] " +
                          response.info);
}

/// Pulls "<key>=<uint>" out of an info line; the fields the server omits
/// stay at their zero defaults, and a malformed value reads as Corruption.
Status InfoField(const std::string& info, const std::string& key,
                 uint64_t* out) {
  const std::string needle = key + "=";
  size_t pos = 0;
  while (true) {
    pos = info.find(needle, pos);
    if (pos == std::string::npos) {
      return Status::Corruption("shard response info is missing '" + key +
                                "': " + info);
    }
    if (pos == 0 || info[pos - 1] == ' ') break;
    pos += needle.size();
  }
  const char* begin = info.c_str() + pos + needle.size();
  char* end = nullptr;
  const unsigned long long value = std::strtoull(begin, &end, 10);
  if (end == begin || (*end != '\0' && *end != ' ')) {
    return Status::Corruption("shard response info field '" + key +
                              "' is not a number: " + info);
  }
  *out = static_cast<uint64_t>(value);
  return Status::OK();
}

/// Parses one "<item_1> ... <item_k> <count>" payload line.
Result<PatternCount> ParseCountLine(const std::string& line, size_t k) {
  PatternCount pattern;
  const char* p = line.c_str();
  char* end = nullptr;
  std::vector<long long> values;
  while (true) {
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0') break;
    const long long value = std::strtoll(p, &end, 10);
    if (end == p) {
      return Status::Corruption("bad shard count line: " + line);
    }
    values.push_back(value);
    p = end;
  }
  if (values.size() != k + 1) {
    return Status::Corruption("shard count line has " +
                              std::to_string(values.size()) +
                              " fields, want " + std::to_string(k + 1) +
                              ": " + line);
  }
  pattern.items.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    if (values[i] < 0 ||
        (i > 0 && values[i] <= values[i - 1])) {
      return Status::Corruption("shard count line is not a sorted itemset: " +
                                line);
    }
    pattern.items.push_back(static_cast<ItemId>(values[i]));
  }
  if (values[k] < 1) {
    return Status::Corruption("shard count line has count < 1: " + line);
  }
  pattern.count = values[k];
  return pattern;
}

}  // namespace

RemoteShardBackend::RemoteShardBackend(std::string host, uint16_t port,
                                       std::string table, std::string name,
                                       int timeout_ms)
    : host_(std::move(host)),
      port_(port),
      table_(std::move(table)),
      name_(std::move(name)),
      timeout_ms_(timeout_ms) {
  if (name_.empty()) {
    name_ = host_ + ":" + std::to_string(port_) + "/" + table_;
  }
}

Status RemoteShardBackend::EnsureConnected() {
  if (client_ != nullptr) return Status::OK();
  auto client_or = net::BlockingClient::Connect(host_, port_, timeout_ms_);
  if (!client_or.ok()) return client_or.status();
  client_ = std::move(client_or).value();
  return Status::OK();
}

Result<net::ClientResponse> RemoteShardBackend::Exec(
    const std::string& command) {
  SETM_RETURN_IF_ERROR(EnsureConnected());
  auto response_or = client_->Exec(command);
  if (!response_or.ok()) {
    client_.reset();  // dead socket; the next run reconnects
    return response_or.status();
  }
  return response_or;
}

Status RemoteShardBackend::BeginRun(const ShardRunOptions& options) {
  run_ = options;
  // Connecting here (instead of lazily) makes a down shard fail the run
  // before any shard has counted anything.
  return EnsureConnected();
}

Result<ShardLocalCounts> RemoteShardBackend::CountIteration(size_t k) {
  std::string command;
  if (k == 1) {
    command = "LCOUNT " + table_ + " K 1";
    if (run_.count_method == CountMethod::kHash) command += " METHOD hash";
    if (run_.filter_r1) command += " FILTER";
  } else {
    command = "LCOUNT K " + std::to_string(k);
  }
  WallTimer timer;
  auto response_or = Exec(command);
  if (!response_or.ok()) return response_or.status();
  const net::ClientResponse& response = response_or.value();
  if (!response.ok) return StatusFromError(response);

  ShardLocalCounts out;
  out.seconds = timer.ElapsedSeconds();
  SETM_RETURN_IF_ERROR(InfoField(response.info, "rprime", &out.r_prime_rows));
  if (k == 1) {
    SETM_RETURN_IF_ERROR(
        InfoField(response.info, "transactions", &out.transactions));
    SETM_RETURN_IF_ERROR(InfoField(response.info, "rbytes", &out.r_bytes));
    SETM_RETURN_IF_ERROR(InfoField(response.info, "rpages", &out.r_pages));
    last_transactions_ = out.transactions;
    last_rows_ = out.r_prime_rows;
    last_bytes_ = out.r_bytes;
  }

  size_t pos = 0;
  while (pos < response.payload.size()) {
    const size_t nl = response.payload.find('\n', pos);
    const std::string line =
        response.payload.substr(pos, nl == std::string::npos
                                         ? std::string::npos
                                         : nl - pos);
    pos = nl == std::string::npos ? response.payload.size() : nl + 1;
    if (line.empty()) continue;
    auto pattern_or = ParseCountLine(line, k);
    if (!pattern_or.ok()) return pattern_or.status();
    out.counts.push_back(std::move(pattern_or).value());
  }
  return out;
}

Result<ShardFilterStats> RemoteShardBackend::ApplyGlobalCk(
    size_t k, const std::vector<std::vector<ItemId>>& ck) {
  // The whole phase-2 exchange is one Exec: the command line, every
  // surviving itemset and the "." terminator ride in a single send (the
  // protocol is line-oriented, not packet-oriented), so a large C_k does
  // not become thousands of TCP_NODELAY-sized packets.
  std::string command = "MERGE K " + std::to_string(k);
  for (const std::vector<ItemId>& items : ck) {
    command += '\n';
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) command += ' ';
      command += std::to_string(items[i]);
    }
  }
  command += "\n.";
  auto response_or = Exec(command);
  if (!response_or.ok()) return response_or.status();
  const net::ClientResponse& response = response_or.value();
  if (!response.ok) return StatusFromError(response);

  ShardFilterStats out;
  SETM_RETURN_IF_ERROR(InfoField(response.info, "rows", &out.r_rows));
  SETM_RETURN_IF_ERROR(InfoField(response.info, "bytes", &out.r_bytes));
  SETM_RETURN_IF_ERROR(InfoField(response.info, "pages", &out.r_pages));
  return out;
}

Status RemoteShardBackend::EndRun() {
  // The server releases a run when the connection starts a new one (or
  // closes); nothing to send. Keeping the connection makes back-to-back
  // runs cheap.
  return Status::OK();
}

Result<ShardHealth> RemoteShardBackend::Health() {
  ShardHealth health;
  health.transactions = last_transactions_;
  health.sales_rows = last_rows_;
  health.sales_bytes = last_bytes_;
  auto response_or = Exec("PING");
  if (!response_or.ok()) return health;  // unreachable, occupancy cached
  health.reachable = response_or.value().ok;
  return health;
}

}  // namespace setm::shard

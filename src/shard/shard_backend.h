#ifndef SETM_SHARD_SHARD_BACKEND_H_
#define SETM_SHARD_SHARD_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/miner.h"
#include "core/types.h"

namespace setm::shard {

/// Physical knobs of one distributed run, forwarded to every shard.
struct ShardRunOptions {
  TableBacking storage = TableBacking::kMemory;
  CountMethod count_method = CountMethod::kSortMerge;
  bool filter_r1 = false;
};

/// What one shard reports after locally counting iteration k: its full
/// (minsupport-free) candidate counts plus the cardinalities the coordinator
/// needs for IterationStats. Support is a property of the whole database, so
/// local counts always use min_count = 1 — exactly the contract of the
/// in-process partitioned executor.
struct ShardLocalCounts {
  /// Transactions in this shard's SALES slice (filled for k == 1 only; the
  /// coordinator sums them to resolve the global minsupport).
  uint64_t transactions = 0;
  /// |R'_k| of this shard (for k == 1: |R_1|, the slice itself).
  uint64_t r_prime_rows = 0;
  /// Size/pages of the k == 1 relation (R_1 doubles as R'_1 and R_1 in the
  /// first iteration's stats). Zero for k >= 2 — those come from the filter.
  uint64_t r_bytes = 0;
  uint64_t r_pages = 0;
  /// Full local counts of every candidate this shard saw.
  std::vector<PatternCount> counts;
  /// Shard-side wall time of the local count (remote shards report their
  /// own clock, so the coordinator can separate compute from transport).
  double seconds = 0.0;
};

/// What one shard reports after filtering R'_k by the global C_k.
struct ShardFilterStats {
  uint64_t r_rows = 0;
  uint64_t r_bytes = 0;
  uint64_t r_pages = 0;
};

/// Per-shard health/occupancy, the dinomo-style membership view surfaced by
/// ShardedDatabase::Health and setm_shardctl stats.
struct ShardHealth {
  bool reachable = false;
  uint64_t transactions = 0;
  uint64_t sales_rows = 0;
  uint64_t sales_bytes = 0;
};

/// One shard's half of the two-phase distributed count. The coordinator
/// drives every backend through the same iteration protocol:
///
///   BeginRun(options)
///   CountIteration(1)        -> local R_1 + item counts + |D_shard|
///   [ApplyGlobalCk(1, C_1)]  -> only when options.filter_r1
///   for k = 2, 3, ...:
///     CountIteration(k)      -> local R'_k join + candidate counts
///     ApplyGlobalCk(k, C_k)  -> local R_k := R'_k filtered by global C_k
///   EndRun()
///
/// Implementations: LocalShardBackend runs the SETM pipeline bodies in
/// process over a SALES slice; RemoteShardBackend speaks LCOUNT/MERGE to a
/// setm_served instance. Both produce identical numbers by construction —
/// the server's handler *is* a LocalShardBackend.
///
/// Backends are single-threaded (one coordinator call at a time) but
/// distinct backends run concurrently on the coordinator's fan-out pool.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Shard name for error messages and metrics ("s0", "file:/a/b.db", ...).
  virtual const std::string& name() const = 0;

  /// Starts a fresh run; any previous run's state is released.
  virtual Status BeginRun(const ShardRunOptions& options) = 0;

  /// Phase 1 of iteration k: local join (k >= 2) or R_1 build (k == 1) plus
  /// full local candidate counts.
  virtual Result<ShardLocalCounts> CountIteration(size_t k) = 0;

  /// Phase 2 of iteration k: filters the local R'_k down to the rows whose
  /// pattern survived the global minsupport filter (`ck` lists the surviving
  /// itemsets, sorted). For k == 1 this is the filter_r1 ablation.
  virtual Result<ShardFilterStats> ApplyGlobalCk(
      size_t k, const std::vector<std::vector<ItemId>>& ck) = 0;

  /// Releases run state (scratch relations, remote session). Idempotent.
  virtual Status EndRun() = 0;

  /// Liveness + occupancy probe, independent of any run.
  virtual Result<ShardHealth> Health() = 0;
};

}  // namespace setm::shard

#endif  // SETM_SHARD_SHARD_BACKEND_H_

#include "shard/sharded_setm.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/worker_pool.h"
#include "shard/coordinator.h"
#include "shard/local_backend.h"

namespace setm::shard {

namespace {

/// The coordinator pipeline over pre-extracted SALES rows.
Result<MiningResult> RunSharded(Database* db, const SetmOptions& so,
                                std::vector<ShardRow> rows,
                                const MiningOptions& options) {
  const IoStats io_before = *db->io_stats();

  // Same row-balanced trans_id partitioning as the partitioned executor:
  // sort once, then cut at transaction boundaries.
  std::sort(rows.begin(), rows.end(),
            [](const ShardRow& a, const ShardRow& b) {
              return a.tid != b.tid ? a.tid < b.tid : a.item < b.item;
            });
  uint64_t num_transactions = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i == 0 || rows[i].tid != rows[i - 1].tid) ++num_transactions;
  }
  const size_t want = std::max<size_t>(1, so.num_threads);
  const size_t num_shards = static_cast<size_t>(std::min<uint64_t>(
      want, std::max<uint64_t>(1, num_transactions)));
  std::vector<std::vector<ShardRow>> slices(num_shards);
  const size_t target = (rows.size() + num_shards - 1) / num_shards;
  size_t si = 0;
  for (size_t i = 0; i < rows.size();) {
    size_t j = i;
    while (j < rows.size() && rows[j].tid == rows[i].tid) ++j;
    if (slices[si].size() >= target && si + 1 < num_shards) ++si;
    slices[si].insert(slices[si].end(), rows.begin() + i, rows.begin() + j);
    i = j;
  }
  rows.clear();
  rows.shrink_to_fit();

  std::vector<std::unique_ptr<LocalShardBackend>> backends;
  std::vector<ShardBackend*> shards;
  backends.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto backend = std::make_unique<LocalShardBackend>(
        db, "s" + std::to_string(i), "s" + std::to_string(i) + "_");
    backend->SetRows(std::move(slices[i]));
    shards.push_back(backend.get());
    backends.push_back(std::move(backend));
  }

  CoordinatorOptions coord;
  coord.run.storage = so.storage;
  coord.run.count_method = so.count_method;
  coord.pool = db->worker_pool();
  std::unique_ptr<WorkerPool> owned_pool;
  if (coord.pool == nullptr && so.num_threads > 1) {
    owned_pool =
        std::make_unique<WorkerPool>(std::min(so.num_threads, num_shards));
    coord.pool = owned_pool.get();
  }

  auto result = DistributedMine(shards, options, coord);
  if (!result.ok()) return result.status();
  result.value().io = Diff(*db->io_stats(), io_before);
  return result;
}

}  // namespace

Result<MiningResult> ShardedSetmMiner::Mine(const TransactionDb& transactions,
                                            const MiningOptions& options) {
  SETM_RETURN_IF_ERROR(ValidateTransactions(transactions));
  std::vector<ShardRow> rows;
  size_t total = 0;
  for (const Transaction& t : transactions) total += t.items.size();
  rows.reserve(total);
  for (const Transaction& t : transactions) {
    for (ItemId item : t.items) rows.push_back(ShardRow{t.id, item});
  }
  return RunSharded(db_, setm_options_, std::move(rows), options);
}

Result<MiningResult> ShardedSetmMiner::MineTable(const Table& sales,
                                                 const MiningOptions& options) {
  if (sales.schema().NumColumns() != 2) {
    return Status::InvalidArgument("SALES must have schema (trans_id, item)");
  }
  std::vector<ShardRow> rows;
  rows.reserve(sales.num_rows());
  auto it = sales.Scan();
  Tuple row;
  while (true) {
    auto more = it->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    rows.push_back(ShardRow{row.value(0).AsInt32(), row.value(1).AsInt32()});
  }
  return RunSharded(db_, setm_options_, std::move(rows), options);
}

}  // namespace setm::shard

#ifndef SETM_SHARD_COORDINATOR_H_
#define SETM_SHARD_COORDINATOR_H_

#include <vector>

#include "core/types.h"
#include "shard/shard_backend.h"

namespace setm {
class WorkerPool;
namespace obs {
class TraceSpan;
}
}  // namespace setm

namespace setm::shard {

/// Knobs of one distributed run that are the coordinator's, not the query's.
struct CoordinatorOptions {
  /// Physical knobs forwarded to every shard (filter_r1 is taken from the
  /// MiningOptions, like the in-process executors do).
  ShardRunOptions run;
  /// Fan-out pool for the per-shard phases; null runs them serially on the
  /// calling thread. The pool is only ever entered from the coordinator —
  /// backends never re-enter it.
  WorkerPool* pool = nullptr;
  /// Optional parent span: the coordinator attaches one completed child per
  /// iteration with nested per-shard spans. Must belong to the calling
  /// thread (TraceSpan is single-writer).
  obs::TraceSpan* trace = nullptr;
};

/// The two-phase distributed count over `shards` (Section 5's partitioned
/// reading of Algorithm SETM, stretched across databases):
///
///   phase 1  every shard locally counts iteration k with min_count = 1;
///   merge    the coordinator sums partial counts and applies the global
///            minsupport — resolved from the summed per-shard transaction
///            counts, exact because transactions never span shards;
///   phase 2  the surviving C_k is broadcast and every shard filters its
///            R'_k slice down to R_k.
///
/// Results are bit-identical to single-node SETM for any shard count: the
/// shards run the same pipeline bodies, the merge applies the same
/// threshold, and the final Normalize() makes merge order irrelevant.
///
/// Failure semantics: one shard failing fails the whole run — partial
/// results are never returned. Connection-level errors (IOError,
/// Unavailable) surface as Status::Unavailable naming the shard; other
/// codes keep their code with the shard name prefixed; Cancelled (from
/// options.observer) passes through untouched. Every exit path ends the
/// run on all shards best-effort.
Result<MiningResult> DistributedMine(const std::vector<ShardBackend*>& shards,
                                     const MiningOptions& options,
                                     const CoordinatorOptions& coord = {});

}  // namespace setm::shard

#endif  // SETM_SHARD_COORDINATOR_H_

#ifndef SETM_SHARD_REMOTE_BACKEND_H_
#define SETM_SHARD_REMOTE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/client.h"
#include "shard/shard_backend.h"

namespace setm::shard {

/// A shard served by a remote setm_served instance, driven over the line
/// protocol's LCOUNT/MERGE verbs (net/protocol.h). The server's handler is
/// a LocalShardBackend over the named table, so a remote shard computes
/// bit-identical counts to a local one — this class only moves them.
///
/// One connection per backend, established at BeginRun (BlockingClient
/// already retries transient refusals with backoff) and kept across runs.
/// Any transport failure drops the connection and surfaces as IOError; the
/// coordinator rewrites that into Unavailable naming this shard and aborts
/// the run — a down shard never yields partial results. The next BeginRun
/// reconnects from scratch.
class RemoteShardBackend : public ShardBackend {
 public:
  /// `table` is the SALES table to mine on the remote server. `name`
  /// defaults to "host:port/table".
  RemoteShardBackend(std::string host, uint16_t port, std::string table,
                     std::string name = "", int timeout_ms = 30000);

  const std::string& name() const override { return name_; }
  Status BeginRun(const ShardRunOptions& options) override;
  Result<ShardLocalCounts> CountIteration(size_t k) override;
  Result<ShardFilterStats> ApplyGlobalCk(
      size_t k, const std::vector<std::vector<ItemId>>& ck) override;
  Status EndRun() override;
  Result<ShardHealth> Health() override;

 private:
  Status EnsureConnected();
  /// Exec that turns any transport failure into a dropped connection, so
  /// the next run does not reuse a half-dead socket.
  Result<net::ClientResponse> Exec(const std::string& command);

  std::string host_;
  uint16_t port_;
  std::string table_;
  std::string name_;
  int timeout_ms_;
  ShardRunOptions run_;
  std::unique_ptr<net::BlockingClient> client_;
  /// Occupancy from the last k == 1 count, reported by Health (a PING
  /// answers liveness; the protocol has no occupancy probe).
  uint64_t last_transactions_ = 0;
  uint64_t last_rows_ = 0;
  uint64_t last_bytes_ = 0;
};

}  // namespace setm::shard

#endif  // SETM_SHARD_REMOTE_BACKEND_H_

#ifndef SETM_SHARD_LOCAL_BACKEND_H_
#define SETM_SHARD_LOCAL_BACKEND_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/setm.h"
#include "shard/shard_backend.h"

namespace setm::shard {

/// One SALES row of a shard's slice.
struct ShardRow {
  TransactionId tid = 0;
  ItemId item = 0;
};

/// The in-process shard: runs the SETM pipeline bodies (the same
/// JoinIntoRkPrime / FilterRkPrimeIntoRk / CountInto the serial and
/// partitioned executors share) over one SALES slice, reporting full local
/// counts with min_count = 1. This class is both the coordinator's local
/// execution path and the server-side implementation of LCOUNT/MERGE, so
/// local and remote shards cannot drift apart.
///
/// The slice comes from one of two sources, chosen before BeginRun:
///   - SetRows(rows): a fixed in-memory slice (the partition-parallel
///     "setm-sharded" miner and tests use this).
///   - BindTable(name): re-extracted from `db`'s catalog at every BeginRun,
///     so a long-lived backend sees rows appended between runs (the server
///     and file-shard members use this).
///
/// Scratch relations are named "<prefix>r1", "<prefix>r2p", ... — standalone
/// tables that never enter the catalog; kHeap scratch uses unlogged pages.
class LocalShardBackend : public ShardBackend {
 public:
  /// `db` is borrowed and must outlive the backend.
  LocalShardBackend(Database* db, std::string name,
                    std::string scratch_prefix = "");

  /// Fixes the slice directly. Rows need not be sorted.
  void SetRows(std::vector<ShardRow> rows);

  /// Binds the slice to a catalog table, re-read at every BeginRun.
  void BindTable(std::string table_name);

  const std::string& name() const override { return name_; }
  Status BeginRun(const ShardRunOptions& options) override;
  Result<ShardLocalCounts> CountIteration(size_t k) override;
  Result<ShardFilterStats> ApplyGlobalCk(
      size_t k, const std::vector<std::vector<ItemId>>& ck) override;
  Status EndRun() override;
  Result<ShardHealth> Health() override;

 private:
  Result<std::unique_ptr<Table>> NewRelation(const std::string& name,
                                             Schema schema);
  void AddCount(const std::vector<ItemId>& items, int64_t count);

  Database* db_;
  std::string name_;
  std::string prefix_;
  std::string table_name_;
  bool bound_to_table_ = false;
  bool running_ = false;

  std::vector<ShardRow> rows_;      ///< pristine slice when SetRows-sourced
  std::vector<ShardRow> run_rows_;  ///< this run's slice, consumed by k=1
  ShardRunOptions run_;

  std::unique_ptr<Table> r1_;        ///< R_1 slice (filtered when asked)
  std::unique_ptr<Table> r_prev_;    ///< R_{k-1}; null means use r1
  std::unique_ptr<Table> rk_prime_;  ///< R'_k awaiting the global filter
  std::unordered_map<std::string, PatternCount> counts_;
};

}  // namespace setm::shard

#endif  // SETM_SHARD_LOCAL_BACKEND_H_

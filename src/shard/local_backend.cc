#include "shard/local_backend.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "core/setm_pipeline.h"
#include "exec/exec_context.h"

namespace setm::shard {

namespace {

/// Extracts (trans_id, item) pairs from a SALES-shaped table.
Status ExtractRows(const Table& sales, std::vector<ShardRow>* rows) {
  if (sales.schema().NumColumns() != 2) {
    return Status::InvalidArgument("SALES must have schema (trans_id, item)");
  }
  rows->reserve(rows->size() + sales.num_rows());
  auto it = sales.Scan();
  Tuple row;
  while (true) {
    auto more = it->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    rows->push_back(ShardRow{row.value(0).AsInt32(), row.value(1).AsInt32()});
  }
  return Status::OK();
}

ExecContext LocalContext(Database* db) {
  // Backends run on the coordinator's fan-out pool (or a server job thread):
  // never re-enter a pool from inside, so sorts get a worker-free context.
  ExecContext ctx;
  ctx.temp_pool = db->temp_pool();
  ctx.sort_memory_bytes = db->options().sort_memory_bytes;
  ctx.workers = nullptr;
  return ctx;
}

}  // namespace

LocalShardBackend::LocalShardBackend(Database* db, std::string name,
                                     std::string scratch_prefix)
    : db_(db), name_(std::move(name)), prefix_(std::move(scratch_prefix)) {}

void LocalShardBackend::SetRows(std::vector<ShardRow> rows) {
  rows_ = std::move(rows);
  bound_to_table_ = false;
}

void LocalShardBackend::BindTable(std::string table_name) {
  table_name_ = std::move(table_name);
  bound_to_table_ = true;
  rows_.clear();
  rows_.shrink_to_fit();
}

Result<std::unique_ptr<Table>> LocalShardBackend::NewRelation(
    const std::string& name, Schema schema) {
  if (run_.storage == TableBacking::kMemory) {
    return std::unique_ptr<Table>(
        std::make_unique<MemTable>(name, std::move(schema)));
  }
  // Shard scratch relations never outlive the run: unlogged.
  auto t = HeapTable::Create(name, std::move(schema), db_->pool(),
                             db_->UnloggedPageTagger());
  if (!t.ok()) return t.status();
  return std::unique_ptr<Table>(std::move(t).value());
}

void LocalShardBackend::AddCount(const std::vector<ItemId>& items,
                                 int64_t count) {
  PatternCount& pc = counts_[ItemsetKey(items)];
  if (pc.count == 0) pc.items = items;
  pc.count += count;
}

Status LocalShardBackend::BeginRun(const ShardRunOptions& options) {
  SETM_RETURN_IF_ERROR(EndRun());
  run_ = options;
  if (bound_to_table_) {
    auto table_or = db_->catalog()->ResolveTable(table_name_);
    if (!table_or.ok()) return table_or.status();
    SETM_RETURN_IF_ERROR(ExtractRows(*table_or.value(), &run_rows_));
  } else {
    run_rows_ = rows_;
  }
  // The same (trans_id, item) order the serial pipeline establishes for R_1.
  std::sort(run_rows_.begin(), run_rows_.end(),
            [](const ShardRow& a, const ShardRow& b) {
              return a.tid != b.tid ? a.tid < b.tid : a.item < b.item;
            });
  running_ = true;
  return Status::OK();
}

Result<ShardLocalCounts> LocalShardBackend::CountIteration(size_t k) {
  if (!running_) {
    return Status::Internal("CountIteration before BeginRun on shard " +
                            name_);
  }
  WallTimer timer;
  ShardLocalCounts out;
  counts_.clear();
  const ExecContext ctx = LocalContext(db_);

  if (k == 1) {
    auto r1_or = NewRelation(prefix_ + "r1", SetmMiner::RkSchema(1));
    if (!r1_or.ok()) return r1_or.status();
    r1_ = std::move(r1_or).value();
    std::vector<ItemId> item(1);
    uint64_t transactions = 0;
    for (size_t i = 0; i < run_rows_.size(); ++i) {
      const ShardRow& row = run_rows_[i];
      if (i == 0 || row.tid != run_rows_[i - 1].tid) ++transactions;
      SETM_RETURN_IF_ERROR(r1_->Insert(
          Tuple({Value::Int32(row.tid), Value::Int32(row.item)})));
      if (run_.count_method == CountMethod::kHash) {
        item[0] = row.item;
        AddCount(item, 1);
      }
    }
    run_rows_.clear();
    run_rows_.shrink_to_fit();
    if (run_.count_method == CountMethod::kSortMerge) {
      SETM_RETURN_IF_ERROR(CountInto(
          ctx, *r1_, 1, /*min_count=*/1, CountMethod::kSortMerge,
          [this](std::vector<ItemId> items, int64_t count) {
            AddCount(items, count);
          }));
    }
    out.transactions = transactions;
    out.r_prime_rows = r1_->num_rows();
    out.r_bytes = r1_->size_bytes();
    out.r_pages = r1_->num_pages();
  } else {
    const Table* left = r_prev_ != nullptr ? r_prev_.get() : r1_.get();
    if (left == nullptr) {
      return Status::Internal("CountIteration(k>=2) before CountIteration(1)");
    }
    auto rkp_or = NewRelation(prefix_ + "r" + std::to_string(k) + "p",
                              SetmMiner::RkSchema(k));
    if (!rkp_or.ok()) return rkp_or.status();
    rk_prime_ = std::move(rkp_or).value();
    CountSink sink;
    if (run_.count_method == CountMethod::kHash) {
      sink = [this](const std::vector<ItemId>& items) { AddCount(items, 1); };
    }
    SETM_RETURN_IF_ERROR(JoinIntoRkPrime(*left, *r1_, k, rk_prime_.get(),
                                         sink));
    if (run_.count_method == CountMethod::kSortMerge) {
      SETM_RETURN_IF_ERROR(CountInto(
          ctx, *rk_prime_, k, /*min_count=*/1, CountMethod::kSortMerge,
          [this](std::vector<ItemId> items, int64_t count) {
            AddCount(items, count);
          }));
    }
    out.r_prime_rows = rk_prime_->num_rows();
  }

  out.counts.reserve(counts_.size());
  for (auto& entry : counts_) {
    out.counts.push_back(
        PatternCount{std::move(entry.second.items), entry.second.count});
  }
  counts_.clear();
  out.seconds = timer.ElapsedSeconds();
  return out;
}

Result<ShardFilterStats> LocalShardBackend::ApplyGlobalCk(
    size_t k, const std::vector<std::vector<ItemId>>& ck) {
  if (!running_) {
    return Status::Internal("ApplyGlobalCk before BeginRun on shard " + name_);
  }
  std::unordered_set<std::string> keys;
  keys.reserve(ck.size());
  for (const std::vector<ItemId>& items : ck) keys.insert(ItemsetKey(items));
  const CkProbe probe = [&keys](const std::string& key) {
    return keys.count(key) != 0;
  };
  ShardFilterStats stats;

  if (k == 1) {
    // The filter_r1 ablation: drop rows of non-frequent items from R_1.
    if (r1_ == nullptr) {
      return Status::Internal("ApplyGlobalCk(1) before CountIteration(1)");
    }
    auto filtered_or = NewRelation(prefix_ + "r1f", SetmMiner::RkSchema(1));
    if (!filtered_or.ok()) return filtered_or.status();
    std::unique_ptr<Table> filtered = std::move(filtered_or).value();
    SETM_RETURN_IF_ERROR(FilterR1Into(*r1_, probe, filtered.get()));
    r1_ = std::move(filtered);
    stats.r_rows = r1_->num_rows();
    stats.r_bytes = r1_->size_bytes();
    stats.r_pages = r1_->num_pages();
    return stats;
  }

  if (rk_prime_ == nullptr) {
    return Status::Internal("ApplyGlobalCk(k) before CountIteration(k)");
  }
  auto rk_or = NewRelation(prefix_ + "r" + std::to_string(k),
                           SetmMiner::RkSchema(k));
  if (!rk_or.ok()) return rk_or.status();
  std::unique_ptr<Table> rk = std::move(rk_or).value();
  // Matches the partitioned executor's FilterAndSort: an empty global C_k
  // still creates (and reports) an empty R_k.
  if (!keys.empty()) {
    SETM_RETURN_IF_ERROR(
        FilterRkPrimeIntoRk(LocalContext(db_), *rk_prime_, k, probe,
                            rk.get()));
  }
  stats.r_rows = rk->num_rows();
  stats.r_bytes = rk->size_bytes();
  stats.r_pages = rk->num_pages();
  r_prev_ = std::move(rk);
  rk_prime_.reset();
  return stats;
}

Status LocalShardBackend::EndRun() {
  r1_.reset();
  r_prev_.reset();
  rk_prime_.reset();
  counts_.clear();
  run_rows_.clear();
  run_rows_.shrink_to_fit();
  running_ = false;
  return Status::OK();
}

Result<ShardHealth> LocalShardBackend::Health() {
  ShardHealth health;
  health.reachable = true;
  std::unordered_set<TransactionId> tids;
  if (bound_to_table_) {
    auto table_or = db_->catalog()->ResolveTable(table_name_);
    if (!table_or.ok()) return table_or.status();
    const Table& sales = *table_or.value();
    health.sales_rows = sales.num_rows();
    health.sales_bytes = sales.size_bytes();
    auto it = sales.Scan();
    Tuple row;
    while (true) {
      auto more = it->Next(&row);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      tids.insert(row.value(0).AsInt32());
    }
  } else {
    health.sales_rows = rows_.size();
    health.sales_bytes = rows_.size() * sizeof(ShardRow);
    for (const ShardRow& row : rows_) tids.insert(row.tid);
  }
  health.transactions = tids.size();
  return health;
}

}  // namespace setm::shard

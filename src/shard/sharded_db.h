#ifndef SETM_SHARD_SHARDED_DB_H_
#define SETM_SHARD_SHARDED_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "persist/shard_manifest.h"
#include "relational/database.h"
#include "shard/shard_backend.h"

namespace setm {
class WorkerPool;
}

namespace setm::shard {

/// Open-time knobs of a sharded database.
struct ShardedDatabaseOptions {
  /// Options for each file member's Database (file_path is overwritten with
  /// the member's path).
  DatabaseOptions db_options;
  /// Fan-out threads driving the shards concurrently. 0 = one thread per
  /// shard (bounded by the shard count), which is the right default: shard
  /// calls are I/O-plus-compute and there is exactly one in flight each.
  size_t fanout_threads = 0;
  /// Scratch/count knobs forwarded to every shard.
  ShardRunOptions run;
  /// Connect/receive timeout for remote members, milliseconds.
  int remote_timeout_ms = 30000;
};

/// Health of one member, paired with its manifest identity.
struct ShardMemberHealth {
  uint32_t id = 0;
  std::string name;
  ShardHealth health;
};

/// A multi-shard database: N member shards — local database files and/or
/// remote setm_served instances, as listed in a ShardManifest — mined as one
/// logical database through the two-phase distributed count coordinator
/// (shard/coordinator.h). Every member is a completely ordinary database
/// (own WAL, own catalog); this class only owns the membership view, the
/// backends and the fan-out pool.
class ShardedDatabase {
 public:
  /// Opens every file member (creating backends bound to each member's
  /// table) and constructs remote backends for the rest. Remote members are
  /// not contacted here — a down shard surfaces when a run (or Health)
  /// first touches it. Fails if the manifest is empty or a file member
  /// cannot be opened.
  static Result<std::unique_ptr<ShardedDatabase>> Open(
      ShardManifest manifest, ShardedDatabaseOptions options = {});

  ~ShardedDatabase();

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  /// The distributed mine: bit-identical to single-node SETM over the union
  /// of the shards. One unavailable shard fails the whole run with
  /// Status::Unavailable naming it — never partial results.
  Result<MiningResult> Mine(const MiningOptions& options);

  /// Probes every member (remote members answer a PING).
  std::vector<ShardMemberHealth> Health();

  const ShardManifest& manifest() const { return manifest_; }
  /// The backends, in manifest order (tests drive these directly).
  const std::vector<ShardBackend*>& backends() const { return backends_; }

  /// Closes every file member, surfacing the first error. Idempotent.
  Status Close();

 private:
  ShardedDatabase() = default;

  ShardManifest manifest_;
  ShardedDatabaseOptions options_;
  std::vector<std::unique_ptr<Database>> file_dbs_;  ///< kFile members
  std::vector<std::unique_ptr<ShardBackend>> owned_backends_;
  std::vector<ShardBackend*> backends_;
  std::unique_ptr<WorkerPool> fanout_;
  bool closed_ = false;
};

}  // namespace setm::shard

#endif  // SETM_SHARD_SHARDED_DB_H_

#ifndef SETM_SHARD_SHARDED_SETM_H_
#define SETM_SHARD_SHARDED_SETM_H_

#include "core/setm.h"
#include "core/types.h"
#include "relational/database.h"

namespace setm::shard {

/// SETM through the distributed coordinator, entirely in process: SALES is
/// range-partitioned on trans_id into `num_threads` shard slices (never
/// splitting a transaction), each slice gets a LocalShardBackend, and
/// DistributedMine drives the two-phase count over them on a worker pool.
///
/// Functionally this mirrors ParallelSetmMiner — identical output for any
/// shard count, asserted by miners_equivalence_test under the registry name
/// "setm-sharded" — but it exercises the exact coordinator/backend seam the
/// multi-database ShardedDatabase and the remote LCOUNT/MERGE protocol use,
/// so the scale-out path is covered by the same equivalence suite that
/// guards the in-process executors.
class ShardedSetmMiner {
 public:
  /// Uses the database's shared worker pool when it has one, otherwise
  /// spins up a private pool per Mine call (num_threads > 1 only).
  explicit ShardedSetmMiner(Database* db, SetmOptions setm_options = {})
      : db_(db), setm_options_(setm_options) {}

  /// Mines a transaction database (same contract as SetmMiner::Mine).
  Result<MiningResult> Mine(const TransactionDb& transactions,
                            const MiningOptions& options);

  /// Mines an existing relation with schema (trans_id INT32, item INT32).
  Result<MiningResult> MineTable(const Table& sales,
                                 const MiningOptions& options);

 private:
  Database* db_;
  SetmOptions setm_options_;
};

}  // namespace setm::shard

#endif  // SETM_SHARD_SHARDED_SETM_H_

#include "common/logging.h"

#include <atomic>

namespace setm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < g_level.load()) return;
  // Strip directories from __FILE__ for readable output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               message.c_str());
}
}  // namespace internal

}  // namespace setm

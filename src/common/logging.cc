#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>

namespace setm {

namespace {

/// Initial level: SETM_LOG_LEVEL from the environment when set (by name —
/// debug/info/warn/error, case-insensitive — or as the numeric enum value),
/// kWarn otherwise so library internals stay quiet in tests and benches.
LogLevel InitialLogLevel() {
  const char* env = std::getenv("SETM_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::kWarn;
  std::string value;
  for (const char* p = env; *p; ++p) {
    value += static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p)));
  }
  if (value == "debug" || value == "0") return LogLevel::kDebug;
  if (value == "info" || value == "1") return LogLevel::kInfo;
  if (value == "warn" || value == "warning" || value == "2") {
    return LogLevel::kWarn;
  }
  if (value == "error" || value == "3") return LogLevel::kError;
  return LogLevel::kWarn;
}

/// Meyer singleton so the env var is honored even when a static
/// initializer in another translation unit logs first.
std::atomic<LogLevel>& GlobalLevel() {
  static std::atomic<LogLevel> level{InitialLogLevel()};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Seconds since the first log call, monotonic — correlates log lines with
/// trace spans and latency histograms without wall-clock skew.
double UptimeSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void SetLogLevel(LogLevel level) { GlobalLevel().store(level); }
LogLevel GetLogLevel() { return GlobalLevel().load(); }

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < GlobalLevel().load()) return;
  // Strip directories from __FILE__ for readable output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%.6f %s %s:%d] %s\n", UptimeSeconds(),
               LevelName(level), base, line, message.c_str());
}
}  // namespace internal

}  // namespace setm

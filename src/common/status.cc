#include "common/status.h"

namespace setm {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace setm

#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace setm {

namespace {
// SplitMix64, used only to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Guard against the all-zero state, which xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  SETM_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  SETM_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint32_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double l = std::exp(-mean);
    uint32_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; fine for basket sizes.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double v = mean + std::sqrt(mean) * z + 0.5;
  return v < 0.0 ? 0u : static_cast<uint32_t>(v);
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

// ---------------------------------------------------------------------------
// ZipfSampler (rejection-inversion, Hörmann & Derflinger 1996).
// ---------------------------------------------------------------------------

namespace {
// Helper: (exp(x) - 1) / x, stable near zero.
double ExpM1OverX(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x / 2.0;
}

// Helper: log1p(x) / x, stable near zero.
double Log1pOverX(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x / 2.0;
}
}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  SETM_CHECK(n >= 1);
  SETM_CHECK(s > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s));
}

// H(x) = integral of 1/t^s; antiderivative expressed via expm1/log1p for
// numerical stability when s is close to 1.
double ZipfSampler::H(double x) const {
  const double log_x = std::log(x);
  return ExpM1OverX((1.0 - s_) * log_x) * log_x;
}

double ZipfSampler::HInverse(double x) const {
  const double t = x * (1.0 - s_);
  // Inverse of H via the same stable kernels.
  return std::exp(Log1pOverX(t) * x);
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  while (true) {
    const double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ || u >= H(kd + 0.5) - std::exp(-s_ * std::log(kd))) {
      return k - 1;  // ranks are 0-based externally
    }
  }
}

}  // namespace setm

#ifndef SETM_COMMON_LOGGING_H_
#define SETM_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace setm {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kWarn so library internals stay quiet in tests and benches;
/// the SETM_LOG_LEVEL environment variable (debug/info/warn/error or 0-3)
/// overrides the default at startup. Lines are prefixed with a monotonic
/// seconds-since-start timestamp.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
/// Emits one formatted line to stderr. Not for direct use; see SETM_LOG.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);
}  // namespace internal

/// Streams a log line at the given level:
///   SETM_LOG(kInfo) << "spilled " << runs << " runs";
#define SETM_LOG(level)                                                   \
  for (bool _setm_once = ::setm::GetLogLevel() <= ::setm::LogLevel::level; \
       _setm_once; _setm_once = false)                                    \
  ::setm::internal::LogStream(::setm::LogLevel::level, __FILE__, __LINE__)

namespace internal {
/// RAII stream that forwards its accumulated message on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

/// Fatal invariant check, active in all build types. The relational kernel
/// uses it for conditions that indicate memory corruption rather than bad
/// user input (bad input gets a Status instead).
#define SETM_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::std::fprintf(stderr, "SETM_CHECK failed at %s:%d: %s\n", __FILE__,    \
                     __LINE__, #cond);                                        \
      ::std::abort();                                                         \
    }                                                                         \
  } while (0)

/// Debug-only invariant check (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define SETM_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define SETM_DCHECK(cond) SETM_CHECK(cond)
#endif

}  // namespace setm

#endif  // SETM_COMMON_LOGGING_H_

#ifndef SETM_COMMON_STATUS_H_
#define SETM_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace setm {

/// Error category carried by a Status.
///
/// Library code never throws; every fallible operation returns a Status (or a
/// Result<T>, see result.h). Codes follow the RocksDB/Abseil convention.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruption,
  kIOError,
  kNotSupported,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kCancelled,
  kUnavailable,
};

/// Returns a stable human-readable name for a status code, e.g. "IOError".
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// An ok Status carries no allocation; error statuses carry a message.
/// Typical use:
///
///     Status s = table.Insert(tuple);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an ok status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category (kOk when ok()).
  StatusCode code() const { return code_; }

  /// The error message (empty when ok()).
  const std::string& message() const { return message_; }

  /// Convenience predicates mirroring the factories.
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// Renders "OK" or "<CodeName>: <message>" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-ok Status to the caller. Mirrors RocksDB's pattern.
#define SETM_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::setm::Status _setm_status = (expr);           \
    if (!_setm_status.ok()) return _setm_status;    \
  } while (0)

}  // namespace setm

#endif  // SETM_COMMON_STATUS_H_

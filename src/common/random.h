#ifndef SETM_COMMON_RANDOM_H_
#define SETM_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace setm {

/// Deterministic pseudo-random generator (xoshiro256**) used throughout the
/// data generators and property tests so that every experiment is exactly
/// reproducible from its seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams on all platforms.
  explicit Rng(uint64_t seed = 0x5e7a9d2bu);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in the closed range [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Poisson-distributed value with the given mean (Knuth's method for small
  /// means, normal approximation above 30; means in this library are small).
  uint32_t Poisson(double mean);

  /// Exponential variate with the given mean.
  double Exponential(double mean);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Sampler for the Zipf(n, s) distribution over {0, .., n-1} using the
/// rejection-inversion method of Hörmann & Derflinger; O(1) per sample.
/// Used to model skewed item popularities in the retail generator.
class ZipfSampler {
 public:
  /// Creates a sampler over n ranks with exponent s (> 0). s close to 0 is
  /// near-uniform; s = 1 is the classic Zipf.
  ZipfSampler(uint64_t n, double s);

  /// Draws one rank in [0, n).
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace setm

#endif  // SETM_COMMON_RANDOM_H_

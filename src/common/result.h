#ifndef SETM_COMMON_RESULT_H_
#define SETM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace setm {

/// A value-or-error holder, the moral equivalent of absl::StatusOr<T>.
///
/// A Result is either ok and holds a T, or holds a non-ok Status. Accessing
/// the value of an error Result is a programming error (asserted in debug
/// builds).
///
///     Result<PageId> r = file.Allocate();
///     if (!r.ok()) return r.status();
///     UsePage(r.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status makes
  /// `return Status::NotFound(...);` work. `status` must not be ok.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from an OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from an OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The error (Status::OK() when a value is present).
  const Status& status() const { return status_; }

  /// Accessors for the contained value; require ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK when value_ present.
  std::optional<T> value_;
};

/// Propagates the error of a Result expression, else assigns its value.
/// Usage: SETM_ASSIGN_OR_RETURN(auto page, pool.Fetch(id));
#define SETM_ASSIGN_OR_RETURN(decl, expr)             \
  decl = ({                                           \
    auto _setm_result = (expr);                       \
    if (!_setm_result.ok()) return _setm_result.status(); \
    std::move(_setm_result).value();                  \
  })

}  // namespace setm

#endif  // SETM_COMMON_RESULT_H_

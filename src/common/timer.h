#ifndef SETM_COMMON_TIMER_H_
#define SETM_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace setm {

/// Monotonic wall-clock stopwatch used for experiment timing.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in whole microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace setm

#endif  // SETM_COMMON_TIMER_H_

#include "sql/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/logging.h"
#include "exec/external_sort.h"
#include "exec/hash_operators.h"
#include "exec/operators.h"

namespace setm::sql {

namespace {

// ---------------------------------------------------------------------------
// Binding context: FROM-clause tables and name resolution.
// ---------------------------------------------------------------------------

struct Binding {
  std::string name;  // alias (or table name)
  const Table* table;
  size_t offset;  // first column's index in the combined row
};

class Binder {
 public:
  Binder(std::vector<Binding> bindings, const Params* params)
      : bindings_(std::move(bindings)), params_(params) {}

  /// Resolves [qualifier.]column to a combined-row index.
  Result<size_t> ResolveColumn(const std::string& qualifier,
                               const std::string& column) const {
    if (!qualifier.empty()) {
      for (const Binding& b : bindings_) {
        if (IdentEquals(b.name, qualifier)) {
          auto idx = b.table->schema().FindColumn(column);
          if (!idx.has_value()) {
            return Status::InvalidArgument("table '" + qualifier +
                                           "' has no column '" + column + "'");
          }
          return b.offset + *idx;
        }
      }
      return Status::InvalidArgument("unknown table alias '" + qualifier + "'");
    }
    size_t found = 0;
    int matches = 0;
    for (const Binding& b : bindings_) {
      auto idx = b.table->schema().FindColumn(column);
      if (idx.has_value()) {
        found = b.offset + *idx;
        ++matches;
      }
    }
    if (matches == 0) {
      return Status::InvalidArgument("unknown column '" + column + "'");
    }
    if (matches > 1) {
      return Status::InvalidArgument("ambiguous column '" + column +
                                     "'; qualify it");
    }
    return found;
  }

  /// Lowers an AST expression to an executable Expr over the combined row.
  /// COUNT(*) is rejected here (only valid in aggregate contexts).
  Result<ExprPtr> Bind(const AstExpr& e) const {
    switch (e.kind) {
      case AstExpr::Kind::kColumnRef: {
        auto idx = ResolveColumn(e.qualifier, e.column);
        if (!idx.ok()) return idx.status();
        std::string display =
            e.qualifier.empty() ? e.column : e.qualifier + "." + e.column;
        return ExprPtr(Col(idx.value(), std::move(display)));
      }
      case AstExpr::Kind::kLiteral:
        return ExprPtr(Const(e.literal));
      case AstExpr::Kind::kParameter: {
        auto it = params_->find(e.parameter);
        if (it == params_->end()) {
          return Status::InvalidArgument("unbound parameter :" + e.parameter);
        }
        return ExprPtr(Const(it->second));
      }
      case AstExpr::Kind::kCountStar:
        return Status::InvalidArgument(
            "COUNT(*) is only allowed in the SELECT list or HAVING of an "
            "aggregate query");
      case AstExpr::Kind::kBinary: {
        auto l = Bind(*e.lhs);
        if (!l.ok()) return l.status();
        auto r = Bind(*e.rhs);
        if (!r.ok()) return r.status();
        return ExprPtr(
            Binary(e.op, std::move(l).value(), std::move(r).value()));
      }
    }
    return Status::Internal("unhandled AST expression kind");
  }

  /// Returns the binding index owning combined-row column `index`.
  size_t BindingOf(size_t index) const {
    for (size_t i = bindings_.size(); i-- > 0;) {
      if (index >= bindings_[i].offset) return i;
    }
    return 0;
  }

  const std::vector<Binding>& bindings() const { return bindings_; }

 private:
  std::vector<Binding> bindings_;
  const Params* params_;
};

/// Collects the combined-row column indices referenced by an AST expression.
Status CollectColumns(const AstExpr& e, const Binder& binder,
                      std::vector<size_t>* out) {
  switch (e.kind) {
    case AstExpr::Kind::kColumnRef: {
      auto idx = binder.ResolveColumn(e.qualifier, e.column);
      if (!idx.ok()) return idx.status();
      out->push_back(idx.value());
      return Status::OK();
    }
    case AstExpr::Kind::kBinary:
      SETM_RETURN_IF_ERROR(CollectColumns(*e.lhs, binder, out));
      return CollectColumns(*e.rhs, binder, out);
    default:
      return Status::OK();
  }
}

/// Splits an AST predicate on top-level ANDs.
void SplitConjuncts(const AstExpr* e, std::vector<const AstExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == AstExpr::Kind::kBinary && e->op == BinaryOp::kAnd) {
    SplitConjuncts(e->lhs.get(), out);
    SplitConjuncts(e->rhs.get(), out);
    return;
  }
  out->push_back(e);
}

/// Rebases column indices of a bound Expr tree by `delta` — used when a
/// predicate bound against the combined row is evaluated against a single
/// table's row.
ExprPtr RebaseExpr(const Expr* e, size_t delta) {
  if (const auto* col = dynamic_cast<const ColumnExpr*>(e)) {
    return Col(col->index() - delta, col->ToString());
  }
  if (const auto* cst = dynamic_cast<const ConstExpr*>(e)) {
    return Const(cst->value());
  }
  const auto* bin = dynamic_cast<const BinaryExpr*>(e);
  SETM_CHECK(bin != nullptr);
  return Binary(bin->op(), RebaseExpr(bin->lhs(), delta),
                RebaseExpr(bin->rhs(), delta));
}

/// Removes adjacent duplicates from a sorted stream (DISTINCT support).
class DedupIterator : public TupleIterator {
 public:
  explicit DedupIterator(std::unique_ptr<TupleIterator> child)
      : child_(std::move(child)) {}

  Result<bool> Next(Tuple* out) override {
    Tuple row;
    while (true) {
      auto more = child_->Next(&row);
      if (!more.ok()) return more.status();
      if (!more.value()) return false;
      if (!has_prev_ || !(row == prev_)) {
        prev_ = row;
        has_prev_ = true;
        *out = std::move(row);
        return true;
      }
    }
  }
  const Schema& schema() const override { return child_->schema(); }

 private:
  std::unique_ptr<TupleIterator> child_;
  Tuple prev_;
  bool has_prev_ = false;
};

/// True if every column index in `cols` is below `limit` (i.e. the predicate
/// only touches the already-joined prefix).
bool AllBelow(const std::vector<size_t>& cols, size_t limit) {
  return std::all_of(cols.begin(), cols.end(),
                     [&](size_t c) { return c < limit; });
}

}  // namespace

// ---------------------------------------------------------------------------
// Value coercion
// ---------------------------------------------------------------------------

Result<Value> CoerceValue(const Value& v, ValueType target) {
  if (v.type() == target) return v;
  switch (target) {
    case ValueType::kInt32: {
      if (!v.IsNumeric()) break;
      if (v.type() == ValueType::kDouble) break;  // lossy; refuse
      const int64_t x = v.NumericInt();
      if (x < std::numeric_limits<int32_t>::min() ||
          x > std::numeric_limits<int32_t>::max()) {
        return Status::InvalidArgument("value " + std::to_string(x) +
                                       " out of INT32 range");
      }
      return Value::Int32(static_cast<int32_t>(x));
    }
    case ValueType::kInt64:
      if (v.type() == ValueType::kInt32) return Value::Int64(v.AsInt32());
      break;
    case ValueType::kDouble:
      if (v.type() == ValueType::kInt32 || v.type() == ValueType::kInt64) {
        return Value::Double(static_cast<double>(v.NumericInt()));
      }
      break;
    case ValueType::kString:
      break;
  }
  return Status::InvalidArgument(
      "cannot coerce " + std::string(ValueTypeName(v.type())) + " value " +
      v.ToString() + " to " + std::string(ValueTypeName(target)));
}

// ---------------------------------------------------------------------------
// SELECT planning & execution
// ---------------------------------------------------------------------------

Result<QueryResult> SqlEngine::RunSelect(const SelectStatement& stmt,
                                         const Params& params) {
  ExecContext ctx = ExecContext::From(db_);

  // Resolve FROM bindings.
  std::vector<Binding> bindings;
  size_t offset = 0;
  for (const TableRef& ref : stmt.from) {
    auto table = db_->catalog()->GetTable(ref.table);
    if (!table.ok()) return table.status();
    for (const Binding& b : bindings) {
      if (IdentEquals(b.name, ref.binding())) {
        return Status::InvalidArgument("duplicate table alias '" +
                                       ref.binding() + "'");
      }
    }
    bindings.push_back(Binding{IdentFold(ref.binding()), table.value(), offset});
    offset += table.value()->schema().NumColumns();
  }
  if (bindings.empty()) {
    return Status::InvalidArgument("FROM clause is required");
  }
  Binder binder(bindings, &params);

  // Classify WHERE conjuncts.
  std::vector<const AstExpr*> conjuncts;
  SplitConjuncts(stmt.where.get(), &conjuncts);

  struct JoinEdge {
    size_t left_col;   // combined index, in the already-joined prefix
    size_t right_col;  // combined index, in the table being added
  };
  // pushdown[i]: predicates referencing only binding i.
  std::vector<std::vector<const AstExpr*>> pushdown(bindings.size());
  // edges[i]: equality predicates usable when joining binding i (i >= 1).
  std::vector<std::vector<JoinEdge>> edges(bindings.size());
  // residual_at[i]: evaluated right after binding i joins.
  std::vector<std::vector<const AstExpr*>> residual_at(bindings.size());

  for (const AstExpr* c : conjuncts) {
    std::vector<size_t> cols;
    SETM_RETURN_IF_ERROR(CollectColumns(*c, binder, &cols));
    if (cols.empty()) {
      residual_at[0].push_back(c);  // constant predicate
      continue;
    }
    // The highest-numbered binding referenced decides placement.
    size_t max_binding = 0;
    for (size_t col : cols) {
      max_binding = std::max(max_binding, binder.BindingOf(col));
    }
    // Single-table predicate?
    bool single = true;
    for (size_t col : cols) {
      if (binder.BindingOf(col) != max_binding) {
        single = false;
        break;
      }
    }
    if (single) {
      pushdown[max_binding].push_back(c);
      continue;
    }
    // Equi-join edge col_a = col_b with exactly one side in max_binding?
    if (c->kind == AstExpr::Kind::kBinary && c->op == BinaryOp::kEq &&
        c->lhs->kind == AstExpr::Kind::kColumnRef &&
        c->rhs->kind == AstExpr::Kind::kColumnRef) {
      auto l = binder.ResolveColumn(c->lhs->qualifier, c->lhs->column);
      auto r = binder.ResolveColumn(c->rhs->qualifier, c->rhs->column);
      if (!l.ok()) return l.status();
      if (!r.ok()) return r.status();
      size_t lcol = l.value();
      size_t rcol = r.value();
      if (binder.BindingOf(rcol) != max_binding) std::swap(lcol, rcol);
      if (binder.BindingOf(rcol) == max_binding &&
          binder.BindingOf(lcol) < max_binding) {
        edges[max_binding].push_back(JoinEdge{lcol, rcol});
        continue;
      }
    }
    residual_at[max_binding].push_back(c);
  }

  // Build the left-deep join tree in FROM order.
  auto scan_with_pushdown =
      [&](size_t i) -> Result<std::unique_ptr<TupleIterator>> {
    std::unique_ptr<TupleIterator> it = bindings[i].table->Scan();
    if (!pushdown[i].empty()) {
      std::vector<ExprPtr> preds;
      for (const AstExpr* c : pushdown[i]) {
        auto bound = binder.Bind(*c);
        if (!bound.ok()) return bound.status();
        // Bound against the combined row; rebase to this table's row.
        preds.push_back(RebaseExpr(bound.value().get(), bindings[i].offset));
      }
      it = std::make_unique<FilterIterator>(std::move(it),
                                            ConjoinAll(std::move(preds)));
    }
    return it;
  };

  auto current_or = scan_with_pushdown(0);
  if (!current_or.ok()) return current_or.status();
  std::unique_ptr<TupleIterator> current = std::move(current_or).value();

  auto apply_residuals =
      [&](std::unique_ptr<TupleIterator> it, size_t binding_index,
          size_t prefix_cols) -> Result<std::unique_ptr<TupleIterator>> {
    // Evaluate every deferred residual whose columns are now available.
    std::vector<ExprPtr> preds;
    for (size_t j = 0; j <= binding_index; ++j) {
      auto& pending = residual_at[j];
      for (auto pit = pending.begin(); pit != pending.end();) {
        std::vector<size_t> cols;
        SETM_RETURN_IF_ERROR(CollectColumns(**pit, binder, &cols));
        if (AllBelow(cols, prefix_cols)) {
          auto bound = binder.Bind(**pit);
          if (!bound.ok()) return bound.status();
          preds.push_back(std::move(bound).value());
          pit = pending.erase(pit);
        } else {
          ++pit;
        }
      }
    }
    if (!preds.empty()) {
      it = std::make_unique<FilterIterator>(std::move(it),
                                            ConjoinAll(std::move(preds)));
    }
    return it;
  };

  size_t prefix_cols = bindings[0].table->schema().NumColumns();
  {
    auto filtered = apply_residuals(std::move(current), 0, prefix_cols);
    if (!filtered.ok()) return filtered.status();
    current = std::move(filtered).value();
  }

  for (size_t i = 1; i < bindings.size(); ++i) {
    auto right_or = scan_with_pushdown(i);
    if (!right_or.ok()) return right_or.status();
    std::unique_ptr<TupleIterator> right = std::move(right_or).value();

    if (!edges[i].empty()) {
      // Equi-join on all available equality edges, using the configured
      // physical strategy.
      std::vector<size_t> left_keys, right_keys;
      for (const JoinEdge& e : edges[i]) {
        left_keys.push_back(e.left_col);
        right_keys.push_back(e.right_col - bindings[i].offset);
      }
      if (options_.join_strategy == JoinStrategy::kHash) {
        current = std::make_unique<HashJoinIterator>(
            std::move(current), std::move(right), left_keys, right_keys,
            nullptr);
      } else {
        current = std::make_unique<SortIterator>(
            ctx, std::move(current), TupleComparator(left_keys));
        right = std::make_unique<SortIterator>(ctx, std::move(right),
                                               TupleComparator(right_keys));
        current = std::make_unique<MergeJoinIterator>(
            std::move(current), std::move(right), left_keys, right_keys,
            nullptr);
      }
    } else {
      current = std::make_unique<NestedLoopJoinIterator>(
          std::move(current), std::move(right), nullptr);
    }
    prefix_cols += bindings[i].table->schema().NumColumns();
    auto filtered = apply_residuals(std::move(current), i, prefix_cols);
    if (!filtered.ok()) return filtered.status();
    current = std::move(filtered).value();
  }

  // Aggregate?
  bool has_count = false;
  for (const SelectItem& item : stmt.items) {
    // COUNT(*) only appears as a top-level select item in this subset.
    if (item.expr->kind == AstExpr::Kind::kCountStar) has_count = true;
  }
  const bool aggregate = has_count || !stmt.group_by.empty();

  std::vector<size_t> group_cols;  // combined indices of GROUP BY columns
  if (aggregate) {
    for (const AstExprPtr& g : stmt.group_by) {
      auto idx = binder.ResolveColumn(g->qualifier, g->column);
      if (!idx.ok()) return idx.status();
      group_cols.push_back(idx.value());
    }
    // HAVING COUNT(*) >= <const|param> folds into the aggregation.
    int64_t min_count = 0;
    const AstExpr* residual_having = nullptr;
    if (stmt.having != nullptr) {
      const AstExpr& h = *stmt.having;
      bool folded = false;
      if (h.kind == AstExpr::Kind::kBinary && h.op == BinaryOp::kGe &&
          h.lhs->kind == AstExpr::Kind::kCountStar) {
        Value bound;
        if (h.rhs->kind == AstExpr::Kind::kLiteral) {
          bound = h.rhs->literal;
          folded = true;
        } else if (h.rhs->kind == AstExpr::Kind::kParameter) {
          auto it = params.find(h.rhs->parameter);
          if (it == params.end()) {
            return Status::InvalidArgument("unbound parameter :" +
                                           h.rhs->parameter);
          }
          bound = it->second;
          folded = true;
        }
        if (folded) {
          if (!bound.IsNumeric() || bound.type() == ValueType::kDouble) {
            // Ceil of a fractional threshold keeps >= semantics.
            if (bound.type() == ValueType::kDouble) {
              min_count = static_cast<int64_t>(std::ceil(bound.AsDouble()));
            } else {
              return Status::InvalidArgument("HAVING bound must be numeric");
            }
          } else {
            min_count = bound.NumericInt();
          }
        }
      }
      if (!folded) residual_having = &h;
    }

    current = std::make_unique<SortIterator>(ctx, std::move(current),
                                             TupleComparator(group_cols));
    current = std::make_unique<SortedGroupCountIterator>(std::move(current),
                                                         group_cols, min_count);
    // Rows are now: group columns (in GROUP BY order) + count.

    // Bind an AST expression against the aggregate output row.
    auto bind_agg = [&](const AstExpr& e,
                        auto&& self) -> Result<ExprPtr> {
      switch (e.kind) {
        case AstExpr::Kind::kCountStar:
          return ExprPtr(Col(group_cols.size(), "count"));
        case AstExpr::Kind::kColumnRef: {
          auto idx = binder.ResolveColumn(e.qualifier, e.column);
          if (!idx.ok()) return idx.status();
          for (size_t g = 0; g < group_cols.size(); ++g) {
            if (group_cols[g] == idx.value()) {
              return ExprPtr(Col(g, e.column));
            }
          }
          return Status::InvalidArgument("column '" + e.column +
                                         "' must appear in GROUP BY");
        }
        case AstExpr::Kind::kLiteral:
          return ExprPtr(Const(e.literal));
        case AstExpr::Kind::kParameter: {
          auto it = params.find(e.parameter);
          if (it == params.end()) {
            return Status::InvalidArgument("unbound parameter :" +
                                           e.parameter);
          }
          return ExprPtr(Const(it->second));
        }
        case AstExpr::Kind::kBinary: {
          auto l = self(*e.lhs, self);
          if (!l.ok()) return l;
          auto r = self(*e.rhs, self);
          if (!r.ok()) return r;
          return ExprPtr(
              Binary(e.op, std::move(l).value(), std::move(r).value()));
        }
      }
      return Status::Internal("unhandled AST kind in aggregate binder");
    };

    if (residual_having != nullptr) {
      auto pred = bind_agg(*residual_having, bind_agg);
      if (!pred.ok()) return pred.status();
      current = std::make_unique<FilterIterator>(std::move(current),
                                                 std::move(pred).value());
    }

    // ORDER BY against the aggregate output.
    if (!stmt.order_by.empty()) {
      std::vector<size_t> order_cols;
      for (const AstExprPtr& o : stmt.order_by) {
        auto bound = bind_agg(*o, bind_agg);
        if (!bound.ok()) return bound.status();
        const auto* col = dynamic_cast<const ColumnExpr*>(bound.value().get());
        if (col == nullptr) {
          return Status::InvalidArgument("ORDER BY must name output columns");
        }
        order_cols.push_back(col->index());
      }
      current = std::make_unique<SortIterator>(ctx, std::move(current),
                                               TupleComparator(order_cols));
    }

    // Projection.
    std::vector<ExprPtr> exprs;
    Schema out_schema;
    const Schema& agg_schema = current->schema();
    for (const SelectItem& item : stmt.items) {
      auto bound = bind_agg(*item.expr, bind_agg);
      if (!bound.ok()) return bound.status();
      std::string name = item.alias;
      ValueType type = ValueType::kInt64;
      if (const auto* col =
              dynamic_cast<const ColumnExpr*>(bound.value().get())) {
        type = agg_schema.column(col->index()).type;
        if (name.empty()) name = agg_schema.column(col->index()).name;
      } else if (name.empty()) {
        name = "expr";
      }
      out_schema.AddColumn(Column{IdentFold(name), type});
      exprs.push_back(std::move(bound).value());
    }
    current = std::make_unique<ProjectIterator>(std::move(current),
                                                std::move(exprs), out_schema);
    if (stmt.distinct) {
      std::vector<size_t> all;
      for (size_t i = 0; i < out_schema.NumColumns(); ++i) all.push_back(i);
      current = std::make_unique<SortIterator>(ctx, std::move(current),
                                               TupleComparator(all));
      current = std::make_unique<DedupIterator>(std::move(current));
    }
    auto rows = Collect(current.get());
    if (!rows.ok()) return rows.status();
    QueryResult result;
    result.schema = out_schema;
    result.rows = std::move(rows).value();
    return result;
  }

  // Non-aggregate path: ORDER BY in the combined-row space, then project.
  if (!stmt.order_by.empty()) {
    std::vector<size_t> order_cols;
    for (const AstExprPtr& o : stmt.order_by) {
      if (o->kind == AstExpr::Kind::kCountStar) {
        return Status::InvalidArgument(
            "ORDER BY COUNT(*) requires GROUP BY");
      }
      auto idx = binder.ResolveColumn(o->qualifier, o->column);
      if (!idx.ok()) return idx.status();
      order_cols.push_back(idx.value());
    }
    current = std::make_unique<SortIterator>(ctx, std::move(current),
                                             TupleComparator(order_cols));
  }

  std::vector<ExprPtr> exprs;
  Schema out_schema;
  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind == AstExpr::Kind::kCountStar) {
      return Status::InvalidArgument(
          "COUNT(*) requires GROUP BY in this SQL subset");
    }
    auto bound = binder.Bind(*item.expr);
    if (!bound.ok()) return bound.status();
    std::string name = item.alias;
    ValueType type = ValueType::kInt64;
    if (item.expr->kind == AstExpr::Kind::kColumnRef) {
      auto idx =
          binder.ResolveColumn(item.expr->qualifier, item.expr->column);
      SETM_CHECK(idx.ok());
      const size_t b = binder.BindingOf(idx.value());
      const Schema& ts = binder.bindings()[b].table->schema();
      type = ts.column(idx.value() - binder.bindings()[b].offset).type;
      if (name.empty()) name = item.expr->column;
    } else if (item.expr->kind == AstExpr::Kind::kLiteral) {
      type = item.expr->literal.type();
      if (name.empty()) name = "literal";
    } else if (name.empty()) {
      name = "expr";
    }
    out_schema.AddColumn(Column{IdentFold(name), type});
    exprs.push_back(std::move(bound).value());
  }
  current = std::make_unique<ProjectIterator>(std::move(current),
                                              std::move(exprs), out_schema);
  if (stmt.distinct) {
    std::vector<size_t> all;
    for (size_t i = 0; i < out_schema.NumColumns(); ++i) all.push_back(i);
    current = std::make_unique<SortIterator>(ctx, std::move(current),
                                             TupleComparator(all));
    current = std::make_unique<DedupIterator>(std::move(current));
  }

  auto rows = Collect(current.get());
  if (!rows.ok()) return rows.status();
  QueryResult result;
  result.schema = out_schema;
  result.rows = std::move(rows).value();
  return result;
}

// ---------------------------------------------------------------------------
// DDL / DML
// ---------------------------------------------------------------------------

Result<QueryResult> SqlEngine::RunCreate(const CreateTableStatement& stmt) {
  Schema schema;
  for (const auto& [name, type] : stmt.columns) {
    schema.AddColumn(Column{IdentFold(name), type});
  }
  auto table = db_->catalog()->CreateTable(
      stmt.table, std::move(schema),
      stmt.memory ? TableBacking::kMemory : TableBacking::kHeap);
  if (!table.ok()) return table.status();
  return QueryResult{};
}

Result<QueryResult> SqlEngine::RunInsert(const InsertStatement& stmt,
                                         const Params& params) {
  auto table_or = db_->catalog()->GetTable(stmt.table);
  if (!table_or.ok()) return table_or.status();
  Table* table = table_or.value();
  const Schema& schema = table->schema();

  QueryResult result;
  if (stmt.select != nullptr) {
    auto select = RunSelect(*stmt.select, params);
    if (!select.ok()) return select.status();
    if (select.value().schema.NumColumns() != schema.NumColumns()) {
      return Status::InvalidArgument(
          "INSERT column count mismatch: table has " +
          std::to_string(schema.NumColumns()) + ", SELECT produces " +
          std::to_string(select.value().schema.NumColumns()));
    }
    for (const Tuple& row : select.value().rows) {
      std::vector<Value> values;
      values.reserve(schema.NumColumns());
      for (size_t i = 0; i < schema.NumColumns(); ++i) {
        auto v = CoerceValue(row.value(i), schema.column(i).type);
        if (!v.ok()) return v.status();
        values.push_back(std::move(v).value());
      }
      SETM_RETURN_IF_ERROR(table->Insert(Tuple(std::move(values))));
      ++result.rows_affected;
    }
    return result;
  }

  for (const auto& row : stmt.rows) {
    if (row.size() != schema.NumColumns()) {
      return Status::InvalidArgument("INSERT row arity mismatch");
    }
    std::vector<Value> values;
    values.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      Value raw;
      if (row[i]->kind == AstExpr::Kind::kLiteral) {
        raw = row[i]->literal;
      } else if (row[i]->kind == AstExpr::Kind::kParameter) {
        auto it = params.find(row[i]->parameter);
        if (it == params.end()) {
          return Status::InvalidArgument("unbound parameter :" +
                                         row[i]->parameter);
        }
        raw = it->second;
      } else {
        return Status::InvalidArgument(
            "VALUES rows must contain literals or parameters");
      }
      auto v = CoerceValue(raw, schema.column(i).type);
      if (!v.ok()) return v.status();
      values.push_back(std::move(v).value());
    }
    SETM_RETURN_IF_ERROR(table->Insert(Tuple(std::move(values))));
    ++result.rows_affected;
  }
  return result;
}

Result<QueryResult> SqlEngine::ExecuteStatement(const Statement& stmt,
                                                const Params& params) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return RunSelect(*stmt.select, params);
    case Statement::Kind::kCreateTable:
      return RunCreate(*stmt.create_table);
    case Statement::Kind::kInsert:
      return RunInsert(*stmt.insert, params);
    case Statement::Kind::kDropTable: {
      SETM_RETURN_IF_ERROR(db_->catalog()->DropTable(stmt.drop_table->table));
      return QueryResult{};
    }
    case Statement::Kind::kDelete: {
      auto table = db_->catalog()->GetTable(stmt.del->table);
      if (!table.ok()) return table.status();
      QueryResult result;
      result.rows_affected = table.value()->num_rows();
      SETM_RETURN_IF_ERROR(table.value()->Truncate());
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> SqlEngine::Execute(const std::string& sql,
                                       const Params& params) {
  auto stmt = Parse(sql);
  if (!stmt.ok()) return stmt.status();
  return ExecuteStatement(stmt.value(), params);
}

}  // namespace setm::sql

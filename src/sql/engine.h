#ifndef SETM_SQL_ENGINE_H_
#define SETM_SQL_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/exec_context.h"
#include "relational/database.h"
#include "sql/ast.h"
#include "sql/parser.h"

namespace setm::sql {

/// Named query parameters, e.g. {{"minsupport", Value::Int64(1000)}} for the
/// paper's `HAVING COUNT(*) >= :minsupport`.
using Params = std::map<std::string, Value>;

/// Outcome of one statement.
struct QueryResult {
  /// Result schema (SELECT only).
  Schema schema;
  /// Result rows (SELECT only).
  std::vector<Tuple> rows;
  /// Rows inserted/deleted for DML, 0 for DDL/SELECT.
  uint64_t rows_affected = 0;
};

/// Physical strategy for equi-joins chosen by the planner.
enum class JoinStrategy {
  kSortMerge,  ///< the paper's plan: sort both sides, merge-scan
  kHash,       ///< build/probe hash join (no sorting of inputs)
};

/// Planner/executor configuration.
struct SqlEngineOptions {
  JoinStrategy join_strategy = JoinStrategy::kSortMerge;
};

/// Plans and executes SQL statements against a Database.
///
/// Planning follows the textbook recipe the paper leans on: single-table
/// predicates are pushed to scans; equality predicates between tables become
/// sort-merge joins (sort both sides on the join keys, then merge-scan) —
/// or hash joins under SqlEngineOptions::kHash; table pairs without an
/// equality predicate fall back to a nested-loop cross join;
/// GROUP BY/COUNT(*) is sort-based aggregation, with
/// `HAVING COUNT(*) >= x` folded into the aggregation as the paper's
/// minimum-support filter. Joins are composed left-deep in FROM order.
///
///     SqlEngine engine(&db);
///     engine.Execute("CREATE TABLE sales (trans_id INT, item INT)");
///     engine.Execute("INSERT INTO sales VALUES (10, 1), (10, 2)");
///     auto r = engine.Execute(
///         "SELECT item, COUNT(*) FROM sales GROUP BY item "
///         "HAVING COUNT(*) >= :minsupport",
///         {{"minsupport", Value::Int64(2)}});
class SqlEngine {
 public:
  explicit SqlEngine(Database* db, SqlEngineOptions options = {})
      : db_(db), options_(options) {}

  /// Parses and executes one statement.
  Result<QueryResult> Execute(const std::string& sql,
                              const Params& params = {});

  /// Executes an already-parsed statement.
  Result<QueryResult> ExecuteStatement(const Statement& stmt,
                                       const Params& params);

  Database* db() const { return db_; }

 private:
  Result<QueryResult> RunSelect(const SelectStatement& stmt,
                                const Params& params);
  Result<QueryResult> RunCreate(const CreateTableStatement& stmt);
  Result<QueryResult> RunInsert(const InsertStatement& stmt,
                                const Params& params);

  Database* db_;
  SqlEngineOptions options_;
};

/// Coerces `v` to `target` (integer width changes with range checks,
/// int -> double). Fails with InvalidArgument on lossy conversions.
Result<Value> CoerceValue(const Value& v, ValueType target);

}  // namespace setm::sql

#endif  // SETM_SQL_ENGINE_H_

#ifndef SETM_SQL_PARSER_H_
#define SETM_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace setm::sql {

/// Recursive-descent parser for the engine's SQL subset — the statements
/// used by the paper's two mining formulations plus enough DDL/DML to set
/// experiments up:
///
///   SELECT [DISTINCT] items FROM t1 [a1], t2 [a2], ...
///     [WHERE boolean-expression]
///     [GROUP BY columns] [HAVING expression]
///     [ORDER BY columns [ASC|DESC is parsed, only ASC supported]]
///   INSERT INTO t SELECT ... | INSERT INTO t VALUES (...), (...)
///   CREATE [MEMORY] TABLE t (col TYPE, ...)
///   DROP TABLE t
///   DELETE FROM t            -- whole-table truncate
///
/// Expressions: column refs (qualified or not), integer/float/string
/// literals, named parameters (:minsupport), COUNT(*), comparisons
/// (= <> < <= > >=), AND/OR and parentheses.
Result<Statement> Parse(const std::string& sql);

/// Parses a statement expected to be a SELECT; convenience for tests.
Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace setm::sql

#endif  // SETM_SQL_PARSER_H_

#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "relational/schema.h"

namespace setm::sql {

namespace {
const std::unordered_set<std::string>& Keywords() {
  static const auto* kw = new std::unordered_set<std::string>{
      "select", "from",   "where",  "group",  "by",     "having", "order",
      "insert", "into",   "values", "create", "memory", "table",  "drop",
      "delete", "and",    "or",     "count",  "as",     "int",    "integer",
      "bigint", "double", "real",   "varchar", "text",  "string", "asc",
      "desc",   "distinct"};
  return *kw;
}
}  // namespace

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = IdentFold(sql.substr(start, i - start));
      const bool is_kw = Keywords().count(word) != 0;
      tokens.push_back(Token{
          is_kw ? TokenType::kKeyword : TokenType::kIdentifier, word, start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      tokens.push_back(Token{is_float ? TokenType::kFloat : TokenType::kInteger,
                             sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      while (i < n && sql[i] != '\'') text += sql[i++];
      if (i >= n) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      ++i;  // closing quote
      tokens.push_back(Token{TokenType::kString, std::move(text), start});
      continue;
    }
    if (c == ':') {
      ++i;
      std::string name;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        name += sql[i++];
      }
      if (name.empty()) {
        return Status::InvalidArgument("':' without parameter name at offset " +
                                       std::to_string(start));
      }
      tokens.push_back(
          Token{TokenType::kParameter, IdentFold(std::move(name)), start});
      continue;
    }
    // Multi-character operators first.
    if (c == '<') {
      if (i + 1 < n && (sql[i + 1] == '>' || sql[i + 1] == '=')) {
        tokens.push_back(Token{TokenType::kSymbol, sql.substr(i, 2), start});
        i += 2;
      } else {
        tokens.push_back(Token{TokenType::kSymbol, "<", start});
        ++i;
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && sql[i + 1] == '=') {
        tokens.push_back(Token{TokenType::kSymbol, ">=", start});
        i += 2;
      } else {
        tokens.push_back(Token{TokenType::kSymbol, ">", start});
        ++i;
      }
      continue;
    }
    if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      tokens.push_back(Token{TokenType::kSymbol, "<>", start});
      i += 2;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '.' || c == '*' || c == ';' ||
        c == '=') {
      tokens.push_back(Token{TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(start));
  }
  tokens.push_back(Token{TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace setm::sql

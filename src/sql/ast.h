#ifndef SETM_SQL_AST_H_
#define SETM_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/expression.h"
#include "relational/value.h"

namespace setm::sql {

/// Unresolved scalar expression as parsed (resolution to column indices
/// happens in the binder).
struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

struct AstExpr {
  enum class Kind {
    kColumnRef,  // [qualifier.]name
    kLiteral,    // integer / float / string
    kParameter,  // :name
    kCountStar,  // COUNT(*)
    kBinary,     // comparison / AND / OR
  };

  Kind kind;

  // kColumnRef
  std::string qualifier;  // empty when unqualified
  std::string column;

  // kLiteral
  Value literal;

  // kParameter
  std::string parameter;

  // kBinary
  BinaryOp op = BinaryOp::kEq;
  AstExprPtr lhs;
  AstExprPtr rhs;

  static AstExprPtr ColumnRef(std::string qualifier, std::string column) {
    auto e = std::make_unique<AstExpr>();
    e->kind = Kind::kColumnRef;
    e->qualifier = std::move(qualifier);
    e->column = std::move(column);
    return e;
  }
  static AstExprPtr Literal(Value v) {
    auto e = std::make_unique<AstExpr>();
    e->kind = Kind::kLiteral;
    e->literal = std::move(v);
    return e;
  }
  static AstExprPtr Parameter(std::string name) {
    auto e = std::make_unique<AstExpr>();
    e->kind = Kind::kParameter;
    e->parameter = std::move(name);
    return e;
  }
  static AstExprPtr CountStar() {
    auto e = std::make_unique<AstExpr>();
    e->kind = Kind::kCountStar;
    return e;
  }
  static AstExprPtr Binary(BinaryOp op, AstExprPtr l, AstExprPtr r) {
    auto e = std::make_unique<AstExpr>();
    e->kind = Kind::kBinary;
    e->op = op;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    return e;
  }
};

/// One item of the SELECT list.
struct SelectItem {
  AstExprPtr expr;
  std::string alias;  // optional AS alias
};

/// FROM-clause table reference with optional alias: "SALES r1".
struct TableRef {
  std::string table;
  std::string alias;  // defaults to the table name

  const std::string& binding() const { return alias.empty() ? table : alias; }
};

/// A parsed SELECT statement (also the body of INSERT ... SELECT).
struct SelectStatement {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  AstExprPtr where;                         // null when absent
  std::vector<AstExprPtr> group_by;         // column refs
  AstExprPtr having;                        // null when absent
  std::vector<AstExprPtr> order_by;         // column refs
  bool distinct = false;
};

/// CREATE [MEMORY] TABLE name (col type, ...).
struct CreateTableStatement {
  std::string table;
  std::vector<std::pair<std::string, ValueType>> columns;
  bool memory = false;
};

/// INSERT INTO name [SELECT ... | VALUES (...), ...].
struct InsertStatement {
  std::string table;
  std::unique_ptr<SelectStatement> select;    // either this ...
  std::vector<std::vector<AstExprPtr>> rows;  // ... or literal rows
};

/// DROP TABLE name.
struct DropTableStatement {
  std::string table;
};

/// DELETE FROM name (whole-table truncate; predicates unsupported).
struct DeleteStatement {
  std::string table;
};

/// Any parsed statement.
struct Statement {
  enum class Kind { kSelect, kCreateTable, kInsert, kDropTable, kDelete };
  Kind kind;
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<CreateTableStatement> create_table;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<DropTableStatement> drop_table;
  std::unique_ptr<DeleteStatement> del;
};

}  // namespace setm::sql

#endif  // SETM_SQL_AST_H_

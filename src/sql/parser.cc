#include "sql/parser.h"

#include <cstdlib>

namespace setm::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (Peek().IsKeyword("select")) {
      auto sel = ParseSelectStmt();
      if (!sel.ok()) return sel.status();
      stmt.kind = Statement::Kind::kSelect;
      stmt.select = std::move(sel).value();
    } else if (Peek().IsKeyword("create")) {
      auto create = ParseCreate();
      if (!create.ok()) return create.status();
      stmt.kind = Statement::Kind::kCreateTable;
      stmt.create_table = std::move(create).value();
    } else if (Peek().IsKeyword("insert")) {
      auto insert = ParseInsert();
      if (!insert.ok()) return insert.status();
      stmt.kind = Statement::Kind::kInsert;
      stmt.insert = std::move(insert).value();
    } else if (Peek().IsKeyword("drop")) {
      Advance();
      SETM_RETURN_IF_ERROR(ExpectKeyword("table"));
      auto name = ExpectIdentifier("table name");
      if (!name.ok()) return name.status();
      stmt.kind = Statement::Kind::kDropTable;
      stmt.drop_table = std::make_unique<DropTableStatement>();
      stmt.drop_table->table = std::move(name).value();
    } else if (Peek().IsKeyword("delete")) {
      Advance();
      SETM_RETURN_IF_ERROR(ExpectKeyword("from"));
      auto name = ExpectIdentifier("table name");
      if (!name.ok()) return name.status();
      stmt.kind = Statement::Kind::kDelete;
      stmt.del = std::make_unique<DeleteStatement>();
      stmt.del->table = std::move(name).value();
    } else {
      return ErrorHere("expected a statement keyword (SELECT/INSERT/...)");
    }
    MatchSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return ErrorHere("trailing tokens after statement");
    }
    return stmt;
  }

 private:
  // Token helpers ----------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool MatchKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Status::InvalidArgument("expected '" + std::string(kw) +
                                     "' near offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view s) {
    if (!MatchSymbol(s)) {
      return Status::InvalidArgument("expected '" + std::string(s) +
                                     "' near offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected " + std::string(what) +
                                     " near offset " +
                                     std::to_string(Peek().offset));
    }
    return Advance().text;
  }
  Status ErrorHere(std::string message) {
    return Status::InvalidArgument(std::move(message) + " near offset " +
                                   std::to_string(Peek().offset));
  }

  // Statements --------------------------------------------------------------

  Result<std::unique_ptr<SelectStatement>> ParseSelectStmt() {
    SETM_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto stmt = std::make_unique<SelectStatement>();
    stmt->distinct = MatchKeyword("distinct");

    // Select list.
    do {
      SelectItem item;
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      item.expr = std::move(expr).value();
      if (MatchKeyword("as")) {
        auto alias = ExpectIdentifier("alias");
        if (!alias.ok()) return alias.status();
        item.alias = std::move(alias).value();
      }
      stmt->items.push_back(std::move(item));
    } while (MatchSymbol(","));

    SETM_RETURN_IF_ERROR(ExpectKeyword("from"));
    do {
      TableRef ref;
      auto name = ExpectIdentifier("table name");
      if (!name.ok()) return name.status();
      ref.table = std::move(name).value();
      if (Peek().type == TokenType::kIdentifier) {
        ref.alias = Advance().text;
      }
      stmt->from.push_back(std::move(ref));
    } while (MatchSymbol(","));

    if (MatchKeyword("where")) {
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      stmt->where = std::move(where).value();
    }
    if (MatchKeyword("group")) {
      SETM_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        auto col = ParseExpr();
        if (!col.ok()) return col.status();
        if (col.value()->kind != AstExpr::Kind::kColumnRef) {
          return ErrorHere("GROUP BY supports column references only");
        }
        stmt->group_by.push_back(std::move(col).value());
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("having")) {
      auto having = ParseExpr();
      if (!having.ok()) return having.status();
      stmt->having = std::move(having).value();
    }
    if (MatchKeyword("order")) {
      SETM_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        auto col = ParseExpr();
        if (!col.ok()) return col.status();
        if (col.value()->kind != AstExpr::Kind::kColumnRef &&
            col.value()->kind != AstExpr::Kind::kCountStar) {
          return ErrorHere(
              "ORDER BY supports column references and COUNT(*) only");
        }
        if (MatchKeyword("desc")) {
          return Status::NotSupported("ORDER BY ... DESC is not supported");
        }
        MatchKeyword("asc");
        stmt->order_by.push_back(std::move(col).value());
      } while (MatchSymbol(","));
    }
    return stmt;
  }

  Result<std::unique_ptr<CreateTableStatement>> ParseCreate() {
    SETM_RETURN_IF_ERROR(ExpectKeyword("create"));
    auto stmt = std::make_unique<CreateTableStatement>();
    stmt->memory = MatchKeyword("memory");
    SETM_RETURN_IF_ERROR(ExpectKeyword("table"));
    auto name = ExpectIdentifier("table name");
    if (!name.ok()) return name.status();
    stmt->table = std::move(name).value();
    SETM_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      auto col = ExpectIdentifier("column name");
      if (!col.ok()) return col.status();
      auto type = ParseType();
      if (!type.ok()) return type.status();
      stmt->columns.emplace_back(std::move(col).value(), type.value());
    } while (MatchSymbol(","));
    SETM_RETURN_IF_ERROR(ExpectSymbol(")"));
    return stmt;
  }

  Result<ValueType> ParseType() {
    const Token& tok = Peek();
    if (tok.type != TokenType::kKeyword && tok.type != TokenType::kIdentifier) {
      return ErrorHere("expected a type name");
    }
    const std::string name = Advance().text;
    ValueType out;
    if (name == "int" || name == "integer") {
      out = ValueType::kInt32;
    } else if (name == "bigint") {
      out = ValueType::kInt64;
    } else if (name == "double" || name == "real") {
      out = ValueType::kDouble;
    } else if (name == "varchar" || name == "text" || name == "string") {
      out = ValueType::kString;
      // Optional length: VARCHAR(30) — accepted and ignored.
      if (MatchSymbol("(")) {
        if (Peek().type != TokenType::kInteger) {
          return ErrorHere("expected a length after VARCHAR(");
        }
        Advance();
        SETM_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
    } else {
      return Status::InvalidArgument("unknown type '" + name + "'");
    }
    return out;
  }

  Result<std::unique_ptr<InsertStatement>> ParseInsert() {
    SETM_RETURN_IF_ERROR(ExpectKeyword("insert"));
    SETM_RETURN_IF_ERROR(ExpectKeyword("into"));
    auto stmt = std::make_unique<InsertStatement>();
    auto name = ExpectIdentifier("table name");
    if (!name.ok()) return name.status();
    stmt->table = std::move(name).value();
    if (Peek().IsKeyword("select")) {
      auto sel = ParseSelectStmt();
      if (!sel.ok()) return sel.status();
      stmt->select = std::move(sel).value();
      return stmt;
    }
    SETM_RETURN_IF_ERROR(ExpectKeyword("values"));
    do {
      SETM_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<AstExprPtr> row;
      do {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        row.push_back(std::move(expr).value());
      } while (MatchSymbol(","));
      SETM_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt->rows.push_back(std::move(row));
    } while (MatchSymbol(","));
    return stmt;
  }

  // Expressions -------------------------------------------------------------
  // Precedence: OR < AND < comparison < primary.

  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    AstExprPtr out = std::move(lhs).value();
    while (MatchKeyword("or")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      out = AstExpr::Binary(BinaryOp::kOr, std::move(out),
                            std::move(rhs).value());
    }
    return out;
  }

  Result<AstExprPtr> ParseAnd() {
    auto lhs = ParseComparison();
    if (!lhs.ok()) return lhs;
    AstExprPtr out = std::move(lhs).value();
    while (MatchKeyword("and")) {
      auto rhs = ParseComparison();
      if (!rhs.ok()) return rhs;
      out = AstExpr::Binary(BinaryOp::kAnd, std::move(out),
                            std::move(rhs).value());
    }
    return out;
  }

  Result<AstExprPtr> ParseComparison() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs;
    AstExprPtr out = std::move(lhs).value();
    while (Peek().type == TokenType::kSymbol) {
      BinaryOp op;
      if (Peek().IsSymbol("=")) {
        op = BinaryOp::kEq;
      } else if (Peek().IsSymbol("<>")) {
        op = BinaryOp::kNe;
      } else if (Peek().IsSymbol("<")) {
        op = BinaryOp::kLt;
      } else if (Peek().IsSymbol("<=")) {
        op = BinaryOp::kLe;
      } else if (Peek().IsSymbol(">")) {
        op = BinaryOp::kGt;
      } else if (Peek().IsSymbol(">=")) {
        op = BinaryOp::kGe;
      } else {
        break;
      }
      Advance();
      auto rhs = ParsePrimary();
      if (!rhs.ok()) return rhs;
      out = AstExpr::Binary(op, std::move(out), std::move(rhs).value());
    }
    return out;
  }

  Result<AstExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    if (MatchSymbol("(")) {
      auto inner = ParseExpr();
      if (!inner.ok()) return inner;
      SETM_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (tok.IsKeyword("count")) {
      Advance();
      SETM_RETURN_IF_ERROR(ExpectSymbol("("));
      SETM_RETURN_IF_ERROR(ExpectSymbol("*"));
      SETM_RETURN_IF_ERROR(ExpectSymbol(")"));
      return AstExpr::CountStar();
    }
    if (tok.type == TokenType::kInteger) {
      Advance();
      return AstExpr::Literal(
          Value::Int64(std::strtoll(tok.text.c_str(), nullptr, 10)));
    }
    if (tok.type == TokenType::kFloat) {
      Advance();
      return AstExpr::Literal(
          Value::Double(std::strtod(tok.text.c_str(), nullptr)));
    }
    if (tok.type == TokenType::kString) {
      Advance();
      return AstExpr::Literal(Value::String(tok.text));
    }
    if (tok.type == TokenType::kParameter) {
      Advance();
      return AstExpr::Parameter(tok.text);
    }
    if (tok.type == TokenType::kIdentifier) {
      std::string first = Advance().text;
      if (MatchSymbol(".")) {
        auto second = ExpectIdentifier("column name after '.'");
        if (!second.ok()) return second.status();
        return AstExpr::ColumnRef(std::move(first), std::move(second).value());
      }
      return AstExpr::ColumnRef("", std::move(first));
    }
    return ErrorHere("expected an expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& sql) {
  auto tokens = Lex(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

Result<SelectStatement> ParseSelect(const std::string& sql) {
  auto stmt = Parse(sql);
  if (!stmt.ok()) return stmt.status();
  if (stmt.value().kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("statement is not a SELECT");
  }
  return std::move(*stmt.value().select);
}

}  // namespace setm::sql

#ifndef SETM_SQL_LEXER_H_
#define SETM_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace setm::sql {

/// Token kinds produced by the lexer. Keywords are recognized case-
/// insensitively and carry their folded text.
enum class TokenType {
  kIdentifier,   // sales, r1, item
  kKeyword,      // SELECT, FROM, ... (folded to lower case in text)
  kInteger,      // 42
  kFloat,        // 0.5
  kString,       // 'abc'
  kParameter,    // :minsupport (text excludes the colon)
  kSymbol,       // ( ) , . * ; = <> < <= > >=
  kEnd,
};

/// One lexed token with its source offset (for error messages).
struct Token {
  TokenType type;
  std::string text;  // folded for keywords/identifiers; verbatim otherwise
  size_t offset;

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// Splits `sql` into tokens. Identifiers may contain letters, digits and
/// underscores and are folded to lower case; SQL keywords become kKeyword
/// tokens. Fails with InvalidArgument on stray characters or unterminated
/// strings.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace setm::sql

#endif  // SETM_SQL_LEXER_H_

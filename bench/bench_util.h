#ifndef SETM_BENCH_BENCH_UTIL_H_
#define SETM_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment binaries. Each binary regenerates one
// table or figure of the paper (see DESIGN.md section 5) and prints both
// the measured values and, where applicable, the numbers the paper reports,
// so the *shape* comparison is visible at a glance.

#include <cstdio>
#include <string>
#include <vector>

#include "core/types.h"
#include "datagen/retail_generator.h"

namespace setm::bench {

/// The paper's minimum-support sweep (Sections 6.1-6.2), in percent.
inline const std::vector<double>& PaperMinSupSweep() {
  static const std::vector<double> kSweep = {0.1, 0.5, 1.0, 2.0, 5.0};
  return kSweep;
}

/// One shared instance of the calibrated retail database (46,873
/// transactions). Generated once per process; a function-local static value
/// (not a leaked pointer) so it is destroyed at exit and stays clean under
/// LeakSanitizer.
inline const TransactionDb& RetailDb() {
  static const TransactionDb db = RetailGenerator(RetailOptions{}).Generate();
  return db;
}

/// Prints a banner identifying the experiment.
inline void Banner(const std::string& experiment, const std::string& paper_ref,
                   const std::string& expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_ref.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("================================================================\n");
}

}  // namespace setm::bench

#endif  // SETM_BENCH_BENCH_UTIL_H_

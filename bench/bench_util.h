#ifndef SETM_BENCH_BENCH_UTIL_H_
#define SETM_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment binaries. Each binary regenerates one
// table or figure of the paper (see DESIGN.md section 5) and prints both
// the measured values and, where applicable, the numbers the paper reports,
// so the *shape* comparison is visible at a glance.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/miner_registry.h"
#include "core/types.h"
#include "datagen/retail_generator.h"
#include "obs/metrics.h"
#include "relational/database.h"

namespace setm::bench {

/// Measures what one code region cost in process-wide metric terms:
/// snapshot the registry at construction, then ask for counter deltas.
/// Lets benches *assert* their claims ("the re-query read 10x fewer
/// pages") against the same series a scrape would see, instead of only
/// printing numbers.
///
///     MetricsDelta delta;
///     RunTheQuery();
///     uint64_t reads = delta.Counter("setm_io_page_reads_total");
class MetricsDelta {
 public:
  MetricsDelta() : before_(obs::MetricsRegistry::Global()->Snapshot()) {}

  /// Counter increase since construction (0 for unknown names).
  uint64_t Counter(const std::string& name) const {
    const uint64_t now =
        obs::MetricsRegistry::Global()->Snapshot().CounterValue(name);
    const uint64_t then = before_.CounterValue(name);
    return now >= then ? now - then : 0;
  }

  /// Re-anchors the baseline at now.
  void Reset() { before_ = obs::MetricsRegistry::Global()->Snapshot(); }

 private:
  obs::MetricsSnapshot before_;
};

/// The paper's minimum-support sweep (Sections 6.1-6.2), in percent.
inline const std::vector<double>& PaperMinSupSweep() {
  static const std::vector<double> kSweep = {0.1, 0.5, 1.0, 2.0, 5.0};
  return kSweep;
}

/// One shared instance of the calibrated retail database (46,873
/// transactions). Generated once per process; a function-local static value
/// (not a leaked pointer) so it is destroyed at exit and stays clean under
/// LeakSanitizer.
inline const TransactionDb& RetailDb() {
  static const TransactionDb db = RetailGenerator(RetailOptions{}).Generate();
  return db;
}

/// Runs one registry-registered algorithm over `txns` on a fresh Database
/// and returns the result — the uniform way bench binaries construct
/// miners, replacing per-bench construction boilerplate. `knobs` are the
/// physical options (storage/count_method/num_threads); `db_options` shape
/// the database (pool sizes, sort budget) for I/O-sensitive experiments.
/// Benches have no error channel beyond stderr, so failures exit(1).
inline MiningResult RunAlgo(const std::string& name,
                            const TransactionDb& txns,
                            const MiningOptions& options,
                            const SetmOptions& knobs = {},
                            const DatabaseOptions& db_options = {}) {
  Database db(db_options);
  auto miner = MinerRegistry::Create(name, &db, knobs);
  if (!miner.ok()) {
    std::fprintf(stderr, "RunAlgo(%s): %s\n", name.c_str(),
                 miner.status().ToString().c_str());
    std::exit(1);
  }
  MiningRequest request;
  request.transactions = &txns;
  request.options = options;
  auto result = miner.value()->Mine(request);
  if (!result.ok()) {
    std::fprintf(stderr, "RunAlgo(%s): mining failed: %s\n", name.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Prints a banner identifying the experiment.
inline void Banner(const std::string& experiment, const std::string& paper_ref,
                   const std::string& expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_ref.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("================================================================\n");
}

}  // namespace setm::bench

#endif  // SETM_BENCH_BENCH_UTIL_H_

// E5 — Figure 6: cardinality |C_i| of the count relations vs iteration
// number, one series per minimum support, on the calibrated retail data.
//
// Paper shape: |C1| large and (in the paper) constant at 59 across the
// sweep; at small minimum support |C2| rises above |C1| before the series
// falls; |C4| = 0 everywhere.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/setm.h"

int main() {
  using namespace setm;
  bench::Banner(
      "fig6_count_cardinalities",
      "Figure 6 (Section 6.1): Cardinality of C_i, retail data set",
      "|C1| = 59 at 0.1%; |C2| bump above |C1| at small minsup; |C4| = 0");

  const TransactionDb& txns = bench::RetailDb();
  std::printf("%-10s %8s %8s %8s %8s\n", "minsup(%)", "|C1|", "|C2|", "|C3|",
              "|C4|");
  for (double pct : bench::PaperMinSupSweep()) {
    Database db;
    SetmMiner miner(&db);
    MiningOptions options;
    options.min_support = pct / 100.0;
    auto result = miner.Mine(txns, options);
    if (!result.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    uint64_t c[4] = {0, 0, 0, 0};
    for (const IterationStats& it : result.value().iterations) {
      if (it.k >= 1 && it.k <= 4) c[it.k - 1] = it.c_size;
    }
    std::printf("%-10.1f %8llu %8llu %8llu %8llu\n", pct,
                static_cast<unsigned long long>(c[0]),
                static_cast<unsigned long long>(c[1]),
                static_cast<unsigned long long>(c[2]),
                static_cast<unsigned long long>(c[3]));
  }
  std::printf(
      "\nnote: the paper states |C1| = 59 for *all* minsup values, which is\n"
      "arithmetically impossible together with |R1| = 115,568 (see\n"
      "EXPERIMENTS.md); the reproduction pins |C1(0.1%%)| = 59 and lets C1\n"
      "shrink as minsup grows, preserving every other shape.\n");
  return 0;
}

// A1 — ablation: external-sort memory budget vs SETM I/O and time, on the
// calibrated retail data in heap (paged) mode.
//
// Expected shape: tiny budgets spill many runs and pay extra temp-space
// traffic; once the budget covers the largest R'_k, spills vanish and page
// accesses flatten out. Wall-clock follows the same curve, damped.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/setm.h"

int main() {
  using namespace setm;
  bench::Banner(
      "ablation_sort_memory",
      "DESIGN.md A1 (design choice behind Section 4.3's pipelined sorts)",
      "page accesses fall as the sort budget grows, flat once nothing spills");

  const TransactionDb& txns = bench::RetailDb();
  MiningOptions options;
  options.min_support = 0.005;  // 0.5%, mid-sweep

  std::printf("%-14s %14s %14s %14s %10s\n", "sort budget", "accesses",
              "reads", "writes", "time(s)");
  for (size_t kb : {64u, 256u, 1024u, 4096u, 16384u}) {
    DatabaseOptions db_options;
    db_options.sort_memory_bytes = kb << 10;
    db_options.pool_frames = 512;
    db_options.temp_pool_frames = 128;
    Database db(db_options);
    SetmMiner miner(&db, SetmOptions{TableBacking::kHeap});
    WallTimer timer;
    auto result = miner.Mine(txns, options);
    if (!result.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const IoStats& io = result.value().io;
    std::printf("%10zu KiB %14llu %14llu %14llu %10.2f\n", kb,
                static_cast<unsigned long long>(io.TotalAccesses()),
                static_cast<unsigned long long>(io.page_reads),
                static_cast<unsigned long long>(io.page_writes),
                timer.ElapsedSeconds());
  }
  return 0;
}

// E7 — measured counterpart of the Sections 3.2/4.3 analysis. The paper
// only *analyzes* the nested-loop strategy (running it on the full
// hypothetical database would take 11 hours of 1995 I/O); here both
// strategies actually run, instrumented, on a scaled-down Quest database
// behind a deliberately small buffer pool, and their real page accesses
// and disk-model times are compared.
//
// Expected shape: nested-loop performs one to two orders of magnitude more
// page accesses, dominated by random reads; SETM's accesses are mostly
// sequential. The gap widens as the database grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/nested_loop_miner.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"

int main() {
  using namespace setm;
  bench::Banner(
      "table_nl_vs_sm_measured",
      "Sections 3.2 vs 4.3, measured on scaled-down data (small buffer pool)",
      "NL >= 5x the page accesses of SETM and ~8x disk-model time; NL random-heavy");

  std::printf("%-8s %-12s %12s %12s %12s %12s %12s\n", "txns", "strategy",
              "accesses", "rand.reads", "seq.reads", "writes", "model(s)");

  for (uint32_t n : {2000u, 5000u, 10000u}) {
    QuestOptions gen;
    gen.num_transactions = n;
    gen.avg_transaction_size = 8;
    gen.num_items = 200;
    gen.num_patterns = 40;
    gen.seed = 2025;
    TransactionDb txns = QuestGenerator(gen).Generate();
    MiningOptions options;
    options.min_support = 0.01;

    IoStats nl_io, sm_io;
    {
      DatabaseOptions small;
      small.pool_frames = 32;  // indexes won't fit: probes hit the backend
      Database db(small);
      NestedLoopMiner miner(&db);
      auto result = miner.Mine(txns, options);
      if (!result.ok()) {
        std::fprintf(stderr, "NL mining failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      nl_io = result.value().io;
    }
    {
      DatabaseOptions small;
      small.pool_frames = 32;
      small.temp_pool_frames = 32;
      small.sort_memory_bytes = 64 << 10;  // force external sorting
      Database db(small);
      SetmMiner miner(&db, SetmOptions{TableBacking::kHeap});
      auto result = miner.Mine(txns, options);
      if (!result.ok()) {
        std::fprintf(stderr, "SETM mining failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      sm_io = result.value().io;
    }
    auto row = [&](const char* name, const IoStats& io) {
      std::printf("%-8u %-12s %12llu %12llu %12llu %12llu %12.1f\n", n, name,
                  static_cast<unsigned long long>(io.TotalAccesses()),
                  static_cast<unsigned long long>(io.random_reads),
                  static_cast<unsigned long long>(io.sequential_reads),
                  static_cast<unsigned long long>(io.page_writes),
                  io.ModelSeconds());
    };
    row("nested-loop", nl_io);
    row("setm", sm_io);
    const double ratio =
        sm_io.TotalAccesses() > 0
            ? static_cast<double>(nl_io.TotalAccesses()) /
                  static_cast<double>(sm_io.TotalAccesses())
            : 0.0;
    std::printf("%-8s ratio (NL/SETM accesses): %.1fx\n\n", "", ratio);
  }
  return 0;
}

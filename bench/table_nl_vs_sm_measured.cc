// E7 — measured counterpart of the Sections 3.2/4.3 analysis. The paper
// only *analyzes* the nested-loop strategy (running it on the full
// hypothetical database would take 11 hours of 1995 I/O); here both
// strategies actually run, instrumented, on a scaled-down Quest database
// behind a deliberately small buffer pool, and their real page accesses
// and disk-model times are compared.
//
// Expected shape: nested-loop performs one to two orders of magnitude more
// page accesses, dominated by random reads; SETM's accesses are mostly
// sequential. The gap widens as the database grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/quest_generator.h"

int main() {
  using namespace setm;
  bench::Banner(
      "table_nl_vs_sm_measured",
      "Sections 3.2 vs 4.3, measured on scaled-down data (small buffer pool)",
      "NL >= 5x the page accesses of SETM and ~8x disk-model time; NL random-heavy");

  std::printf("%-8s %-12s %12s %12s %12s %12s %12s\n", "txns", "strategy",
              "accesses", "rand.reads", "seq.reads", "writes", "model(s)");

  for (uint32_t n : {2000u, 5000u, 10000u}) {
    QuestOptions gen;
    gen.num_transactions = n;
    gen.avg_transaction_size = 8;
    gen.num_items = 200;
    gen.num_patterns = 40;
    gen.seed = 2025;
    TransactionDb txns = QuestGenerator(gen).Generate();
    MiningOptions options;
    options.min_support = 0.01;

    // Both strategies run through the registry; only the knobs differ.
    DatabaseOptions nl_db;
    nl_db.pool_frames = 32;  // indexes won't fit: probes hit the backend
    const IoStats nl_io =
        bench::RunAlgo("nested-loop", txns, options, {}, nl_db).io;

    DatabaseOptions sm_db;
    sm_db.pool_frames = 32;
    sm_db.temp_pool_frames = 32;
    sm_db.sort_memory_bytes = 64 << 10;  // force external sorting
    SetmOptions sm_knobs;
    sm_knobs.storage = TableBacking::kHeap;
    const IoStats sm_io =
        bench::RunAlgo("setm", txns, options, sm_knobs, sm_db).io;
    auto row = [&](const char* name, const IoStats& io) {
      std::printf("%-8u %-12s %12llu %12llu %12llu %12llu %12.1f\n", n, name,
                  static_cast<unsigned long long>(io.TotalAccesses()),
                  static_cast<unsigned long long>(io.random_reads),
                  static_cast<unsigned long long>(io.sequential_reads),
                  static_cast<unsigned long long>(io.page_writes),
                  io.ModelSeconds());
    };
    row("nested-loop", nl_io);
    row("setm", sm_io);
    const double ratio =
        sm_io.TotalAccesses() > 0
            ? static_cast<double>(nl_io.TotalAccesses()) /
                  static_cast<double>(sm_io.TotalAccesses())
            : 0.0;
    std::printf("%-8s ratio (NL/SETM accesses): %.1fx\n\n", "", ratio);
  }
  return 0;
}

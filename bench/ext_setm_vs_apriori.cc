// A3 — extension: SETM vs Apriori vs AIS wall-clock across the minimum-
// support sweep, on the retail data and on a denser Quest workload.
//
// Context: the calibration bands note SETM was "later outperformed by
// Apriori variants". Expected shape: Apriori fastest at low minimum
// support (candidate pruning pays off), AIS slowest (unpruned candidate
// explosion); SETM sits between, with its sort volume driving the cost.
// All three must find identical itemset counts.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/quest_generator.h"

namespace {

using namespace setm;

template <typename Fn>
double TimeBest(Fn&& fn, int reps = 2) {
  double best = 1e99;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

void RunSweep(const char* name, const TransactionDb& txns,
              const std::vector<double>& sweep_pct) {
  std::printf("\ndataset: %s (%zu transactions)\n", name, txns.size());
  std::printf("%-10s %12s %12s %12s %10s\n", "minsup(%)", "setm(s)",
              "apriori(s)", "ais(s)", "patterns");
  for (double pct : sweep_pct) {
    MiningOptions options;
    options.min_support = pct / 100.0;

    // One registry-driven timing lambda per algorithm — no per-miner
    // construction boilerplate (bench::RunAlgo builds each through the
    // MinerRegistry on a fresh database).
    size_t patterns = 0, apriori_patterns = 0, ais_patterns = 0;
    auto timed = [&](const char* algo, size_t* out_patterns) {
      return TimeBest([&] {
        *out_patterns =
            bench::RunAlgo(algo, txns, options).itemsets.TotalPatterns();
      });
    };
    const double setm_s = timed("setm", &patterns);
    const double apriori_s = timed("apriori", &apriori_patterns);
    const double ais_s = timed("ais", &ais_patterns);

    std::printf("%-10.2f %12.3f %12.3f %12.3f %10zu%s\n", pct, setm_s,
                apriori_s, ais_s, patterns,
                (patterns == apriori_patterns && patterns == ais_patterns)
                    ? ""
                    : "  MISMATCH!");
  }
}

}  // namespace

int main() {
  bench::Banner(
      "ext_setm_vs_apriori",
      "extension A3: SETM vs the 1993/1994 candidate-based algorithms",
      "candidate-based miners beat SETM (its R_k relations are materialized);\n                Apriori pruning shows at the smallest supports; identical counts");

  RunSweep("retail (calibrated)", bench::RetailDb(), bench::PaperMinSupSweep());

  QuestOptions gen;
  gen.num_transactions = 20000;
  gen.avg_transaction_size = 8;
  gen.num_items = 500;
  gen.num_patterns = 100;
  gen.seed = 4242;
  TransactionDb quest = QuestGenerator(gen).Generate();
  RunSweep(QuestDatasetName(gen).c_str(), quest, {0.25, 0.5, 1.0, 2.0});
  return 0;
}

// E2/E3 — the analytical comparison of Sections 3.2 and 4.3 on the
// hypothetical retailing database (1,000 items, 200,000 transactions,
// 10 items/transaction, 4 KiB pages, 0.5% minimum support).
//
// Paper numbers: nested-loop ~ 2,000,000 random page fetches ~ 40,000 s
// ("more than 11 hours"); sort-merge 3 x 4,000 + 4 x 27,000 = 120,000
// sequential accesses ~ 1,200 s ("10 minutes").

#include <cstdio>

#include "bench/bench_util.h"
#include "costmodel/analysis.h"

int main() {
  using namespace setm;
  bench::Banner(
      "table_analysis_nl_vs_sm",
      "Sections 3.2 & 4.3: analytical page-access comparison",
      "NL ~2,000,000 random fetches (~11h); SM ~120,000 sequential (~10min)");

  HypotheticalDb db;  // the paper's parameters
  std::printf(
      "hypothetical DB: %llu items, %llu transactions, %.0f items/txn,\n"
      "page %llu B, minsup %.1f%%, random %.0f ms, sequential %.0f ms\n\n",
      static_cast<unsigned long long>(db.num_items),
      static_cast<unsigned long long>(db.num_transactions),
      db.avg_transaction_size, static_cast<unsigned long long>(db.page_size),
      db.min_support * 100.0, db.random_ms, db.sequential_ms);

  NestedLoopAnalysis nl = AnalyzeNestedLoop(db);
  std::printf("nested-loop strategy (Section 3.2):\n");
  std::printf("  (item, trans_id) index: %llu leaf + %llu non-leaf pages, "
              "%u levels (paper: 4,000 / 14 / 3)\n",
              static_cast<unsigned long long>(nl.item_tid_index.leaf_pages),
              static_cast<unsigned long long>(nl.item_tid_index.nonleaf_pages),
              nl.item_tid_index.levels);
  std::printf("  per C1 row: %.0f leaf fetches + %.0f tid-index fetches "
              "(paper: 40 + 2,000)\n",
              nl.leaf_fetches_per_item, nl.matching_tids_per_item);
  std::printf("  total: %llu page fetches, est. %.0f s = %.1f h "
              "(paper: ~2,000,000 / ~40,000 s / >11 h)\n\n",
              static_cast<unsigned long long>(nl.total_page_fetches),
              nl.estimated_seconds, nl.estimated_seconds / 3600.0);

  SortMergeAnalysis sm = AnalyzeSortMerge(db, /*max_pattern_length=*/2);
  std::printf("sort-merge strategy (Section 4.3):\n");
  std::printf("  ||R1|| = %llu pages (paper: 4,000), ||R'2|| = %llu pages "
              "(paper: 27,000)\n",
              static_cast<unsigned long long>(sm.r1_pages),
              static_cast<unsigned long long>(sm.r_prime_pages[0]));
  std::printf("  total: %llu page accesses, est. %.0f s = %.1f min "
              "(paper: 120,000 / 1,200 s / 10 min)\n\n",
              static_cast<unsigned long long>(sm.total_page_accesses),
              sm.estimated_seconds, sm.estimated_seconds / 60.0);

  std::printf("%s", RenderAnalysisTable(nl, sm).c_str());
  return 0;
}

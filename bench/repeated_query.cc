// repeated_query — the anti-monotone result cache on repeated mining.
//
// The MiningPlanner's bet: interactive support-threshold exploration asks
// the same relation for rules at ever-higher thresholds, and a run stored
// at support s already contains every answer at s' >= s. This experiment
// mines-and-stores a Quest database once (the cold query), then re-asks at
// a ladder of higher thresholds through the same planner and compares each
// cache-filtered answer against a from-scratch mine of the same question:
// wall-clock, page reads, mining iterations, and bit-identity.
//
// Hard claims, enforced (non-zero exit on violation):
//   - every re-query is answered by the cache-filter strategy with ZERO
//     mining iterations, observer-verified;
//   - a re-query reads at least 10x fewer pages than the cold mine;
//   - every answer is bit-identical to mining from scratch.
//
// usage: repeated_query [--smoke]   (--smoke: tiny sizes for CI)

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/mining_planner.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"

namespace {

using namespace setm;

/// Fails the run loudly if a mining iteration ever happens.
class NoIterationObserver : public MiningObserver {
 public:
  bool OnIteration(const IterationStats&) override {
    ++iterations;
    return true;
  }
  int iterations = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  bench::Banner(
      "repeated_query",
      "ROADMAP: plan/execute split (MiningPlanner + result cache)",
      "re-queries at higher supports skip mining and re-read >=10x fewer "
      "pages");

  QuestOptions gen;
  gen.num_transactions = smoke ? 1500 : 30000;
  gen.avg_transaction_size = 8;
  gen.num_items = 200;
  gen.num_patterns = 30;
  gen.seed = 11;
  const TransactionDb txns = QuestGenerator(gen).Generate();

  // A pool smaller than SALES so every strategy pays real page traffic.
  DatabaseOptions db_options;
  db_options.pool_frames = smoke ? 16 : 128;
  Database db(db_options);
  auto sales_or = LoadSalesTable(&db, "sales", txns, TableBacking::kHeap);
  if (!sales_or.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 sales_or.status().ToString().c_str());
    return 1;
  }

  PlannerOptions planner_options;
  planner_options.store_prefix = "fi";
  planner_options.store_backing = TableBacking::kHeap;
  planner_options.setm.storage = TableBacking::kHeap;
  MiningPlanner planner(&db, planner_options);

  // Cold query at the lowest threshold of the ladder: full mine +
  // write-back. Everything after this is served from the store.
  const double base_support = 0.01;
  const std::vector<double> ladder = {0.02, 0.03, 0.05, 0.10};

  PlanRequest request;
  request.table = sales_or.value();
  request.options.min_support = base_support;

  // Page reads are measured twice, independently: the database's own
  // IoStats ledger and the process-wide metrics registry
  // (setm_io_page_reads_total) — the series a scrape would see. Both must
  // support the 10x claim. The registry delta is captured strictly around
  // Execute because the per-ladder oracle mine below feeds the same
  // process-wide counters.
  const IoStats cold_before = *db.io_stats();
  bench::MetricsDelta cold_delta;
  WallTimer cold_timer;
  auto cold_or = planner.Execute(request);
  if (!cold_or.ok()) {
    std::fprintf(stderr, "cold mine failed: %s\n",
                 cold_or.status().ToString().c_str());
    return 1;
  }
  const double cold_seconds = cold_timer.ElapsedSeconds();
  const uint64_t cold_metric_reads =
      cold_delta.Counter("setm_io_page_reads_total");
  const uint64_t cold_reads = Diff(*db.io_stats(), cold_before).page_reads;

  std::printf("base: %s, pool %zu frames\n", QuestDatasetName(gen).c_str(),
              db_options.pool_frames);
  std::printf("cold query: minsup %.1f%%, %zu patterns, %.3f s, %llu page "
              "reads (%s)\n\n",
              base_support * 100.0,
              cold_or.value().result.itemsets.TotalPatterns(), cold_seconds,
              static_cast<unsigned long long>(cold_reads),
              PlanStrategyName(cold_or.value().plan.strategy));
  std::printf("%-10s %-14s %10s %10s %8s %6s %7s\n", "minsup", "strategy",
              "time(s)", "reads", "ratio", "iters", "match");

  for (double support : ladder) {
    NoIterationObserver observer;
    request.options.min_support = support;
    request.options.observer = &observer;

    const IoStats before = *db.io_stats();
    bench::MetricsDelta delta;
    WallTimer timer;
    auto exec_or = planner.Execute(request);
    if (!exec_or.ok()) {
      std::fprintf(stderr, "re-query failed: %s\n",
                   exec_or.status().ToString().c_str());
      return 1;
    }
    const double seconds = timer.ElapsedSeconds();
    const uint64_t metric_reads = delta.Counter("setm_io_page_reads_total");
    const uint64_t reads = Diff(*db.io_stats(), before).page_reads;
    const PlanExecution& exec = exec_or.value();

    // The oracle: the same question mined from scratch in a fresh database.
    MiningOptions oracle_options = request.options;
    oracle_options.observer = nullptr;
    Database oracle_db(db_options);
    auto oracle_or = SetmMiner(&oracle_db, planner_options.setm)
                         .Mine(txns, oracle_options);
    if (!oracle_or.ok()) {
      std::fprintf(stderr, "oracle mine failed: %s\n",
                   oracle_or.status().ToString().c_str());
      return 1;
    }
    const bool match =
        exec.result.itemsets == oracle_or.value().itemsets;

    const double ratio =
        reads == 0 ? static_cast<double>(cold_reads)
                   : static_cast<double>(cold_reads) /
                         static_cast<double>(reads);
    char support_label[16];
    std::snprintf(support_label, sizeof(support_label), "%.1f%%",
                  support * 100.0);
    std::printf("%-10s %-14s %10.4f %10llu %7.1fx %6d %7s\n",
                support_label, PlanStrategyName(exec.plan.strategy),
                seconds, static_cast<unsigned long long>(reads), ratio,
                observer.iterations, match ? "yes" : "NO");

    if (exec.plan.strategy != PlanStrategy::kCacheFilter) {
      std::fprintf(stderr,
                   "re-query at %.1f%% was not cache-filtered (%s)!\n",
                   support * 100.0, exec.plan.reason.c_str());
      return 1;
    }
    if (observer.iterations != 0 || !exec.result.iterations.empty()) {
      std::fprintf(stderr, "re-query at %.1f%% ran mining iterations!\n",
                   support * 100.0);
      return 1;
    }
    if (!match) {
      std::fprintf(stderr, "re-query at %.1f%% diverged from the oracle!\n",
                   support * 100.0);
      return 1;
    }
    if (reads * 10 > cold_reads) {
      std::fprintf(stderr,
                   "re-query at %.1f%% read %llu pages, more than 1/10 of "
                   "the cold mine's %llu!\n",
                   support * 100.0, static_cast<unsigned long long>(reads),
                   static_cast<unsigned long long>(cold_reads));
      return 1;
    }
    if (metric_reads * 10 > cold_metric_reads) {
      std::fprintf(stderr,
                   "registry disagrees: setm_io_page_reads_total rose %llu "
                   "during the %.1f%% re-query, more than 1/10 of the cold "
                   "mine's %llu!\n",
                   static_cast<unsigned long long>(metric_reads),
                   support * 100.0,
                   static_cast<unsigned long long>(cold_metric_reads));
      return 1;
    }
  }

  std::printf("\n%s\n", planner.stats().ToString().c_str());
  return 0;
}

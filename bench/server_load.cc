// server_load — concurrency and correctness under load for setm_served.
//
// Spins up an in-process MiningServer over a shared database, then lets N
// concurrent clients hammer it with the mixed interactive workload the
// daemon exists for: MINE at a rotating support ladder, RULES off the
// session's last answer, STATS scrapes and PINGs. Latencies go through the
// same log2-bucketed histogram machinery the server itself exports, so the
// p50/p90/p99 printed here are the numbers a scrape would see.
//
// Hard claims, enforced (non-zero exit on violation):
//   - every MINE payload, from every client, is bit-identical to a direct
//     single-threaded mine of the same question (computed up front, before
//     the server starts);
//   - every RULES payload matches GenerateRules + FormatRulesCsv on that
//     same oracle result;
//   - zero protocol errors across the whole run;
//   - the shared result cache engages: after the cold mines, re-queries
//     are answered by cache-filter (the counter must move).
//
// usage: server_load [--smoke] [--clients N] [--rounds N]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/rules.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"

namespace {

using namespace setm;

struct Oracle {
  std::string spec;          // the SUPPORT spec sent on the wire, e.g. "2%"
  std::string mine_payload;  // RenderItemsets of the normalized result
  std::string rules_payload; // FormatRulesCsv at the fixed confidence
};

constexpr double kRuleConfidence = 0.6;

struct ClientReport {
  uint64_t requests = 0;
  uint64_t mismatches = 0;
  uint64_t errors = 0;
  bool transport_ok = true;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t num_clients = 8;
  size_t rounds = 12;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      num_clients = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = static_cast<size_t>(std::atol(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--clients N] [--rounds N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) {
    num_clients = num_clients > 4 ? 4 : num_clients;
    rounds = rounds > 4 ? 4 : rounds;
  }

  bench::Banner(
      "server_load",
      "ROADMAP: setm_served — a long-lived mining server",
      "N concurrent clients get bit-identical answers; re-queries hit the "
      "shared result cache");

  QuestOptions gen;
  gen.num_transactions = smoke ? 1500 : 12000;
  gen.avg_transaction_size = 8;
  gen.num_items = 200;
  gen.num_patterns = 30;
  gen.seed = 17;
  const TransactionDb txns = QuestGenerator(gen).Generate();

  // The oracle answers, computed single-threaded before the server starts:
  // what every client must receive, byte for byte. The ladder is ordered
  // ascending so the lowest support lands first and the stored run can
  // serve everything above it.
  const std::vector<std::pair<std::string, double>> ladder = {
      {"1%", 0.01}, {"2%", 0.02}, {"5%", 0.05}};
  std::vector<Oracle> oracles;
  for (const auto& [spec, fraction] : ladder) {
    MiningOptions options;
    options.min_support = fraction;
    Database oracle_db;
    auto mined = SetmMiner(&oracle_db).Mine(txns, options);
    if (!mined.ok()) {
      std::fprintf(stderr, "oracle mine at %s failed: %s\n", spec.c_str(),
                   mined.status().ToString().c_str());
      return 1;
    }
    FrequentItemsets itemsets = std::move(mined.value().itemsets);
    itemsets.Normalize();
    MiningOptions rule_options;
    rule_options.min_confidence = kRuleConfidence;
    auto rules = GenerateRules(itemsets, rule_options);
    if (!rules.ok()) {
      std::fprintf(stderr, "oracle rules at %s failed: %s\n", spec.c_str(),
                   rules.status().ToString().c_str());
      return 1;
    }
    Oracle oracle;
    oracle.spec = spec;
    oracle.mine_payload = net::RenderItemsets(itemsets);
    oracle.rules_payload = FormatRulesCsv(rules.value());
    oracles.push_back(std::move(oracle));
    std::printf("oracle %-4s %6zu patterns, %5zu rules\n", spec.c_str(),
                itemsets.TotalPatterns(), rules.value().size());
  }

  Database db;
  auto sales_or = LoadSalesTable(&db, "sales", txns, TableBacking::kMemory);
  if (!sales_or.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 sales_or.status().ToString().c_str());
    return 1;
  }

  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.job_threads = 4;
  auto server_or = net::MiningServer::Create(&db, server_options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "server create failed: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::MiningServer> server = std::move(server_or).value();
  Status started = server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  const uint16_t port = server->port();
  std::printf("\nserver on 127.0.0.1:%u, %zu clients x %zu rounds\n\n", port,
              num_clients, rounds);

  // The same histogram plane the server exports; one series per verb.
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
  obs::Histogram* mine_hist = registry->GetHistogram(
      "bench_srv_mine_micros", "client-observed MINE round trip");
  obs::Histogram* rules_hist = registry->GetHistogram(
      "bench_srv_rules_micros", "client-observed RULES round trip");
  obs::Histogram* stats_hist = registry->GetHistogram(
      "bench_srv_stats_micros", "client-observed STATS round trip");
  bench::MetricsDelta plan_delta;

  WallTimer wall;
  std::vector<ClientReport> reports(num_clients);
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c]() {
      ClientReport& report = reports[c];
      auto client_or = net::BlockingClient::Connect("127.0.0.1", port);
      if (!client_or.ok()) {
        std::fprintf(stderr, "client %zu connect: %s\n", c,
                     client_or.status().ToString().c_str());
        report.transport_ok = false;
        return;
      }
      std::unique_ptr<net::BlockingClient> client =
          std::move(client_or).value();

      auto exec = [&](const std::string& line, obs::Histogram* hist,
                      const std::string* expected_payload) {
        WallTimer timer;
        auto response_or = client->Exec(line);
        if (!response_or.ok()) {
          std::fprintf(stderr, "client %zu [%s]: %s\n", c, line.c_str(),
                       response_or.status().ToString().c_str());
          report.transport_ok = false;
          return false;
        }
        if (hist != nullptr) {
          hist->Observe(static_cast<uint64_t>(timer.ElapsedMicros()));
        }
        ++report.requests;
        const net::ClientResponse& response = response_or.value();
        if (!response.ok) {
          std::fprintf(stderr, "client %zu [%s]: ERR %s %s\n", c,
                       line.c_str(), response.code.c_str(),
                       response.info.c_str());
          ++report.errors;
          return true;
        }
        if (expected_payload != nullptr &&
            response.payload != *expected_payload) {
          std::fprintf(stderr,
                       "client %zu [%s]: payload diverged (%zu vs %zu "
                       "bytes)\n",
                       c, line.c_str(), response.payload.size(),
                       expected_payload->size());
          ++report.mismatches;
        }
        return true;
      };

      for (size_t r = 0; r < rounds; ++r) {
        const Oracle& oracle = oracles[(c + r) % oracles.size()];
        if (!exec("MINE sales SUPPORT " + oracle.spec, mine_hist,
                  &oracle.mine_payload)) {
          return;
        }
        if (!exec("RULES 60", rules_hist, &oracle.rules_payload)) return;
        if (!exec("STATS json", stats_hist, nullptr)) return;
        if (!exec("PING", nullptr, nullptr)) return;
      }
      auto quit = client->Exec("QUIT");
      if (!quit.ok()) report.transport_ok = false;
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = wall.ElapsedSeconds();

  const uint64_t cache_filter_hits =
      plan_delta.Counter("setm_plan_cache_filter_total");
  const uint64_t full_mines = plan_delta.Counter("setm_plan_full_mine_total");
  const net::ServerStats stats = server->Stats();
  Status stopped = server->Stop();
  if (!stopped.ok()) {
    std::fprintf(stderr, "server stop failed: %s\n",
                 stopped.ToString().c_str());
    return 1;
  }

  ClientReport total;
  bool transport_ok = true;
  for (const ClientReport& report : reports) {
    total.requests += report.requests;
    total.mismatches += report.mismatches;
    total.errors += report.errors;
    transport_ok = transport_ok && report.transport_ok;
  }

  const obs::MetricsSnapshot snapshot = registry->Snapshot();
  std::printf("%-8s %10s %10s %10s %10s\n", "verb", "count", "p50(us)",
              "p90(us)", "p99(us)");
  for (const char* name :
       {"bench_srv_mine_micros", "bench_srv_rules_micros",
        "bench_srv_stats_micros"}) {
    const obs::HistogramSnapshot* hist = snapshot.FindHistogram(name);
    if (hist == nullptr) continue;
    const char* verb = name + std::strlen("bench_srv_");
    std::printf("%-8.*s %10llu %10llu %10llu %10llu\n",
                static_cast<int>(std::strcspn(verb, "_")), verb,
                static_cast<unsigned long long>(hist->count),
                static_cast<unsigned long long>(hist->Quantile(0.5)),
                static_cast<unsigned long long>(hist->Quantile(0.9)),
                static_cast<unsigned long long>(hist->Quantile(0.99)));
  }
  std::printf("\n%llu requests in %.3f s (%.0f req/s), %llu connections, "
              "%llu full mines, %llu cache-filter answers\n",
              static_cast<unsigned long long>(total.requests), elapsed,
              elapsed > 0 ? static_cast<double>(total.requests) / elapsed : 0,
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(full_mines),
              static_cast<unsigned long long>(cache_filter_hits));

  bool ok = true;
  if (!transport_ok) {
    std::fprintf(stderr, "FAIL: transport errors\n");
    ok = false;
  }
  if (total.errors != 0) {
    std::fprintf(stderr, "FAIL: %llu protocol errors\n",
                 static_cast<unsigned long long>(total.errors));
    ok = false;
  }
  if (total.mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu responses diverged from the direct mine\n",
                 static_cast<unsigned long long>(total.mismatches));
    ok = false;
  }
  const uint64_t expected_requests = num_clients * rounds * 4;
  if (total.requests != expected_requests) {
    std::fprintf(stderr, "FAIL: %llu responses, expected %llu\n",
                 static_cast<unsigned long long>(total.requests),
                 static_cast<unsigned long long>(expected_requests));
    ok = false;
  }
  if (cache_filter_hits == 0) {
    std::fprintf(stderr, "FAIL: the shared result cache never engaged\n");
    ok = false;
  }
  std::printf("%s\n", ok ? "all checks passed" : "CHECKS FAILED");
  return ok ? 0 : 1;
}

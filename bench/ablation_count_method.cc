// A5 — ablation: the paper's sort-then-count aggregation (Figure 4's second
// sort) vs hash aggregation for producing the count relations C_k, on the
// calibrated retail data.
//
// Expected shape: identical pattern counts; the hash path skips the item
// sort of R'_k entirely, so in heap mode it saves the temp-space traffic of
// that sort and is faster in memory mode — quantifying what the paper's
// sort-based design costs relative to the technique that displaced it.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/setm.h"

int main() {
  using namespace setm;
  bench::Banner(
      "ablation_count_method",
      "DESIGN.md A5: Figure 4's sort-based counting vs hash aggregation",
      "identical itemsets; hash path avoids the R'_k item sort and its I/O");

  const TransactionDb& txns = bench::RetailDb();

  std::printf("%-10s %-12s %12s %14s %10s\n", "minsup(%)", "method", "time(s)",
              "accesses", "patterns");
  for (double pct : bench::PaperMinSupSweep()) {
    MiningOptions options;
    options.min_support = pct / 100.0;
    for (CountMethod method : {CountMethod::kSortMerge, CountMethod::kHash}) {
      DatabaseOptions db_options;
      db_options.pool_frames = 512;
      Database db(db_options);
      SetmOptions setm_options;
      setm_options.storage = TableBacking::kHeap;
      setm_options.count_method = method;
      SetmMiner miner(&db, setm_options);
      WallTimer timer;
      auto result = miner.Mine(txns, options);
      if (!result.ok()) {
        std::fprintf(stderr, "mining failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("%-10.1f %-12s %12.3f %14llu %10zu\n", pct,
                  method == CountMethod::kSortMerge ? "sort-merge" : "hash",
                  timer.ElapsedSeconds(),
                  static_cast<unsigned long long>(
                      result.value().io.TotalAccesses()),
                  result.value().itemsets.TotalPatterns());
    }
  }
  return 0;
}

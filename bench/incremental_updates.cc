// incremental_updates — delta-batch maintenance vs full remine.
//
// The ROADMAP's serving ambition needs mined results that stay fresh as
// transactions arrive without re-reading the whole history. This experiment
// appends batches of increasing size to a mined-and-stored base database
// and compares, per batch size, the DeltaMiner's incremental update against
// a full remine of the combined SALES relation: wall-clock time and the
// IoStats page traffic of each path, plus a bit-identity check of the
// resulting itemsets (the DeltaMiner is exact, not approximate).
//
// Expected shape: for small batches the delta path reads far fewer pages
// (it mines only the delta partition and scans the old partition at most
// once, for borderline candidates) and is correspondingly faster; as the
// batch fraction grows the advantage shrinks until the configured fallback
// threshold routes the update to a full remine anyway.
//
// usage: incremental_updates [--smoke]   (--smoke: tiny sizes for CI)

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"
#include "incremental/delta_miner.h"
#include "incremental/itemset_store.h"

namespace {

using namespace setm;

/// A batch of fresh transactions whose ids continue after `start_after`.
TransactionDb MakeBatch(uint32_t count, uint64_t seed,
                        TransactionId start_after) {
  QuestOptions gen;
  gen.num_transactions = count;
  gen.avg_transaction_size = 8;
  gen.num_items = 200;
  gen.num_patterns = 30;
  gen.seed = seed;
  TransactionDb batch = QuestGenerator(gen).Generate();
  for (Transaction& t : batch) t.id += start_after;
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  bench::Banner(
      "incremental_updates",
      "ROADMAP: incremental mining subsystem (ItemsetStore + DeltaMiner)",
      "delta update reads fewer pages than full remine for small batches");

  QuestOptions gen;
  gen.num_transactions = smoke ? 1200 : 30000;
  gen.avg_transaction_size = 8;
  gen.num_items = 200;
  gen.num_patterns = 30;
  gen.seed = 7;
  const TransactionDb base = QuestGenerator(gen).Generate();
  const TransactionId base_watermark = MaxTransactionId(base);

  MiningOptions options;
  options.min_support = 0.01;

  SetmOptions setm_options;
  setm_options.storage = TableBacking::kHeap;

  // A pool smaller than SALES so both paths pay real page traffic.
  DatabaseOptions db_options;
  db_options.pool_frames = smoke ? 16 : 128;

  std::printf("base: %s, minsup %.1f%%, pool %zu frames\n\n",
              QuestDatasetName(gen).c_str(), options.min_support * 100.0,
              db_options.pool_frames);
  std::printf("%-8s %-14s %10s %12s %10s %12s %8s %7s\n", "batch", "mode",
              "delta(s)", "delta reads", "full(s)", "full reads", "ratio",
              "match");

  const std::vector<double> fractions = {0.01, 0.05, 0.20, 0.40};
  bool small_batch_checked = false;
  for (double fraction : fractions) {
    const uint32_t batch_size =
        static_cast<uint32_t>(fraction * gen.num_transactions);
    if (batch_size == 0) continue;
    const TransactionDb batch =
        MakeBatch(batch_size, gen.seed + 1000, base_watermark);

    // Incremental side: full mine + store once (unmeasured), then the
    // delta update is the measured operation.
    Database delta_db(db_options);
    auto sales_or =
        LoadSalesTable(&delta_db, "sales", base, TableBacking::kHeap);
    if (!sales_or.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   sales_or.status().ToString().c_str());
      return 1;
    }
    ItemsetStore store(&delta_db, "fi", TableBacking::kHeap);
    {
      auto mined = SetmMiner(&delta_db, setm_options)
                       .MineTable(*sales_or.value(), options);
      if (!mined.ok() ||
          !store
               .Save(mined.value().itemsets,
                     MakeRunMeta(mined.value().itemsets, options,
                                 base_watermark, "sales"))
               .ok()) {
        std::fprintf(stderr, "base mine/store failed\n");
        return 1;
      }
    }
    DeltaOptions delta_options;
    delta_options.setm = setm_options;
    DeltaMiner delta_miner(&delta_db, delta_options);
    WallTimer delta_timer;
    auto delta_or =
        delta_miner.AppendAndUpdate(&store, sales_or.value(), batch, options);
    if (!delta_or.ok()) {
      std::fprintf(stderr, "delta update failed: %s\n",
                   delta_or.status().ToString().c_str());
      return 1;
    }
    const double delta_seconds = delta_timer.ElapsedSeconds();
    const DeltaMineResult& delta_result = delta_or.value();
    const uint64_t delta_reads = delta_result.result.io.page_reads;

    // Full-remine side: same combined relation, mined from scratch.
    Database full_db(db_options);
    auto full_sales_or =
        LoadSalesTable(&full_db, "sales", base, TableBacking::kHeap);
    if (!full_sales_or.ok()) {
      std::fprintf(stderr, "load failed\n");
      return 1;
    }
    const IoStats full_before = *full_db.io_stats();
    WallTimer full_timer;
    for (const Transaction& t : batch) {
      for (ItemId item : t.items) {
        if (!full_sales_or.value()
                 ->Insert(Tuple({Value::Int32(t.id), Value::Int32(item)}))
                 .ok()) {
          std::fprintf(stderr, "append failed\n");
          return 1;
        }
      }
    }
    auto full_or = SetmMiner(&full_db, setm_options)
                       .MineTable(*full_sales_or.value(), options);
    if (!full_or.ok()) {
      std::fprintf(stderr, "full remine failed: %s\n",
                   full_or.status().ToString().c_str());
      return 1;
    }
    const double full_seconds = full_timer.ElapsedSeconds();
    const IoStats full_io = Diff(*full_db.io_stats(), full_before);
    const uint64_t full_reads = full_io.page_reads;

    const bool match =
        delta_result.result.itemsets == full_or.value().itemsets;
    std::printf("%-8.0f%% %-13s %10.3f %12llu %10.3f %12llu %7.2fx %7s\n",
                fraction * 100.0,
                delta_result.full_remine ? "full-fallback" : "delta",
                delta_seconds, static_cast<unsigned long long>(delta_reads),
                full_seconds, static_cast<unsigned long long>(full_reads),
                delta_reads == 0
                    ? 0.0
                    : static_cast<double>(full_reads) /
                          static_cast<double>(delta_reads),
                match ? "yes" : "NO");
    if (!match) {
      std::fprintf(stderr, "incremental result diverged at batch %.0f%%!\n",
                   fraction * 100.0);
      return 1;
    }
    // The headline claim, checked on the smallest batch: delta maintenance
    // must read fewer pages than remining everything.
    if (!small_batch_checked) {
      small_batch_checked = true;
      if (delta_result.full_remine || delta_reads >= full_reads) {
        std::fprintf(stderr,
                     "smallest batch did not beat full remine "
                     "(delta %llu reads vs full %llu)!\n",
                     static_cast<unsigned long long>(delta_reads),
                     static_cast<unsigned long long>(full_reads));
        return 1;
      }
    }
  }
  return 0;
}

// A4 — google-benchmark microbenchmarks of the primitives everything else
// is built from: external sort, merge-scan join, B+-tree probes and hash-
// tree candidate counting.

#include <benchmark/benchmark.h>

#include "baselines/hash_tree.h"
#include "common/random.h"
#include "exec/exec_context.h"
#include "exec/external_sort.h"
#include "exec/operators.h"
#include "index/bplus_tree.h"
#include "relational/database.h"

namespace setm {
namespace {

Schema PairSchema() {
  return Schema(
      {Column{"a", ValueType::kInt32}, Column{"b", ValueType::kInt32}});
}

void BM_ExternalSort(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool spill = state.range(1) != 0;
  DatabaseOptions options;
  options.sort_memory_bytes = spill ? (64 << 10) : (256 << 20);
  Database db(options);
  ExecContext ctx = ExecContext::From(&db);
  Rng rng(1);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back(Tuple({Value::Int32(static_cast<int32_t>(rng.Uniform(1u << 20))),
                          Value::Int32(static_cast<int32_t>(i))}));
  }
  for (auto _ : state) {
    ExternalSort sort(ctx, PairSchema(), TupleComparator({0}));
    for (const Tuple& row : rows) {
      if (!sort.Add(row).ok()) state.SkipWithError("add failed");
    }
    auto it = sort.Finish();
    if (!it.ok()) state.SkipWithError("finish failed");
    Tuple row;
    int64_t count = 0;
    while (true) {
      auto more = it.value()->Next(&row);
      if (!more.ok() || !more.value()) break;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSort)
    ->Args({10000, 0})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_MergeJoin(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto left = std::make_unique<MemTable>("l", PairSchema());
  auto right = std::make_unique<MemTable>("r", PairSchema());
  for (int64_t i = 0; i < n; ++i) {
    // ~2 rows per key on each side -> ~4 output rows per key.
    (void)left->Insert(Tuple({Value::Int32(static_cast<int32_t>(i / 2)),
                              Value::Int32(static_cast<int32_t>(i))}));
    (void)right->Insert(Tuple({Value::Int32(static_cast<int32_t>(i / 2)),
                               Value::Int32(static_cast<int32_t>(-i))}));
  }
  for (auto _ : state) {
    MergeJoinIterator join(left->Scan(), right->Scan(), {0}, {0}, nullptr);
    Tuple row;
    int64_t count = 0;
    while (true) {
      auto more = join.Next(&row);
      if (!more.ok() || !more.value()) break;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergeJoin)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_BPlusTreeProbe(benchmark::State& state) {
  const int64_t n = state.range(0);
  IoStats stats;
  MemoryBackend backend(&stats);
  BufferPool pool(&backend, 4096);
  std::vector<BPlusTree::Entry> entries;
  entries.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    entries.push_back({static_cast<uint64_t>(i), 0});
  }
  auto tree = BPlusTree::BulkLoad(&pool, entries);
  if (!tree.ok()) {
    state.SkipWithError("bulk load failed");
    return;
  }
  Rng rng(7);
  for (auto _ : state) {
    auto contains = tree->Contains(rng.Uniform(n), 0);
    benchmark::DoNotOptimize(contains.ok() && contains.value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeProbe)->Arg(100000)->Arg(1000000);

void BM_BPlusTreeInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    IoStats stats;
    MemoryBackend backend(&stats);
    BufferPool pool(&backend, 4096);
    auto tree = BPlusTree::Create(&pool);
    state.ResumeTiming();
    for (int64_t i = 0; i < n; ++i) {
      (void)tree->Insert(rng.Next(), i);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_HashTreeCount(benchmark::State& state) {
  const int64_t candidates = state.range(0);
  Rng rng(13);
  HashTree tree(3);
  std::set<std::vector<ItemId>> unique;
  while (unique.size() < static_cast<size_t>(candidates)) {
    std::set<ItemId> s;
    while (s.size() < 3) s.insert(static_cast<ItemId>(rng.Uniform(200)));
    std::vector<ItemId> v(s.begin(), s.end());
    if (unique.insert(v).second) tree.Insert(v);
  }
  std::vector<std::vector<ItemId>> txns;
  for (int t = 0; t < 1000; ++t) {
    std::set<ItemId> s;
    while (s.size() < 10) s.insert(static_cast<ItemId>(rng.Uniform(200)));
    txns.emplace_back(s.begin(), s.end());
  }
  for (auto _ : state) {
    for (const auto& t : txns) tree.CountTransaction(t);
  }
  state.SetItemsProcessed(state.iterations() * txns.size());
}
BENCHMARK(BM_HashTreeCount)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setm

BENCHMARK_MAIN();

// S2 — scale-out: the two-phase distributed count coordinator over 1/2/4/8
// in-process shards (post-paper: Houtsma & Swami ran SETM on one database;
// this measures the partitioned-databases reading of their Section 5 once
// SALES is split at transaction boundaries across shard databases).
//
// Expected shape: speedup while per-shard counting dominates, flattening as
// the coordinator's serial merge of partial C_k counts grows — the same
// Amdahl curve as thread scaling, but with the merge crossing a (here
// in-process) shard boundary. Every configuration self-checks bit-identity
// against single-node SETM, and a deliberately failing shard must turn the
// whole run into Unavailable — never into wrong output.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"
#include "exec/worker_pool.h"
#include "obs/metrics.h"
#include "shard/coordinator.h"
#include "shard/local_backend.h"

namespace setm {
namespace {

using shard::LocalShardBackend;
using shard::ShardBackend;
using shard::ShardRow;

/// Row-balanced split at transaction boundaries (the shardctl split rule).
std::vector<std::vector<ShardRow>> SplitRows(const TransactionDb& txns,
                                             size_t num_shards) {
  size_t total_rows = 0;
  for (const Transaction& t : txns) total_rows += t.items.size();
  std::vector<std::vector<ShardRow>> slices(num_shards);
  size_t begin = 0;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const size_t target = (total_rows + num_shards - 1) / num_shards;
    size_t rows = 0;
    while (begin < txns.size() && (rows < target || slices[shard].empty()) &&
           txns.size() - begin > num_shards - shard - 1) {
      for (ItemId item : txns[begin].items) {
        slices[shard].push_back({txns[begin].id, item});
      }
      rows += txns[begin].items.size();
      ++begin;
    }
  }
  return slices;
}

/// This run's observations only: the slot histograms are process-cumulative,
/// so each configuration subtracts its before-snapshot bucket-wise.
obs::HistogramSnapshot Diff(const obs::HistogramSnapshot& before,
                            const obs::HistogramSnapshot& after) {
  obs::HistogramSnapshot d;
  d.count = after.count - before.count;
  d.sum = after.sum - before.sum;
  d.buckets.resize(after.buckets.size());
  for (size_t i = 0; i < after.buckets.size(); ++i) {
    d.buckets[i] =
        after.buckets[i] - (i < before.buckets.size() ? before.buckets[i] : 0);
  }
  return d;
}

/// A shard whose disk fails on the second iteration's local count.
class DyingShard : public ShardBackend {
 public:
  explicit DyingShard(Database* db) : real_(db, "inner") {}
  const std::string& name() const override { return name_; }
  Status BeginRun(const shard::ShardRunOptions& options) override {
    return real_.BeginRun(options);
  }
  Result<shard::ShardLocalCounts> CountIteration(size_t k) override {
    if (k >= 2) return Status::IOError("injected disk failure");
    return real_.CountIteration(k);
  }
  Result<shard::ShardFilterStats> ApplyGlobalCk(
      size_t k, const std::vector<std::vector<ItemId>>& ck) override {
    return real_.ApplyGlobalCk(k, ck);
  }
  Status EndRun() override { return real_.EndRun(); }
  Result<shard::ShardHealth> Health() override {
    return shard::ShardHealth{};
  }
  void SetRows(std::vector<ShardRow> rows) { real_.SetRows(std::move(rows)); }

 private:
  std::string name_ = "dying-shard";
  LocalShardBackend real_;
};

int Run(bool smoke) {
  bench::Banner(
      "shard_scaling",
      "ROADMAP: scale-out — two-phase distributed count over shard databases",
      "speedup with shard count, flattening at the serial C_k merge; "
      "bit-identical patterns at every shard count; a failing shard "
      "yields Unavailable, never wrong output");

  QuestOptions gen;
  gen.num_transactions = smoke ? 2000 : 40000;
  gen.avg_transaction_size = 10;
  gen.num_items = 300;
  gen.num_patterns = 50;
  gen.seed = 7;
  const TransactionDb txns = QuestGenerator(gen).Generate();

  MiningOptions options;
  options.min_support = 0.01;

  WallTimer base_timer;
  const MiningResult baseline = bench::RunAlgo("setm", txns, options);
  const double base_seconds = base_timer.ElapsedSeconds();
  std::printf("\nsingle-node setm: %.3fs, %zu patterns\n\n", base_seconds,
              baseline.itemsets.TotalPatterns());

  std::printf("%-8s %12s %10s %12s %8s\n", "shards", "time(s)", "speedup",
              "patterns", "match");
  auto* registry = obs::MetricsRegistry::Global();
  for (size_t num_shards : {1, 2, 4, 8}) {
    Database db;
    std::vector<std::unique_ptr<LocalShardBackend>> owned;
    std::vector<ShardBackend*> backends;
    auto slices = SplitRows(txns, num_shards);
    for (size_t i = 0; i < slices.size(); ++i) {
      auto backend = std::make_unique<LocalShardBackend>(
          &db, "s" + std::to_string(i), "s" + std::to_string(i) + "_");
      backend->SetRows(std::move(slices[i]));
      backends.push_back(backend.get());
      owned.push_back(std::move(backend));
    }

    std::vector<obs::Histogram*> lat(num_shards);
    std::vector<obs::HistogramSnapshot> before(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      lat[i] = registry->GetHistogram(
          "setm_shard_s" + std::to_string(i) + "_lcount_micros",
          "Coordinator-observed local-count latency of shard slot " +
              std::to_string(i));
      before[i] = lat[i]->Snapshot();
    }

    WorkerPool pool(num_shards);
    shard::CoordinatorOptions coord;
    coord.pool = &pool;
    WallTimer timer;
    auto result = shard::DistributedMine(backends, options, coord);
    const double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "distributed mine failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const bool match = result.value().itemsets == baseline.itemsets;
    std::printf("%-8zu %12.3f %9.2fx %12zu %8s\n", num_shards, seconds,
                base_seconds / seconds,
                result.value().itemsets.TotalPatterns(),
                match ? "yes" : "NO");
    for (size_t i = 0; i < num_shards; ++i) {
      const obs::HistogramSnapshot h = Diff(before[i], lat[i]->Snapshot());
      std::printf("         shard s%zu local-count latency: p50 <= %lluus, "
                  "p99 <= %lluus (%llu counts)\n",
                  i,
                  static_cast<unsigned long long>(h.Quantile(0.5)),
                  static_cast<unsigned long long>(h.Quantile(0.99)),
                  static_cast<unsigned long long>(h.count));
    }
    if (!match) {
      std::fprintf(stderr, "shard count %zu changed the result!\n",
                   num_shards);
      return 1;
    }
  }

  // A failing shard must fail the whole run with Unavailable naming it —
  // the coordinator never silently drops a shard's transactions.
  {
    Database db;
    auto slices = SplitRows(txns, 3);
    LocalShardBackend s0(&db, "s0", "s0_");
    s0.SetRows(std::move(slices[0]));
    LocalShardBackend s1(&db, "s1", "s1_");
    s1.SetRows(std::move(slices[1]));
    DyingShard bad(&db);
    bad.SetRows(std::move(slices[2]));
    auto result =
        shard::DistributedMine({&s0, &s1, &bad}, options, {});
    if (result.ok() || !result.status().IsUnavailable() ||
        result.status().message().find("dying-shard") == std::string::npos) {
      std::fprintf(stderr,
                   "down-shard run should be Unavailable naming the shard, "
                   "got: %s\n",
                   result.ok() ? "OK" : result.status().ToString().c_str());
      return 1;
    }
    std::printf("\ndown-shard run: %s\n", result.status().ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace setm

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return setm::Run(smoke);
}

// E4 — Figure 5: size (in Kbytes) of relation R_i vs iteration number, one
// series per minimum support in {0.1, 0.5, 1, 2, 5}%, on the calibrated
// retail database.
//
// Paper shape: |R1| identical across series (the starting relation);
// R_i sizes decrease with iteration, with the decrease delayed (possible
// initial bump above R1's *byte* size) only at small minimum support;
// R4 = 0 for every series (maximum pattern size 3).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/setm.h"

int main() {
  using namespace setm;
  bench::Banner(
      "fig5_relation_sizes",
      "Figure 5 (Section 6.1): Size of relation R_i, retail data set",
      "R_i KB falls with i; sharp drop at high minsup, delayed at 0.1%; "
      "R4 = 0 everywhere; |R1| = 115,568 tuples in all series");

  const TransactionDb& txns = bench::RetailDb();
  std::printf("%-10s %12s %12s %12s %12s %10s\n", "minsup(%)", "R1 (KB)",
              "R2 (KB)", "R3 (KB)", "R4 (KB)", "|R1|rows");
  for (double pct : bench::PaperMinSupSweep()) {
    Database db;
    SetmMiner miner(&db);
    MiningOptions options;
    options.min_support = pct / 100.0;
    auto result = miner.Mine(txns, options);
    if (!result.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    double kb[4] = {0, 0, 0, 0};
    uint64_t r1_rows = 0;
    for (const IterationStats& it : result.value().iterations) {
      if (it.k >= 1 && it.k <= 4) {
        kb[it.k - 1] = static_cast<double>(it.r_bytes) / 1024.0;
      }
      if (it.k == 1) r1_rows = it.r_rows;
    }
    std::printf("%-10.1f %12.1f %12.1f %12.1f %12.1f %10llu\n", pct, kb[0],
                kb[1], kb[2], kb[3],
                static_cast<unsigned long long>(r1_rows));
  }
  std::printf(
      "\nnote: the paper plots the same data set with |R1| = 115,568 tuples\n"
      "(~%d KB at 8 bytes/tuple); series share R1 and differ from R2 on.\n",
      115568 * 8 / 1024);
  return 0;
}

// A6 — ablation: Figure 4 joins R_{k-1} with the *unfiltered* R_1 (every
// SALES tuple, frequent or not); the obvious optimization restricts R_1 to
// items in C_1 first. Results are provably identical (infrequent
// extensions die in the C_k filter); the ablation quantifies how much work
// the paper's formulation leaves on the table.
//
// Expected shape: identical pattern counts; |R'_k| and time shrink with
// filter_r1=on, most at small minimum support where C_1 keeps most items
// (small saving) and at large minimum support where C_1 is small (big
// saving).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/setm.h"

int main() {
  using namespace setm;
  bench::Banner(
      "ablation_filter_r1",
      "DESIGN.md A6: Figure 4's unfiltered R_1 vs C_1-filtered R_1",
      "identical itemsets; filtered run generates fewer R'_2 tuples, "
      "savings grow with minsup");

  const TransactionDb& txns = bench::RetailDb();
  std::printf("%-10s %-10s %12s %14s %10s\n", "minsup(%)", "filter_r1",
              "time(s)", "|R'_2| rows", "patterns");
  for (double pct : bench::PaperMinSupSweep()) {
    for (bool filter : {false, true}) {
      Database db;
      SetmMiner miner(&db);
      MiningOptions options;
      options.min_support = pct / 100.0;
      options.filter_r1 = filter;
      WallTimer timer;
      auto result = miner.Mine(txns, options);
      if (!result.ok()) {
        std::fprintf(stderr, "mining failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      uint64_t r2p = 0;
      for (const IterationStats& it : result.value().iterations) {
        if (it.k == 2) r2p = it.r_prime_rows;
      }
      std::printf("%-10.1f %-10s %12.3f %14llu %10zu\n", pct,
                  filter ? "on" : "off", timer.ElapsedSeconds(),
                  static_cast<unsigned long long>(r2p),
                  result.value().itemsets.TotalPatterns());
    }
  }
  return 0;
}

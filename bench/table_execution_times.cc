// E6 — Section 6.2 execution-time table: SETM wall-clock time as the
// minimum support sweeps 0.1% .. 5%, in-memory configuration (the paper's
// Section 6 implementation "ran in main memory").
//
// Paper numbers (IBM RS/6000 350, 41.1 MHz): 6.90, 5.30, 4.64, 4.22,
// 3.97 seconds — "very stable", max/min ~ 1.7x. Absolute times on modern
// hardware are far smaller; the shape to check is the mild, monotone
// decrease with rising minimum support.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/setm.h"

int main() {
  using namespace setm;
  bench::Banner(
      "table_execution_times",
      "Section 6.2 table: Execution time vs minimum support, retail data",
      "time decreases mildly and monotonically with minsup; max/min <~ 2x");

  const TransactionDb& txns = bench::RetailDb();
  const double paper_seconds[] = {6.90, 5.30, 4.64, 4.22, 3.97};

  std::printf("%-10s %16s %16s %12s\n", "minsup(%)", "measured (s)",
              "paper 1995 (s)", "patterns");
  double first = 0.0, last = 0.0;
  const auto& sweep = bench::PaperMinSupSweep();
  for (size_t i = 0; i < sweep.size(); ++i) {
    Database db;
    SetmMiner miner(&db);
    MiningOptions options;
    options.min_support = sweep[i] / 100.0;
    // Warm-up run to take allocator noise out, then three timed runs.
    if (!miner.Mine(txns, options).ok()) return 1;
    double best = 1e99;
    size_t patterns = 0;
    for (int rep = 0; rep < 3; ++rep) {
      Database db2;
      SetmMiner timed(&db2);
      WallTimer timer;
      auto result = timed.Mine(txns, options);
      if (!result.ok()) {
        std::fprintf(stderr, "mining failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      best = std::min(best, timer.ElapsedSeconds());
      patterns = result.value().itemsets.TotalPatterns();
    }
    if (i == 0) first = best;
    last = best;
    std::printf("%-10.1f %16.3f %16.2f %12zu\n", sweep[i], best,
                paper_seconds[i], patterns);
  }
  std::printf("\nstability ratio (0.1%% time / 5%% time): measured %.2fx, "
              "paper %.2fx\n",
              first / last, 6.90 / 3.97);
  return 0;
}

// A2 — ablation: buffer-pool size vs real page traffic for SETM in heap
// mode on the calibrated retail data.
//
// Expected shape: page reads fall as the pool grows (more of R_1/R'_k stays
// cached across the per-iteration passes) and flatten once the working set
// fits; writes are dominated by materialization and barely move.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/setm.h"

int main() {
  using namespace setm;
  bench::Banner(
      "ablation_buffer_pool",
      "DESIGN.md A2 (the paper's analysis assumes pages re-read per pass)",
      "reads fall with pool size, then flatten; writes ~constant");

  const TransactionDb& txns = bench::RetailDb();
  MiningOptions options;
  options.min_support = 0.005;

  std::printf("%-12s %14s %14s %14s %12s\n", "pool frames", "reads",
              "rand.reads", "writes", "hit-rate(%)");
  for (size_t frames : {16u, 64u, 256u, 1024u, 4096u}) {
    DatabaseOptions db_options;
    db_options.pool_frames = frames;
    db_options.temp_pool_frames = 64;
    db_options.sort_memory_bytes = 1 << 20;
    Database db(db_options);
    SetmMiner miner(&db, SetmOptions{TableBacking::kHeap});
    auto result = miner.Mine(txns, options);
    if (!result.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const IoStats& io = result.value().io;
    const uint64_t hits = db.pool()->hits();
    const uint64_t misses = db.pool()->misses();
    const double hit_rate =
        hits + misses > 0
            ? 100.0 * static_cast<double>(hits) /
                  static_cast<double>(hits + misses)
            : 0.0;
    std::printf("%-12zu %14llu %14llu %14llu %12.1f\n", frames,
                static_cast<unsigned long long>(io.page_reads),
                static_cast<unsigned long long>(io.random_reads),
                static_cast<unsigned long long>(io.page_writes), hit_rate);
  }
  return 0;
}

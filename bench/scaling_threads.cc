// S1 — scaling: the parallel partitioned SETM executor at 1/2/4/8 threads
// on a Quest-generated workload (post-paper: Houtsma & Swami ran SETM
// single-threaded; this measures how far the "mining = sort + merge-scan
// join" reduction parallelizes once SALES is range-partitioned on
// trans_id).
//
// Expected shape: near-linear speedup while partitions stay CPU-bound,
// flattening as the merge of partial C_k counts (serial on the
// coordinator) grows relative to per-partition work — an Amdahl curve.
// Pattern counts must be identical at every thread count.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"

int main() {
  using namespace setm;
  bench::Banner(
      "scaling_threads",
      "ROADMAP: partition parallelism over the paper's two primitives",
      "speedup > 1.5x at 4 threads; identical patterns at all thread counts");

  QuestOptions gen;
  gen.num_transactions = 60000;
  gen.avg_transaction_size = 10;
  gen.num_items = 400;
  gen.num_patterns = 60;
  gen.seed = 7;
  const TransactionDb txns = QuestGenerator(gen).Generate();

  MiningOptions options;
  options.min_support = 0.01;

  std::printf("dataset: %s\n\n", QuestDatasetName(gen).c_str());
  std::printf("%-8s %12s %10s %12s %10s\n", "threads", "time(s)", "speedup",
              "patterns", "match");

  double base_seconds = 0.0;
  size_t base_patterns = 0;
  FrequentItemsets base_itemsets;
  for (size_t threads : {1, 2, 4, 8}) {
    Database db;
    SetmOptions setm_options;
    setm_options.num_threads = threads;
    SetmMiner miner(&db, setm_options);
    WallTimer timer;
    auto result = miner.Mine(txns, options);
    if (!result.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const double seconds = timer.ElapsedSeconds();
    const size_t patterns = result.value().itemsets.TotalPatterns();
    bool match = true;
    if (threads == 1) {
      base_seconds = seconds;
      base_patterns = patterns;
      base_itemsets = result.value().itemsets;
    } else {
      match = result.value().itemsets == base_itemsets;
    }
    std::printf("%-8zu %12.3f %9.2fx %12zu %10s\n", threads, seconds,
                base_seconds / seconds, patterns, match ? "yes" : "NO");
    if (!match || patterns != base_patterns) {
      std::fprintf(stderr, "thread count %zu changed the result!\n", threads);
      return 1;
    }
  }
  return 0;
}

// Unit and property tests for the B+-tree index.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "index/bplus_tree.h"
#include "storage/buffer_pool.h"

namespace setm {
namespace {

class BPlusTreeTest : public testing::Test {
 protected:
  BPlusTreeTest() : backend_(&stats_), pool_(&backend_, 128) {}
  IoStats stats_;
  MemoryBackend backend_;
  BufferPool pool_;
};

TEST_F(BPlusTreeTest, ComposeKeyOrderPreserving) {
  EXPECT_LT(ComposeKey(1, 99), ComposeKey(2, 0));
  EXPECT_LT(ComposeKey(5, 1), ComposeKey(5, 2));
  EXPECT_EQ(KeyHigh(ComposeKey(7, 9)), 7u);
  EXPECT_EQ(KeyLow(ComposeKey(7, 9)), 9u);
}

TEST_F(BPlusTreeTest, EmptyTree) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_entries(), 0u);
  auto it = tree->Begin();
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it.value().Valid());
  auto contains = tree->Contains(5, 0);
  ASSERT_TRUE(contains.ok());
  EXPECT_FALSE(contains.value());
}

TEST_F(BPlusTreeTest, InsertAndContains) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(10, 1).ok());
  ASSERT_TRUE(tree->Insert(20, 2).ok());
  EXPECT_TRUE(tree->Contains(10, 1).value());
  EXPECT_FALSE(tree->Contains(10, 2).value());
  EXPECT_FALSE(tree->Contains(15, 0).value());
  EXPECT_EQ(tree->num_entries(), 2u);
}

TEST_F(BPlusTreeTest, DuplicateEntryRejected) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(1, 1).ok());
  EXPECT_EQ(tree->Insert(1, 1).code(), StatusCode::kAlreadyExists);
  // Same key, different payload is a distinct entry (duplicate key support).
  EXPECT_TRUE(tree->Insert(1, 2).ok());
}

TEST_F(BPlusTreeTest, SplitsAcrossManyInserts) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  const int n = 5000;  // forces leaf and internal splits (255/leaf)
  Rng rng(99);
  std::vector<uint64_t> keys;
  for (int i = 0; i < n; ++i) keys.push_back(i);
  rng.Shuffle(&keys);
  for (uint64_t k : keys) ASSERT_TRUE(tree->Insert(k, k * 7).ok());
  EXPECT_EQ(tree->num_entries(), static_cast<uint64_t>(n));
  EXPECT_GE(tree->height(), 2u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (uint64_t k = 0; k < static_cast<uint64_t>(n); ++k) {
    ASSERT_TRUE(tree->Contains(k, k * 7).value()) << k;
  }
}

TEST_F(BPlusTreeTest, IterationIsSorted) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  Rng rng(3);
  std::set<std::pair<uint64_t, uint64_t>> expected;
  for (int i = 0; i < 3000; ++i) {
    uint64_t k = rng.Uniform(500);
    uint64_t v = rng.Uniform(1000);
    if (expected.insert({k, v}).second) {
      ASSERT_TRUE(tree->Insert(k, v).ok());
    }
  }
  auto it_or = tree->Begin();
  ASSERT_TRUE(it_or.ok());
  auto it = std::move(it_or).value();
  auto exp = expected.begin();
  while (it.Valid()) {
    ASSERT_NE(exp, expected.end());
    EXPECT_EQ(it.entry().key, exp->first);
    EXPECT_EQ(it.entry().value, exp->second);
    ++exp;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(exp, expected.end());
}

TEST_F(BPlusTreeTest, SeekFindsLowerBound) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 100; k += 10) ASSERT_TRUE(tree->Insert(k, 0).ok());
  auto it = tree->Seek(35);
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(it.value().Valid());
  EXPECT_EQ(it.value().entry().key, 40u);
  // Seek past the end.
  auto end = tree->Seek(1000);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end.value().Valid());
}

TEST_F(BPlusTreeTest, GetAllReturnsDuplicatePayloads) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint64_t v = 0; v < 50; ++v) ASSERT_TRUE(tree->Insert(7, v).ok());
  ASSERT_TRUE(tree->Insert(6, 99).ok());
  ASSERT_TRUE(tree->Insert(8, 99).ok());
  std::vector<uint64_t> values;
  ASSERT_TRUE(tree->GetAll(7, &values).ok());
  ASSERT_EQ(values.size(), 50u);
  for (uint64_t v = 0; v < 50; ++v) EXPECT_EQ(values[v], v);
}

TEST_F(BPlusTreeTest, DeleteRemovesEntry) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(tree->Insert(k, 0).ok());
  for (uint64_t k = 0; k < 1000; k += 2) {
    ASSERT_TRUE(tree->Delete(k, 0).ok());
  }
  EXPECT_EQ(tree->num_entries(), 500u);
  EXPECT_TRUE(tree->Delete(998, 0).IsNotFound());  // already deleted
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(tree->Contains(k, 0).value(), k % 2 == 1) << k;
  }
  // Iteration skips deleted entries and stays sorted.
  auto it_or = tree->Begin();
  ASSERT_TRUE(it_or.ok());
  auto it = std::move(it_or).value();
  uint64_t expect = 1;
  while (it.Valid()) {
    EXPECT_EQ(it.entry().key, expect);
    expect += 2;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(expect, 1001u);
}

TEST_F(BPlusTreeTest, DeleteEverythingThenReinsert) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 600; ++k) ASSERT_TRUE(tree->Insert(k, 1).ok());
  for (uint64_t k = 0; k < 600; ++k) ASSERT_TRUE(tree->Delete(k, 1).ok());
  EXPECT_EQ(tree->num_entries(), 0u);
  auto it = tree->Begin();
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it.value().Valid());
  // Tree remains usable after total deletion.
  for (uint64_t k = 0; k < 600; ++k) ASSERT_TRUE(tree->Insert(k, 2).ok());
  EXPECT_EQ(tree->num_entries(), 600u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, BulkLoadMatchesIncrementalInserts) {
  std::vector<BPlusTree::Entry> entries;
  Rng rng(17);
  std::set<std::pair<uint64_t, uint64_t>> unique;
  while (unique.size() < 4000) {
    unique.insert({rng.Uniform(10000), rng.Uniform(16)});
  }
  for (const auto& [k, v] : unique) entries.push_back({k, v});
  auto bulk = BPlusTree::BulkLoad(&pool_, entries);
  ASSERT_TRUE(bulk.ok());
  EXPECT_EQ(bulk->num_entries(), entries.size());
  ASSERT_TRUE(bulk->CheckInvariants().ok());
  // Same content when iterated.
  auto it_or = bulk->Begin();
  ASSERT_TRUE(it_or.ok());
  auto it = std::move(it_or).value();
  size_t i = 0;
  while (it.Valid()) {
    ASSERT_LT(i, entries.size());
    EXPECT_EQ(it.entry(), entries[i]);
    ++i;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(i, entries.size());
}

TEST_F(BPlusTreeTest, BulkLoadEmptyInput) {
  auto tree = BPlusTree::BulkLoad(&pool_, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_entries(), 0u);
}

TEST_F(BPlusTreeTest, BulkLoadedTreeAcceptsInserts) {
  std::vector<BPlusTree::Entry> entries;
  for (uint64_t k = 0; k < 2000; ++k) entries.push_back({k * 2, 0});
  auto tree = BPlusTree::BulkLoad(&pool_, entries);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree->Insert(k * 2 + 1, 0).ok());
  }
  EXPECT_EQ(tree->num_entries(), 4000u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
  // Full ascending iteration.
  auto it_or = tree->Begin();
  ASSERT_TRUE(it_or.ok());
  auto it = std::move(it_or).value();
  uint64_t expect = 0;
  while (it.Valid()) {
    EXPECT_EQ(it.entry().key, expect);
    ++expect;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(expect, 4000u);
}

TEST_F(BPlusTreeTest, NodeAccessesHitIoLedgerWithTinyPool) {
  // A pool smaller than the tree forces real page traffic on probes.
  BufferPool tiny(&backend_, 4);
  std::vector<BPlusTree::Entry> entries;
  for (uint64_t k = 0; k < 20000; ++k) entries.push_back({k, 0});
  auto tree = BPlusTree::BulkLoad(&tiny, entries);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree->num_pages(), 64u);
  const uint64_t reads_before = stats_.page_reads;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree->Contains(rng.Uniform(20000), 0).ok());
  }
  EXPECT_GT(stats_.page_reads, reads_before + 150);
}

// Property sweep: random interleavings of inserts and deletes preserve
// invariants and match a reference std::set.
class BPlusTreeFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeFuzzTest, MatchesReferenceSet) {
  IoStats stats;
  MemoryBackend backend(&stats);
  BufferPool pool(&backend, 256);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Rng rng(GetParam());
  std::set<std::pair<uint64_t, uint64_t>> reference;
  for (int op = 0; op < 4000; ++op) {
    const uint64_t k = rng.Uniform(300);
    const uint64_t v = rng.Uniform(8);
    if (rng.Bernoulli(0.6)) {
      const bool inserted = reference.insert({k, v}).second;
      Status s = tree->Insert(k, v);
      EXPECT_EQ(s.ok(), inserted);
    } else {
      const bool erased = reference.erase({k, v}) > 0;
      Status s = tree->Delete(k, v);
      EXPECT_EQ(s.ok(), erased);
    }
  }
  EXPECT_EQ(tree->num_entries(), reference.size());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  auto it_or = tree->Begin();
  ASSERT_TRUE(it_or.ok());
  auto it = std::move(it_or).value();
  auto ref = reference.begin();
  while (it.Valid()) {
    ASSERT_NE(ref, reference.end());
    EXPECT_EQ(it.entry().key, ref->first);
    EXPECT_EQ(it.entry().value, ref->second);
    ++ref;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(ref, reference.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeFuzzTest,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace setm

// Tests for the SQL layer: lexer, parser and end-to-end statement execution,
// including the paper's literal query shapes.

#include <gtest/gtest.h>

#include "sql/engine.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace setm::sql {
namespace {

// --------------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------------

TEST(LexerTest, TokenizesBasicQuery) {
  auto tokens = Lex("SELECT r1.item, COUNT(*) FROM sales r1");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_TRUE(t[0].IsKeyword("select"));
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_EQ(t[1].text, "r1");
  EXPECT_TRUE(t[2].IsSymbol("."));
  EXPECT_EQ(t[3].text, "item");
  EXPECT_TRUE(t[4].IsSymbol(","));
  EXPECT_TRUE(t[5].IsKeyword("count"));
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, OperatorsAndParameters) {
  auto tokens = Lex("a >= 1 AND b <> 2 AND c >= :minsupport");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> symbols;
  for (const auto& t : tokens.value()) {
    if (t.type == TokenType::kSymbol) symbols.push_back(t.text);
    if (t.type == TokenType::kParameter) symbols.push_back(":" + t.text);
  }
  EXPECT_EQ(symbols,
            (std::vector<std::string>{">=", "<>", ">=", ":minsupport"}));
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Lex("0.5 42 'hello world'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].type, TokenType::kFloat);
  EXPECT_EQ(tokens.value()[1].type, TokenType::kInteger);
  EXPECT_EQ(tokens.value()[2].type, TokenType::kString);
  EXPECT_EQ(tokens.value()[2].text, "hello world");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("SELECT a -- comment here\nFROM t");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens.value().size(), 4u);
  EXPECT_TRUE(tokens.value()[2].IsKeyword("from"));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("SELECT 'unterminated").ok());
  EXPECT_FALSE(Lex("a @ b").ok());
  EXPECT_FALSE(Lex("x : y").ok());
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

TEST(ParserTest, ParsesPaperRkPrimeQuery) {
  // The R'_k generator of Section 4.1.
  auto stmt = Parse(
      "INSERT INTO r2p SELECT p.trans_id, p.item1, q.item "
      "FROM r1 p, sales q "
      "WHERE q.trans_id = p.trans_id AND q.item > p.item1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt.value().kind, Statement::Kind::kInsert);
  const auto& ins = *stmt.value().insert;
  EXPECT_EQ(ins.table, "r2p");
  ASSERT_NE(ins.select, nullptr);
  EXPECT_EQ(ins.select->items.size(), 3u);
  EXPECT_EQ(ins.select->from.size(), 2u);
  EXPECT_EQ(ins.select->from[0].binding(), "p");
  ASSERT_NE(ins.select->where, nullptr);
  EXPECT_EQ(ins.select->where->op, BinaryOp::kAnd);
}

TEST(ParserTest, ParsesGroupByHavingParameter) {
  auto stmt = ParseSelect(
      "SELECT p.item1, COUNT(*) FROM r2p p GROUP BY p.item1 "
      "HAVING COUNT(*) >= :minsupport");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value().group_by.size(), 1u);
  ASSERT_NE(stmt.value().having, nullptr);
  EXPECT_EQ(stmt.value().having->op, BinaryOp::kGe);
  EXPECT_EQ(stmt.value().having->lhs->kind, AstExpr::Kind::kCountStar);
  EXPECT_EQ(stmt.value().having->rhs->kind, AstExpr::Kind::kParameter);
  EXPECT_EQ(stmt.value().having->rhs->parameter, "minsupport");
}

TEST(ParserTest, ParsesOrderByAndDistinct) {
  auto stmt = ParseSelect(
      "SELECT DISTINCT a, b FROM t ORDER BY a ASC, b");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt.value().distinct);
  EXPECT_EQ(stmt.value().order_by.size(), 2u);
}

TEST(ParserTest, DescendingRejected) {
  auto stmt = Parse("SELECT a FROM t ORDER BY a DESC");
  EXPECT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kNotSupported);
}

TEST(ParserTest, ParsesCreateTableTypes) {
  auto stmt = Parse(
      "CREATE TABLE t (a INT, b BIGINT, c DOUBLE, d VARCHAR(30))");
  ASSERT_TRUE(stmt.ok());
  const auto& ct = *stmt.value().create_table;
  EXPECT_FALSE(ct.memory);
  ASSERT_EQ(ct.columns.size(), 4u);
  EXPECT_EQ(ct.columns[0].second, ValueType::kInt32);
  EXPECT_EQ(ct.columns[1].second, ValueType::kInt64);
  EXPECT_EQ(ct.columns[2].second, ValueType::kDouble);
  EXPECT_EQ(ct.columns[3].second, ValueType::kString);
}

TEST(ParserTest, ParsesMemoryTable) {
  auto stmt = Parse("CREATE MEMORY TABLE c1 (item INT, cnt BIGINT)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt.value().create_table->memory);
}

TEST(ParserTest, ParsesInsertValues) {
  auto stmt = Parse("INSERT INTO t VALUES (1, 2), (3, 4)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value().insert->rows.size(), 2u);
}

TEST(ParserTest, ParsesDropAndDelete) {
  auto drop = Parse("DROP TABLE t;");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(drop.value().kind, Statement::Kind::kDropTable);
  auto del = Parse("DELETE FROM t");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value().kind, Statement::Kind::kDelete);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a t").ok());
  EXPECT_FALSE(Parse("INSERT t VALUES (1)").ok());
  EXPECT_FALSE(Parse("CREATE TABLE t (a UNKNOWNTYPE)").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t extra garbage").ok());
}

TEST(ParserTest, ParenthesizedBooleanExpressions) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE (a = 1 OR a = 2) AND b > 3");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE(stmt.value().where, nullptr);
  EXPECT_EQ(stmt.value().where->op, BinaryOp::kAnd);
  EXPECT_EQ(stmt.value().where->lhs->op, BinaryOp::kOr);
}

// --------------------------------------------------------------------------
// Engine end-to-end
// --------------------------------------------------------------------------

class SqlEngineTest : public testing::Test {
 protected:
  SqlEngineTest() : engine_(&db_) {}

  QueryResult MustRun(const std::string& sql, const Params& params = {}) {
    auto r = engine_.Execute(sql, params);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  Database db_;
  SqlEngine engine_;
};

TEST_F(SqlEngineTest, CreateInsertSelect) {
  MustRun("CREATE TABLE t (a INT, b INT)");
  auto ins = MustRun("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  EXPECT_EQ(ins.rows_affected, 3u);
  auto sel = MustRun("SELECT a, b FROM t WHERE b >= 20 ORDER BY a");
  ASSERT_EQ(sel.rows.size(), 2u);
  EXPECT_EQ(sel.rows[0].value(0).AsInt32(), 2);
  EXPECT_EQ(sel.rows[1].value(1).AsInt32(), 30);
  EXPECT_EQ(sel.schema.column(0).name, "a");
}

TEST_F(SqlEngineTest, SelectUnknownTableFails) {
  EXPECT_TRUE(engine_.Execute("SELECT a FROM nope").status().IsNotFound());
}

TEST_F(SqlEngineTest, UnknownColumnFails) {
  MustRun("CREATE TABLE t (a INT)");
  EXPECT_FALSE(engine_.Execute("SELECT zzz FROM t").ok());
}

TEST_F(SqlEngineTest, AmbiguousColumnRequiresQualifier) {
  MustRun("CREATE TABLE t1 (a INT)");
  MustRun("CREATE TABLE t2 (a INT)");
  auto r = engine_.Execute("SELECT a FROM t1, t2");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(SqlEngineTest, SelfJoinWithAliases) {
  MustRun("CREATE TABLE sales (trans_id INT, item INT)");
  MustRun(
      "INSERT INTO sales VALUES (10, 1), (10, 2), (10, 3), (20, 1), (20, 2)");
  // All ordered pairs per transaction (the Section 2 pattern query).
  auto r = MustRun(
      "SELECT r1.trans_id, r1.item, r2.item FROM sales r1, sales r2 "
      "WHERE r1.trans_id = r2.trans_id AND r2.item > r1.item "
      "ORDER BY r1.trans_id, r1.item, r2.item");
  ASSERT_EQ(r.rows.size(), 4u);  // (1,2),(1,3),(2,3) in t10; (1,2) in t20
  EXPECT_EQ(r.rows[0].value(1).AsInt32(), 1);
  EXPECT_EQ(r.rows[0].value(2).AsInt32(), 2);
  EXPECT_EQ(r.rows[3].value(0).AsInt32(), 20);
}

TEST_F(SqlEngineTest, GroupByHavingWithParameter) {
  MustRun("CREATE TABLE sales (trans_id INT, item INT)");
  MustRun(
      "INSERT INTO sales VALUES (1, 7), (2, 7), (3, 7), (1, 8), (2, 8), "
      "(1, 9)");
  auto r = MustRun(
      "SELECT item, COUNT(*) FROM sales GROUP BY item "
      "HAVING COUNT(*) >= :minsupport ORDER BY item",
      {{"minsupport", Value::Int64(2)}});
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 7);
  EXPECT_EQ(r.rows[0].value(1).AsInt64(), 3);
  EXPECT_EQ(r.rows[1].value(0).AsInt32(), 8);
  EXPECT_EQ(r.rows[1].value(1).AsInt64(), 2);
}

TEST_F(SqlEngineTest, UnboundParameterFails) {
  MustRun("CREATE TABLE t (a INT)");
  auto r = engine_.Execute("SELECT a FROM t WHERE a > :missing");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("missing"), std::string::npos);
}

TEST_F(SqlEngineTest, InsertSelectWithCoercion) {
  MustRun("CREATE TABLE src (a INT)");
  MustRun("INSERT INTO src VALUES (1), (1), (2)");
  MustRun("CREATE MEMORY TABLE counts (a INT, cnt BIGINT)");
  MustRun(
      "INSERT INTO counts SELECT a, COUNT(*) FROM src GROUP BY a");
  auto r = MustRun("SELECT a, cnt FROM counts ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].value(1).AsInt64(), 2);
}

TEST_F(SqlEngineTest, CoercionRejectsOverflow) {
  MustRun("CREATE TABLE t (a INT)");
  auto r = engine_.Execute("INSERT INTO t VALUES (99999999999)");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlEngineTest, DistinctRemovesDuplicates) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (2), (1), (2), (1), (3)");
  auto r = MustRun("SELECT DISTINCT a FROM t");
  ASSERT_EQ(r.rows.size(), 3u);  // sorted by the distinct pass
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 1);
  EXPECT_EQ(r.rows[2].value(0).AsInt32(), 3);
}

TEST_F(SqlEngineTest, DeleteTruncatesAndDropRemoves) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (1), (2)");
  auto del = MustRun("DELETE FROM t");
  EXPECT_EQ(del.rows_affected, 2u);
  auto sel = MustRun("SELECT a FROM t");
  EXPECT_TRUE(sel.rows.empty());
  MustRun("DROP TABLE t");
  EXPECT_FALSE(engine_.Execute("SELECT a FROM t").ok());
}

TEST_F(SqlEngineTest, ThreeWayJoin) {
  MustRun("CREATE TABLE a (x INT, y INT)");
  MustRun("CREATE TABLE b (y INT, z INT)");
  MustRun("CREATE TABLE c (z INT, w INT)");
  MustRun("INSERT INTO a VALUES (1, 10), (2, 20)");
  MustRun("INSERT INTO b VALUES (10, 100), (20, 200)");
  MustRun("INSERT INTO c VALUES (100, 7), (999, 8)");
  auto r = MustRun(
      "SELECT a.x, c.w FROM a, b, c "
      "WHERE a.y = b.y AND b.z = c.z");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 1);
  EXPECT_EQ(r.rows[0].value(1).AsInt32(), 7);
}

TEST_F(SqlEngineTest, CrossJoinWithoutEquiPredicate) {
  MustRun("CREATE TABLE l (a INT)");
  MustRun("CREATE TABLE r (b INT)");
  MustRun("INSERT INTO l VALUES (1), (2)");
  MustRun("INSERT INTO r VALUES (10), (20)");
  auto r = MustRun("SELECT l.a, r.b FROM l, r WHERE r.b > 15 ORDER BY l.a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].value(1).AsInt32(), 20);
}

TEST_F(SqlEngineTest, OrPredicate) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (1), (2), (3), (4)");
  auto r = MustRun("SELECT a FROM t WHERE a = 1 OR a >= 4 ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[1].value(0).AsInt32(), 4);
}

TEST_F(SqlEngineTest, GroupByColumnNotInGroupRejected) {
  MustRun("CREATE TABLE t (a INT, b INT)");
  MustRun("INSERT INTO t VALUES (1, 2)");
  auto r = engine_.Execute("SELECT b, COUNT(*) FROM t GROUP BY a");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlEngineTest, CountWithoutGroupByRejected) {
  MustRun("CREATE TABLE t (a INT)");
  // COUNT(*) over the whole table without GROUP BY is outside the subset.
  auto r = engine_.Execute("SELECT a, COUNT(*) FROM t");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlEngineTest, StringColumnsWork) {
  MustRun("CREATE TABLE items (id INT, name VARCHAR(20))");
  MustRun("INSERT INTO items VALUES (1, 'bread'), (2, 'butter')");
  auto r = MustRun("SELECT name FROM items WHERE id = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsString(), "butter");
}

TEST_F(SqlEngineTest, DuplicateAliasRejected) {
  MustRun("CREATE TABLE t (a INT)");
  EXPECT_FALSE(engine_.Execute("SELECT p.a FROM t p, t p").ok());
}

TEST_F(SqlEngineTest, CountStarInWhereRejected) {
  MustRun("CREATE TABLE t (a INT)");
  EXPECT_FALSE(engine_.Execute("SELECT a FROM t WHERE COUNT(*) > 1").ok());
}

}  // namespace
}  // namespace setm::sql

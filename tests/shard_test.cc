// The scale-out subsystem: shard manifest codec, LocalShardBackend slices,
// the two-phase distributed count coordinator, ShardedDatabase over file
// shards and RemoteShardBackend over live setm_served sessions. The core
// contract under test is bit-identity: any shard count, either scratch
// backing and either transport must reproduce single-node SETM exactly —
// itemsets, per-iteration cardinalities, everything but wall-clock.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/miner_registry.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"
#include "exec/worker_pool.h"
#include "net/client.h"
#include "net/server.h"
#include "persist/shard_manifest.h"
#include "shard/coordinator.h"
#include "shard/local_backend.h"
#include "shard/remote_backend.h"
#include "shard/sharded_db.h"

namespace setm {
namespace {

using net::MiningServer;
using net::ServerOptions;
using shard::CoordinatorOptions;
using shard::DistributedMine;
using shard::LocalShardBackend;
using shard::RemoteShardBackend;
using shard::ShardBackend;
using shard::ShardedDatabase;
using shard::ShardRow;
using shard::ShardRunOptions;

TransactionDb QuestDb(uint64_t seed, uint32_t num_transactions = 200) {
  QuestOptions gen;
  gen.seed = seed;
  gen.num_transactions = num_transactions;
  gen.avg_transaction_size = 5;
  gen.num_items = 20;
  gen.num_patterns = 12;
  return QuestGenerator(gen).Generate();
}

/// Row-balanced split at transaction boundaries — the shardctl split rule.
std::vector<TransactionDb> SplitTxns(const TransactionDb& txns,
                                     size_t num_shards) {
  size_t total_rows = 0;
  for (const Transaction& t : txns) total_rows += t.items.size();
  std::vector<TransactionDb> slices(num_shards);
  size_t begin = 0;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const size_t target = (total_rows + num_shards - 1) / num_shards;
    size_t rows = 0;
    while (begin < txns.size() && (rows < target || slices[shard].empty()) &&
           txns.size() - begin > num_shards - shard - 1) {
      rows += txns[begin].items.size();
      slices[shard].push_back(txns[begin]);
      ++begin;
    }
  }
  return slices;
}

std::vector<ShardRow> RowsOf(const TransactionDb& txns) {
  std::vector<ShardRow> rows;
  for (const Transaction& t : txns) {
    for (ItemId item : t.items) rows.push_back({t.id, item});
  }
  return rows;
}

Result<MiningResult> SingleNode(const TransactionDb& txns,
                                const MiningOptions& options,
                                const SetmOptions& knobs = {}) {
  Database db;
  auto miner = MinerRegistry::Create("setm", &db, knobs);
  if (!miner.ok()) return miner.status();
  MiningRequest request;
  request.transactions = &txns;
  request.options = options;
  return miner.value()->Mine(request);
}

/// Runs the coordinator over SetRows-sourced local backends, one per slice.
Result<MiningResult> MineSlices(Database* db,
                                const std::vector<TransactionDb>& slices,
                                const MiningOptions& options,
                                const ShardRunOptions& run,
                                WorkerPool* pool = nullptr) {
  std::vector<std::unique_ptr<LocalShardBackend>> owned;
  std::vector<ShardBackend*> backends;
  for (size_t i = 0; i < slices.size(); ++i) {
    auto backend = std::make_unique<LocalShardBackend>(
        db, "s" + std::to_string(i), "s" + std::to_string(i) + "_");
    backend->SetRows(RowsOf(slices[i]));
    backends.push_back(backend.get());
    owned.push_back(std::move(backend));
  }
  CoordinatorOptions coord;
  coord.run = run;
  coord.pool = pool;
  return DistributedMine(backends, options, coord);
}

/// Everything but wall-clock and page counts must match: pages round up per
/// shard (partial last pages), so only the single-node run's sums are exact.
void ExpectSameIterations(const MiningResult& got, const MiningResult& want) {
  ASSERT_EQ(got.iterations.size(), want.iterations.size());
  for (size_t i = 0; i < want.iterations.size(); ++i) {
    const IterationStats& e = want.iterations[i];
    const IterationStats& r = got.iterations[i];
    EXPECT_EQ(r.k, e.k);
    EXPECT_EQ(r.r_prime_rows, e.r_prime_rows) << "k=" << e.k;
    EXPECT_EQ(r.r_rows, e.r_rows) << "k=" << e.k;
    EXPECT_EQ(r.r_bytes, e.r_bytes) << "k=" << e.k;
    EXPECT_EQ(r.c_size, e.c_size) << "k=" << e.k;
  }
}

// --------------------------------------------------------------------------
// Coordinator identity over in-process slices.
// --------------------------------------------------------------------------

class DistributedIdentityTest
    : public testing::TestWithParam<
          std::tuple<uint64_t, size_t, TableBacking>> {};

TEST_P(DistributedIdentityTest, BitIdenticalToSingleNode) {
  const uint64_t seed = std::get<0>(GetParam());
  const size_t num_shards = std::get<1>(GetParam());
  const TableBacking backing = std::get<2>(GetParam());

  TransactionDb txns = QuestDb(seed);
  MiningOptions options;
  options.min_support = 0.04;

  SetmOptions knobs;
  knobs.storage = backing;
  auto expected = SingleNode(txns, options, knobs);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  Database db;
  WorkerPool pool(num_shards);
  ShardRunOptions run;
  run.storage = backing;
  auto result = MineSlices(&db, SplitTxns(txns, num_shards), options, run,
                           &pool);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets)
      << num_shards << " shards diverge: "
      << result.value().itemsets.TotalPatterns() << " vs "
      << expected.value().itemsets.TotalPatterns() << " patterns";
  EXPECT_EQ(result.value().itemsets.num_transactions, txns.size());
  ExpectSameIterations(result.value(), expected.value());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedIdentityTest,
    testing::Combine(testing::Values(uint64_t{7}, uint64_t{21}),
                     testing::Values(size_t{2}, size_t{3}, size_t{5}),
                     testing::Values(TableBacking::kMemory,
                                     TableBacking::kHeap)));

TEST(DistributedMineTest, HashCountingAndFilterR1MatchSingleNode) {
  TransactionDb txns = QuestDb(33);
  MiningOptions options;
  options.min_support = 0.05;
  options.filter_r1 = true;  // exercises the k == 1 ApplyGlobalCk path

  SetmOptions knobs;
  knobs.count_method = CountMethod::kHash;
  auto expected = SingleNode(txns, options, knobs);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  Database db;
  ShardRunOptions run;
  run.count_method = CountMethod::kHash;
  auto result = MineSlices(&db, SplitTxns(txns, 3), options, run);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
  ExpectSameIterations(result.value(), expected.value());
}

TEST(DistributedMineTest, EmptyShardContributesNothing) {
  TransactionDb txns = QuestDb(5, 120);
  MiningOptions options;
  options.min_support = 0.05;
  auto expected = SingleNode(txns, options);
  ASSERT_TRUE(expected.ok());

  std::vector<TransactionDb> slices = SplitTxns(txns, 2);
  slices.insert(slices.begin() + 1, TransactionDb{});  // middle shard empty

  Database db;
  auto result = MineSlices(&db, slices, options, ShardRunOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
  EXPECT_EQ(result.value().itemsets.num_transactions, txns.size());
  ExpectSameIterations(result.value(), expected.value());
}

TEST(DistributedMineTest, SkewedShardsStayExact) {
  TransactionDb txns = QuestDb(9, 150);
  MiningOptions options;
  options.min_support = 0.04;
  auto expected = SingleNode(txns, options);
  ASSERT_TRUE(expected.ok());

  // 90/10 split: one giant shard, one with a handful of transactions.
  std::vector<TransactionDb> slices(2);
  const size_t cut = txns.size() * 9 / 10;
  slices[0].assign(txns.begin(), txns.begin() + cut);
  slices[1].assign(txns.begin() + cut, txns.end());

  Database db;
  auto result = MineSlices(&db, slices, options, ShardRunOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
  ExpectSameIterations(result.value(), expected.value());
}

TEST(DistributedMineTest, NoShardsIsInvalidArgument) {
  auto result = DistributedMine({}, MiningOptions{}, CoordinatorOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

// --------------------------------------------------------------------------
// Failure semantics: a down shard fails the run, named, with no partial
// result; cancellation passes through unprefixed.
// --------------------------------------------------------------------------

/// A shard whose disk "goes away" at a chosen point in the protocol.
class FailingBackend : public ShardBackend {
 public:
  enum class FailAt { kBegin, kCount };

  FailingBackend(std::string name, FailAt fail_at, size_t fail_k)
      : name_(std::move(name)), fail_at_(fail_at), fail_k_(fail_k) {}

  const std::string& name() const override { return name_; }

  Status BeginRun(const ShardRunOptions& options) override {
    if (fail_at_ == FailAt::kBegin) {
      return Status::IOError("shard file torn away");
    }
    return real_.BeginRun(options);
  }

  Result<shard::ShardLocalCounts> CountIteration(size_t k) override {
    if (fail_at_ == FailAt::kCount && k >= fail_k_) {
      return Status::IOError("read failed mid-count");
    }
    return real_.CountIteration(k);
  }

  Result<shard::ShardFilterStats> ApplyGlobalCk(
      size_t k, const std::vector<std::vector<ItemId>>& ck) override {
    return real_.ApplyGlobalCk(k, ck);
  }

  Status EndRun() override { return real_.EndRun(); }
  Result<shard::ShardHealth> Health() override {
    return shard::ShardHealth{};
  }

  void SetRows(std::vector<ShardRow> rows) { real_.SetRows(std::move(rows)); }
  Database* db() { return &db_; }

 private:
  std::string name_;
  FailAt fail_at_;
  size_t fail_k_;
  Database db_;
  LocalShardBackend real_{&db_, "inner"};
};

TEST(DistributedMineTest, DownShardIsUnavailableNamingTheShard) {
  TransactionDb txns = QuestDb(3, 100);
  std::vector<TransactionDb> slices = SplitTxns(txns, 3);

  for (FailingBackend::FailAt fail_at :
       {FailingBackend::FailAt::kBegin, FailingBackend::FailAt::kCount}) {
    Database db;
    LocalShardBackend healthy0(&db, "s0", "s0_");
    healthy0.SetRows(RowsOf(slices[0]));
    LocalShardBackend healthy1(&db, "s1", "s1_");
    healthy1.SetRows(RowsOf(slices[1]));
    FailingBackend bad("flaky-shard", fail_at, 2);
    bad.SetRows(RowsOf(slices[2]));

    MiningOptions options;
    options.min_support = 0.04;
    auto result = DistributedMine({&healthy0, &healthy1, &bad}, options,
                                  CoordinatorOptions{});
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsUnavailable())
        << result.status().ToString();
    EXPECT_NE(result.status().message().find("shard 'flaky-shard'"),
              std::string::npos)
        << result.status().ToString();
  }
}

TEST(DistributedMineTest, NonTransportErrorKeepsItsCode) {
  // Unknown table on a bound backend is NotFound, not a transport failure:
  // the coordinator must keep the code, naming the shard.
  Database db;
  LocalShardBackend backend(&db, "s0", "s0_");
  backend.BindTable("nosuch");
  auto result =
      DistributedMine({&backend}, MiningOptions{}, CoordinatorOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound()) << result.status().ToString();
  EXPECT_NE(result.status().message().find("shard 's0'"), std::string::npos);
}

/// Counts iterations and vetoes at a chosen k.
class CancelAt : public MiningObserver {
 public:
  explicit CancelAt(size_t k) : cancel_k_(k) {}
  bool OnIteration(const IterationStats& stats) override {
    max_k_seen_ = stats.k;
    return stats.k < cancel_k_;
  }
  size_t max_k_seen() const { return max_k_seen_; }

 private:
  size_t cancel_k_;
  size_t max_k_seen_ = 0;
};

TEST(DistributedMineTest, CancellationStopsWithinOneIteration) {
  TransactionDb txns = QuestDb(17);
  Database db;
  CancelAt observer(2);
  MiningOptions options;
  options.min_support = 0.02;
  options.observer = &observer;
  auto result =
      MineSlices(&db, SplitTxns(txns, 3), options, ShardRunOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  // Unprefixed: cancellation is the caller's veto, not a shard failure.
  EXPECT_EQ(result.status().message().find("shard '"), std::string::npos);
  EXPECT_EQ(observer.max_k_seen(), 2u);  // nothing ran past the veto
}

// --------------------------------------------------------------------------
// ShardedDatabase over file shards.
// --------------------------------------------------------------------------

struct TempDir {
  TempDir() {
    path = testing::TempDir() + "shard_test_XXXXXX";
    EXPECT_NE(mkdtemp(path.data()), nullptr);
  }
  ~TempDir() {
    // Tests create a bounded, known set of files; remove then rmdir.
    for (const std::string& f : files) ::remove(f.c_str());
    ::remove(path.c_str());
  }
  std::string File(const std::string& name) {
    files.push_back(path + "/" + name);
    files.push_back(path + "/" + name + ".wal");
    return path + "/" + name;
  }
  std::string path;
  std::vector<std::string> files;
};

TEST(ShardedDatabaseTest, FileShardsMatchSingleNode) {
  TransactionDb txns = QuestDb(41);
  MiningOptions options;
  options.min_support = 0.04;
  auto expected = SingleNode(txns, options);
  ASSERT_TRUE(expected.ok());

  TempDir dir;
  std::vector<TransactionDb> slices = SplitTxns(txns, 3);
  ShardManifest manifest;
  for (size_t i = 0; i < slices.size(); ++i) {
    ShardMember member;
    member.id = static_cast<uint32_t>(i);
    member.kind = ShardMember::Kind::kFile;
    member.path = dir.File("s" + std::to_string(i) + ".db");
    {
      DatabaseOptions db_options;
      db_options.file_path = member.path;
      auto db_or = Database::Open(std::move(db_options));
      ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
      auto sales = LoadSalesTable(db_or.value().get(), "sales", slices[i],
                                  TableBacking::kHeap);
      ASSERT_TRUE(sales.ok()) << sales.status().ToString();
      ASSERT_TRUE(db_or.value()->Close().ok());
    }
    manifest.members.push_back(std::move(member));
  }

  auto sharded_or = ShardedDatabase::Open(manifest);
  ASSERT_TRUE(sharded_or.ok()) << sharded_or.status().ToString();
  ShardedDatabase& sharded = *sharded_or.value();

  auto result = sharded.Mine(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
  EXPECT_EQ(result.value().itemsets.num_transactions, txns.size());
  ExpectSameIterations(result.value(), expected.value());

  // A second run on the same handle must be identical too (scratch cleanup).
  auto again = sharded.Mine(options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again.value().itemsets == expected.value().itemsets);

  for (const auto& member : sharded.Health()) {
    EXPECT_TRUE(member.health.reachable) << member.name;
    EXPECT_GT(member.health.transactions, 0u) << member.name;
  }
  EXPECT_TRUE(sharded.Close().ok());
}

TEST(ShardedDatabaseTest, MissingShardFileFailsOpenNamingTheShard) {
  TempDir dir;
  ShardManifest manifest;
  ShardMember member;
  member.id = 4;
  member.path = dir.path + "/enoent/nope.db";
  manifest.members.push_back(member);
  auto sharded_or = ShardedDatabase::Open(manifest);
  ASSERT_FALSE(sharded_or.ok());
  EXPECT_NE(sharded_or.status().message().find("shard 's4'"),
            std::string::npos)
      << sharded_or.status().ToString();
}

// --------------------------------------------------------------------------
// RemoteShardBackend against live server sessions.
// --------------------------------------------------------------------------

TEST(RemoteShardTest, SocketShardsMatchSingleNode) {
  TransactionDb txns = QuestDb(55);
  MiningOptions options;
  options.min_support = 0.04;
  auto expected = SingleNode(txns, options);
  ASSERT_TRUE(expected.ok());

  // One server database hosting all three slices as separate tables; each
  // backend gets its own connection, hence its own server-side shard run.
  Database db;
  std::vector<TransactionDb> slices = SplitTxns(txns, 3);
  for (size_t i = 0; i < slices.size(); ++i) {
    auto sales = LoadSalesTable(&db, "shard" + std::to_string(i), slices[i],
                                TableBacking::kMemory);
    ASSERT_TRUE(sales.ok()) << sales.status().ToString();
  }
  ServerOptions server_options;
  server_options.port = 0;
  server_options.store_prefix = "";
  auto server_or = MiningServer::Create(&db, std::move(server_options));
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  ASSERT_TRUE(server_or.value()->Start().ok());
  MiningServer& server = *server_or.value();

  for (CountMethod method : {CountMethod::kSortMerge, CountMethod::kHash}) {
    std::vector<std::unique_ptr<RemoteShardBackend>> owned;
    std::vector<ShardBackend*> backends;
    for (size_t i = 0; i < slices.size(); ++i) {
      owned.push_back(std::make_unique<RemoteShardBackend>(
          "127.0.0.1", server.port(), "shard" + std::to_string(i)));
      backends.push_back(owned.back().get());
    }
    WorkerPool pool(backends.size());
    CoordinatorOptions coord;
    coord.run.count_method = method;
    coord.pool = &pool;
    auto result = DistributedMine(backends, options, coord);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().itemsets == expected.value().itemsets)
        << "method=" << (method == CountMethod::kHash ? "hash" : "sortmerge");
    EXPECT_EQ(result.value().itemsets.num_transactions, txns.size());
    ExpectSameIterations(result.value(), expected.value());
  }
  EXPECT_TRUE(server.Stop().ok());
}

TEST(RemoteShardTest, DeadEndpointIsUnavailableBeforeAnyCounting) {
  // Bind an ephemeral port, then shut the server down: the port is known
  // dead, so the eager connect in BeginRun must fail the whole run.
  Database db;
  auto sales =
      LoadSalesTable(&db, "sales", QuestDb(2, 20), TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  ServerOptions server_options;
  server_options.port = 0;
  server_options.store_prefix = "";
  auto server_or = MiningServer::Create(&db, std::move(server_options));
  ASSERT_TRUE(server_or.ok());
  ASSERT_TRUE(server_or.value()->Start().ok());
  const uint16_t dead_port = server_or.value()->port();
  ASSERT_TRUE(server_or.value()->Stop().ok());

  RemoteShardBackend backend("127.0.0.1", dead_port, "sales", "s-gone");
  auto result =
      DistributedMine({&backend}, MiningOptions{}, CoordinatorOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  EXPECT_NE(result.status().message().find("shard 's-gone'"),
            std::string::npos)
      << result.status().ToString();
}

// --------------------------------------------------------------------------
// Shard manifest codec.
// --------------------------------------------------------------------------

TEST(ShardManifestTest, SerializeParseRoundTrip) {
  ShardManifest manifest;
  manifest.epoch = 7;
  ShardMember file;
  file.id = 0;
  file.kind = ShardMember::Kind::kFile;
  file.path = "/data/s0.db";
  file.table = "sales";
  file.has_range = true;
  file.tid_min = 0;
  file.tid_max = 333;
  ShardMember remote;
  remote.id = 2;
  remote.kind = ShardMember::Kind::kRemote;
  remote.host = "10.0.0.8";
  remote.port = 7001;
  remote.table = "tx";
  manifest.members = {file, remote};

  auto parsed_or = ShardManifest::Parse(manifest.Serialize());
  ASSERT_TRUE(parsed_or.ok()) << parsed_or.status().ToString();
  const ShardManifest& parsed = parsed_or.value();
  EXPECT_EQ(parsed.epoch, 7u);
  ASSERT_EQ(parsed.members.size(), 2u);
  EXPECT_EQ(parsed.members[0].id, 0u);
  EXPECT_EQ(parsed.members[0].kind, ShardMember::Kind::kFile);
  EXPECT_EQ(parsed.members[0].path, "/data/s0.db");
  EXPECT_TRUE(parsed.members[0].has_range);
  EXPECT_EQ(parsed.members[0].tid_min, 0);
  EXPECT_EQ(parsed.members[0].tid_max, 333);
  EXPECT_EQ(parsed.members[1].kind, ShardMember::Kind::kRemote);
  EXPECT_EQ(parsed.members[1].host, "10.0.0.8");
  EXPECT_EQ(parsed.members[1].port, 7001);
  EXPECT_EQ(parsed.members[1].table, "tx");
}

TEST(ShardManifestTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",                                               // no header
      "setm-shards v2\nepoch 1\nshards 0\n",            // unknown version
      "setm-shards v1\nepoch 0\nshards 0\n",            // epoch must be >= 1
      "setm-shards v1\nepoch 1\nshards 2\n"
      "shard 0 file /a.db\nshard 0 file /b.db\n",       // duplicate id
      "setm-shards v1\nepoch 1\nshards 1\n"
      "shard 0 tape /a\n",                              // unknown kind
      "setm-shards v1\nepoch 1\nshards 1\n"
      "shard 0 remote nocolonhere\n",                   // endpoint sans port
      "setm-shards v1\nepoch 1\nshards 1\n"
      "shard 0 remote h:99999\n",                       // port out of range
      "setm-shards v1\nepoch 1\nshards 1\n"
      "shard 0 file /a.db tids 5\n",                    // half a range
  };
  for (const char* text : bad) {
    auto parsed = ShardManifest::Parse(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsInvalidArgument())
          << parsed.status().ToString();
    }
  }
}

TEST(ShardManifestTest, DeclaredCountMismatchIsCorruption) {
  auto parsed = ShardManifest::Parse(
      "setm-shards v1\nepoch 1\nshards 2\nshard 0 file /a.db\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption()) << parsed.status().ToString();
}

TEST(ShardManifestTest, SaveLoadAndMissingFile) {
  TempDir dir;
  ShardManifest manifest;
  manifest.epoch = 3;
  ShardMember member;
  member.id = 1;
  member.path = "/data/only.db";
  manifest.members.push_back(member);

  const std::string path = dir.path + "/shards.manifest";
  dir.files.push_back(path);
  ASSERT_TRUE(manifest.Save(path).ok());
  auto loaded = ShardManifest::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().epoch, 3u);
  ASSERT_EQ(loaded.value().members.size(), 1u);
  EXPECT_EQ(loaded.value().members[0].path, "/data/only.db");

  auto missing = ShardManifest::Load(dir.path + "/does-not-exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsIOError()) << missing.status().ToString();
}

// --------------------------------------------------------------------------
// Registry wiring: the equivalence suite sweeps these automatically; here we
// only pin the metadata that drives that sweep.
// --------------------------------------------------------------------------

TEST(ShardRegistryTest, ShardedMinerAndParallelAprioriAreRegistered) {
  bool saw_sharded = false;
  bool saw_parallel_apriori = false;
  for (const MinerInfo& info : MinerRegistry::List()) {
    if (info.name == "setm-sharded") {
      saw_sharded = true;
      EXPECT_TRUE(info.honors_storage);
      EXPECT_TRUE(info.honors_count_method);
      EXPECT_TRUE(info.honors_threads);
    }
    if (info.name == "apriori-parallel") {
      saw_parallel_apriori = true;
      EXPECT_TRUE(info.honors_threads);
    }
  }
  EXPECT_TRUE(saw_sharded);
  EXPECT_TRUE(saw_parallel_apriori);
}

}  // namespace
}  // namespace setm

// Crash-consistency tests for the write-ahead log (src/persist/wal) and the
// dual-slot superblock protocol: a simulated disk with an operation fuse
// cuts "power" after the K-th storage operation, for every K until the
// workload completes — then the database is reopened from the durable bytes
// alone and must (a) open, and (b) contain exactly a whole-batch prefix of
// the committed work. Real-file tests cover byte-level damage the
// operation-granular simulator cannot express: torn WAL tails, corrupt
// records, scribbled superblock slots, and foreign format versions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "incremental/itemset_store.h"
#include "persist/superblock.h"
#include "persist/wal.h"
#include "relational/database.h"
#include "storage/storage_backend.h"

namespace setm {
namespace {

Schema TwoIntSchema() {
  return Schema(
      {Column{"a", ValueType::kInt32}, Column{"b", ValueType::kInt32}});
}

// --------------------------------------------------------------------------
// Simulated disk
// --------------------------------------------------------------------------

/// Shared state of one simulated device: the volatile view (what the
/// process reads back) and the durable view (what survives the power cut).
/// Every fallible operation ticks the fuse; once it reaches zero the device
/// is dead — the operation fails *before* taking effect and the durable
/// view is frozen.
///
/// Two durability models bracket real hardware:
///   retain=false — nothing becomes durable except at an explicit Sync
///                  (maximum write-back caching);
///   retain=true  — every completed operation is durable instantly
///                  (write-through, the strictest ordering).
struct SimDisk {
  bool retain = false;
  int64_t fuse = -1;  ///< operations until power loss; -1 = reliable
  bool crashed = false;
  uint64_t wal_syncs = 0;

  std::vector<Page> pages;
  std::vector<Page> pages_durable;
  std::string wal;
  std::string wal_durable;

  Status Tick(const char* op) {
    if (crashed) {
      return Status::IOError(std::string("simulated power loss (") + op +
                             ")");
    }
    if (fuse >= 0) {
      if (fuse == 0) {
        crashed = true;
        return Status::IOError(std::string("simulated power loss (") + op +
                               ")");
      }
      --fuse;
    }
    return Status::OK();
  }
};

class CrashSimBackend : public StorageBackend {
 public:
  explicit CrashSimBackend(std::shared_ptr<SimDisk> disk)
      : StorageBackend(nullptr), disk_(std::move(disk)) {}

  Result<PageId> AllocatePage() override {
    SETM_RETURN_IF_ERROR(disk_->Tick("page alloc"));
    disk_->pages.emplace_back();
    disk_->pages.back().Clear();
    if (disk_->retain) disk_->pages_durable = disk_->pages;
    return static_cast<PageId>(disk_->pages.size() - 1);
  }
  Status ReadPage(PageId id, Page* out) override {
    SETM_RETURN_IF_ERROR(disk_->Tick("page read"));
    if (id >= disk_->pages.size()) {
      return Status::InvalidArgument("page " + std::to_string(id) +
                                     " was never allocated");
    }
    *out = disk_->pages[id];
    return Status::OK();
  }
  Status WritePage(PageId id, const Page& page) override {
    SETM_RETURN_IF_ERROR(disk_->Tick("page write"));
    if (id >= disk_->pages.size()) {
      return Status::InvalidArgument("page " + std::to_string(id) +
                                     " was never allocated");
    }
    disk_->pages[id] = page;
    if (disk_->retain) disk_->pages_durable = disk_->pages;
    return Status::OK();
  }
  uint64_t NumPages() const override { return disk_->pages.size(); }
  Status Sync() override {
    SETM_RETURN_IF_ERROR(disk_->Tick("page-store sync"));
    disk_->pages_durable = disk_->pages;
    return Status::OK();
  }

 private:
  std::shared_ptr<SimDisk> disk_;
};

class CrashSimWalFile : public WalFile {
 public:
  explicit CrashSimWalFile(std::shared_ptr<SimDisk> disk)
      : disk_(std::move(disk)) {}

  Status Append(std::string_view data) override {
    SETM_RETURN_IF_ERROR(disk_->Tick("wal append"));
    disk_->wal.append(data.data(), data.size());
    if (disk_->retain) disk_->wal_durable = disk_->wal;
    return Status::OK();
  }
  Status Read(uint64_t offset, size_t n, std::string* out) override {
    SETM_RETURN_IF_ERROR(disk_->Tick("wal read"));
    out->clear();
    if (offset >= disk_->wal.size()) return Status::OK();
    out->assign(disk_->wal, offset,
                std::min<size_t>(n, disk_->wal.size() - offset));
    return Status::OK();
  }
  Result<uint64_t> Size() override {
    SETM_RETURN_IF_ERROR(disk_->Tick("wal size"));
    return static_cast<uint64_t>(disk_->wal.size());
  }
  Status Sync() override {
    SETM_RETURN_IF_ERROR(disk_->Tick("wal sync"));
    disk_->wal_durable = disk_->wal;
    ++disk_->wal_syncs;
    return Status::OK();
  }
  Status Truncate(uint64_t size) override {
    SETM_RETURN_IF_ERROR(disk_->Tick("wal truncate"));
    disk_->wal.resize(size);
    if (disk_->retain) disk_->wal_durable = disk_->wal;
    return Status::OK();
  }

 private:
  std::shared_ptr<SimDisk> disk_;
};

DatabaseOptions SimOptions(std::shared_ptr<SimDisk> disk,
                           uint64_t window_ms = 0) {
  DatabaseOptions options;
  options.file_path = "sim.db";  // name only; the factories intercept all IO
  options.pool_frames = 64;
  options.temp_pool_frames = 16;
  options.wal_commit_window_ms = window_ms;
  options.backend_factory =
      [disk](const std::string&) -> Result<std::unique_ptr<StorageBackend>> {
    return std::unique_ptr<StorageBackend>(new CrashSimBackend(disk));
  };
  options.wal_factory =
      [disk](const std::string&) -> Result<std::unique_ptr<WalFile>> {
    return std::unique_ptr<WalFile>(new CrashSimWalFile(disk));
  };
  return options;
}

/// A fresh, reliable disk holding exactly what survived the power cut.
std::shared_ptr<SimDisk> Revive(const SimDisk& dead) {
  auto disk = std::make_shared<SimDisk>();
  disk->pages = dead.pages_durable;
  disk->pages_durable = dead.pages_durable;
  disk->wal = dead.wal_durable;
  disk->wal_durable = dead.wal_durable;
  return disk;
}

Result<uint64_t> CountRows(Table* table) {
  auto it = table->Scan();
  Tuple row;
  uint64_t n = 0;
  while (true) {
    auto more = it->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    ++n;
  }
  return n;
}

/// Silences the library logger entirely (one level past kError) for the
/// fuse sweep: hundreds of intentionally-failing checkpoints would
/// otherwise flood stderr with expected error lines.
class ScopedLogSilence {
 public:
  ScopedLogSilence() : prev_(GetLogLevel()) {
    SetLogLevel(
        static_cast<LogLevel>(static_cast<int>(LogLevel::kError) + 1));
  }
  ~ScopedLogSilence() { SetLogLevel(prev_); }

 private:
  LogLevel prev_;
};

// --------------------------------------------------------------------------
// Crash matrix
// --------------------------------------------------------------------------

constexpr int kBatch = 8;
constexpr int kBatches = 3;

struct RunOutcome {
  bool open_ok = false;
  bool created = false;
  int committed_batches = 0;  ///< Commit() calls that returned OK
  bool checkpoint_ok = false;
  bool close_ok = false;
};

/// open -> create table -> three committed batches (with a checkpoint after
/// the second) -> close. Stops at the first failed step; Close() is always
/// invoked so the destructor stays quiet on the dead disk.
RunOutcome RunWorkload(std::shared_ptr<SimDisk> disk) {
  RunOutcome out;
  auto db_or = Database::Open(SimOptions(disk));
  if (!db_or.ok()) return out;
  std::unique_ptr<Database> db = std::move(db_or).value();
  out.open_ok = true;

  auto table_or =
      db->catalog()->CreateTable("t", TwoIntSchema(), TableBacking::kHeap);
  if (!table_or.ok()) {
    (void)db->Close();
    return out;
  }
  out.created = true;
  Table* t = table_or.value();
  for (int b = 0; b < kBatches; ++b) {
    for (int i = 0; i < kBatch; ++i) {
      const int v = b * kBatch + i;
      if (!t->Insert(Tuple({Value::Int32(v), Value::Int32(v * 7)})).ok()) {
        (void)db->Close();
        return out;
      }
    }
    if (!db->Commit().ok()) {
      (void)db->Close();
      return out;
    }
    ++out.committed_batches;
    if (b == 1) {
      if (!db->Checkpoint().ok()) {
        (void)db->Close();
        return out;
      }
      out.checkpoint_ok = true;
    }
  }
  out.close_ok = db->Close().ok();
  return out;
}

TEST(WalCrashMatrixTest, PowerCutAtEveryOperationKeepsCommittedBatches) {
  ScopedLogSilence quiet;
  for (bool retain : {false, true}) {
    bool completed = false;
    int64_t fuse = 0;
    for (; fuse < 5000 && !completed; ++fuse) {
      auto disk = std::make_shared<SimDisk>();
      disk->retain = retain;
      disk->fuse = fuse;
      const RunOutcome run = RunWorkload(disk);
      completed = !disk->crashed;

      // The very first open may have been cut before any superblock became
      // durable; such a disk holds no database and may refuse to open.
      if (!run.open_ok) continue;

      auto revived = Database::Open(SimOptions(Revive(*disk)));
      ASSERT_TRUE(revived.ok())
          << "retain=" << retain << " fuse=" << fuse << ": "
          << revived.status().ToString();
      std::unique_ptr<Database> db = std::move(revived).value();

      uint64_t rows = 0;
      if (db->catalog()->HasTable("t")) {
        auto t = db->catalog()->GetTable("t");
        ASSERT_TRUE(t.ok()) << t.status().ToString();
        auto n = CountRows(t.value());
        ASSERT_TRUE(n.ok())
            << "retain=" << retain << " fuse=" << fuse << ": "
            << n.status().ToString();
        rows = n.value();
      } else {
        // CreateTable returns only after its checkpoint is durable.
        ASSERT_FALSE(run.created)
            << "retain=" << retain << " fuse=" << fuse
            << ": durably created table vanished";
      }
      EXPECT_EQ(rows % kBatch, 0u)
          << "torn batch: retain=" << retain << " fuse=" << fuse;
      EXPECT_GE(rows,
                static_cast<uint64_t>(kBatch) * run.committed_batches)
          << "committed batch lost: retain=" << retain << " fuse=" << fuse;
      EXPECT_LE(rows, static_cast<uint64_t>(kBatch) * kBatches);
      if (run.close_ok) {
        EXPECT_EQ(rows, static_cast<uint64_t>(kBatch) * kBatches);
      }
      ASSERT_TRUE(db->Close().ok());
    }
    EXPECT_TRUE(completed)
        << "retain=" << retain
        << ": fuse sweep never reached a crash-free run";
  }
}

// --------------------------------------------------------------------------
// Group commit
// --------------------------------------------------------------------------

TEST(GroupCommitTest, ZeroWindowSyncsEveryCommit) {
  auto disk = std::make_shared<SimDisk>();
  auto db_or = Database::Open(SimOptions(disk, /*window_ms=*/0));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<Database> db = std::move(db_or).value();
  auto t = db->catalog()->CreateTable("t", TwoIntSchema(),
                                      TableBacking::kHeap);
  ASSERT_TRUE(t.ok());
  const uint64_t before = disk->wal_syncs;
  for (int b = 0; b < 5; ++b) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(t.value()
                      ->Insert(Tuple({Value::Int32(b * 3 + i),
                                      Value::Int32(i)}))
                      .ok());
    }
    ASSERT_TRUE(db->Commit().ok());
  }
  EXPECT_EQ(disk->wal_syncs - before, 5u);
  ASSERT_TRUE(db->Close().ok());
}

TEST(GroupCommitTest, WideWindowSharesOneFsyncAcrossBatches) {
  auto disk = std::make_shared<SimDisk>();
  auto db_or = Database::Open(SimOptions(disk, /*window_ms=*/3'600'000));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<Database> db = std::move(db_or).value();
  auto t = db->catalog()->CreateTable("t", TwoIntSchema(),
                                      TableBacking::kHeap);
  ASSERT_TRUE(t.ok());
  const uint64_t before = disk->wal_syncs;
  for (int b = 0; b < 5; ++b) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(t.value()
                      ->Insert(Tuple({Value::Int32(b * 3 + i),
                                      Value::Int32(i)}))
                      .ok());
    }
    ASSERT_TRUE(db->Commit().ok());
  }
  // All five commits rode the window: no fsync of their own.
  EXPECT_EQ(disk->wal_syncs - before, 0u);

  // A cut now may lose the un-synced window, but only in whole batches.
  {
    auto mid = Database::Open(SimOptions(Revive(*disk)));
    ASSERT_TRUE(mid.ok()) << mid.status().ToString();
    auto mid_t = mid.value()->catalog()->GetTable("t");
    ASSERT_TRUE(mid_t.ok());
    auto n = CountRows(mid_t.value());
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value() % 3, 0u);
    ASSERT_TRUE(mid.value()->Close().ok());
  }

  // Close checkpoints (checkpoints always sync): everything durable now.
  ASSERT_TRUE(db->Close().ok());
  auto after = Database::Open(SimOptions(Revive(*disk)));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  auto after_t = after.value()->catalog()->GetTable("t");
  ASSERT_TRUE(after_t.ok());
  auto n = CountRows(after_t.value());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 15u);
  ASSERT_TRUE(after.value()->Close().ok());
}

// --------------------------------------------------------------------------
// Real-file damage: torn WAL tails, corrupt records, scribbled slots
// --------------------------------------------------------------------------

/// A scratch database file path (plus its WAL sidecar), removed on
/// destruction.
class TempDbFile {
 public:
  explicit TempDbFile(const std::string& name)
      : path_(testing::TempDir() + "/" + name) {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }
  ~TempDbFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }
  const std::string& path() const { return path_; }
  std::string wal_path() const { return path_ + ".wal"; }

 private:
  std::string path_;
};

DatabaseOptions FileOptions(const TempDbFile& file) {
  DatabaseOptions options;
  options.file_path = file.path();
  return options;
}

uint64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<uint64_t>(in.tellg()) : 0;
}

void CopyFile(const std::string& src, const std::string& dst) {
  std::ifstream in(src, std::ios::binary);
  std::ofstream out(dst, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
}

void TruncateTo(const std::string& path, uint64_t size) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes.resize(size);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void FlipByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0xFF);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
}

void OverwriteRange(const std::string& path, uint64_t offset, size_t n,
                    char fill) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  std::string bytes(n, fill);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(bytes.data(), static_cast<std::streamsize>(n));
}

/// Creates a db with two committed batches of kBatch rows each, snapshots
/// file + WAL mid-flight into `snap`, then closes the original cleanly.
void TwoCommittedBatchesSnapshot(const TempDbFile& file,
                                 const TempDbFile& snap) {
  auto db_or = Database::Open(FileOptions(file));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<Database> db = std::move(db_or).value();
  auto t = db->catalog()->CreateTable("t", TwoIntSchema(),
                                      TableBacking::kHeap);
  ASSERT_TRUE(t.ok());
  for (int b = 0; b < 2; ++b) {
    for (int i = 0; i < kBatch; ++i) {
      const int v = b * kBatch + i;
      ASSERT_TRUE(
          t.value()->Insert(Tuple({Value::Int32(v), Value::Int32(v)})).ok());
    }
    ASSERT_TRUE(db->Commit().ok());
  }
  CopyFile(file.path(), snap.path());
  CopyFile(file.wal_path(), snap.wal_path());
  ASSERT_TRUE(db->Close().ok());
}

TEST(WalRecoveryTest, TornTailDropsOnlyTheUncommittedSuffix) {
  TempDbFile file("wal_torn_tail.db");
  TempDbFile snap("wal_torn_tail_snap.db");
  ASSERT_NO_FATAL_FAILURE(TwoCommittedBatchesSnapshot(file, snap));

  // The log ends with batch 2's commit record; tearing its last bytes off
  // un-commits exactly that batch.
  const uint64_t size = FileSize(snap.wal_path());
  ASSERT_GT(size, 10u);
  TruncateTo(snap.wal_path(), size - 10);

  auto db_or = Database::Open(FileOptions(snap));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto t = db_or.value()->catalog()->GetTable("t");
  ASSERT_TRUE(t.ok());
  auto n = CountRows(t.value());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), static_cast<uint64_t>(kBatch))
      << "replay must stop at the last intact commit record";
  ASSERT_TRUE(db_or.value()->Close().ok());
}

TEST(WalRecoveryTest, CorruptRecordEndsReplayAtLastGoodCommit) {
  TempDbFile file("wal_corrupt_record.db");
  TempDbFile snap("wal_corrupt_record_snap.db");
  ASSERT_NO_FATAL_FAILURE(TwoCommittedBatchesSnapshot(file, snap));

  // Damage the last page record (it precedes the final commit record):
  // its CRC fails, the scan ends there, and batch 2 loses its commit.
  const uint64_t size = FileSize(snap.wal_path());
  ASSERT_GT(size, kWalCommitRecordSize + 100);
  FlipByteAt(snap.wal_path(), size - kWalCommitRecordSize - 100);

  auto db_or = Database::Open(FileOptions(snap));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto t = db_or.value()->catalog()->GetTable("t");
  ASSERT_TRUE(t.ok());
  auto n = CountRows(t.value());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), static_cast<uint64_t>(kBatch));
  ASSERT_TRUE(db_or.value()->Close().ok());
}

TEST(WalRecoveryTest, MissingSidecarRollsBackToLastCheckpoint) {
  TempDbFile file("wal_missing_sidecar.db");
  TempDbFile snap("wal_missing_sidecar_snap.db");
  ASSERT_NO_FATAL_FAILURE(TwoCommittedBatchesSnapshot(file, snap));

  // Losing the sidecar forfeits the committed-but-uncheckpointed batches —
  // but never yields a torn or unopenable database.
  std::remove(snap.wal_path().c_str());
  auto db_or = Database::Open(FileOptions(snap));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto t = db_or.value()->catalog()->GetTable("t");
  ASSERT_TRUE(t.ok());
  auto n = CountRows(t.value());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u) << "the main file never holds uncommitted rows";
  ASSERT_TRUE(db_or.value()->Close().ok());
}

TEST(SuperblockRecoveryTest, TornSlotFallsBackToPreviousCheckpoint) {
  TempDbFile file("wal_torn_slot.db");
  uint64_t seq = 0;
  {
    auto db_or = Database::Open(FileOptions(file));
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    auto t = db_or.value()->catalog()->CreateTable("t", TwoIntSchema(),
                                                   TableBacking::kHeap);
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < kBatch; ++i) {
      ASSERT_TRUE(
          t.value()->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
    }
    ASSERT_TRUE(db_or.value()->Close().ok());
    seq = db_or.value()->checkpoint_count();
  }
  ASSERT_GE(seq, 2u);

  // Scribble over the slot the latest checkpoint published (seq % 2); the
  // sibling slot still holds the previous checkpoint and must win.
  OverwriteRange(file.path(), (seq % 2) * kPageSize, kPageSize, '\xFF');
  auto db_or = Database::Open(FileOptions(file));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  EXPECT_EQ(db_or.value()->checkpoint_count(), seq - 1);
  EXPECT_TRUE(db_or.value()->catalog()->HasTable("t"));
  ASSERT_TRUE(db_or.value()->Close().ok());
}

TEST(SuperblockRecoveryTest, BothSlotsCorruptRefusesToOpen) {
  TempDbFile file("wal_both_slots_bad.db");
  {
    auto db_or = Database::Open(FileOptions(file));
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    ASSERT_TRUE(db_or.value()->Close().ok());
  }
  OverwriteRange(file.path(), 0, 2 * kPageSize, '\xFF');
  auto db_or = Database::Open(FileOptions(file));
  ASSERT_FALSE(db_or.ok());
  EXPECT_EQ(db_or.status().code(), StatusCode::kCorruption);
}

TEST(SuperblockRecoveryTest, V1FormatGetsMigrationHintNotFallback) {
  TempDbFile file("wal_v1_format.db");
  {
    auto db_or = Database::Open(FileOptions(file));
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    ASSERT_TRUE(db_or.value()->Close().ok());
  }
  // Rewrite slot A's format-version field (u32 at byte 8) to 1. Even with
  // a valid sibling slot, a cleanly-versioned foreign slot must propagate
  // NotSupported — version mismatch is not crash damage.
  OverwriteRange(file.path(), 8, 1, '\x01');
  OverwriteRange(file.path(), 9, 3, '\x00');
  auto db_or = Database::Open(FileOptions(file));
  ASSERT_FALSE(db_or.ok());
  EXPECT_EQ(db_or.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(db_or.status().ToString().find("re-export"), std::string::npos)
      << db_or.status().ToString();
}

// --------------------------------------------------------------------------
// Checkpoint no-op + free-page reuse
// --------------------------------------------------------------------------

TEST(CheckpointTest, CleanCheckpointIsANoOpAndCloseIsIdempotent) {
  TempDbFile file("wal_checkpoint_noop.db");
  auto db_or = Database::Open(FileOptions(file));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<Database> db = std::move(db_or).value();
  auto t = db->catalog()->CreateTable("t", TwoIntSchema(),
                                      TableBacking::kHeap);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < kBatch; ++i) {
    ASSERT_TRUE(
        t.value()->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());
  const uint64_t seq = db->checkpoint_count();
  const uint64_t size = FileSize(file.path());

  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_EQ(db->checkpoint_count(), seq) << "clean checkpoint must not flip";
  EXPECT_EQ(FileSize(file.path()), size);

  ASSERT_TRUE(db->Close().ok());
  EXPECT_EQ(db->checkpoint_count(), seq);
  ASSERT_TRUE(db->Close().ok());  // idempotent
  EXPECT_EQ(FileSize(file.wal_path()), 0u)
      << "a clean close leaves an empty log";
}

TEST(FreeListTest, SteadyStateStoreSavesDoNotGrowTheFile) {
  TempDbFile file("wal_steady_state.db");
  auto db_or = Database::Open(FileOptions(file));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<Database> db = std::move(db_or).value();

  ItemsetStore store(db.get(), "fi", TableBacking::kHeap);
  FrequentItemsets itemsets;
  itemsets.Add({1}, 10);
  itemsets.Add({2}, 9);
  itemsets.Add({1, 2}, 5);
  itemsets.Normalize();
  itemsets.num_transactions = 20;
  StoredRunMeta meta;
  meta.num_transactions = 20;
  meta.min_support_count = 2;
  meta.spec_min_support = 0.1;
  meta.watermark = 20;

  // Each Save drops and recreates the store relations — a drop/create churn
  // that would grow the file by one table's pages per generation without
  // free-list reuse. The first generations warm the free list up (freed
  // pages become allocatable one checkpoint later); after that the file
  // size must hold perfectly flat.
  std::vector<uint64_t> sizes;
  for (int g = 0; g < 10; ++g) {
    ASSERT_TRUE(store.Save(itemsets, meta).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    sizes.push_back(FileSize(file.path()));
  }
  for (size_t g = 3; g < sizes.size(); ++g) {
    EXPECT_EQ(sizes[g], sizes[3])
        << "file grew at generation " << g << " (" << sizes[3] << " -> "
        << sizes[g] << " bytes): free pages are not being reused";
  }
  ASSERT_TRUE(db->Close().ok());
}

}  // namespace
}  // namespace setm

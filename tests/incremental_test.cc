// Incremental mining subsystem: ItemsetStore round-trips (store -> load ->
// identical result) across both TableBackings and the edge cases, SQL
// visibility of the materialized relations, and the DeltaMiner's exactness
// — bit-identical itemsets vs a full remine of the combined database over
// seeds x backings x batch sizes, on both the delta and the fallback path.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/paper_example.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"
#include "incremental/delta_miner.h"
#include "incremental/itemset_store.h"
#include "sql/engine.h"

namespace setm {
namespace {

TransactionDb MakeQuestDb(uint64_t seed, uint32_t num_transactions,
                          uint32_t num_items = 20) {
  QuestOptions gen;
  gen.seed = seed;
  gen.num_transactions = num_transactions;
  gen.avg_transaction_size = 5;
  gen.num_items = num_items;
  gen.num_patterns = 15;
  return QuestGenerator(gen).Generate();
}

/// A fresh batch whose transaction ids continue after `start_after`.
TransactionDb MakeBatch(uint64_t seed, uint32_t count,
                        TransactionId start_after, uint32_t num_items = 20) {
  TransactionDb batch = MakeQuestDb(seed, count, num_items);
  for (Transaction& t : batch) t.id += start_after;
  return batch;
}

// --------------------------------------------------------------------------
// ItemsetStore round-trips.
// --------------------------------------------------------------------------

class ItemsetStoreTest : public testing::TestWithParam<TableBacking> {};

TEST_P(ItemsetStoreTest, RoundTripsAMiningRun) {
  TransactionDb txns = MakeQuestDb(101, 200);
  MiningOptions options;
  options.min_support = 0.05;

  Database db;
  SetmOptions setm_options;
  setm_options.storage = GetParam();
  // The store's meta row names its source relation and Load() reports a
  // dropped source as NotFound, so the round-trip needs SALES in the catalog.
  auto sales_or = LoadSalesTable(&db, "sales", txns, GetParam());
  ASSERT_TRUE(sales_or.ok()) << sales_or.status().ToString();
  auto mined =
      SetmMiner(&db, setm_options).MineTable(*sales_or.value(), options);
  ASSERT_TRUE(mined.ok());
  ASSERT_GT(mined.value().itemsets.TotalPatterns(), 0u);

  ItemsetStore store(&db, "fi", GetParam());
  EXPECT_FALSE(store.Exists());
  StoredRunMeta meta = MakeRunMeta(mined.value().itemsets, options,
                                   MaxTransactionId(txns), "sales");
  ASSERT_TRUE(store.Save(mined.value().itemsets, meta).ok());
  EXPECT_TRUE(store.Exists());

  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().itemsets == mined.value().itemsets);
  EXPECT_EQ(loaded.value().itemsets.num_transactions,
            mined.value().itemsets.num_transactions);
  EXPECT_EQ(loaded.value().meta.num_transactions, meta.num_transactions);
  EXPECT_EQ(loaded.value().meta.min_support_count, meta.min_support_count);
  EXPECT_EQ(loaded.value().meta.spec_min_support, meta.spec_min_support);
  EXPECT_EQ(loaded.value().meta.spec_min_support_count,
            meta.spec_min_support_count);
  EXPECT_EQ(loaded.value().meta.max_pattern_length, meta.max_pattern_length);
  EXPECT_EQ(loaded.value().meta.watermark, meta.watermark);
  EXPECT_EQ(loaded.value().meta.source_table, "sales");
}

TEST_P(ItemsetStoreTest, RoundTripsEmptyResult) {
  Database db;
  ItemsetStore store(&db, "empty", GetParam());
  FrequentItemsets none;
  none.num_transactions = 7;
  MiningOptions options;
  ASSERT_TRUE(
      store.Save(none, MakeRunMeta(none, options, 7)).ok());
  EXPECT_TRUE(store.Exists());
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().itemsets.TotalPatterns(), 0u);
  EXPECT_EQ(loaded.value().itemsets.MaxSize(), 0u);
  EXPECT_EQ(loaded.value().meta.num_transactions, 7u);
  // No level relations exist for an empty run.
  EXPECT_FALSE(db.catalog()->HasTable(store.LevelTableName(1)));
}

TEST_P(ItemsetStoreTest, RoundTripsSizeOneOnlyResult) {
  TransactionDb txns = MakeQuestDb(202, 150);
  MiningOptions options;
  options.min_support = 0.05;
  options.max_pattern_length = 1;  // C_1 only

  Database db;
  auto mined = SetmMiner(&db).Mine(txns, options);
  ASSERT_TRUE(mined.ok());
  ASSERT_EQ(mined.value().itemsets.MaxSize(), 1u);

  ItemsetStore store(&db, "single", GetParam());
  ASSERT_TRUE(store
                  .Save(mined.value().itemsets,
                        MakeRunMeta(mined.value().itemsets, options,
                                    MaxTransactionId(txns)))
                  .ok());
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().itemsets == mined.value().itemsets);
}

TEST_P(ItemsetStoreTest, RoundTripsMaxKRun) {
  // The paper's worked example reaches k = 3 with exact counts.
  Database db;
  auto mined =
      SetmMiner(&db).Mine(PaperExampleTransactions(), PaperExampleOptions());
  ASSERT_TRUE(mined.ok());
  ASSERT_EQ(mined.value().itemsets.MaxSize(), 3u);

  ItemsetStore store(&db, "paper", GetParam());
  ASSERT_TRUE(store
                  .Save(mined.value().itemsets,
                        MakeRunMeta(mined.value().itemsets,
                                    PaperExampleOptions(),
                                    MaxTransactionId(PaperExampleTransactions())))
                  .ok());
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().itemsets == mined.value().itemsets);
  EXPECT_EQ(loaded.value().itemsets.CountOf({3, 4, 5}), 3);  // DEF
}

TEST_P(ItemsetStoreTest, SaveReplacesDeeperPreviousRun) {
  Database db;
  auto deep =
      SetmMiner(&db).Mine(PaperExampleTransactions(), PaperExampleOptions());
  ASSERT_TRUE(deep.ok());
  ItemsetStore store(&db, "fi", GetParam());
  MiningOptions options = PaperExampleOptions();
  ASSERT_TRUE(store
                  .Save(deep.value().itemsets,
                        MakeRunMeta(deep.value().itemsets, options, 600))
                  .ok());
  ASSERT_TRUE(db.catalog()->HasTable(store.LevelTableName(3)));

  // A shallower result must drop the deeper relations of the old run.
  options.max_pattern_length = 1;
  auto shallow = SetmMiner(&db).Mine(PaperExampleTransactions(), options);
  ASSERT_TRUE(shallow.ok());
  ASSERT_TRUE(store
                  .Save(shallow.value().itemsets,
                        MakeRunMeta(shallow.value().itemsets, options, 600))
                  .ok());
  EXPECT_TRUE(db.catalog()->HasTable(store.LevelTableName(1)));
  EXPECT_FALSE(db.catalog()->HasTable(store.LevelTableName(2)));
  EXPECT_FALSE(db.catalog()->HasTable(store.LevelTableName(3)));
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().itemsets == shallow.value().itemsets);
}

TEST_P(ItemsetStoreTest, LoadWithoutSaveIsNotFound) {
  Database db;
  ItemsetStore store(&db, "nothing", GetParam());
  auto loaded = store.Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
  EXPECT_TRUE(store.Drop().ok());  // Drop is idempotent
}

INSTANTIATE_TEST_SUITE_P(Backings, ItemsetStoreTest,
                         testing::Values(TableBacking::kMemory,
                                         TableBacking::kHeap));

// The materialized relations are ordinary catalog tables: the SQL engine
// scans them like any other relation.
TEST(ItemsetStoreSqlTest, MaterializedRelationsAreQueryable) {
  Database db;
  auto mined =
      SetmMiner(&db).Mine(PaperExampleTransactions(), PaperExampleOptions());
  ASSERT_TRUE(mined.ok());
  ItemsetStore store(&db, "fi", TableBacking::kHeap);
  ASSERT_TRUE(store
                  .Save(mined.value().itemsets,
                        MakeRunMeta(mined.value().itemsets,
                                    PaperExampleOptions(), 600, "sales"))
                  .ok());

  sql::SqlEngine engine(&db);
  auto f2 = engine.Execute("SELECT item1, item2, support FROM fi_f2");
  ASSERT_TRUE(f2.ok()) << f2.status().ToString();
  EXPECT_EQ(f2.value().rows.size(), mined.value().itemsets.OfSize(2).size());

  // The paper's DEF itemset (3,4,5) has support 3 at k = 3.
  auto def = engine.Execute(
      "SELECT support FROM fi_f3 WHERE item1 = 3 AND item2 = 4");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  ASSERT_EQ(def.value().rows.size(), 1u);
  EXPECT_EQ(def.value().rows[0].value(0).AsInt64(), 3);

  auto meta = engine.Execute("SELECT num_transactions FROM fi_meta");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  ASSERT_EQ(meta.value().rows.size(), 1u);
}

// --------------------------------------------------------------------------
// DeltaMiner vs full remine: the equivalence sweep of the acceptance
// criteria — seeds x backings x batch sizes, exact itemsets everywhere.
// --------------------------------------------------------------------------

class DeltaMinerSweepTest
    : public testing::TestWithParam<
          std::tuple<uint64_t, TableBacking, double>> {};

TEST_P(DeltaMinerSweepTest, BitIdenticalToFullRemine) {
  const uint64_t seed = std::get<0>(GetParam());
  const TableBacking backing = std::get<1>(GetParam());
  const double batch_fraction = std::get<2>(GetParam());

  const uint32_t base_size = 250;
  TransactionDb base = MakeQuestDb(seed, base_size);
  const uint32_t batch_size = std::max(
      1u, static_cast<uint32_t>(batch_fraction * base_size));
  TransactionDb batch =
      MakeBatch(seed + 1000, batch_size, MaxTransactionId(base));

  MiningOptions options;
  options.min_support = 0.04;

  SetmOptions setm_options;
  setm_options.storage = backing;

  // Incremental path: mine base, store, append + delta update.
  Database db;
  auto sales_or = LoadSalesTable(&db, "sales", base, backing);
  ASSERT_TRUE(sales_or.ok());
  auto base_mined =
      SetmMiner(&db, setm_options).MineTable(*sales_or.value(), options);
  ASSERT_TRUE(base_mined.ok());
  ItemsetStore store(&db, "fi", backing);
  ASSERT_TRUE(store
                  .Save(base_mined.value().itemsets,
                        MakeRunMeta(base_mined.value().itemsets, options,
                                    MaxTransactionId(base), "sales"))
                  .ok());
  DeltaOptions delta_options;
  delta_options.setm = setm_options;
  DeltaMiner miner(&db, delta_options);
  auto updated =
      miner.AppendAndUpdate(&store, sales_or.value(), batch, options);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();

  // Oracle: full remine of the combined database in a fresh engine.
  TransactionDb combined = base;
  combined.insert(combined.end(), batch.begin(), batch.end());
  Database oracle_db;
  auto oracle =
      SetmMiner(&oracle_db, setm_options).Mine(combined, options);
  ASSERT_TRUE(oracle.ok());

  EXPECT_TRUE(updated.value().result.itemsets == oracle.value().itemsets);
  EXPECT_EQ(updated.value().result.itemsets.num_transactions,
            oracle.value().itemsets.num_transactions);

  // Batches above the fallback fraction must have taken the remine path;
  // small ones must not.
  EXPECT_EQ(updated.value().full_remine,
            batch_fraction / (1.0 + batch_fraction) >
                delta_options.full_remine_fraction);

  // The refreshed store must hold exactly the combined result, ready for
  // the next batch.
  auto reloaded = store.Load();
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded.value().itemsets == oracle.value().itemsets);
  EXPECT_EQ(reloaded.value().meta.watermark, MaxTransactionId(batch));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsBackingsBatches, DeltaMinerSweepTest,
    testing::Combine(testing::Values(uint64_t{101}, uint64_t{202}),
                     testing::Values(TableBacking::kMemory,
                                     TableBacking::kHeap),
                     testing::Values(0.02, 0.10, 0.50)));

// --------------------------------------------------------------------------
// DeltaMiner specifics.
// --------------------------------------------------------------------------

TEST(DeltaMinerTest, SequentialBatchesStayExact) {
  TransactionDb base = MakeQuestDb(303, 200);
  MiningOptions options;
  options.min_support = 0.04;

  Database db;
  auto sales_or = LoadSalesTable(&db, "sales", base, TableBacking::kMemory);
  ASSERT_TRUE(sales_or.ok());
  auto base_mined = SetmMiner(&db).MineTable(*sales_or.value(), options);
  ASSERT_TRUE(base_mined.ok());
  ItemsetStore store(&db, "fi");
  ASSERT_TRUE(store
                  .Save(base_mined.value().itemsets,
                        MakeRunMeta(base_mined.value().itemsets, options,
                                    MaxTransactionId(base), "sales"))
                  .ok());

  TransactionDb combined = base;
  DeltaMiner miner(&db);
  for (int round = 0; round < 3; ++round) {
    TransactionDb batch = MakeBatch(9000 + round, 20,
                                    MaxTransactionId(combined));
    auto updated =
        miner.AppendAndUpdate(&store, sales_or.value(), batch, options);
    ASSERT_TRUE(updated.ok()) << updated.status().ToString();
    EXPECT_FALSE(updated.value().full_remine);

    combined.insert(combined.end(), batch.begin(), batch.end());
    Database oracle_db;
    auto oracle = SetmMiner(&oracle_db).Mine(combined, options);
    ASSERT_TRUE(oracle.ok());
    EXPECT_TRUE(updated.value().result.itemsets == oracle.value().itemsets)
        << "diverged at round " << round;
  }
}

TEST(DeltaMinerTest, BorderlinePromotionIsExact) {
  // Items 1,2 co-occur once in the base; the batch adds two more
  // co-occurrences so {1,2} crosses an absolute threshold of 3 — frequent
  // in the combined database yet absent from the store: the borderline
  // re-count path must find it with its exact support.
  TransactionDb base;
  base.push_back({1, {1, 2}});
  for (TransactionId tid = 2; tid <= 10; ++tid) {
    base.push_back({tid, {1, 3}});
  }
  MiningOptions options;
  options.min_support_count = 3;

  Database db;
  auto sales_or = LoadSalesTable(&db, "sales", base, TableBacking::kMemory);
  ASSERT_TRUE(sales_or.ok());
  auto base_mined = SetmMiner(&db).MineTable(*sales_or.value(), options);
  ASSERT_TRUE(base_mined.ok());
  EXPECT_EQ(base_mined.value().itemsets.CountOf({1, 2}), 0);
  ItemsetStore store(&db, "fi");
  ASSERT_TRUE(store
                  .Save(base_mined.value().itemsets,
                        MakeRunMeta(base_mined.value().itemsets, options, 10,
                                    "sales"))
                  .ok());

  TransactionDb batch;
  batch.push_back({11, {1, 2}});
  batch.push_back({12, {1, 2}});
  DeltaOptions delta_options;
  delta_options.full_remine_fraction = 0.5;  // keep the delta path
  DeltaMiner miner(&db, delta_options);
  auto updated =
      miner.AppendAndUpdate(&store, sales_or.value(), batch, options);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_FALSE(updated.value().full_remine);
  EXPECT_GE(updated.value().borderline_candidates, 1u);
  EXPECT_EQ(updated.value().result.itemsets.CountOf({1, 2}), 3);
}

TEST(DeltaMinerTest, ParallelDeltaMineMatchesSerial) {
  TransactionDb base = MakeQuestDb(404, 240);
  TransactionDb batch = MakeBatch(405, 24, MaxTransactionId(base));
  MiningOptions options;
  options.min_support = 0.04;

  MiningResult serial_result, parallel_result;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    Database db;
    auto sales_or = LoadSalesTable(&db, "sales", base, TableBacking::kMemory);
    ASSERT_TRUE(sales_or.ok());
    SetmOptions setm_options;
    setm_options.num_threads = threads;
    auto base_mined =
        SetmMiner(&db, setm_options).MineTable(*sales_or.value(), options);
    ASSERT_TRUE(base_mined.ok());
    ItemsetStore store(&db, "fi");
    ASSERT_TRUE(store
                    .Save(base_mined.value().itemsets,
                          MakeRunMeta(base_mined.value().itemsets, options,
                                      MaxTransactionId(base), "sales"))
                    .ok());
    DeltaOptions delta_options;
    delta_options.setm = setm_options;
    DeltaMiner miner(&db, delta_options);
    auto updated =
        miner.AppendAndUpdate(&store, sales_or.value(), batch, options);
    ASSERT_TRUE(updated.ok()) << updated.status().ToString();
    (threads == 1 ? serial_result : parallel_result) =
        std::move(updated.value().result);
  }
  EXPECT_TRUE(serial_result.itemsets == parallel_result.itemsets);
}

TEST(DeltaMinerTest, RejectsWatermarkViolations) {
  TransactionDb base = MakeQuestDb(505, 100);
  MiningOptions options;
  options.min_support = 0.05;

  Database db;
  auto sales_or = LoadSalesTable(&db, "sales", base, TableBacking::kMemory);
  ASSERT_TRUE(sales_or.ok());
  auto mined = SetmMiner(&db).MineTable(*sales_or.value(), options);
  ASSERT_TRUE(mined.ok());
  ItemsetStore store(&db, "fi");
  ASSERT_TRUE(store
                  .Save(mined.value().itemsets,
                        MakeRunMeta(mined.value().itemsets, options,
                                    MaxTransactionId(base), "sales"))
                  .ok());
  DeltaMiner miner(&db);

  // A transaction id at/below the watermark is already counted.
  TransactionDb stale;
  stale.push_back({MaxTransactionId(base), {1, 2}});
  auto rejected =
      miner.AppendAndUpdate(&store, sales_or.value(), stale, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument());

  // Duplicate ids inside the batch would double-count too.
  TransactionDb dupes;
  dupes.push_back({MaxTransactionId(base) + 1, {1, 2}});
  dupes.push_back({MaxTransactionId(base) + 1, {2, 3}});
  auto rejected2 =
      miner.AppendAndUpdate(&store, sales_or.value(), dupes, options);
  ASSERT_FALSE(rejected2.ok());
  EXPECT_TRUE(rejected2.status().IsInvalidArgument());
}

TEST(DeltaMinerTest, ChangedOptionsForceFullRemine) {
  TransactionDb base = MakeQuestDb(606, 150);
  MiningOptions options;
  options.min_support = 0.05;

  Database db;
  auto sales_or = LoadSalesTable(&db, "sales", base, TableBacking::kMemory);
  ASSERT_TRUE(sales_or.ok());
  auto mined = SetmMiner(&db).MineTable(*sales_or.value(), options);
  ASSERT_TRUE(mined.ok());
  ItemsetStore store(&db, "fi");
  ASSERT_TRUE(store
                  .Save(mined.value().itemsets,
                        MakeRunMeta(mined.value().itemsets, options,
                                    MaxTransactionId(base), "sales"))
                  .ok());

  // Asking a different question (lower threshold) cannot reuse the stored
  // counts; the update must remine and still be exact.
  MiningOptions changed = options;
  changed.min_support = 0.02;
  TransactionDb batch = MakeBatch(607, 10, MaxTransactionId(base));
  DeltaMiner miner(&db);
  auto updated =
      miner.AppendAndUpdate(&store, sales_or.value(), batch, changed);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_TRUE(updated.value().full_remine);

  TransactionDb combined = base;
  combined.insert(combined.end(), batch.begin(), batch.end());
  Database oracle_db;
  auto oracle = SetmMiner(&oracle_db).Mine(combined, changed);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(updated.value().result.itemsets == oracle.value().itemsets);
}

TEST(DeltaMinerTest, EmptyBatchIsANoOpUpdate) {
  TransactionDb base = MakeQuestDb(707, 120);
  MiningOptions options;
  options.min_support = 0.05;

  Database db;
  auto sales_or = LoadSalesTable(&db, "sales", base, TableBacking::kMemory);
  ASSERT_TRUE(sales_or.ok());
  auto mined = SetmMiner(&db).MineTable(*sales_or.value(), options);
  ASSERT_TRUE(mined.ok());
  ItemsetStore store(&db, "fi");
  ASSERT_TRUE(store
                  .Save(mined.value().itemsets,
                        MakeRunMeta(mined.value().itemsets, options,
                                    MaxTransactionId(base), "sales"))
                  .ok());
  DeltaMiner miner(&db);
  auto updated =
      miner.AppendAndUpdate(&store, sales_or.value(), TransactionDb{}, options);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_FALSE(updated.value().full_remine);
  EXPECT_EQ(updated.value().delta_transactions, 0u);
  EXPECT_TRUE(updated.value().result.itemsets == mined.value().itemsets);
}

}  // namespace
}  // namespace setm

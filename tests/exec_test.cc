// Unit tests for src/exec: expressions, external sort, joins, aggregation.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "exec/exec_context.h"
#include "exec/expression.h"
#include "exec/external_sort.h"
#include "exec/operators.h"
#include "relational/database.h"
#include "relational/table.h"

namespace setm {
namespace {

Schema TwoIntSchema() {
  return Schema(
      {Column{"a", ValueType::kInt32}, Column{"b", ValueType::kInt32}});
}

Tuple Row(int a, int b) { return Tuple({Value::Int32(a), Value::Int32(b)}); }

std::unique_ptr<MemTable> MakeTable(const std::vector<std::pair<int, int>>& rows) {
  auto t = std::make_unique<MemTable>("t", TwoIntSchema());
  for (auto [a, b] : rows) EXPECT_TRUE(t->Insert(Row(a, b)).ok());
  return t;
}

std::vector<std::pair<int, int>> Drain(TupleIterator* it) {
  std::vector<std::pair<int, int>> out;
  Tuple row;
  while (true) {
    auto more = it->Next(&row);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !more.value()) break;
    out.emplace_back(row.value(0).AsInt32(), row.value(1).AsInt32());
  }
  return out;
}

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

TEST(ExpressionTest, ColumnAndConst) {
  Tuple row = Row(3, 9);
  EXPECT_EQ(Col(1)->Eval(row).value().AsInt32(), 9);
  EXPECT_EQ(Const(Value::Int32(5))->Eval(row).value().AsInt32(), 5);
}

TEST(ExpressionTest, Comparisons) {
  Tuple row = Row(3, 9);
  auto check = [&](BinaryOp op, bool expected) {
    auto e = Binary(op, Col(0), Col(1));  // 3 op 9
    EXPECT_EQ(ValueIsTrue(e->Eval(row).value()), expected)
        << BinaryOpName(op);
  };
  check(BinaryOp::kEq, false);
  check(BinaryOp::kNe, true);
  check(BinaryOp::kLt, true);
  check(BinaryOp::kLe, true);
  check(BinaryOp::kGt, false);
  check(BinaryOp::kGe, false);
}

TEST(ExpressionTest, LogicalShortCircuit) {
  Tuple row = Row(1, 0);
  auto t = [] { return Const(Value::Int32(1)); };
  auto f = [] { return Const(Value::Int32(0)); };
  EXPECT_TRUE(ValueIsTrue(
      Binary(BinaryOp::kOr, t(), f())->Eval(row).value()));
  EXPECT_FALSE(ValueIsTrue(
      Binary(BinaryOp::kAnd, f(), t())->Eval(row).value()));
  // RHS with an out-of-range column would error if evaluated; short-circuit
  // must avoid it.
  auto bad = Col(99);
  auto and_sc = Binary(BinaryOp::kAnd, f(), std::move(bad));
  ASSERT_TRUE(and_sc->Eval(row).ok());
  EXPECT_FALSE(ValueIsTrue(and_sc->Eval(row).value()));
}

TEST(ExpressionTest, ColumnOutOfRangeErrors) {
  Tuple row = Row(1, 2);
  EXPECT_FALSE(Col(5)->Eval(row).ok());
}

TEST(ExpressionTest, ConjoinAll) {
  EXPECT_EQ(ConjoinAll({}), nullptr);
  std::vector<ExprPtr> two;
  two.push_back(Const(Value::Int32(1)));
  two.push_back(Const(Value::Int32(1)));
  auto e = ConjoinAll(std::move(two));
  EXPECT_TRUE(ValueIsTrue(e->Eval(Row(0, 0)).value()));
}

// --------------------------------------------------------------------------
// Filter / Project
// --------------------------------------------------------------------------

TEST(OperatorTest, FilterKeepsMatching) {
  auto t = MakeTable({{1, 10}, {2, 20}, {3, 30}, {4, 40}});
  FilterIterator filter(t->Scan(),
                        Binary(BinaryOp::kGt, Col(1), Const(Value::Int32(15))));
  EXPECT_EQ(Drain(&filter),
            (std::vector<std::pair<int, int>>{{2, 20}, {3, 30}, {4, 40}}));
}

TEST(OperatorTest, ProjectReorders) {
  auto t = MakeTable({{1, 10}, {2, 20}});
  std::vector<ExprPtr> exprs;
  exprs.push_back(Col(1));
  exprs.push_back(Col(0));
  Schema out({Column{"b", ValueType::kInt32}, Column{"a", ValueType::kInt32}});
  ProjectIterator project(t->Scan(), std::move(exprs), out);
  EXPECT_EQ(Drain(&project),
            (std::vector<std::pair<int, int>>{{10, 1}, {20, 2}}));
}

// --------------------------------------------------------------------------
// External sort
// --------------------------------------------------------------------------

class ExternalSortTest : public testing::Test {
 protected:
  ExternalSortTest() {
    DatabaseOptions options;
    options.sort_memory_bytes = 1 << 20;
    db_ = std::make_unique<Database>(options);
    ctx_ = ExecContext::From(db_.get());
  }
  std::unique_ptr<Database> db_;
  ExecContext ctx_;
};

TEST_F(ExternalSortTest, InMemorySort) {
  ExternalSort sort(ctx_, TwoIntSchema(), TupleComparator({0}));
  for (int i : {5, 3, 9, 1, 7}) ASSERT_TRUE(sort.Add(Row(i, 0)).ok());
  auto it = sort.Finish();
  ASSERT_TRUE(it.ok());
  auto rows = Drain(it.value().get());
  EXPECT_EQ(rows, (std::vector<std::pair<int, int>>{
                      {1, 0}, {3, 0}, {5, 0}, {7, 0}, {9, 0}}));
  EXPECT_EQ(sort.stats().spilled_runs, 0u);
}

TEST_F(ExternalSortTest, SpillingSortIsCorrect) {
  ctx_.sort_memory_bytes = 256;  // force many runs
  ExternalSort sort(ctx_, TwoIntSchema(), TupleComparator({0, 1}));
  Rng rng(77);
  std::vector<std::pair<int, int>> expected;
  for (int i = 0; i < 5000; ++i) {
    int a = static_cast<int>(rng.Uniform(100));
    int b = static_cast<int>(rng.Uniform(100));
    expected.emplace_back(a, b);
    ASSERT_TRUE(sort.Add(Row(a, b)).ok());
  }
  std::sort(expected.begin(), expected.end());
  auto it = sort.Finish();
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(Drain(it.value().get()), expected);
  EXPECT_GT(sort.stats().spilled_runs, 1u);
  EXPECT_GT(sort.stats().merge_passes, 0u);  // > 64 runs cascades
}

TEST_F(ExternalSortTest, SortIsStable) {
  ctx_.sort_memory_bytes = 128;
  ExternalSort sort(ctx_, TwoIntSchema(), TupleComparator({0}));  // key: a only
  // Payload b records arrival order within each key.
  for (int round = 0; round < 200; ++round) {
    for (int key = 0; key < 3; ++key) {
      ASSERT_TRUE(sort.Add(Row(key, round)).ok());
    }
  }
  auto it = sort.Finish();
  ASSERT_TRUE(it.ok());
  auto rows = Drain(it.value().get());
  ASSERT_EQ(rows.size(), 600u);
  int prev_key = -1, prev_payload = -1;
  for (const auto& [key, payload] : rows) {
    if (key == prev_key) {
      EXPECT_GT(payload, prev_payload) << "stability violated at key " << key;
    } else {
      EXPECT_EQ(key, prev_key + 1);
    }
    prev_key = key;
    prev_payload = payload;
  }
}

// A tiny temp pool caps the merge fan-in, so a moderate run count forces
// cascaded merge passes; order and stability must survive the cascade.
TEST_F(ExternalSortTest, CascadedMergeKeepsOrderAndStability) {
  DatabaseOptions options;
  options.temp_pool_frames = 8;  // effective fan-in: 8 - 4 = 4 runs
  options.sort_memory_bytes = 256;
  Database small(options);
  ExecContext ctx = ExecContext::From(&small);

  ExternalSort sort(ctx, TwoIntSchema(), TupleComparator({0}));  // key: a only
  // Payload b records arrival order within each key.
  for (int round = 0; round < 400; ++round) {
    for (int key = 0; key < 4; ++key) {
      ASSERT_TRUE(sort.Add(Row(key, round)).ok());
    }
  }
  auto it = sort.Finish();
  ASSERT_TRUE(it.ok()) << it.status().ToString();
  // Runs far exceed the fan-in of 4, so at least two cascade passes ran.
  EXPECT_GT(sort.stats().spilled_runs, 16u);
  EXPECT_GE(sort.stats().merge_passes, 2u);
  auto rows = Drain(it.value().get());
  ASSERT_EQ(rows.size(), 1600u);
  int prev_key = -1, prev_payload = -1;
  for (const auto& [key, payload] : rows) {
    if (key == prev_key) {
      EXPECT_GT(payload, prev_payload) << "stability violated at key " << key;
    } else {
      EXPECT_EQ(key, prev_key + 1);
    }
    prev_key = key;
    prev_payload = payload;
  }
}

// With workers present the independent merge groups of each cascade pass
// run concurrently on the pool; order, stability and content must be
// indistinguishable from the serial cascade.
TEST_F(ExternalSortTest, ParallelCascadedMergeKeepsOrderAndStability) {
  DatabaseOptions options;
  options.temp_pool_frames = 8;  // effective fan-in: 8 - 4 = 4 runs
  options.sort_memory_bytes = 256;
  options.worker_threads = 4;
  Database small(options);
  ExecContext ctx = ExecContext::From(&small);
  ASSERT_NE(ctx.workers, nullptr);

  ExternalSort sort(ctx, TwoIntSchema(), TupleComparator({0}));  // key: a only
  for (int round = 0; round < 400; ++round) {
    for (int key = 0; key < 4; ++key) {
      ASSERT_TRUE(sort.Add(Row(key, round)).ok());
    }
  }
  auto it = sort.Finish();
  ASSERT_TRUE(it.ok()) << it.status().ToString();
  EXPECT_GT(sort.stats().spilled_runs, 16u);
  EXPECT_GE(sort.stats().merge_passes, 2u);
  auto rows = Drain(it.value().get());
  ASSERT_EQ(rows.size(), 1600u);
  int prev_key = -1, prev_payload = -1;
  for (const auto& [key, payload] : rows) {
    if (key == prev_key) {
      EXPECT_GT(payload, prev_payload) << "stability violated at key " << key;
    } else {
      EXPECT_EQ(key, prev_key + 1);
    }
    prev_key = key;
    prev_payload = payload;
  }
}

// API misuse must surface as Status in every build mode, not corrupt state.
TEST_F(ExternalSortTest, AddAfterFinishFailsWithStatus) {
  ExternalSort sort(ctx_, TwoIntSchema(), TupleComparator({0}));
  ASSERT_TRUE(sort.Add(Row(1, 0)).ok());
  ASSERT_TRUE(sort.Finish().ok());
  Status late = sort.Add(Row(2, 0));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kInternal);
}

TEST_F(ExternalSortTest, DoubleFinishFailsWithStatus) {
  ExternalSort sort(ctx_, TwoIntSchema(), TupleComparator({0}));
  ASSERT_TRUE(sort.Add(Row(1, 0)).ok());
  ASSERT_TRUE(sort.Finish().ok());
  auto again = sort.Finish();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kInternal);
}

// With a worker pool in the context, run generation happens off-thread;
// results (order, stability, content) must be indistinguishable.
TEST_F(ExternalSortTest, ParallelRunGenerationMatchesSerial) {
  DatabaseOptions options;
  options.sort_memory_bytes = 512;
  options.worker_threads = 4;
  Database parallel_db(options);
  ExecContext ctx = ExecContext::From(&parallel_db);
  ASSERT_NE(ctx.workers, nullptr);

  ExternalSort sort(ctx, TwoIntSchema(), TupleComparator({0}));
  Rng rng(123);
  std::vector<std::pair<int, int>> expected;
  for (int i = 0; i < 4000; ++i) {
    int a = static_cast<int>(rng.Uniform(50));
    expected.emplace_back(a, i);  // payload = arrival order
    ASSERT_TRUE(sort.Add(Row(a, i)).ok());
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });
  auto it = sort.Finish();
  ASSERT_TRUE(it.ok()) << it.status().ToString();
  EXPECT_GT(sort.stats().spilled_runs, 1u);
  EXPECT_EQ(Drain(it.value().get()), expected);
}

TEST_F(ExternalSortTest, EmptyInput) {
  ExternalSort sort(ctx_, TwoIntSchema(), TupleComparator({0}));
  auto it = sort.Finish();
  ASSERT_TRUE(it.ok());
  Tuple row;
  auto more = it.value()->Next(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value());
}

TEST_F(ExternalSortTest, SpillIoLandsInLedger) {
  ctx_.sort_memory_bytes = 256;
  const uint64_t writes_before = db_->io_stats()->page_writes +
                                 db_->io_stats()->pages_allocated;
  ExternalSort sort(ctx_, TwoIntSchema(), TupleComparator({0}));
  for (int i = 0; i < 3000; ++i) ASSERT_TRUE(sort.Add(Row(3000 - i, i)).ok());
  auto it = sort.Finish();
  ASSERT_TRUE(it.ok());
  Drain(it.value().get());
  EXPECT_GT(db_->io_stats()->page_writes + db_->io_stats()->pages_allocated,
            writes_before);
}

TEST_F(ExternalSortTest, SortIteratorWrapsChild) {
  auto t = MakeTable({{3, 0}, {1, 1}, {2, 2}});
  SortIterator sorted(ctx_, t->Scan(), TupleComparator({0}));
  EXPECT_EQ(Drain(&sorted),
            (std::vector<std::pair<int, int>>{{1, 1}, {2, 2}, {3, 0}}));
}

// --------------------------------------------------------------------------
// Merge join
// --------------------------------------------------------------------------

std::vector<std::vector<int>> DrainWide(TupleIterator* it) {
  std::vector<std::vector<int>> out;
  Tuple row;
  while (true) {
    auto more = it->Next(&row);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !more.value()) break;
    std::vector<int> vals;
    for (size_t i = 0; i < row.NumValues(); ++i) {
      vals.push_back(row.value(i).AsInt32());
    }
    out.push_back(std::move(vals));
  }
  return out;
}

TEST(MergeJoinTest, OneToOne) {
  auto l = MakeTable({{1, 100}, {2, 200}, {4, 400}});
  auto r = MakeTable({{1, -1}, {3, -3}, {4, -4}});
  MergeJoinIterator join(l->Scan(), r->Scan(), {0}, {0}, nullptr);
  EXPECT_EQ(DrainWide(&join), (std::vector<std::vector<int>>{
                                  {1, 100, 1, -1}, {4, 400, 4, -4}}));
}

TEST(MergeJoinTest, DuplicatesOnBothSidesCrossProduct) {
  auto l = MakeTable({{1, 1}, {1, 2}, {2, 5}});
  auto r = MakeTable({{1, 10}, {1, 20}, {2, 30}});
  MergeJoinIterator join(l->Scan(), r->Scan(), {0}, {0}, nullptr);
  EXPECT_EQ(DrainWide(&join),
            (std::vector<std::vector<int>>{{1, 1, 1, 10},
                                           {1, 1, 1, 20},
                                           {1, 2, 1, 10},
                                           {1, 2, 1, 20},
                                           {2, 5, 2, 30}}));
}

TEST(MergeJoinTest, ResidualFiltersWithinJoin) {
  // The SETM pattern: join on trans_id (col 0), keep q.b > p.b.
  auto l = MakeTable({{1, 10}, {1, 20}});
  auto r = MakeTable({{1, 10}, {1, 20}, {1, 30}});
  MergeJoinIterator join(l->Scan(), r->Scan(), {0}, {0},
                         Binary(BinaryOp::kGt, Col(3), Col(1)));
  EXPECT_EQ(DrainWide(&join),
            (std::vector<std::vector<int>>{{1, 10, 1, 20},
                                           {1, 10, 1, 30},
                                           {1, 20, 1, 30}}));
}

TEST(MergeJoinTest, EmptyInputs) {
  auto l = MakeTable({});
  auto r = MakeTable({{1, 1}});
  MergeJoinIterator join(l->Scan(), r->Scan(), {0}, {0}, nullptr);
  EXPECT_TRUE(DrainWide(&join).empty());
  auto l2 = MakeTable({{1, 1}});
  auto r2 = MakeTable({});
  MergeJoinIterator join2(l2->Scan(), r2->Scan(), {0}, {0}, nullptr);
  EXPECT_TRUE(DrainWide(&join2).empty());
}

TEST(MergeJoinTest, MultiColumnKeys) {
  auto l = MakeTable({{1, 1}, {1, 2}, {2, 1}});
  auto r = MakeTable({{1, 1}, {1, 3}, {2, 1}});
  MergeJoinIterator join(l->Scan(), r->Scan(), {0, 1}, {0, 1}, nullptr);
  EXPECT_EQ(DrainWide(&join), (std::vector<std::vector<int>>{
                                  {1, 1, 1, 1}, {2, 1, 2, 1}}));
}

TEST(NestedLoopJoinTest, CrossWithResidual) {
  auto l = MakeTable({{1, 0}, {2, 0}});
  auto r = MakeTable({{1, 0}, {2, 0}, {3, 0}});
  NestedLoopJoinIterator join(l->Scan(), r->Scan(),
                              Binary(BinaryOp::kLt, Col(0), Col(2)));
  EXPECT_EQ(DrainWide(&join),
            (std::vector<std::vector<int>>{{1, 0, 2, 0},
                                           {1, 0, 3, 0},
                                           {2, 0, 3, 0}}));
}

// --------------------------------------------------------------------------
// Aggregation
// --------------------------------------------------------------------------

TEST(GroupCountTest, CountsSortedGroups) {
  auto t = MakeTable({{1, 0}, {1, 0}, {2, 0}, {3, 0}, {3, 0}, {3, 0}});
  SortedGroupCountIterator counts(t->Scan(), {0}, 0);
  Tuple row;
  std::vector<std::pair<int, int64_t>> out;
  while (true) {
    auto more = counts.Next(&row);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    out.emplace_back(row.value(0).AsInt32(), row.value(1).AsInt64());
  }
  EXPECT_EQ(out, (std::vector<std::pair<int, int64_t>>{{1, 2}, {2, 1}, {3, 3}}));
}

TEST(GroupCountTest, HavingMinCountDropsGroups) {
  auto t = MakeTable({{1, 0}, {1, 0}, {2, 0}, {3, 0}, {3, 0}, {3, 0}});
  SortedGroupCountIterator counts(t->Scan(), {0}, 2);
  Tuple row;
  std::vector<int> kept;
  while (true) {
    auto more = counts.Next(&row);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    kept.push_back(row.value(0).AsInt32());
  }
  EXPECT_EQ(kept, (std::vector<int>{1, 3}));
}

TEST(GroupCountTest, MultiColumnGroups) {
  auto t = MakeTable({{1, 1}, {1, 1}, {1, 2}, {2, 1}});
  SortedGroupCountIterator counts(t->Scan(), {0, 1}, 0);
  Tuple row;
  int groups = 0;
  while (true) {
    auto more = counts.Next(&row);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    ++groups;
  }
  EXPECT_EQ(groups, 3);
  EXPECT_EQ(counts.schema().NumColumns(), 3u);
  EXPECT_EQ(counts.schema().column(2).name, "count");
}

TEST(GroupCountTest, EmptyInputProducesNothing) {
  auto t = MakeTable({});
  SortedGroupCountIterator counts(t->Scan(), {0}, 0);
  Tuple row;
  auto more = counts.Next(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value());
}

// --------------------------------------------------------------------------
// Helpers
// --------------------------------------------------------------------------

TEST(HelpersTest, MaterializeIntoAndCollect) {
  auto src = MakeTable({{1, 2}, {3, 4}});
  MemTable dst("dst", TwoIntSchema());
  auto it = src->Scan();
  ASSERT_TRUE(MaterializeInto(it.get(), &dst).ok());
  EXPECT_EQ(dst.num_rows(), 2u);
  auto it2 = dst.Scan();
  auto rows = Collect(it2.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
}

}  // namespace
}  // namespace setm
